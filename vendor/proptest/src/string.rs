//! Charclass-regex string generation, backing `"[a-z0-9]{2,8}"`-style
//! strategies. Supported grammar (the subset the workspace's tests use,
//! plus the obvious neighbours):
//!
//! ```text
//! pattern := atom*
//! atom    := (class | literal) repeat?
//! class   := '[' (char '-' char | char)+ ']'
//! repeat  := '{' n '}' | '{' m ',' n '}' | '?' | '*' | '+'
//! ```
//!
//! `*` and `+` are bounded at 8 repetitions.

use rand::Rng;

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: usize = 8;

/// Generates a string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax this mini-grammar does not cover.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated [ in regex {pattern:?}"));
                let class = &chars[i + 1..i + close];
                i += close + 1;
                expand_class(class, pattern)
            }
            '\\' => {
                i += 2;
                vec![*chars.get(i - 1).unwrap_or_else(|| panic!("trailing \\ in {pattern:?}"))]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated {{ in regex {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                        n.trim().parse().unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                    ),
                    None => {
                        let n = body
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}"));
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            _ => (1, 1),
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty [] in regex {pattern:?}");
    assert!(class[0] != '^', "negated classes unsupported in regex {pattern:?}");
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "decreasing range in regex {pattern:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_within_class_and_length() {
        let mut rng = TestRng::from_seed(21);
        for _ in 0..100 {
            let s = generate_matching("[a-z0-9]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn mixed_classes_and_literals() {
        let mut rng = TestRng::from_seed(22);
        for _ in 0..50 {
            let s = generate_matching("[a-zA-Z0-9;:!?]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || ";:!?".contains(c)));
            let t = generate_matching("ab[01]{2}c?", &mut rng);
            assert!(t.starts_with("ab"));
        }
    }

    #[test]
    fn exact_repeat_counts() {
        let mut rng = TestRng::from_seed(23);
        assert_eq!(generate_matching("[x]{5}", &mut rng), "xxxxx");
    }
}
