//! `prop::collection` — vectors and maps of generated values.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: an exact count or a range of counts.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Duplicate keys shrink the map; retry (bounded) to reach the
        // target, like upstream.
        let mut tries = 0;
        while map.len() < target && tries < target * 100 + 100 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            tries += 1;
        }
        map
    }
}

/// Maps with `size`-many entries, keys from `key`, values from `value`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::from_seed(11);
        let exact = vec(0u8..5, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
        let ranged = vec(0u8..5, 2..6);
        for _ in 0..50 {
            let n = ranged.generate(&mut rng).len();
            assert!((2..6).contains(&n));
        }
    }

    #[test]
    fn btree_map_reaches_target_size() {
        let mut rng = TestRng::from_seed(12);
        let strat = btree_map(0u32..1000, 0u8..10, 5usize);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut rng).len(), 5);
        }
    }
}
