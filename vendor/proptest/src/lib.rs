//! Offline stand-in for the `proptest` crate (the subset this workspace
//! uses). Strategies generate values deterministically from a per-test
//! seeded RNG; there is no shrinking — a failing case reports its case
//! number and message, and reproduces exactly on re-run.

// Vendored API stand-in: keep the real crate's surface even where clippy
// would restyle it.
#![allow(clippy::all)]

pub mod arbitrary;
pub mod char;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` namespace used by `prop::collection::vec(...)` etc.
pub mod prop {
    pub use crate::char;
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a proptest file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    ::core::module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}
