//! `prop::sample` — choosing among concrete values.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// Uniformly selects one of `options`.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_options() {
        let s = select(vec!['a', 'b', 'c']);
        let mut rng = TestRng::from_seed(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..60 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
