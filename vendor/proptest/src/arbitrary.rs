//! `any::<T>()` — canonical strategies per type.

use rand::{Rng, Standard};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T> {
    gen: fn(&mut TestRng) -> T,
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy { gen: |rng| <$t as Standard>::sample(rng) }
            }
        }
    )*};
}

impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl Arbitrary for char {
    fn arbitrary() -> ArbitraryStrategy<char> {
        // Printable ASCII keeps generated chars meaningful for UI tests.
        ArbitraryStrategy { gen: |rng| char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let strat = any::<bool>();
        let mut rng = TestRng::from_seed(5);
        let trues = (0..100).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 20 && trues < 80);
    }

    #[test]
    fn any_u64_varies() {
        let strat = any::<u64>();
        let mut rng = TestRng::from_seed(6);
        let a = strat.generate(&mut rng);
        let b = strat.generate(&mut rng);
        assert_ne!(a, b);
    }
}
