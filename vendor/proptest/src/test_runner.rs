//! Test-run configuration, RNG, and failure type.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Upstream-compatible alias: a rejected (filtered) case is treated as
    /// a failure here since this stand-in retries filters internally.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG driving value generation: seeded from the test's
/// fully-qualified name, so every run of a test sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// An RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        let mut a2 = TestRng::for_test("x::y");
        a2.next_u64();
        assert_ne!(a2.next_u64(), c.next_u64());
    }
}
