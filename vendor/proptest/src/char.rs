//! `prop::char` — character strategies.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`range`].
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: u32,
    hi: u32,
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        // Surrogate gaps are re-rolled; for the BMP ranges used in tests
        // this virtually never loops.
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(self.lo..=self.hi)) {
                return c;
            }
        }
    }
}

/// Characters in `lo..=hi` (inclusive, like upstream).
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "char range {lo:?}..={hi:?} is empty");
    CharRange { lo: lo as u32, hi: hi as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_is_inclusive_and_bounded() {
        let s = range('a', 'c');
        let mut rng = TestRng::from_seed(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..60 {
            let c = s.generate(&mut rng);
            assert!(('a'..='c').contains(&c));
            seen.insert(c);
        }
        assert_eq!(seen.len(), 3);
    }
}
