//! The `Strategy` trait and core combinators.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// How many times a filter may reject before the test aborts.
const MAX_FILTER_RETRIES: usize = 1_000;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(move |rng: &mut TestRng| self.generate(rng)) }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected {MAX_FILTER_RETRIES} values in a row", self.whence);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// String strategies from charclass regexes — see [`crate::string`].
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_and_maps_compose() {
        let strat = (0u64..10).prop_map(|v| v * 2);
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn filter_respects_predicate() {
        let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_generate_elementwise() {
        let strat = (0u8..2, 10u8..12, Just('x'));
        let mut r = rng();
        let (a, b, c) = strat.generate(&mut r);
        assert!(a < 2 && (10..12).contains(&b) && c == 'x');
    }
}
