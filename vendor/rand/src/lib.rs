//! Offline stand-in for the `rand` crate (the subset this workspace uses).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension trait with `gen` / `gen_range`. The generator is xoshiro256**
//! seeded via SplitMix64 — deterministic per seed, but *not* bit-identical
//! to upstream rand 0.8 (which uses ChaCha12 for `StdRng`).

// Vendored API stand-in: keep the real crate's surface even where clippy
// would restyle it.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on an empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                // Span as u64 with wrapping arithmetic so full-width ranges
                // cannot overflow. Modulo bias is acceptable here.
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Inclusive full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }

        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                let u = f64::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..12);
            assert!((3..12).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
