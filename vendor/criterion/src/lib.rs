//! Offline stand-in for the `criterion` crate (the subset this workspace
//! uses). Each `bench_function` warms up briefly, runs a fixed wall-clock
//! budget of iterations, and prints a mean time per iteration. No
//! statistics or plots — but the two upstream CLI behaviours the workspace
//! relies on are honoured: `-- --test` runs every benchmark body exactly
//! once (CI's smoke mode), and a bare positional argument is a substring
//! filter on benchmark ids (`cargo bench -- classify/`).

// Vendored API stand-in: keep the real crate's surface even where clippy
// would restyle it.
#![allow(clippy::all)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like upstream.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(400);

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
    /// Smoke mode: run the routine exactly once, don't sample.
    single_shot: bool,
}

impl Bencher {
    /// Times `routine` repeatedly, accumulating iterations and elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.single_shot {
            let start = Instant::now();
            black_box(routine());
            self.iters = 1;
            self.total = start.elapsed();
            return;
        }
        // Warm-up: let caches and branch predictors settle, and estimate
        // per-iteration cost to pick a batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();
        let batch =
            (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;

        let start = Instant::now();
        while start.elapsed() < MEASURE {
            for _ in 0..batch {
                black_box(routine());
            }
            self.iters += batch;
        }
        self.total = start.elapsed();
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    /// `--test` was passed: run each benchmark body once and report no
    /// timings (upstream's "test mode", used by CI as a cheap smoke).
    test_mode: bool,
    /// First bare positional argument, if any: substring filter on ids.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Flags cargo itself appends (e.g. `--bench`) are ignored; only the
        // two upstream behaviours the workspace uses are interpreted.
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Runs `f` under a [`Bencher`] and prints the mean time per iteration
    /// (or a pass marker in `--test` mode). Benchmarks whose id does not
    /// contain the positional filter substring are skipped entirely.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { iters: 0, total: Duration::ZERO, single_shot: self.test_mode };
        f(&mut b);
        if self.test_mode {
            println!("{id:<40} ok (test mode, 1 iter)");
        } else if b.iters > 0 {
            let mean_ns = b.total.as_nanos() as f64 / b.iters as f64;
            println!("{id:<40} {:>12} iters   mean {}", b.iters, fmt_ns(mean_ns));
        } else {
            println!("{id:<40} (no iterations recorded)");
        }
        self
    }

    /// Upstream parity; configuration happens in `Default` from the
    /// process arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group function, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher { iters: 0, total: Duration::ZERO, single_shot: false };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.iters > 0);
        assert!(b.total > Duration::ZERO);
    }

    #[test]
    fn single_shot_runs_exactly_once() {
        let mut b = Bencher { iters: 0, total: Duration::ZERO, single_shot: true };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
