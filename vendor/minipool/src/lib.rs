//! A tiny scoped thread pool with a *deterministic* parallel map.
//!
//! The experiment suite needs fan-out whose results are byte-identical to
//! the sequential run regardless of worker count or OS scheduling. Two
//! properties deliver that:
//!
//! 1. **Order-preserving collection** — [`Pool::par_map`] returns results in
//!    item order, never completion order.
//! 2. **Per-item seed derivation** — [`Pool::par_map_seeded`] hands every
//!    work item an independent RNG seed derived *only* from the root seed
//!    and the item index (SplitMix64), so no item observes another item's
//!    random stream no matter which worker runs it.
//!
//! With `jobs = 1` no threads are spawned at all: the closure runs inline on
//! the caller's thread, item by item — exactly the sequential execution
//! path.
//!
//! Workers are scoped (`std::thread::scope`): borrows of the caller's stack
//! (model stores, trial options) flow into the closure without `'static`
//! gymnastics, and a panicking item propagates to the caller at the end of
//! the call.
//!
//! Beyond the map, [`Pool::par_drive`] runs *cooperative* tasks over a
//! ring-shaped run queue: each task is stepped one quantum at a time and
//! requeued FIFO after every quantum, so quanta of different tasks
//! interleave on the same bounded worker set and one long task can occupy
//! at most one worker while the rest drain everything else. The fleet
//! orchestrator (`gpu_sc_attack::fleet`) schedules thousands of
//! eavesdropping sessions through it.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A handle describing how much parallelism to use. Cheap to clone; holds no
/// threads — workers are spawned per [`Pool::par_map`] call and joined
/// before it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool that runs `jobs` work items concurrently (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Pool { jobs: jobs.max(1) }
    }

    /// A single-threaded pool: `par_map` degenerates to a plain inline map.
    pub fn sequential() -> Self {
        Pool::new(1)
    }

    /// The number of hardware threads available, for `--jobs` defaults.
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// `f` receives `(index, item)`. With `jobs = 1` (or ≤ 1 item) the
    /// closure runs inline sequentially; otherwise up to `jobs` scoped
    /// worker threads pull items from a shared cursor. Results are
    /// reassembled by index, so the output is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `f` panicked on any item (the first worker panic is
    /// propagated after all workers stop).
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }

        // Item slots the workers drain. Options let each worker `take`
        // ownership of its item without cloning.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.jobs.min(n);
        // Workers inherit the caller's telemetry track so fanned-out trials
        // stay attributed to the experiment that spawned them.
        let track = spansight::current_track();

        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let _track = spansight::enter_track(track);
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take()
                            .expect("each slot is drained exactly once");
                        local.push((i, f(i, item)));
                    }
                    local
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(local) => tagged.extend(local),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });

        tagged.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(tagged.len(), n);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Drives a set of cooperative tasks to completion over a ring-shaped
    /// FIFO run queue, returning results in task order.
    ///
    /// `step` receives `(index, &mut task)` and runs **one quantum** of that
    /// task: it returns `Some(result)` when the task is finished and `None`
    /// to yield. Yielded tasks are requeued at the back of the ring, so
    /// quanta of different tasks interleave on the same workers — with
    /// `k` live tasks, every task is stepped again within `k` dequeues, and
    /// a single pathological task can pin at most one worker while the
    /// remaining workers drain the rest of the ring (the
    /// starvation-freedom property the fleet orchestrator leans on).
    ///
    /// With `jobs = 1` the ring is driven inline, round-robin, on the
    /// caller's thread — the same schedule shape without threads. Results
    /// are keyed by task index, and each task's state is only ever touched
    /// by one worker at a time, so as long as tasks are independent the
    /// output is byte-identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `step` panicked on any quantum (the first worker panic is
    /// propagated after all workers stop; tasks still queued are dropped).
    pub fn par_drive<T, R, F>(&self, tasks: Vec<T>, step: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> Option<R> + Sync,
    {
        let n = tasks.len();
        if self.jobs == 1 || n <= 1 {
            // Inline round-robin over a local ring: the sequential
            // execution path, exercising the same FIFO-requeue schedule.
            let mut states: Vec<Option<T>> = tasks.into_iter().map(Some).collect();
            let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
            let mut ring: VecDeque<usize> = (0..n).collect();
            while let Some(i) = ring.pop_front() {
                let task = states[i].as_mut().expect("queued tasks have live state");
                match step(i, task) {
                    Some(r) => {
                        results[i] = Some(r);
                        states[i] = None;
                    }
                    None => ring.push_back(i),
                }
            }
            return results.into_iter().map(|r| r.expect("every task ran to completion")).collect();
        }

        // Task states and result slots, each owned by at most one worker at
        // a time (ownership is handed around via the index ring).
        let states: Vec<Mutex<Option<T>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let ring: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
        // Tasks dequeued but not yet finished or requeued. `ring empty &&
        // in_flight == 0` is the only termination condition, so workers
        // never exit while a peer still holds a task it might requeue.
        let in_flight = AtomicUsize::new(0);
        // Set when a worker unwinds mid-task (its task is lost, so the ring
        // would otherwise never drain); peers bail out instead of spinning.
        let bailed = AtomicBool::new(false);
        let workers = self.jobs.min(n);
        let track = spansight::current_track();

        /// Flags the shared bail-out on unwind so sibling workers stop
        /// waiting for a task that will never be requeued.
        struct BailOnPanic<'a>(&'a AtomicBool);
        impl Drop for BailOnPanic<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::SeqCst);
                }
            }
        }

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let _track = spansight::enter_track(track);
                    let _bail = BailOnPanic(&bailed);
                    loop {
                        if bailed.load(Ordering::SeqCst) {
                            break;
                        }
                        let next = {
                            let mut q = ring.lock().unwrap_or_else(PoisonError::into_inner);
                            match q.pop_front() {
                                Some(i) => {
                                    // Claimed before the ring lock drops, so
                                    // the empty+idle exit check below can
                                    // never miss this task.
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    Some(i)
                                }
                                None => None,
                            }
                        };
                        let Some(i) = next else {
                            if in_flight.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            // A peer may requeue its task; don't busy-burn.
                            std::thread::yield_now();
                            continue;
                        };
                        // Take the state out of its slot so the quantum runs
                        // without holding any lock.
                        let mut task = states[i]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .take()
                            .expect("a queued task owns its state");
                        match step(i, &mut task) {
                            Some(r) => {
                                *results[i].lock().unwrap_or_else(PoisonError::into_inner) =
                                    Some(r);
                            }
                            None => {
                                *states[i].lock().unwrap_or_else(PoisonError::into_inner) =
                                    Some(task);
                                ring.lock().unwrap_or_else(PoisonError::into_inner).push_back(i);
                            }
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }));
            }
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every task ran to completion")
            })
            .collect()
    }

    /// [`Pool::par_map`] with a per-item RNG seed derived from `root_seed`
    /// and the item index. `f` receives `(derived_seed, item)`; the same
    /// `(root_seed, index)` always yields the same derived seed, so results
    /// are identical at any worker count.
    pub fn par_map_seeded<T, R, F>(&self, root_seed: u64, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(u64, T) -> R + Sync,
    {
        self.par_map(items, move |i, item| f(derive_seed(root_seed, i as u64), item))
    }
}

/// Derives the seed for work item `index` under `root`: one SplitMix64 step
/// over a position-keyed state. Pure, stateless, and collision-scrambled —
/// adjacent indices produce statistically independent streams.
pub fn derive_seed(root: u64, index: u64) -> u64 {
    let mut z =
        root ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678_9ABC_DEF1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.par_map(items, |i, x| {
            assert_eq!(i, x);
            // Stagger completion so out-of-order finishes are likely.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_do_not_change_results() {
        let items: Vec<u64> = (0..50).collect();
        let run = |jobs| {
            Pool::new(jobs).par_map_seeded(42, items.clone(), |seed, x| seed.wrapping_add(x))
        };
        let seq = run(1);
        assert_eq!(run(2), seq);
        assert_eq!(run(4), seq);
        assert_eq!(run(13), seq);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| derive_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1000, "no collisions across 1000 items");
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0), "root seed matters");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.par_map(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(pool.par_map(vec![9u8], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn borrows_flow_into_workers() {
        let data = vec![1u64, 2, 3, 4];
        let pool = Pool::new(2);
        let sum: Vec<u64> = pool.par_map((0..4).collect(), |_, i: usize| data[i]);
        assert_eq!(sum, data);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let pool = Pool::new(3);
        pool.par_map((0..10).collect::<Vec<usize>>(), |_, x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn par_drive_returns_results_in_task_order() {
        // Tasks finish after (index % 3 + 1) quanta; results must still
        // land at their task index, identically at any worker count.
        for jobs in [1, 2, 4] {
            let pool = Pool::new(jobs);
            let tasks: Vec<(usize, usize)> = (0..20).map(|i| (i % 3 + 1, 0usize)).collect();
            let out = pool.par_drive(tasks, |i, (quanta, done)| {
                *done += 1;
                if *done == *quanta {
                    Some(i * 10)
                } else {
                    None
                }
            });
            assert_eq!(out, (0..20).map(|i| i * 10).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn par_drive_empty_and_singleton() {
        let pool = Pool::new(4);
        assert_eq!(pool.par_drive(Vec::<u8>::new(), |_, _| Some(1u8)), Vec::<u8>::new());
        assert_eq!(pool.par_drive(vec![5u8], |_, t| Some(*t + 1)), vec![6]);
    }

    #[test]
    fn one_pathological_task_cannot_starve_the_ring() {
        // One task needs 1000 quanta; the other 15 need one each. FIFO
        // requeue guarantees every short task completes before the long
        // one at ANY worker count — including jobs=2 where the long task
        // pins one worker: the other worker drains the remaining ring.
        for jobs in [1, 2, 4] {
            let pool = Pool::new(jobs);
            let done_short = std::sync::atomic::AtomicUsize::new(0);
            let mut tasks = vec![(1usize, 0usize)];
            tasks[0].0 = 1000;
            tasks.extend((0..15).map(|_| (1usize, 0usize)));
            let out = pool.par_drive(tasks, |i, (quanta, stepped)| {
                *stepped += 1;
                if *stepped < *quanta {
                    return None;
                }
                if i == 0 {
                    // The pathological task must finish last: every short
                    // task already completed while it was cycling.
                    assert_eq!(
                        done_short.load(Ordering::SeqCst),
                        15,
                        "long task finished before the ring drained (jobs={jobs})"
                    );
                } else {
                    done_short.fetch_add(1, Ordering::SeqCst);
                }
                Some(*stepped)
            });
            assert_eq!(out[0], 1000);
            assert!(out[1..].iter().all(|&s| s == 1), "jobs={jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "drive boom")]
    fn par_drive_panics_propagate_without_deadlock() {
        let pool = Pool::new(3);
        pool.par_drive((0..10).collect::<Vec<usize>>(), |_, x| {
            if *x == 7 {
                panic!("drive boom");
            }
            // Everyone else yields forever; only the bail flag set by the
            // panicking worker lets the pool shut down.
            None::<usize>
        });
    }
}
