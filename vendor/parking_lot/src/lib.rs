//! Offline stand-in for `parking_lot` (the subset this workspace uses):
//! a `Mutex` whose `lock()` returns the guard directly (no poisoning),
//! implemented over `std::sync::Mutex`.

// Vendored API stand-in: keep the real crate's surface even where clippy
// would restyle it.
#![allow(clippy::all)]

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a
    /// poisoned lock is transparently recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_detects_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
