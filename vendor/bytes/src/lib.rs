//! Offline stand-in for the `bytes` crate (the subset this workspace uses):
//! cheaply-cloneable `Bytes` views, a growable `BytesMut`, and the
//! big-endian `Buf`/`BufMut` accessor subset.

// Vendored API stand-in: keep the real crate's surface even where clippy
// would restyle it.
#![allow(clippy::all)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply-cloneable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied; upstream borrows, but the distinction
    /// is unobservable through this API).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of `range` (indices relative to this view).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} out of bounds of {}", self.len());
        let front = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        front
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(capacity) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read access to a byte cursor (big-endian, like upstream's defaults).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `N`-byte array.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `N` bytes remain.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Advances past `cnt` bytes.
    fn advance(&mut self, cnt: usize) {
        for _ in 0..cnt {
            self.take_array::<1>();
        }
    }

    fn get_u8(&mut self) -> u8 {
        u8::from_be_bytes(self.take_array())
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take_array())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }

    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow: {} < {N}", self.len());
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} out of bounds of {}", self.len());
        self.start += cnt;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow: {} < {}", self.len(), dst.len());
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Write access to a growable buffer (big-endian, like upstream's defaults).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_f32(1.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 4 + 3);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32(), 1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_split_are_views() {
        let b = Bytes::from(b"hello world".to_vec());
        let hello = b.slice(0..5);
        assert_eq!(&hello[..], b"hello");
        let mut rest = b.slice(6..b.len());
        assert_eq!(rest.split_to(5).as_ref(), b"world");
        assert!(rest.is_empty());
        // Equality is by content, not provenance.
        assert_eq!(b.slice(0..5), Bytes::from_static(b"hello"));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.get_u32();
    }
}
