//! Chrome trace-event JSON export.
//!
//! Renders the events captured by [`crate::take_events`] into the
//! [Trace Event Format] consumed by `chrome://tracing` and Perfetto:
//! a top-level object with a `traceEvents` array of `ph:"X"` (complete)
//! and `ph:"i"` (instant) events, timestamps and durations in
//! microseconds. Each registered track becomes a named "process" row so
//! an experiment's spans group together in the viewer; each recording
//! thread becomes a tid within it.
//!
//! The JSON is hand-rolled (this crate has no dependencies); a matching
//! minimal [`validate_json`] parser exists so tests and smoke jobs can
//! assert well-formedness without serde.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! ```
//! spansight::enable_tracing(1024);
//! drop(spansight::span("doc", "chrome.example"));
//! let (events, _) = spansight::take_events();
//! let json = spansight::chrome::render(&events, &spansight::snapshot().tracks);
//! spansight::chrome::validate_json(&json).expect("well-formed");
//! assert!(json.contains("\"traceEvents\""));
//! ```

use crate::{TraceEvent, UNTRACKED};

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    escape(key, out);
    out.push_str("\":\"");
    escape(val, out);
    out.push('"');
}

/// Renders `events` as a Chrome trace-event JSON document.
///
/// `tracks` is the registered track-name table (index `i` names track
/// `i + 1`, as in [`crate::Snapshot::tracks`]); events on [`UNTRACKED`]
/// land in a pid-0 "untracked" process. Timestamps are converted from
/// nanoseconds to the format's microseconds with three decimals kept, so
/// sub-microsecond spans stay visible.
pub fn render(events: &[TraceEvent], tracks: &[String]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    // Process-name metadata: one row per track plus the untracked row.
    for (i, name) in
        std::iter::once("untracked").chain(tracks.iter().map(String::as_str)).enumerate()
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        out.push_str(&i.to_string());
        out.push_str(",\"tid\":0,\"args\":{");
        push_str_field(&mut out, "name", name);
        out.push_str("}}");
    }

    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        push_str_field(&mut out, "name", e.name);
        out.push(',');
        push_str_field(&mut out, "cat", e.cat);
        out.push_str(",\"ph\":\"");
        out.push(e.ph);
        out.push_str("\",\"ts\":");
        push_us(&mut out, e.ts_ns);
        if e.ph == 'X' {
            out.push_str(",\"dur\":");
            push_us(&mut out, e.dur_ns);
        }
        if e.ph == 'i' {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":");
        out.push_str(&pid_of(e.track, tracks).to_string());
        out.push_str(",\"tid\":");
        out.push_str(&e.tid.to_string());
        if let Some((s0, s1)) = e.sim {
            out.push_str(",\"args\":{\"sim_start_ns\":");
            out.push_str(&s0.to_string());
            out.push_str(",\"sim_end_ns\":");
            out.push_str(&s1.to_string());
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Nanoseconds → microseconds with three decimal places, as JSON number.
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&(ns / 1_000).to_string());
    let frac = ns % 1_000;
    if frac != 0 {
        out.push('.');
        out.push_str(&format!("{frac:03}"));
    }
}

fn pid_of(track: u32, tracks: &[String]) -> u32 {
    if track == UNTRACKED || track as usize > tracks.len() {
        0
    } else {
        track
    }
}

/// A minimal recursive-descent JSON well-formedness check.
///
/// Accepts exactly RFC-8259 JSON (objects, arrays, strings with escapes,
/// numbers, literals) and returns the byte offset of the first error.
/// This exists so tests can validate [`render`]'s output without a JSON
/// dependency; it checks syntax only, not any schema.
pub fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), usize> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, i),
        _ => Err(*i),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(*i)
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // consume '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(*i);
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // consume '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) != Some(&b'"') {
        return Err(*i);
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(*i);
                            }
                            *i += 1;
                        }
                    }
                    _ => return Err(*i),
                }
            }
            0x00..=0x1f => return Err(*i),
            _ => *i += 1,
        }
    }
    Err(*i)
}

fn number(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let start = *i;
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
    }
    if *i == start {
        return Err(*i);
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        let fstart = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        if *i == fstart {
            return Err(*i);
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        let estart = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        if *i == estart {
            return Err(*i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ph: char, ts_ns: u64, dur_ns: u64, track: u32) -> TraceEvent {
        TraceEvent { cat: "test", name, ph, ts_ns, dur_ns, tid: 1, track, sim: None }
    }

    #[test]
    fn render_is_valid_json_with_expected_fields() {
        let tracks = vec!["fig17".to_string()];
        let mut events = vec![ev("stage.a", 'X', 1_500, 2_250, 1), ev("fault", 'i', 4_000, 0, 0)];
        events[0].sim = Some((0, 8_000_000));
        let json = render(&events, &tracks);
        validate_json(&json).expect("render output must be valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.500"), "ns converted to µs with decimals: {json}");
        assert!(json.contains("\"dur\":2.250"));
        assert!(json.contains("\"sim_start_ns\":0"));
        assert!(json.contains("fig17"), "track becomes a named process");
    }

    #[test]
    fn render_escapes_names() {
        let json = render(&[], &["we\"ird\\track\n".to_string()]);
        validate_json(&json).expect("escaped output must stay valid");
    }

    #[test]
    fn empty_render_is_valid() {
        let json = render(&[], &[]);
        validate_json(&json).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e+10",
            r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#,
            "  [ 1 , \"x\" ]  ",
        ] {
            assert!(validate_json(ok).is_ok(), "should accept {ok:?}");
        }
        for bad in ["{", "[1,]", "{\"a\":}", "\"unterminated", "01x", "{}, extra", "{'a':1}"] {
            assert!(validate_json(bad).is_err(), "should reject {bad:?}");
        }
    }
}
