//! Human-readable summary tables for a [`Snapshot`].
//!
//! The experiments binary prints these to **stderr** alongside its
//! `[name done in Xs]` progress lines, keeping stdout byte-identical to a
//! telemetry-free run.
//!
//! ```
//! drop(spansight::span("doc", "table.example"));
//! spansight::count("doc.table.items", 2);
//! let text = spansight::table::render(&spansight::snapshot().totals());
//! assert!(text.contains("table.example"));
//! assert!(text.contains("doc.table.items"));
//! ```

use crate::Snapshot;

/// Formats a nanosecond duration compactly (`17ns`, `4.20µs`, `1.35ms`,
/// `2.801s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.2}\u{b5}s", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.3}s", ns as f64 / 1e9),
    }
}

fn pad(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

fn pad_r(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

/// Renders the span, counter and histogram sections of `snap` as aligned
/// ASCII tables. Sections with no data are omitted; an entirely empty
/// snapshot renders to an empty string. Rows follow the snapshot's
/// deterministic `(category, name, track)` order.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();

    if !snap.spans.is_empty() {
        let rows: Vec<[String; 5]> = snap
            .spans
            .iter()
            .map(|s| {
                [
                    format!("{}/{}", s.cat, s.name),
                    s.agg.count.to_string(),
                    fmt_ns(s.agg.total_ns),
                    fmt_ns(s.agg.mean_ns()),
                    fmt_ns(s.agg.max_ns),
                ]
            })
            .collect();
        section(&mut out, "spans", &["span", "count", "total", "mean", "max"], &rows);
    }

    if !snap.counters.is_empty() {
        let rows: Vec<[String; 2]> =
            snap.counters.iter().map(|c| [c.name.to_string(), c.value.to_string()]).collect();
        section(&mut out, "counters", &["counter", "value"], &rows);
    }

    if !snap.hists.is_empty() {
        let rows: Vec<[String; 3]> = snap
            .hists
            .iter()
            .map(|h| {
                let buckets = h
                    .hist
                    .edges
                    .iter()
                    .map(|e| format!("\u{2264}{e}"))
                    .chain(std::iter::once(">".to_string()))
                    .zip(&h.hist.counts)
                    .map(|(lbl, c)| format!("{lbl}:{c}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                [h.name.to_string(), h.hist.total().to_string(), buckets]
            })
            .collect();
        section(&mut out, "histograms", &["histogram", "n", "buckets"], &rows);
    }

    out
}

fn section<const N: usize>(
    out: &mut String,
    title: &str,
    headers: &[&str; N],
    rows: &[[String; N]],
) {
    let mut widths = [0usize; N];
    for (w, h) in widths.iter_mut().zip(headers) {
        *w = h.len();
    }
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    out.push_str(&format!("  {title}\n"));
    let mut line = String::from("    ");
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            line.push_str("  ");
        }
        line.push_str(&pad(h, widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    for row in rows {
        let mut line = String::from("    ");
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // numbers right-align, names left-align
            if i == 0 || cell.chars().next().is_some_and(|c| !c.is_ascii_digit()) {
                line.push_str(&pad(cell, widths[i]));
            } else {
                line.push_str(&pad_r(cell, widths[i]));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterStat, HistStat, SpanAgg, SpanStat};

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(4_200), "4.20\u{b5}s");
        assert_eq!(fmt_ns(1_350_000), "1.35ms");
        assert_eq!(fmt_ns(2_801_000_000), "2.801s");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&Snapshot::default()), "");
    }

    #[test]
    fn render_contains_all_sections() {
        let snap = Snapshot {
            counters: vec![CounterStat { name: "c.x", track: 0, value: 42 }],
            hists: vec![HistStat {
                name: "h.y",
                track: 0,
                hist: crate::Hist { edges: &[1, 2], counts: vec![3, 0, 1] },
            }],
            spans: vec![SpanStat {
                cat: "k",
                name: "s.z",
                track: 0,
                agg: SpanAgg { count: 2, total_ns: 2_000, max_ns: 1_500 },
            }],
            tracks: vec![],
        };
        let text = render(&snap);
        assert!(text.contains("spans"));
        assert!(text.contains("k/s.z"));
        assert!(text.contains("counters"));
        assert!(text.contains("c.x"));
        assert!(text.contains("42"));
        assert!(text.contains("histograms"));
        assert!(text.contains("\u{2264}1:3"));
        assert!(text.contains(">:1"));
    }
}
