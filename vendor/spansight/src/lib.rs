//! # spansight — zero-dependency structured observability
//!
//! The attack reproduction is a pipeline of timed stages — ioctl sampling,
//! delta extraction, inference, classification — and this crate is the
//! telemetry substrate the whole signal path reports into: nestable
//! [`Span`]s timed on the wall clock (with optional simulated-time bounds),
//! monotonic [counters](count), and [histograms](record) with fixed bucket
//! edges.
//!
//! ## Design constraints
//!
//! * **Determinism-preserving.** Nothing here ever writes to stdout, and no
//!   instrumented code path behaves differently because telemetry is
//!   collected. Experiment output therefore stays byte-identical at any
//!   worker count whether or not tracing is enabled.
//! * **Cheap on hot paths.** Every event lands in a thread-local buffer
//!   (one hash-map update, no locks) that is flushed to the process-global
//!   registry in batches and when the thread exits.
//! * **Zero dependencies.** `std` only, like the other `vendor/` stand-ins.
//!
//! ## Tracks
//!
//! Aggregates are attributed to the current *track* — a small integer the
//! experiment runner binds to each experiment via [`register_track`] /
//! [`enter_track`]. `minipool` propagates the spawning thread's track into
//! its workers, so trial fan-out stays attributed to its experiment.
//! Track `0` means "untracked" (tests, examples, library use).
//!
//! ## Example
//!
//! ```
//! // A timed stage with a counter and a histogram observation.
//! {
//!     let mut span = spansight::span("demo", "stage.work");
//!     span.sim_range(0, 8_000_000); // optional simulated-time bounds (ns)
//!     spansight::count("demo.items", 3);
//!     spansight::record("demo.size", &[1, 10, 100], 42);
//! } // span records on drop
//! let snap = spansight::snapshot();
//! assert!(snap.counter("demo.items") >= 3);
//! assert_eq!(snap.spans.iter().filter(|s| s.name == "stage.work").count(), 1);
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod table;

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The track id meaning "not attributed to any registered track".
pub const UNTRACKED: u32 = 0;

/// Thread-local buffers flush into the global registry after this many
/// recorded observations (or earlier, when the trace-event buffer fills).
const FLUSH_EVERY: usize = 4096;

/// Thread-local trace events flush into the global buffer in batches of
/// this size.
const EVENT_FLUSH_EVERY: usize = 256;

/// Aggregate of one span name: how often it ran and for how long.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed span instances.
    pub count: u64,
    /// Total wall-clock time inside the span, nanoseconds.
    pub total_ns: u64,
    /// Longest single instance, nanoseconds.
    pub max_ns: u64,
}

impl SpanAgg {
    /// Mean duration per instance in nanoseconds (0 when never run).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    fn merge(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Histogram data: fixed bucket edges plus one overflow bucket.
///
/// `counts[i]` counts observations `v <= edges[i]` (for the smallest such
/// `i`); `counts[edges.len()]` counts everything above the last edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// The fixed, ascending bucket edges (inclusive upper bounds).
    pub edges: &'static [u64],
    /// Per-bucket observation counts; one longer than `edges`.
    pub counts: Vec<u64>,
}

impl Hist {
    fn new(edges: &'static [u64]) -> Self {
        Hist { edges, counts: vec![0; edges.len() + 1] }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_of(edges: &[u64], value: u64) -> usize {
        edges.iter().position(|e| value <= *e).unwrap_or(edges.len())
    }

    fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_of(self.edges, value)] += 1;
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn merge(&mut self, other: &Hist) {
        debug_assert_eq!(self.edges, other.edges);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// One completed trace event, recorded only while tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span category (e.g. `"kgsl"`, `"adreno"`, `"core"`, `"bench"`).
    pub cat: &'static str,
    /// Span or instant name.
    pub name: &'static str,
    /// `'X'` for complete spans, `'i'` for instant events.
    pub ph: char,
    /// Start time, nanoseconds since the registry epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Small per-thread id (assigned in first-use order).
    pub tid: u32,
    /// Track the event was attributed to.
    pub track: u32,
    /// Optional simulated-time bounds `(start_ns, end_ns)`.
    pub sim: Option<(u64, u64)>,
}

type Key = (&'static str, u32);
type SpanKey = ((&'static str, &'static str), u32);

/// FxHash-style multiply-xor hasher for the aggregation maps.
///
/// Every observation pays one map lookup keyed by a static telemetry name,
/// so on hot paths (per-inference latency histograms, per-ioctl counters)
/// the default SipHash costs more than the arithmetic being measured. The
/// keys are compile-time string literals plus small track ids — HashDoS
/// resistance buys nothing — so a two-instruction word hasher is the right
/// trade.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

#[derive(Default)]
struct Aggregates {
    counters: HashMap<Key, u64, FxBuildHasher>,
    hists: HashMap<Key, Hist, FxBuildHasher>,
    spans: HashMap<SpanKey, SpanAgg, FxBuildHasher>,
}

impl Aggregates {
    fn merge_from(&mut self, other: &mut Aggregates) {
        for (k, v) in other.counters.drain() {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in other.hists.drain() {
            self.hists.entry(k).or_insert_with(|| Hist::new(h.edges)).merge(&h);
        }
        for (k, s) in other.spans.drain() {
            self.spans.entry(k).or_default().merge(&s);
        }
    }
}

#[derive(Default)]
struct TraceBuf {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

struct Registry {
    epoch: Instant,
    agg: Mutex<Aggregates>,
    trace: Mutex<TraceBuf>,
    tracing: AtomicBool,
    tracks: Mutex<Vec<String>>,
    next_tid: AtomicU32,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        agg: Mutex::new(Aggregates::default()),
        trace: Mutex::new(TraceBuf::default()),
        tracing: AtomicBool::new(false),
        tracks: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(1),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct LocalBuf {
    tid: u32,
    track: u32,
    pending: usize,
    agg: Aggregates,
    events: Vec<TraceEvent>,
}

impl LocalBuf {
    fn new() -> Self {
        LocalBuf {
            tid: registry().next_tid.fetch_add(1, Ordering::Relaxed),
            track: UNTRACKED,
            pending: 0,
            agg: Aggregates::default(),
            events: Vec::new(),
        }
    }

    fn flush(&mut self) {
        let reg = registry();
        if self.pending > 0 {
            lock(&reg.agg).merge_from(&mut self.agg);
            self.pending = 0;
        }
        if !self.events.is_empty() {
            let mut trace = lock(&reg.trace);
            let room = trace.capacity.saturating_sub(trace.events.len());
            if self.events.len() > room {
                trace.dropped += (self.events.len() - room) as u64;
                self.events.truncate(room);
            }
            trace.events.append(&mut self.events);
        }
    }

    fn bump(&mut self) {
        self.pending += 1;
        if self.pending >= FLUSH_EVERY || self.events.len() >= EVENT_FLUSH_EVERY {
            self.flush();
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// Runs `f` with this thread's local buffer. Telemetry recorded *from
/// inside a TLS destructor* (where the buffer is gone) is silently dropped.
fn with_local<R: Default>(f: impl FnOnce(&mut LocalBuf) -> R) -> R {
    LOCAL.try_with(|l| f(&mut l.borrow_mut())).unwrap_or_default()
}

fn now_ns() -> u64 {
    registry().epoch.elapsed().as_nanos() as u64
}

/// Adds `n` to the monotonic counter `name`, attributed to the current
/// track.
pub fn count(name: &'static str, n: u64) {
    with_local(|l| {
        *l.agg.counters.entry((name, l.track)).or_insert(0) += n;
        l.bump();
    });
}

/// Records `value` into the fixed-edge histogram `name`.
///
/// All call sites of one histogram name must pass the same `edges` slice
/// (the first registration wins; observations always bucket by the edges
/// passed at the recording site, so mismatched edges would mis-merge).
pub fn record(name: &'static str, edges: &'static [u64], value: u64) {
    debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
    with_local(|l| {
        l.agg.hists.entry((name, l.track)).or_insert_with(|| Hist::new(edges)).observe(value);
        l.bump();
    });
}

/// Merges pre-bucketed counts into the fixed-edge histogram `name` in one
/// call: `counts[i]` observations are added to bucket `i` (the last entry is
/// the overflow bucket). The final histogram is identical to calling
/// [`record`] once per observation — hot loops can therefore tally buckets
/// in a local array and publish them in O(1) instead of paying one
/// hash-map update per observation.
///
/// # Panics
///
/// Panics in debug builds when `counts` is not exactly one longer than
/// `edges`.
pub fn record_bucketed(name: &'static str, edges: &'static [u64], counts: &[u64]) {
    debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
    debug_assert_eq!(counts.len(), edges.len() + 1, "one count per bucket incl. overflow");
    if counts.iter().all(|&c| c == 0) {
        return;
    }
    with_local(|l| {
        let hist = l.agg.hists.entry((name, l.track)).or_insert_with(|| Hist::new(edges));
        for (bucket, n) in hist.counts.iter_mut().zip(counts) {
            *bucket += n;
        }
        l.bump();
    });
}

/// Records an instant event (a point in time, e.g. an injected fault) into
/// the trace buffer when tracing is enabled, and always counts it under
/// `name`.
pub fn instant(cat: &'static str, name: &'static str) {
    let ts = if tracing_enabled() { Some(now_ns()) } else { None };
    with_local(|l| {
        *l.agg.counters.entry((name, l.track)).or_insert(0) += 1;
        if let Some(ts_ns) = ts {
            l.events.push(TraceEvent {
                cat,
                name,
                ph: 'i',
                ts_ns,
                dur_ns: 0,
                tid: l.tid,
                track: l.track,
                sim: None,
            });
        }
        l.bump();
    });
}

/// An in-flight span. Created by [`span`]; records its duration into the
/// per-`(category, name)` aggregate — and, when tracing is enabled, a
/// [`TraceEvent`] — when dropped. Spans nest freely: each instance is
/// independent, so a span opened inside another simply records a shorter
/// interval inside the outer one.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; binding it to _ drops it immediately"]
pub struct Span {
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    sim: Option<(u64, u64)>,
}

impl Span {
    /// Attaches simulated-time bounds (nanoseconds on the `SimInstant`
    /// timeline) to this span; exported as `args` in the Chrome trace.
    pub fn sim_range(&mut self, start_ns: u64, end_ns: u64) {
        self.sim = Some((start_ns, end_ns));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end_ns = now_ns();
        let dur_ns = end_ns.saturating_sub(self.start_ns);
        let tracing = tracing_enabled();
        with_local(|l| {
            let agg = l.agg.spans.entry(((self.cat, self.name), l.track)).or_default();
            agg.count += 1;
            agg.total_ns += dur_ns;
            agg.max_ns = agg.max_ns.max(dur_ns);
            if tracing {
                l.events.push(TraceEvent {
                    cat: self.cat,
                    name: self.name,
                    ph: 'X',
                    ts_ns: self.start_ns,
                    dur_ns,
                    tid: l.tid,
                    track: l.track,
                    sim: self.sim,
                });
            }
            l.bump();
        });
    }
}

/// Opens a span; it records when dropped.
pub fn span(cat: &'static str, name: &'static str) -> Span {
    Span { cat, name, start_ns: now_ns(), sim: None }
}

/// Restores the previous track when dropped (see [`enter_track`]).
/// The default guard restores [`UNTRACKED`].
#[derive(Debug, Default)]
pub struct TrackGuard {
    prev: u32,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        with_local(|l| l.track = self.prev);
    }
}

/// Registers (or finds) a track by name and returns its id. Ids are
/// assigned in registration order starting at 1.
pub fn register_track(name: &str) -> u32 {
    let mut tracks = lock(&registry().tracks);
    if let Some(i) = tracks.iter().position(|t| t == name) {
        return i as u32 + 1;
    }
    tracks.push(name.to_string());
    tracks.len() as u32
}

/// Attributes telemetry from this thread to `track` until the guard drops.
pub fn enter_track(track: u32) -> TrackGuard {
    with_local(|l| {
        let prev = l.track;
        l.track = track;
        TrackGuard { prev }
    })
}

/// Convenience: [`register_track`] + [`enter_track`].
pub fn track(name: &str) -> TrackGuard {
    enter_track(register_track(name))
}

/// The track currently attributed on this thread (for propagation into
/// worker threads — see `minipool`).
pub fn current_track() -> u32 {
    with_local(|l| l.track)
}

/// Starts recording trace events, keeping at most `capacity` of them
/// (further events are dropped and counted). Idempotent; the capacity of
/// the first enablement wins.
pub fn enable_tracing(capacity: usize) {
    let reg = registry();
    {
        let mut trace = lock(&reg.trace);
        if trace.capacity == 0 {
            trace.capacity = capacity;
            trace.events.reserve(capacity.min(1 << 16));
        }
    }
    reg.tracing.store(true, Ordering::Release);
}

/// Whether trace events are being recorded.
pub fn tracing_enabled() -> bool {
    registry().tracing.load(Ordering::Acquire)
}

/// Flushes this thread's buffered telemetry into the global registry.
/// Worker threads flush automatically when they exit; the main thread must
/// call this (or [`snapshot`], which does) before exporting.
pub fn flush() {
    with_local(|l| l.flush());
}

/// Takes every recorded trace event out of the global buffer, plus the
/// count of events dropped at capacity. Flushes the calling thread first.
pub fn take_events() -> (Vec<TraceEvent>, u64) {
    flush();
    let mut trace = lock(&registry().trace);
    let dropped = trace.dropped;
    trace.dropped = 0;
    (std::mem::take(&mut trace.events), dropped)
}

/// One counter in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name.
    pub name: &'static str,
    /// Owning track id.
    pub track: u32,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Histogram name.
    pub name: &'static str,
    /// Owning track id.
    pub track: u32,
    /// Edges and bucket counts.
    pub hist: Hist,
}

/// One span aggregate in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Owning track id.
    pub track: u32,
    /// The aggregate.
    pub agg: SpanAgg,
}

/// A deterministic-ordered view of everything aggregated so far.
///
/// Ordering is by `(category, name, track)` regardless of the hash-map
/// iteration order underneath, so rendered tables are stable run to run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, sorted by `(name, track)`.
    pub counters: Vec<CounterStat>,
    /// All histograms, sorted by `(name, track)`.
    pub hists: Vec<HistStat>,
    /// All span aggregates, sorted by `(category, name, track)`.
    pub spans: Vec<SpanStat>,
    /// Registered track names; track id `i + 1` is `tracks[i]`.
    pub tracks: Vec<String>,
}

impl Snapshot {
    /// The name of a track id (`"-"` for [`UNTRACKED`] or unknown ids).
    pub fn track_name(&self, track: u32) -> &str {
        if track == UNTRACKED {
            return "-";
        }
        self.tracks.get(track as usize - 1).map(String::as_str).unwrap_or("-")
    }

    /// Sum of a counter across all tracks.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.name == name).map(|c| c.value).sum()
    }

    /// A snapshot restricted to one track.
    pub fn for_track(&self, track: u32) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().filter(|c| c.track == track).cloned().collect(),
            hists: self.hists.iter().filter(|h| h.track == track).cloned().collect(),
            spans: self.spans.iter().filter(|s| s.track == track).cloned().collect(),
            tracks: self.tracks.clone(),
        }
    }

    /// A snapshot with every track merged per name (track ids become
    /// [`UNTRACKED`]).
    pub fn totals(&self) -> Snapshot {
        let mut counters: HashMap<&'static str, u64> = HashMap::new();
        for c in &self.counters {
            *counters.entry(c.name).or_insert(0) += c.value;
        }
        let mut hists: HashMap<&'static str, Hist> = HashMap::new();
        for h in &self.hists {
            hists.entry(h.name).or_insert_with(|| Hist::new(h.hist.edges)).merge(&h.hist);
        }
        let mut spans: HashMap<(&'static str, &'static str), SpanAgg> = HashMap::new();
        for s in &self.spans {
            spans.entry((s.cat, s.name)).or_default().merge(&s.agg);
        }
        let mut snap = Snapshot {
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterStat { name, track: UNTRACKED, value })
                .collect(),
            hists: hists
                .into_iter()
                .map(|(name, hist)| HistStat { name, track: UNTRACKED, hist })
                .collect(),
            spans: spans
                .into_iter()
                .map(|((cat, name), agg)| SpanStat { cat, name, track: UNTRACKED, agg })
                .collect(),
            tracks: self.tracks.clone(),
        };
        snap.sort();
        snap
    }

    fn sort(&mut self) {
        self.counters.sort_by_key(|c| (c.name, c.track));
        self.hists.sort_by_key(|h| (h.name, h.track));
        self.spans.sort_by_key(|s| (s.cat, s.name, s.track));
    }
}

/// Captures a deterministic-ordered snapshot of every aggregate. Flushes
/// the calling thread first; other threads' unflushed buffers are *not*
/// visible until they flush (worker threads flush on exit).
pub fn snapshot() -> Snapshot {
    flush();
    let reg = registry();
    let agg = lock(&reg.agg);
    let mut snap = Snapshot {
        counters: agg
            .counters
            .iter()
            .map(|(&(name, track), &value)| CounterStat { name, track, value })
            .collect(),
        hists: agg
            .hists
            .iter()
            .map(|(&(name, track), hist)| HistStat { name, track, hist: hist.clone() })
            .collect(),
        spans: agg
            .spans
            .iter()
            .map(|(&((cat, name), track), &agg)| SpanStat { cat, name, track, agg })
            .collect(),
        tracks: lock(&reg.tracks).clone(),
    };
    snap.sort();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorts() {
        count("test.lib.counter_a", 2);
        count("test.lib.counter_a", 3);
        count("test.lib.counter_b", 1);
        let snap = snapshot();
        assert!(snap.counter("test.lib.counter_a") >= 5);
        assert!(snap.counter("test.lib.counter_b") >= 1);
        let names: Vec<_> = snap.counters.iter().map(|c| (c.name, c.track)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot order must be deterministic");
    }

    #[test]
    fn histogram_buckets_by_inclusive_edge() {
        const EDGES: &[u64] = &[10, 100, 1000];
        assert_eq!(Hist::bucket_of(EDGES, 0), 0);
        assert_eq!(Hist::bucket_of(EDGES, 10), 0, "edges are inclusive upper bounds");
        assert_eq!(Hist::bucket_of(EDGES, 11), 1);
        assert_eq!(Hist::bucket_of(EDGES, 100), 1);
        assert_eq!(Hist::bucket_of(EDGES, 1000), 2);
        assert_eq!(Hist::bucket_of(EDGES, 1001), 3, "overflow bucket");

        for v in [0, 10, 11, 100, 1000, 5000] {
            record("test.lib.hist", EDGES, v);
        }
        let snap = snapshot();
        let h = snap.hists.iter().find(|h| h.name == "test.lib.hist").expect("recorded");
        assert_eq!(h.hist.counts.len(), EDGES.len() + 1);
        assert!(h.hist.total() >= 6);
        assert!(h.hist.counts[3] >= 1, "5000 lands in the overflow bucket");
    }

    #[test]
    fn record_bucketed_matches_per_observation_recording() {
        const EDGES: &[u64] = &[0, 1, 2, 4, 8];
        let observations = [0u64, 0, 1, 3, 9, 2, 0, 8];
        for v in observations {
            record("test.lib.bucketed_ref", EDGES, v);
        }
        let mut counts = vec![0u64; EDGES.len() + 1];
        for v in observations {
            counts[Hist::bucket_of(EDGES, v)] += 1;
        }
        record_bucketed("test.lib.bucketed", EDGES, &counts);
        // All-zero counts are a no-op, like making no record calls.
        record_bucketed("test.lib.bucketed_empty", EDGES, &vec![0; EDGES.len() + 1]);
        let snap = snapshot();
        let get = |name: &str| snap.hists.iter().find(|h| h.name == name).map(|h| h.hist.clone());
        assert_eq!(get("test.lib.bucketed"), get("test.lib.bucketed_ref"));
        assert_eq!(get("test.lib.bucketed_empty"), None);
    }

    #[test]
    fn spans_nest_and_both_record() {
        {
            let _outer = span("test", "lib.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = span("test", "lib.inner");
        }
        let snap = snapshot();
        let get = |name: &str| {
            snap.spans.iter().filter(|s| s.name == name).fold(SpanAgg::default(), |mut acc, s| {
                acc.merge(&s.agg);
                acc
            })
        };
        let outer = get("lib.outer");
        let inner = get("lib.inner");
        assert!(outer.count >= 1 && inner.count >= 1);
        assert!(
            outer.max_ns >= inner.max_ns,
            "an inner span cannot outlast the outer one enclosing it"
        );
        assert!(outer.max_ns >= 2_000_000, "outer span covers the sleep");
    }

    #[test]
    fn tracks_attribute_and_restore() {
        let id = register_track("test-track-attr");
        assert_eq!(register_track("test-track-attr"), id, "registration is idempotent");
        let before = current_track();
        {
            let _g = enter_track(id);
            assert_eq!(current_track(), id);
            count("test.lib.tracked", 7);
            {
                let _g2 = track("test-track-nested");
                assert_ne!(current_track(), id);
            }
            assert_eq!(current_track(), id, "nested guard restores");
        }
        assert_eq!(current_track(), before);
        let snap = snapshot();
        let mine = snap.for_track(id);
        assert!(mine.counter("test.lib.tracked") >= 7);
        assert_eq!(snap.track_name(id), "test-track-attr");
        assert!(snap.totals().counter("test.lib.tracked") >= 7);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let id = register_track("test-track-worker");
        std::thread::spawn(move || {
            let _g = enter_track(id);
            count("test.lib.worker", 11);
            // No explicit flush: the TLS destructor must do it.
        })
        .join()
        .unwrap();
        let snap = snapshot();
        assert!(snap.for_track(id).counter("test.lib.worker") >= 11);
    }

    #[test]
    fn tracing_records_span_and_instant_events() {
        enable_tracing(1 << 16);
        {
            let mut s = span("test", "lib.traced");
            s.sim_range(1_000, 9_000);
        }
        instant("test", "test.lib.fault");
        let (events, _) = take_events();
        assert!(events
            .iter()
            .any(|e| e.name == "lib.traced" && e.ph == 'X' && e.sim == Some((1_000, 9_000))));
        assert!(events.iter().any(|e| e.name == "test.lib.fault" && e.ph == 'i'));
    }
}
