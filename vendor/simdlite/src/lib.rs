//! Explicit-lane kernels for the attack's hot loops, on stable Rust.
//!
//! Nightly `std::simd` is off the table (the workspace builds on stable),
//! so these kernels spell the data-parallel shape out as fixed-width
//! four-lane chunks over plain arrays — the form LLVM's autovectorizer
//! reliably turns into packed SSE2/NEON arithmetic. No intrinsics, no
//! `unsafe`, no feature detection: just loops whose trip counts and lane
//! structure are compile-time constants.
//!
//! # The lane summation order is part of the contract
//!
//! Floating-point addition is not associative, so *which order* a reduction
//! adds its terms decides the final bits. Every kernel here accumulates
//! into four lanes — lane `j` takes elements `j`, `j+4`, `j+8`, … with a
//! zero-padded tail (adding `+0.0` to a non-negative lane sum is exact) —
//! and reduces with the fixed tree `(l0 + l1) + (l2 + l3)`. Callers that
//! need bit-identical results across code paths (the classifier's pruned
//! scan vs. its naive oracle, batched vs. per-delta classification) get
//! them by routing *every* path through these kernels: same order, same
//! bits. A proptest in the consumer crate pins the kernels against a
//! plain-scalar reference implementing the same order.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Lane count of the chunked kernels. Four `f64` lanes map to two SSE2
/// registers or one AVX register; the autovectorizer picks whatever the
/// target offers.
pub const LANES: usize = 4;

/// A four-lane `f64` accumulator with a fixed reduction tree.
///
/// This is deliberately *not* a general SIMD vector type: it exists so the
/// kernels below can accumulate lane-wise and reduce deterministically,
/// and so tests can reference the exact reduction order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct F64x4(pub [f64; LANES]);

impl F64x4 {
    /// All lanes zero.
    pub const ZERO: F64x4 = F64x4([0.0; LANES]);

    /// Every lane set to `v`.
    #[inline]
    pub fn splat(v: f64) -> Self {
        F64x4([v; LANES])
    }

    /// Horizontal sum with the fixed tree `(l0 + l1) + (l2 + l3)`.
    ///
    /// The tree — not a left-to-right fold — is the documented reduction
    /// order every consumer relies on for bit-exact cross-path equality.
    #[inline]
    pub fn hsum(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }
}

/// Accumulates one four-element chunk of the weighted squared distance:
/// `lanes[j] += ((a[j] - b[j]) * w[j])^2`.
#[inline(always)]
fn wsq_accumulate(lanes: &mut F64x4, a: &[f64; LANES], b: &[f64; LANES], w: &[f64; LANES]) {
    for j in 0..LANES {
        let d = (a[j] - b[j]) * w[j];
        lanes.0[j] += d * d;
    }
}

/// Loads a four-element chunk from `s` starting at `base`, zero-padding
/// past the end. Zero-padded lanes contribute `((0-0)*0)^2 = +0.0` to a
/// non-negative accumulator — an exact no-op.
#[inline(always)]
fn load_padded(s: &[f64], base: usize) -> [f64; LANES] {
    let mut out = [0.0; LANES];
    let take = LANES.min(s.len() - base);
    out[..take].copy_from_slice(&s[base..base + take]);
    out
}

/// [`weighted_sq_dist`] over fixed-length arrays. The chunk count and tail
/// length are compile-time constants, so the loop fully unrolls with no
/// bounds checks — this is the form the classifier's hot loops call with
/// `N = NUM_TRACKED`. Bit-identical to the slice kernel on equal inputs:
/// the summation order is the same (the slice kernel's zero-padded tail
/// lanes contribute exact `+0.0`s).
#[inline]
pub fn weighted_sq_dist_fixed<const N: usize>(a: &[f64; N], b: &[f64; N], w: &[f64; N]) -> f64 {
    let mut lanes = F64x4::ZERO;
    let mut base = 0;
    while base + LANES <= N {
        for j in 0..LANES {
            let d = (a[base + j] - b[base + j]) * w[base + j];
            lanes.0[j] += d * d;
        }
        base += LANES;
    }
    for j in 0..(N % LANES) {
        let d = (a[base + j] - b[base + j]) * w[base + j];
        lanes.0[j] += d * d;
    }
    lanes.hsum()
}

/// [`weighted_sq_dist_pruned`] over fixed-length arrays; see
/// [`weighted_sq_dist_fixed`] for why the fixed form exists. Same early-exit
/// contract and bit-identical completions.
#[inline]
pub fn weighted_sq_dist_pruned_fixed<const N: usize>(
    a: &[f64; N],
    b: &[f64; N],
    w: &[f64; N],
    cutoff: f64,
) -> Option<f64> {
    let mut lanes = F64x4::ZERO;
    let mut base = 0;
    while base + LANES <= N {
        for j in 0..LANES {
            let d = (a[base + j] - b[base + j]) * w[base + j];
            lanes.0[j] += d * d;
        }
        base += LANES;
        if lanes.hsum() >= cutoff {
            return None;
        }
    }
    for j in 0..(N % LANES) {
        let d = (a[base + j] - b[base + j]) * w[base + j];
        lanes.0[j] += d * d;
    }
    let acc = lanes.hsum();
    if acc >= cutoff {
        return None;
    }
    Some(acc)
}

/// Squared Euclidean distance `Σ (a_i - b_i)^2` over fixed-length arrays,
/// for callers that pre-scale ("whiten") their vectors once outside the
/// scan loop instead of re-multiplying weights on every candidate. Same
/// lane structure and summation order as [`weighted_sq_dist_fixed`]; with
/// unit weights the two are bit-identical (multiplying by `1.0` is exact).
#[inline]
pub fn sq_dist_fixed<const N: usize>(a: &[f64; N], b: &[f64; N]) -> f64 {
    let mut lanes = F64x4::ZERO;
    let mut base = 0;
    while base + LANES <= N {
        for j in 0..LANES {
            let d = a[base + j] - b[base + j];
            lanes.0[j] += d * d;
        }
        base += LANES;
    }
    for j in 0..(N % LANES) {
        let d = a[base + j] - b[base + j];
        lanes.0[j] += d * d;
    }
    lanes.hsum()
}

/// [`sq_dist_fixed`] with the same partial-distance early exit as
/// [`weighted_sq_dist_pruned_fixed`]: after each four-lane chunk the running
/// horizontal sum is checked against `cutoff`. Completions are bit-identical
/// to [`sq_dist_fixed`]; pruned candidates would have finished at or above
/// `cutoff` anyway (non-negative terms, monotone accumulation).
#[inline]
pub fn sq_dist_pruned_fixed<const N: usize>(
    a: &[f64; N],
    b: &[f64; N],
    cutoff: f64,
) -> Option<f64> {
    let mut lanes = F64x4::ZERO;
    let mut base = 0;
    while base + LANES <= N {
        for j in 0..LANES {
            let d = a[base + j] - b[base + j];
            lanes.0[j] += d * d;
        }
        base += LANES;
        if lanes.hsum() >= cutoff {
            return None;
        }
    }
    for j in 0..(N % LANES) {
        let d = a[base + j] - b[base + j];
        lanes.0[j] += d * d;
    }
    let acc = lanes.hsum();
    if acc >= cutoff {
        return None;
    }
    Some(acc)
}

/// Weighted squared Euclidean distance `Σ ((a_i - b_i) * w_i)^2`, chunked
/// four lanes at a time with the crate's documented summation order.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn weighted_sq_dist(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    assert!(a.len() == b.len() && a.len() == w.len(), "kernel inputs must be equal-length");
    let mut lanes = F64x4::ZERO;
    let mut base = 0;
    while base + LANES <= a.len() {
        wsq_accumulate(
            &mut lanes,
            a[base..base + LANES].try_into().expect("chunk is LANES long"),
            b[base..base + LANES].try_into().expect("chunk is LANES long"),
            w[base..base + LANES].try_into().expect("chunk is LANES long"),
        );
        base += LANES;
    }
    if base < a.len() {
        wsq_accumulate(
            &mut lanes,
            &load_padded(a, base),
            &load_padded(b, base),
            &load_padded(w, base),
        );
    }
    lanes.hsum()
}

/// [`weighted_sq_dist`] with partial-distance early exit: after each
/// four-lane chunk the running horizontal sum is compared against `cutoff`,
/// and the scan aborts with `None` once it can no longer come in below.
///
/// Correctness of the per-chunk exit: every term is non-negative and both
/// lane accumulation and the `hsum` tree are monotone in their operands, so
/// the running sum never decreases across chunks. A candidate whose running
/// sum has reached `cutoff` therefore finishes at or above it.
///
/// When the scan completes, the returned value is **bit-identical** to
/// [`weighted_sq_dist`] on the same inputs — the per-chunk checks only read
/// the accumulator. Pruned candidates would have failed a `< cutoff` test
/// on the full sum anyway (monotonicity again), so replacing a full scan
/// with this one never changes which candidate a caller selects.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn weighted_sq_dist_pruned(a: &[f64], b: &[f64], w: &[f64], cutoff: f64) -> Option<f64> {
    assert!(a.len() == b.len() && a.len() == w.len(), "kernel inputs must be equal-length");
    let mut lanes = F64x4::ZERO;
    let mut base = 0;
    while base + LANES <= a.len() {
        wsq_accumulate(
            &mut lanes,
            a[base..base + LANES].try_into().expect("chunk is LANES long"),
            b[base..base + LANES].try_into().expect("chunk is LANES long"),
            w[base..base + LANES].try_into().expect("chunk is LANES long"),
        );
        base += LANES;
        if lanes.hsum() >= cutoff {
            return None;
        }
    }
    if base < a.len() {
        wsq_accumulate(
            &mut lanes,
            &load_padded(a, base),
            &load_padded(b, base),
            &load_padded(w, base),
        );
    }
    let acc = lanes.hsum();
    if acc >= cutoff {
        return None;
    }
    Some(acc)
}

/// Squared Euclidean norm `Σ v_i^2` over a fixed-length array — the same
/// lane structure and reduction tree as [`sq_dist_fixed`] against an
/// all-zero vector (subtracting `0.0` from a finite value is exact, so the
/// two are bit-identical). Callers use it to precompute `‖v‖` for
/// triangle-inequality prescreens outside their scan loops.
#[inline]
pub fn sq_norm_fixed<const N: usize>(v: &[f64; N]) -> f64 {
    let mut lanes = F64x4::ZERO;
    let mut base = 0;
    while base + LANES <= N {
        for j in 0..LANES {
            let x = v[base + j];
            lanes.0[j] += x * x;
        }
        base += LANES;
    }
    for j in 0..(N % LANES) {
        let x = v[base + j];
        lanes.0[j] += x * x;
    }
    lanes.hsum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain-scalar reference spelling out the documented order: lane `j`
    /// takes elements `j, j+4, …` (zero-padded), reduced `(l0+l1)+(l2+l3)`.
    fn reference(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
        let mut lanes = [0.0f64; LANES];
        for i in 0..a.len() {
            let d = (a[i] - b[i]) * w[i];
            lanes[i % LANES] += d * d;
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    #[test]
    fn matches_scalar_reference_bitwise() {
        for len in 0..13 {
            let a: Vec<f64> = (0..len).map(|i| (i as f64) * 1.7 + 0.3).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64) * -0.9 + 11.0).collect();
            let w: Vec<f64> = (0..len).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            assert_eq!(
                weighted_sq_dist(&a, &b, &w).to_bits(),
                reference(&a, &b, &w).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn fixed_kernels_match_slice_kernels_bitwise() {
        let a = [3.0, -1.0, 7.5, 0.25, 9.0, 2.0, 1.0, 0.5, 4.0, 6.0, 8.0];
        let b = [1.0, 2.0, -3.5, 0.75, 3.0, 2.5, 0.0, 1.5, 2.0, 5.0, 7.0];
        let w = [1.0, 0.5, 2.0, 1.5, 0.25, 1.0, 3.0, 0.75, 1.0, 0.5, 2.0];
        let slice = weighted_sq_dist(&a, &b, &w);
        assert_eq!(weighted_sq_dist_fixed(&a, &b, &w).to_bits(), slice.to_bits());
        assert_eq!(
            weighted_sq_dist_pruned_fixed(&a, &b, &w, f64::INFINITY).map(f64::to_bits),
            weighted_sq_dist_pruned(&a, &b, &w, f64::INFINITY).map(f64::to_bits),
        );
        assert_eq!(weighted_sq_dist_pruned_fixed(&a, &b, &w, slice), None, "acc == cutoff prunes");
        assert_eq!(weighted_sq_dist_pruned_fixed(&a, &b, &w, 0.5), None, "chunk already over");
        // Exact-multiple-of-LANES length (empty tail) and short lengths.
        let a4 = [2.0, 3.0, 4.0, 5.0];
        let b4 = [1.0; 4];
        let w4 = [0.5; 4];
        assert_eq!(
            weighted_sq_dist_fixed(&a4, &b4, &w4).to_bits(),
            weighted_sq_dist(&a4, &b4, &w4).to_bits()
        );
        let a2 = [7.0, -2.0];
        assert_eq!(
            weighted_sq_dist_fixed(&a2, &a2, &[1.0; 2]).to_bits(),
            weighted_sq_dist(&a2, &a2, &[1.0; 2]).to_bits()
        );
    }

    #[test]
    fn unweighted_kernels_match_unit_weight_kernels_bitwise() {
        let a = [3.0, -1.0, 7.5, 0.25, 9.0, 2.0, 1.0, 0.5, 4.0, 6.0, 8.0];
        let b = [1.0, 2.0, -3.5, 0.75, 3.0, 2.5, 0.0, 1.5, 2.0, 5.0, 7.0];
        let ones = [1.0; 11];
        let weighted = weighted_sq_dist(&a, &b, &ones);
        assert_eq!(sq_dist_fixed(&a, &b).to_bits(), weighted.to_bits());
        assert_eq!(
            sq_dist_pruned_fixed(&a, &b, f64::INFINITY).map(f64::to_bits),
            Some(weighted.to_bits())
        );
        assert_eq!(sq_dist_pruned_fixed(&a, &b, weighted), None, "acc == cutoff prunes");
        assert_eq!(sq_dist_pruned_fixed(&a, &b, 1.0), None, "first chunk already over");
    }

    #[test]
    fn pruned_completion_is_bit_identical() {
        let a = [3.0, -1.0, 7.5, 0.25, 9.0, 2.0, 1.0, 0.5, 4.0, 6.0, 8.0];
        let b = [1.0, 2.0, -3.5, 0.75, 3.0, 2.5, 0.0, 1.5, 2.0, 5.0, 7.0];
        let w = [1.0, 0.5, 2.0, 1.5, 0.25, 1.0, 3.0, 0.75, 1.0, 0.5, 2.0];
        let full = weighted_sq_dist(&a, &b, &w);
        let pruned = weighted_sq_dist_pruned(&a, &b, &w, f64::INFINITY).expect("no cutoff");
        assert_eq!(full.to_bits(), pruned.to_bits());
    }

    #[test]
    fn pruned_aborts_at_or_above_cutoff() {
        let a = [10.0; 11];
        let b = [0.0; 11];
        let w = [1.0; 11];
        let full = weighted_sq_dist(&a, &b, &w); // 1100
        assert_eq!(weighted_sq_dist_pruned(&a, &b, &w, full), None, "acc == cutoff prunes");
        assert_eq!(weighted_sq_dist_pruned(&a, &b, &w, 1.0), None, "first chunk already over");
        assert_eq!(
            weighted_sq_dist_pruned(&a, &b, &w, full + 1.0),
            Some(full),
            "cutoff above the full sum completes"
        );
    }

    #[test]
    fn zero_length_inputs_sum_to_zero() {
        assert_eq!(weighted_sq_dist(&[], &[], &[]), 0.0);
        assert_eq!(weighted_sq_dist_pruned(&[], &[], &[], 1.0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = weighted_sq_dist(&[1.0], &[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn hsum_uses_the_documented_tree() {
        // Values chosen so (l0+l1)+(l2+l3) differs in bits from a
        // left-to-right fold — pins the reduction tree itself.
        let v = F64x4([1e16, 1.0, -1e16, 1.0]);
        let tree = (1e16f64 + 1.0) + (-1e16 + 1.0);
        let fold = ((1e16f64 + 1.0) + -1e16) + 1.0;
        assert_eq!(v.hsum().to_bits(), tree.to_bits());
        assert_ne!(tree.to_bits(), fold.to_bits(), "test inputs must discriminate the orders");
    }

    #[test]
    fn sq_norm_matches_distance_from_origin_bitwise() {
        let v = [3.0, -1.0, 7.5, 0.25, 9.0, 2.0, 1.0, 0.5, 4.0, 6.0, 8.0];
        let zeros = [0.0; 11];
        assert_eq!(sq_norm_fixed(&v).to_bits(), sq_dist_fixed(&v, &zeros).to_bits());
        let v4 = [2.0, 3.0, 4.0, 5.0];
        assert_eq!(sq_norm_fixed(&v4).to_bits(), sq_dist_fixed(&v4, &[0.0; 4]).to_bits());
        assert_eq!(sq_norm_fixed::<0>(&[]), 0.0);
    }
}
