//! Desktop typing scenes and CUPTI-style coarse features.
//!
//! The baseline the paper compares against (Table 2) is the desktop-GPU
//! attack of Naghibijouybari et al.: sample *workload-level* counters
//! (utilisation, active cycles, memory throughput) every 10 ms through
//! CUPTI and classify keypresses from them. Workload counters aggregate the
//! whole frame, so the per-key component is a tiny residual on top of a
//! large, noisy baseline — which is exactly why the paper finds the
//! approach ineffective for keystrokes.
//!
//! We reproduce that measurement model: frames are rendered by the same
//! deterministic pipeline, then collapsed into four coarse aggregates with
//! measurement noise (sampling-window truncation, DVFS clock wander,
//! desktop-compositor background work) whose magnitudes dwarf the per-key
//! residual. The noise model is the honest substitute for a real RTX 2070 +
//! CUPTI stack (see DESIGN.md §1).

use adreno_sim::counters::TrackedCounter;
use adreno_sim::geom::Rect;
use adreno_sim::model::GpuModel;
use adreno_sim::pipeline::render;
use adreno_sim::scene::DrawList;
use rand::Rng;
use std::fmt;

/// The three desktop typing targets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesktopScene {
    /// The gedit text editor.
    Gedit,
    /// The Gmail login page in Chrome.
    GmailWeb,
    /// The Dropbox client's login fields.
    DropboxClient,
}

/// All Table 2 scenes, in column order.
pub const TABLE2_SCENES: [DesktopScene; 3] =
    [DesktopScene::Gedit, DesktopScene::GmailWeb, DesktopScene::DropboxClient];

impl DesktopScene {
    /// Column label used in Table 2.
    pub const fn name(self) -> &'static str {
        match self {
            DesktopScene::Gedit => "gedit",
            DesktopScene::GmailWeb => "Gmail web",
            DesktopScene::DropboxClient => "Dropbox client",
        }
    }

    /// Amount of window chrome (toolbar rows etc.), distinct per scene.
    const fn chrome_rows(self) -> i32 {
        match self {
            DesktopScene::Gedit => 2,
            DesktopScene::GmailWeb => 5,
            DesktopScene::DropboxClient => 3,
        }
    }

    /// Builds the frame rendered when character `c` is typed at column
    /// `pos`. Desktop toolkits use damage tracking: only the edited text
    /// line redraws (plus a little scene-specific chrome that invalidates
    /// with it, e.g. the browser's caret row), and the new glyph is echoed
    /// as real character strokes, not dots.
    pub fn typing_frame(self, c: char, pos: usize) -> DrawList {
        let w = 1920;
        let mut dl = DrawList::new(w, 1080);
        let line = dl.layer("text-line");
        let line_y = 400;
        // Scene-specific invalidation overhead.
        line.quad(
            Rect::from_xywh(60, line_y - self.chrome_rows() * 8, w - 120, self.chrome_rows() * 8),
            true,
        );
        line.quad(Rect::from_xywh(60, line_y, w - 120, 36), true);
        // Previously typed characters on the damaged line …
        for i in 0..pos.min(80) {
            let x = 70 + (i as i32) * 20;
            line.quad(Rect::from_xywh(x, line_y + 6, 14, 24), false);
        }
        // … and the newly echoed glyph.
        let x = 70 + (pos.min(80) as i32) * 20;
        line.glyph(c, Rect::from_xywh(x, line_y + 4, 16, 28), 2);
        dl
    }
}

impl fmt::Display for DesktopScene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of coarse features per keypress observation.
pub const COARSE_DIMS: usize = 4;

/// Collapses one typing frame into CUPTI-style coarse features with
/// measurement noise:
///
/// 0. GPU active cycles in the sampling window (± window truncation),
/// 1. shaded-pixel throughput (± DVFS wander),
/// 2. primitive throughput (± compositor background work),
/// 3. busy-time estimate, correlated with feature 0.
pub fn keypress_features<R: Rng + ?Sized>(
    scene: DesktopScene,
    c: char,
    pos: usize,
    rng: &mut R,
) -> Vec<f64> {
    let out = render(&scene.typing_frame(c, pos), &GpuModel::Adreno650.params());
    let t = out.totals;
    let cycles = out.total_cycles as f64;
    let pixels = t[TrackedCounter::LrzVisiblePixelAfterLrz] as f64;
    let prims = t[TrackedCounter::VpcPcPrimitives] as f64;

    // Measurement noise floors: the per-key residual on `pixels` is a few
    // counts; window truncation alone wobbles the aggregates by O(1%) of a
    // frame, orders of magnitude more.
    let n = |rng: &mut R, scale: f64| -> f64 {
        // Box–Muller normal.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let window_trunc = n(rng, cycles * 0.008);
    let dvfs = n(rng, pixels * 0.010);
    // Compositor interference is spiky, not Gaussian: mostly quiet with
    // occasional bursts (another window animating). The heavy tail inflates
    // a Gaussian model's fitted variance, which is why tree ensembles cope
    // best with this feature.
    let compositor = if rng.gen_range(0.0..1.0) < 0.15 { n(rng, 7.0) } else { n(rng, 1.0) };
    let busy = cycles + window_trunc + n(rng, cycles * 0.004);
    vec![cycles + window_trunc, pixels + dvfs, prims + compositor, busy]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scenes_have_distinct_costs() {
        let cost = |s: DesktopScene| {
            render(&s.typing_frame('a', 0), &GpuModel::Adreno650.params()).totals.total()
        };
        assert_ne!(cost(DesktopScene::Gedit), cost(DesktopScene::GmailWeb));
        assert_ne!(cost(DesktopScene::GmailWeb), cost(DesktopScene::DropboxClient));
    }

    #[test]
    fn per_key_residual_exists_but_is_small() {
        let p = GpuModel::Adreno650.params();
        let a = render(&DesktopScene::Gedit.typing_frame('w', 4), &p).totals.total();
        let b = render(&DesktopScene::Gedit.typing_frame('i', 4), &p).totals.total();
        assert_ne!(a, b, "different glyphs must differ");
        let rel = (a as f64 - b as f64).abs() / a as f64;
        assert!(rel < 0.01, "the per-key residual must be tiny: {rel}");
    }

    #[test]
    fn position_dominates_the_signal() {
        let p = GpuModel::Adreno650.params();
        let short = render(&DesktopScene::Gedit.typing_frame('a', 0), &p).totals.total();
        let long = render(&DesktopScene::Gedit.typing_frame('a', 40), &p).totals.total();
        let key_diff = {
            let x = render(&DesktopScene::Gedit.typing_frame('w', 0), &p).totals.total();
            (x as i64 - short as i64).unsigned_abs()
        };
        assert!(long - short > key_diff * 5, "line length must dwarf per-key differences");
    }

    #[test]
    fn features_have_the_right_shape_and_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let f1 = keypress_features(DesktopScene::GmailWeb, 'x', 3, &mut rng);
        let f2 = keypress_features(DesktopScene::GmailWeb, 'x', 3, &mut rng);
        assert_eq!(f1.len(), COARSE_DIMS);
        assert_ne!(f1, f2, "measurement noise must vary");
    }
}
