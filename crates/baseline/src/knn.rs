//! k-nearest-neighbours, from scratch (the paper's "KNN3").

/// A fitted kNN classifier (it memorises the training set).
///
/// # Examples
///
/// ```
/// use baseline::knn::Knn;
///
/// let data = vec![
///     (vec![0.0], 0), (vec![0.2], 0),
///     (vec![9.8], 1), (vec![10.0], 1),
/// ];
/// let knn = Knn::fit(3, &data);
/// assert_eq!(knn.predict(&[0.1]), 0);
/// assert_eq!(knn.predict(&[9.9]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    data: Vec<(Vec<f64>, usize)>,
}

impl Knn {
    /// Stores the training set.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `data` is empty.
    pub fn fit(k: usize, data: &[(Vec<f64>, usize)]) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(!data.is_empty(), "need training data");
        Knn { k, data: data.to_vec() }
    }

    /// Predicts by majority vote of the `k` nearest training points
    /// (Euclidean), ties broken by the nearest member of the tied classes.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut dists: Vec<(f64, usize)> = self
            .data
            .iter()
            .map(|(t, y)| {
                let d: f64 = t.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, *y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let k = self.k.min(dists.len());
        let neighbours = &dists[..k];
        // Count votes; remember each class's best (smallest) distance.
        let mut votes: Vec<(usize, usize, f64)> = Vec::new(); // (class, count, best_dist)
        for &(d, y) in neighbours {
            match votes.iter_mut().find(|(c, _, _)| *c == y) {
                Some(v) => {
                    v.1 += 1;
                    if d < v.2 {
                        v.2 = d;
                    }
                }
                None => votes.push((y, 1, d)),
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| {
                a.1.cmp(&b.1).then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
            })
            .map(|(c, _, _)| c)
            .expect("k >= 1 guarantees one vote")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_wins() {
        let data = vec![(vec![0.0], 0), (vec![0.1], 0), (vec![0.2], 1), (vec![50.0], 1)];
        let knn = Knn::fit(3, &data);
        // Neighbours of 0.05: two class-0, one class-1.
        assert_eq!(knn.predict(&[0.05]), 0);
    }

    #[test]
    fn tie_broken_by_nearest() {
        let data = vec![(vec![0.0], 0), (vec![1.0], 1)];
        let knn = Knn::fit(2, &data);
        assert_eq!(knn.predict(&[0.2]), 0);
        assert_eq!(knn.predict(&[0.8]), 1);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let data = vec![(vec![0.0], 7)];
        let knn = Knn::fit(5, &data);
        assert_eq!(knn.predict(&[123.0]), 7);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Knn::fit(0, &[(vec![0.0], 0)]);
    }
}
