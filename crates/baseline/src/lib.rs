//! # baseline — the coarse GPU-workload keystroke attack (Table 2)
//!
//! Reproduces the comparison baseline of §7.1: the desktop-GPU attack style
//! of Naghibijouybari et al. (CCS'18), which samples *workload-level*
//! counters (utilisation, active cycles, throughput) and classifies
//! keypresses with standard ML. The paper shows this approach fails for
//! keystrokes (<14 % accuracy) because a key press changes the GPU workload
//! only marginally; this crate reproduces both the measurement model and
//! the three classifiers.
//!
//! * [`scenes`] — gedit / Gmail web / Dropbox typing scenes and the
//!   CUPTI-style coarse feature extraction;
//! * [`nb`], [`knn`], [`forest`] — from-scratch Gaussian Naive Bayes, kNN
//!   and random forest;
//! * [`harness`] — the Table 2 protocol.
//!
//! ```
//! use baseline::harness::{table2_cell, BaselineAlgo, Protocol};
//! use baseline::scenes::DesktopScene;
//!
//! let p = Protocol { train_reps: 2, test_reps: 2, seed: 1 };
//! let acc = table2_cell(DesktopScene::Gedit, BaselineAlgo::Knn3, p);
//! assert!(acc < 0.5, "the baseline must be weak");
//! ```

pub mod forest;
pub mod harness;
pub mod knn;
pub mod nb;
pub mod scenes;

pub use forest::{ForestConfig, RandomForest};
pub use harness::{table2_cell, BaselineAlgo, Protocol, BASELINE_CHARSET, TABLE2_ALGOS};
pub use knn::Knn;
pub use nb::GaussianNb;
pub use scenes::{keypress_features, DesktopScene, COARSE_DIMS, TABLE2_SCENES};
