//! Gaussian Naive Bayes, from scratch.

use std::collections::BTreeMap;

/// A fitted Gaussian Naive Bayes classifier over `f64` feature vectors with
/// `usize` class labels.
///
/// # Examples
///
/// ```
/// use baseline::nb::GaussianNb;
///
/// let data = vec![
///     (vec![0.0, 0.1], 0),
///     (vec![0.1, 0.0], 0),
///     (vec![5.0, 5.1], 1),
///     (vec![5.1, 4.9], 1),
/// ];
/// let nb = GaussianNb::fit(&data);
/// assert_eq!(nb.predict(&[0.05, 0.05]), 0);
/// assert_eq!(nb.predict(&[5.0, 5.0]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Per class: (prior log-probability, per-feature mean, per-feature var).
    classes: BTreeMap<usize, (f64, Vec<f64>, Vec<f64>)>,
    dims: usize,
}

/// Variance floor to keep degenerate (constant) features from producing
/// infinite likelihoods.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Fits the classifier.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or feature vectors disagree in length.
    pub fn fit(data: &[(Vec<f64>, usize)]) -> Self {
        assert!(!data.is_empty(), "need training data");
        let dims = data[0].0.len();
        let n = data.len() as f64;
        let mut by_class: BTreeMap<usize, Vec<&Vec<f64>>> = BTreeMap::new();
        for (x, y) in data {
            assert_eq!(x.len(), dims, "inconsistent feature dimensions");
            by_class.entry(*y).or_default().push(x);
        }
        let mut classes = BTreeMap::new();
        for (y, xs) in by_class {
            let m = xs.len() as f64;
            let prior = (m / n).ln();
            let mut mean = vec![0.0; dims];
            for x in &xs {
                for (i, v) in x.iter().enumerate() {
                    mean[i] += v / m;
                }
            }
            let mut var = vec![0.0; dims];
            for x in &xs {
                for (i, v) in x.iter().enumerate() {
                    var[i] += (v - mean[i]).powi(2) / m;
                }
            }
            for v in &mut var {
                *v = v.max(VAR_FLOOR);
            }
            classes.insert(y, (prior, mean, var));
        }
        GaussianNb { classes, dims }
    }

    /// Predicts the most likely class of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s length differs from the training dimensionality.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.dims, "feature dimension mismatch");
        let mut best = (usize::MAX, f64::NEG_INFINITY);
        for (y, (prior, mean, var)) in &self.classes {
            let mut ll = *prior;
            for i in 0..self.dims {
                let d = x[i] - mean[i];
                ll += -0.5 * ((2.0 * std::f64::consts::PI * var[i]).ln() + d * d / var[i]);
            }
            if ll > best.1 {
                best = (*y, ll);
            }
        }
        best.0
    }

    /// Number of classes seen in training.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_classes_classify_perfectly() {
        let mut data = Vec::new();
        for i in 0..20 {
            data.push((vec![i as f64 * 0.01, 1.0], 0));
            data.push((vec![10.0 + i as f64 * 0.01, 1.0], 1));
            data.push((vec![20.0 + i as f64 * 0.01, 1.0], 2));
        }
        let nb = GaussianNb::fit(&data);
        assert_eq!(nb.class_count(), 3);
        assert_eq!(nb.predict(&[0.05, 1.0]), 0);
        assert_eq!(nb.predict(&[10.05, 1.0]), 1);
        assert_eq!(nb.predict(&[20.05, 1.0]), 2);
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let data = vec![(vec![1.0], 0), (vec![1.0], 0), (vec![2.0], 1), (vec![2.0], 1)];
        let nb = GaussianNb::fit(&data);
        assert_eq!(nb.predict(&[1.0]), 0);
        assert_eq!(nb.predict(&[2.0]), 1);
    }

    #[test]
    fn priors_break_ties() {
        // Identical likelihoods → the larger class wins.
        let data = vec![(vec![0.0], 0), (vec![0.0], 0), (vec![0.0], 0), (vec![0.0], 1)];
        let nb = GaussianNb::fit(&data);
        assert_eq!(nb.predict(&[0.0]), 0);
    }

    #[test]
    #[should_panic(expected = "need training data")]
    fn empty_fit_panics() {
        let _ = GaussianNb::fit(&[]);
    }
}
