//! A random forest (bagged CART trees with random feature subsets), from
//! scratch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One node of a CART tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf(usize),
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A single decision tree grown with Gini impurity.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn majority(rows: &[usize], labels: &[usize], n_classes: usize) -> usize {
    let mut counts = vec![0usize; n_classes];
    for &r in rows {
        counts[labels[r]] += 1;
    }
    counts.iter().enumerate().max_by_key(|(_, c)| **c).map(|(i, _)| i).unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn grow(
    rows: &[usize],
    xs: &[Vec<f64>],
    ys: &[usize],
    n_classes: usize,
    depth: usize,
    max_depth: usize,
    min_leaf: usize,
    n_features_try: usize,
    rng: &mut StdRng,
) -> Node {
    let first = ys[rows[0]];
    if depth >= max_depth || rows.len() <= min_leaf || rows.iter().all(|&r| ys[r] == first) {
        return Node::Leaf(majority(rows, ys, n_classes));
    }
    let dims = xs[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
                                                    // Random feature subset (the "random" in random forest).
    let mut features: Vec<usize> = (0..dims).collect();
    for i in (1..features.len()).rev() {
        features.swap(i, rng.gen_range(0..=i));
    }
    features.truncate(n_features_try.max(1).min(dims));

    for &f in &features {
        let mut values: Vec<f64> = rows.iter().map(|&r| xs[r][f]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        // Candidate thresholds: midpoints of up to 16 quantile gaps.
        let step = (values.len() / 16).max(1);
        for w in values.windows(2).step_by(step) {
            let thr = (w[0] + w[1]) / 2.0;
            let mut lc = vec![0usize; n_classes];
            let mut rc = vec![0usize; n_classes];
            let (mut ln, mut rn) = (0usize, 0usize);
            for &r in rows {
                if xs[r][f] <= thr {
                    lc[ys[r]] += 1;
                    ln += 1;
                } else {
                    rc[ys[r]] += 1;
                    rn += 1;
                }
            }
            if ln == 0 || rn == 0 {
                continue;
            }
            let imp = (ln as f64 * gini(&lc, ln) + rn as f64 * gini(&rc, rn)) / rows.len() as f64;
            if best.is_none() || imp < best.unwrap().2 {
                best = Some((f, thr, imp));
            }
        }
    }
    let Some((f, thr, _)) = best else {
        return Node::Leaf(majority(rows, ys, n_classes));
    };
    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| xs[r][f] <= thr);
    if left_rows.is_empty() || right_rows.is_empty() {
        return Node::Leaf(majority(rows, ys, n_classes));
    }
    Node::Split {
        feature: f,
        threshold: thr,
        left: Box::new(grow(
            &left_rows,
            xs,
            ys,
            n_classes,
            depth + 1,
            max_depth,
            min_leaf,
            n_features_try,
            rng,
        )),
        right: Box::new(grow(
            &right_rows,
            xs,
            ys,
            n_classes,
            depth + 1,
            max_depth,
            min_leaf,
            n_features_try,
            rng,
        )),
    }
}

impl DecisionTree {
    fn predict(&self, x: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(c) => return *c,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_leaf: usize,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { n_trees: 80, max_depth: 16, min_leaf: 2, seed: 0 }
    }
}

/// A fitted random forest.
///
/// # Examples
///
/// ```
/// use baseline::forest::{ForestConfig, RandomForest};
///
/// let mut data = Vec::new();
/// for i in 0..30 {
///     data.push((vec![i as f64 * 0.01, 0.0], 0));
///     data.push((vec![5.0 + i as f64 * 0.01, 0.0], 1));
/// }
/// let rf = RandomForest::fit(&data, ForestConfig::default());
/// assert_eq!(rf.predict(&[0.1, 0.0]), 0);
/// assert_eq!(rf.predict(&[5.1, 0.0]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits the forest: each tree trains on a bootstrap sample using
    /// `sqrt(dims)` random features per split.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &[(Vec<f64>, usize)], config: ForestConfig) -> Self {
        assert!(!data.is_empty(), "need training data");
        let xs: Vec<Vec<f64>> = data.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<usize> = data.iter().map(|(_, y)| *y).collect();
        let n_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        let dims = xs[0].len();
        let n_try = (dims as f64).sqrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            let rows: Vec<usize> = (0..xs.len()).map(|_| rng.gen_range(0..xs.len())).collect();
            let root = grow(
                &rows,
                &xs,
                &ys,
                n_classes,
                0,
                config.max_depth,
                config.min_leaf,
                n_try,
                &mut rng,
            );
            trees.push(DecisionTree { root });
        }
        RandomForest { trees, n_classes }
    }

    /// Predicts by majority vote over the trees.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(x)] += 1;
        }
        votes.iter().enumerate().max_by_key(|(_, v)| **v).map(|(i, _)| i).unwrap_or(0)
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn learns_xor_which_stumps_naive_bayes() {
        // XOR needs interaction between features — a forest handles it.
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Vec::new();
        for _ in 0..200 {
            let a = rng.gen_range(0.0..1.0_f64);
            let b = rng.gen_range(0.0..1.0_f64);
            let label = usize::from((a > 0.5) ^ (b > 0.5));
            data.push((vec![a, b], label));
        }
        let rf = RandomForest::fit(&data, ForestConfig::default());
        let mut correct = 0;
        for _ in 0..200 {
            let a = rng.gen_range(0.0..1.0_f64);
            let b = rng.gen_range(0.0..1.0_f64);
            let label = usize::from((a > 0.5) ^ (b > 0.5));
            if rf.predict(&[a, b]) == label {
                correct += 1;
            }
        }
        assert!(correct > 180, "forest should learn XOR, got {correct}/200");
    }

    #[test]
    fn deterministic_for_seed() {
        let data: Vec<(Vec<f64>, usize)> =
            (0..40).map(|i| (vec![i as f64], usize::from(i >= 20))).collect();
        let a = RandomForest::fit(&data, ForestConfig { seed: 9, ..Default::default() });
        let b = RandomForest::fit(&data, ForestConfig { seed: 9, ..Default::default() });
        for i in 0..40 {
            assert_eq!(a.predict(&[i as f64]), b.predict(&[i as f64]));
        }
        assert_eq!(a.tree_count(), 80);
    }

    #[test]
    fn single_class_always_predicts_it() {
        let data = vec![(vec![1.0], 3), (vec![2.0], 3)];
        let rf = RandomForest::fit(&data, ForestConfig { n_trees: 5, ..Default::default() });
        assert_eq!(rf.predict(&[7.0]), 3);
    }
}
