//! The Table 2 harness: train and evaluate the coarse-counter baseline.
//!
//! Mirrors the paper's §7.1 comparison protocol: a bot types each character
//! repeatedly (interval 0.5 s, 10 times) into gedit / Gmail web / the
//! Dropbox client; collected coarse-counter traces are fed to Naive Bayes,
//! kNN-3 and a random forest; accuracy is reported per scene.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

use crate::forest::{ForestConfig, RandomForest};
use crate::knn::Knn;
use crate::nb::GaussianNb;
use crate::scenes::{keypress_features, DesktopScene};

/// The Table 2 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineAlgo {
    NaiveBayes,
    Knn3,
    RandomForest,
}

/// All algorithms in the table's row order.
pub const TABLE2_ALGOS: [BaselineAlgo; 3] =
    [BaselineAlgo::NaiveBayes, BaselineAlgo::Knn3, BaselineAlgo::RandomForest];

impl BaselineAlgo {
    /// Row label as printed in Table 2.
    pub const fn name(self) -> &'static str {
        match self {
            BaselineAlgo::NaiveBayes => "Naive Bayers", // sic — the paper's spelling
            BaselineAlgo::Knn3 => "KNN3",
            BaselineAlgo::RandomForest => "Random Forest",
        }
    }
}

impl fmt::Display for BaselineAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Characters the bot types (lowercase + digits, as in the paper's bot
/// runs).
pub const BASELINE_CHARSET: &str = "abcdefghijklmnopqrstuvwxyz0123456789";

/// Protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Protocol {
    /// Repetitions per character in the training pass (the paper types each
    /// input 10 times).
    pub train_reps: usize,
    /// Repetitions per character in the held-out evaluation pass.
    pub test_reps: usize,
    pub seed: u64,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol { train_reps: 10, test_reps: 10, seed: 0 }
    }
}

/// A fitted per-algorithm prediction function.
type Predictor = Box<dyn Fn(&[f64]) -> usize>;

fn collect<R: Rng + ?Sized>(
    scene: DesktopScene,
    reps: usize,
    rng: &mut R,
) -> Vec<(Vec<f64>, usize)> {
    let chars: Vec<char> = BASELINE_CHARSET.chars().collect();
    let mut data = Vec::with_capacity(chars.len() * reps);
    for _ in 0..reps {
        for (label, &c) in chars.iter().enumerate() {
            // The bot clears the field between trials (login fields reset
            // after each attempt), so every press echoes at column 0.
            let pos = 0;
            data.push((keypress_features(scene, c, pos, rng), label));
        }
    }
    data
}

/// Standardises features to zero mean / unit variance using the training
/// statistics (the usual preprocessing; without it kNN's Euclidean metric
/// is dominated by the largest-magnitude counter).
fn standardize(train: &mut [(Vec<f64>, usize)], test: &mut [(Vec<f64>, usize)]) {
    let dims = train[0].0.len();
    let n = train.len() as f64;
    let mut mean = vec![0.0; dims];
    for (x, _) in train.iter() {
        for i in 0..dims {
            mean[i] += x[i] / n;
        }
    }
    let mut std = vec![0.0; dims];
    for (x, _) in train.iter() {
        for i in 0..dims {
            std[i] += (x[i] - mean[i]).powi(2) / n;
        }
    }
    for s in &mut std {
        *s = s.sqrt().max(1e-9);
    }
    for (x, _) in train.iter_mut().chain(test.iter_mut()) {
        for i in 0..dims {
            x[i] = (x[i] - mean[i]) / std[i];
        }
    }
}

/// Runs one cell of Table 2: trains `algo` on `scene` and returns held-out
/// accuracy in `0.0..=1.0`.
pub fn table2_cell(scene: DesktopScene, algo: BaselineAlgo, protocol: Protocol) -> f64 {
    let mut rng = StdRng::seed_from_u64(protocol.seed ^ (scene as u64) << 8);
    let mut train = collect(scene, protocol.train_reps, &mut rng);
    let mut test = collect(scene, protocol.test_reps, &mut rng);
    standardize(&mut train, &mut test);
    let predict: Predictor = match algo {
        BaselineAlgo::NaiveBayes => {
            let m = GaussianNb::fit(&train);
            Box::new(move |x| m.predict(x))
        }
        BaselineAlgo::Knn3 => {
            let m = Knn::fit(3, &train);
            Box::new(move |x| m.predict(x))
        }
        BaselineAlgo::RandomForest => {
            let m = RandomForest::fit(
                &train,
                ForestConfig { seed: protocol.seed, ..Default::default() },
            );
            Box::new(move |x| m.predict(x))
        }
    };
    let correct = test.iter().filter(|(x, y)| predict(x) == *y).count();
    correct as f64 / test.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fast smoke versions; the full Table 2 runs in the experiments binary.
    fn quick() -> Protocol {
        Protocol { train_reps: 4, test_reps: 4, seed: 7 }
    }

    #[test]
    fn baseline_is_weak_but_above_chance() {
        let acc = table2_cell(DesktopScene::Gedit, BaselineAlgo::RandomForest, quick());
        let chance = 1.0 / BASELINE_CHARSET.len() as f64;
        assert!(acc < 0.25, "the baseline must be ineffective, got {acc}");
        assert!(acc > chance * 0.5, "but not totally degenerate, got {acc}");
    }

    #[test]
    fn all_cells_are_low() {
        for scene in crate::scenes::TABLE2_SCENES {
            for algo in TABLE2_ALGOS {
                let acc = table2_cell(scene, algo, quick());
                assert!(acc < 0.3, "{algo} on {scene}: {acc} should be <0.3");
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = table2_cell(DesktopScene::GmailWeb, BaselineAlgo::NaiveBayes, quick());
        let b = table2_cell(DesktopScene::GmailWeb, BaselineAlgo::NaiveBayes, quick());
        assert_eq!(a, b);
    }
}
