//! Device and screen configuration.
//!
//! The paper evaluates six phone models (§7.5), two screen resolutions, two
//! refresh rates and four Android versions. A [`DeviceConfig`] bundles the
//! combination; the attack trains one classifier model per distinct
//! configuration (§3.2).

use adreno_sim::model::GpuModel;
use adreno_sim::time::SimDuration;
use std::fmt;

/// Screen resolution presets evaluated in Fig 24(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resolution {
    /// FHD+ 2376×1080 (default on the OnePlus 8 Pro).
    Fhd,
    /// QHD+ 3168×1440.
    Qhd,
}

impl Resolution {
    /// Screen width in pixels (portrait).
    pub const fn width(self) -> i32 {
        match self {
            Resolution::Fhd => 1080,
            Resolution::Qhd => 1440,
        }
    }

    /// Screen height in pixels (portrait).
    pub const fn height(self) -> i32 {
        match self {
            Resolution::Fhd => 2376,
            Resolution::Qhd => 3168,
        }
    }

    /// Marketing name.
    pub const fn name(self) -> &'static str {
        match self {
            Resolution::Fhd => "FHD+ (2376x1080)",
            Resolution::Qhd => "QHD+ (3168x1440)",
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Screen refresh rates evaluated in §7.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RefreshRate {
    Hz60,
    Hz120,
}

impl RefreshRate {
    /// Frames per second.
    pub const fn hz(self) -> u64 {
        match self {
            RefreshRate::Hz60 => 60,
            RefreshRate::Hz120 => 120,
        }
    }

    /// The vsync interval.
    pub const fn frame_interval(self) -> SimDuration {
        SimDuration::from_nanos(1_000_000_000 / self.hz())
    }
}

impl fmt::Display for RefreshRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Hz", self.hz())
    }
}

/// Android OS versions evaluated in Fig 24(d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AndroidVersion {
    V8_1,
    V9,
    V10,
    V11,
}

impl AndroidVersion {
    /// The version string, e.g. `"11"`.
    pub const fn name(self) -> &'static str {
        match self {
            AndroidVersion::V8_1 => "8.1",
            AndroidVersion::V9 => "9",
            AndroidVersion::V10 => "10",
            AndroidVersion::V11 => "11",
        }
    }
}

impl fmt::Display for AndroidVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The smartphone models of §7.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhoneModel {
    LgV30Plus,
    GooglePixel2,
    OnePlus7Pro,
    OnePlus8Pro,
    OnePlus9,
    GalaxyS21,
}

/// All evaluated phone models.
pub const ALL_PHONES: [PhoneModel; 6] = [
    PhoneModel::LgV30Plus,
    PhoneModel::GooglePixel2,
    PhoneModel::OnePlus7Pro,
    PhoneModel::OnePlus8Pro,
    PhoneModel::OnePlus9,
    PhoneModel::GalaxyS21,
];

impl PhoneModel {
    /// The GPU in this phone (paper §7.5).
    pub const fn gpu(self) -> GpuModel {
        match self {
            PhoneModel::LgV30Plus | PhoneModel::GooglePixel2 => GpuModel::Adreno540,
            PhoneModel::OnePlus7Pro => GpuModel::Adreno640,
            PhoneModel::OnePlus8Pro => GpuModel::Adreno650,
            PhoneModel::OnePlus9 | PhoneModel::GalaxyS21 => GpuModel::Adreno660,
        }
    }

    /// The Android version the paper tested the phone with.
    pub const fn shipped_android(self) -> AndroidVersion {
        match self {
            PhoneModel::LgV30Plus => AndroidVersion::V9,
            PhoneModel::GooglePixel2 => AndroidVersion::V10,
            PhoneModel::OnePlus7Pro
            | PhoneModel::OnePlus8Pro
            | PhoneModel::OnePlus9
            | PhoneModel::GalaxyS21 => AndroidVersion::V11,
        }
    }

    /// Marketing name.
    pub const fn name(self) -> &'static str {
        match self {
            PhoneModel::LgV30Plus => "LG V30+",
            PhoneModel::GooglePixel2 => "Google Pixel 2",
            PhoneModel::OnePlus7Pro => "OnePlus 7 Pro",
            PhoneModel::OnePlus8Pro => "OnePlus 8 Pro",
            PhoneModel::OnePlus9 => "OnePlus 9",
            PhoneModel::GalaxyS21 => "Samsung Galaxy S21",
        }
    }
}

impl fmt::Display for PhoneModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete device configuration: everything the attack must train a
/// separate classifier for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceConfig {
    pub phone: PhoneModel,
    pub android: AndroidVersion,
    pub resolution: Resolution,
    pub refresh: RefreshRate,
}

impl DeviceConfig {
    /// The paper's primary evaluation device: OnePlus 8 Pro, Android 11,
    /// FHD+, 60 Hz.
    pub fn oneplus8pro() -> Self {
        DeviceConfig {
            phone: PhoneModel::OnePlus8Pro,
            android: AndroidVersion::V11,
            resolution: Resolution::Fhd,
            refresh: RefreshRate::Hz60,
        }
    }

    /// Creates a config for a phone with its shipped Android version, FHD+
    /// at 60 Hz.
    pub fn for_phone(phone: PhoneModel) -> Self {
        DeviceConfig {
            phone,
            android: phone.shipped_android(),
            resolution: Resolution::Fhd,
            refresh: RefreshRate::Hz60,
        }
    }

    /// The GPU model in this configuration.
    pub fn gpu(&self) -> GpuModel {
        self.phone.gpu()
    }

    /// Screen width in pixels.
    pub fn width(&self) -> i32 {
        self.resolution.width()
    }

    /// Screen height in pixels.
    pub fn height(&self) -> i32 {
        self.resolution.height()
    }

    /// A small per-version UI offset: different Android releases draw the
    /// status bar and keyboard chrome at slightly different sizes, which
    /// shifts absolute counter values between OS versions (Fig 24d) without
    /// changing the attack.
    pub fn ui_scale_offset(&self) -> i32 {
        match self.android {
            AndroidVersion::V8_1 => 0,
            AndroidVersion::V9 => 2,
            AndroidVersion::V10 => 4,
            AndroidVersion::V11 => 6,
        }
    }
}

impl fmt::Display for DeviceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / Android {} / {} / {}",
            self.phone, self.android, self.resolution, self.refresh
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phones_map_to_paper_gpus() {
        assert_eq!(PhoneModel::LgV30Plus.gpu(), GpuModel::Adreno540);
        assert_eq!(PhoneModel::GooglePixel2.gpu(), GpuModel::Adreno540);
        assert_eq!(PhoneModel::OnePlus7Pro.gpu(), GpuModel::Adreno640);
        assert_eq!(PhoneModel::OnePlus8Pro.gpu(), GpuModel::Adreno650);
        assert_eq!(PhoneModel::OnePlus9.gpu(), GpuModel::Adreno660);
        assert_eq!(PhoneModel::GalaxyS21.gpu(), GpuModel::Adreno660);
    }

    #[test]
    fn refresh_intervals() {
        assert_eq!(RefreshRate::Hz60.frame_interval().as_millis(), 16);
        assert_eq!(RefreshRate::Hz120.frame_interval().as_micros(), 8_333);
    }

    #[test]
    fn resolutions_match_fig24b() {
        assert_eq!(Resolution::Fhd.width(), 1080);
        assert_eq!(Resolution::Fhd.height(), 2376);
        assert_eq!(Resolution::Qhd.width(), 1440);
        assert_eq!(Resolution::Qhd.height(), 3168);
    }

    #[test]
    fn default_config_is_the_papers_device() {
        let c = DeviceConfig::oneplus8pro();
        assert_eq!(c.gpu(), GpuModel::Adreno650);
        assert_eq!(c.to_string(), "OnePlus 8 Pro / Android 11 / FHD+ (2376x1080) / 60Hz");
    }

    #[test]
    fn ui_offsets_differ_across_versions() {
        let mut offs: Vec<i32> =
            [AndroidVersion::V8_1, AndroidVersion::V9, AndroidVersion::V10, AndroidVersion::V11]
                .into_iter()
                .map(|v| {
                    DeviceConfig { android: v, ..DeviceConfig::oneplus8pro() }.ui_scale_offset()
                })
                .collect();
        offs.dedup();
        assert_eq!(offs.len(), 4);
    }
}
