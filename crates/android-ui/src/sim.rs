//! The discrete-event UI simulation.
//!
//! [`UiSimulation`] owns the GPU, the shared clock, the KGSL device file and
//! the three windows (app, keyboard, status bar). It consumes timed input
//! events, renders damaged windows at vsync boundaries, and maintains the
//! ground truth an attack's output is scored against.
//!
//! The attack never touches this struct's internals: it only holds the
//! [`kgsl::KgslDevice`] handle and calls [`UiSimulation::advance_to`] to let
//! simulated time pass between counter reads — the analogue of `sleep()`
//! between `ioctl()` calls on a real phone.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use adreno_sim::counters::{CounterSet, TrackedCounter};
use adreno_sim::gpu::Gpu;
use adreno_sim::time::{SharedClock, SimDuration, SimInstant};
use kgsl::{KgslDevice, ObfuscationConfig, Obfuscator};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apps::{LoginScreen, TargetApp};
use crate::compositor::{
    draw_notification_shade, draw_other_app_frame, draw_switch_frame, KeyboardWindow, StatusBar,
};
use crate::events::{GroundTruth, TimedEvent, TruthKind, UiEvent};
use crate::keyboard::{Key, KeyboardKind};
use crate::screen::DeviceConfig;

/// How long a popup lingers after the key is released before hiding.
const POPUP_LINGER: SimDuration = SimDuration::from_millis(80);
/// Cursor blink half-period (on 0.5 s, off 0.5 s — §5.3).
const BLINK_INTERVAL: SimDuration = SimDuration::from_millis(500);
/// Frames in each half of the app-switch animation.
const SWITCH_FRAMES: u32 = 6;
/// Probability that a system-noise redraw is popup-like (an IME long-press
/// hint or emoji bubble) rather than a plain toast.
const NOISE_POPUP_LIKE_P: f64 = 0.35;

/// Full configuration of a simulated victim device session.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub device: DeviceConfig,
    pub keyboard: KeyboardKind,
    pub app: TargetApp,
    /// RNG seed: every stochastic element (popup animation duplication,
    /// system noise, other-app content, GPU load jitter) derives from it.
    pub seed: u64,
    /// Target utilisation of a background GPU workload, `0.0..=1.0`
    /// (Fig 22b).
    pub gpu_load: f64,
    /// Background CPU utilisation, `0.0..=1.0`. The simulation itself does
    /// not consume CPU; the attack's sampler reads this to model read
    /// jitter (Fig 22a).
    pub cpu_load: f64,
    /// Mean rate of random system-noise redraws (toasts, IME hints), in
    /// events per second.
    pub system_noise_hz: f64,
    /// §9.1 mitigation: set `false` to disable key-press popups.
    pub popups_enabled: bool,
    /// Start the session in some other app; the target app only appears
    /// once a [`UiEvent::LaunchTargetApp`] event fires (§3.2's launch
    /// detection scenario). Defaults to `false` (already on the login
    /// screen).
    pub start_in_other: bool,
    /// §9.3 mitigation: OS-level decoy workload injection.
    pub obfuscation: Option<ObfuscationConfig>,
}

impl SimConfig {
    /// The paper's default bench: Chase app, GBoard, OnePlus 8 Pro, light
    /// ambient system noise, no extra load, no mitigations.
    pub fn paper_default(seed: u64) -> Self {
        SimConfig {
            device: DeviceConfig::oneplus8pro(),
            keyboard: KeyboardKind::Gboard,
            app: TargetApp::Chase,
            seed,
            gpu_load: 0.0,
            cpu_load: 0.0,
            system_noise_hz: 0.05,
            popups_enabled: true,
            start_in_other: false,
            obfuscation: None,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_default(0)
    }
}

/// Where the user currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AppState {
    InTarget,
    SwitchingAway { frames_left: u32 },
    InOther,
    SwitchingBack { frames_left: u32 },
}

#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    at: SimInstant,
    seq: u64,
    event: UiEvent,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Damage {
    keyboard: bool,
    /// Full app-window redraw (launch, switch-back, shade close).
    app_full: bool,
    /// Field-region-only redraw (echo, backspace, cursor blink).
    field: bool,
    status: bool,
    shade: bool,
    other: bool,
}

/// The victim device simulation.
///
/// # Examples
///
/// ```
/// use adreno_sim::time::{SimDuration, SimInstant};
/// use android_ui::keyboard::Key;
/// use android_ui::sim::{SimConfig, UiSimulation};
///
/// let mut sim = UiSimulation::new(SimConfig::default());
/// // The victim taps 'w' 100 ms in, holding it for 90 ms.
/// sim.tap_key(SimInstant::from_millis(100), Key::Char('w'), SimDuration::from_millis(90));
/// sim.advance_to(SimInstant::from_millis(600));
/// assert_eq!(sim.truth().final_text(), "w");
/// assert!(sim.frames_submitted() >= 3, "popup, echo and hide frames");
/// ```
#[derive(Debug)]
pub struct UiSimulation {
    config: SimConfig,
    gpu: Arc<Mutex<Gpu>>,
    clock: SharedClock,
    device: Arc<KgslDevice>,
    rng: StdRng,
    queue: BinaryHeap<QueuedEvent>,
    next_seq: u64,

    keyboard: KeyboardWindow,
    login: LoginScreen,
    status: StatusBar,

    processed_until: SimInstant,
    next_vsync: SimInstant,
    next_blink: SimInstant,
    next_noise: Option<SimInstant>,

    app_state: AppState,
    text: Vec<char>,
    cursor_visible: bool,
    damage: Damage,
    /// Extra identical popup frames still owed by the entry animation
    /// (the duplication factor).
    popup_extra_frames: u32,
    /// Monotonic popup generation; guards stale PopupHide events.
    popup_gen: u64,
    /// Press-down timestamps per key (taps may interleave).
    pending_presses: Vec<(Key, SimInstant)>,

    obfuscator: Option<Obfuscator>,
    truth: GroundTruth,
    frames_submitted: u64,
}

impl UiSimulation {
    /// Builds a fresh victim device in the target app's login screen.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_load` or `cpu_load` are outside `0.0..=1.0`.
    pub fn new(config: SimConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.gpu_load), "gpu_load must be in 0..=1");
        assert!((0.0..=1.0).contains(&config.cpu_load), "cpu_load must be in 0..=1");
        let gpu = Arc::new(Mutex::new(Gpu::new(config.device.gpu())));
        let clock = SharedClock::new();
        let device = Arc::new(KgslDevice::new(Arc::clone(&gpu), clock.clone()));
        let keyboard = KeyboardWindow::new(config.keyboard, &config.device, config.popups_enabled);
        let login = LoginScreen::new(config.app, &config.device);
        let status = StatusBar::new(&config.device);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let next_noise = if config.system_noise_hz > 0.0 {
            Some(SimInstant::ZERO + exp_gap(&mut rng, config.system_noise_hz))
        } else {
            None
        };
        let obfuscator = config
            .obfuscation
            .clone()
            .map(|cfg| Obfuscator::new(cfg, config.seed.wrapping_add(0x0bf5)));
        let frame_interval = config.device.refresh.frame_interval();
        let start_in_other = config.start_in_other;
        UiSimulation {
            config,
            gpu,
            clock,
            device,
            rng,
            queue: BinaryHeap::new(),
            next_seq: 0,
            keyboard,
            login,
            status,
            processed_until: SimInstant::ZERO,
            next_vsync: SimInstant::ZERO + frame_interval,
            next_blink: SimInstant::ZERO + BLINK_INTERVAL,
            next_noise,
            app_state: if start_in_other { AppState::InOther } else { AppState::InTarget },
            text: Vec::new(),
            cursor_visible: true,
            // Render the initial screen on the first frame: the login
            // screen + keyboard when starting in the target app, otherwise
            // a frame of the other app.
            damage: Damage {
                keyboard: !start_in_other,
                app_full: !start_in_other,
                field: false,
                status: true,
                shade: false,
                other: start_in_other,
            },
            popup_extra_frames: 0,
            popup_gen: 0,
            pending_presses: Vec::new(),
            obfuscator,
            truth: GroundTruth::new(),
            frames_submitted: 0,
        }
    }

    /// The simulation's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The KGSL device file the attack reads through.
    pub fn device(&self) -> &Arc<KgslDevice> {
        &self.device
    }

    /// The shared simulation clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// The GPU (shared with the device file).
    pub fn gpu(&self) -> &Arc<Mutex<Gpu>> {
        &self.gpu
    }

    /// Reuse counters of the GPU's incremental frame renderers.
    ///
    /// Each window's per-vsync submissions flow through the GPU's
    /// per-viewport [`adreno_sim::incremental::FrameRenderer`]s, so
    /// consecutive damaged frames of one surface (keyboard with/without a
    /// popup, app window growing by one echo glyph) only recompute the
    /// changed layers.
    pub fn incremental_stats(&self) -> adreno_sim::incremental::IncrementalStats {
        self.gpu.lock().incremental_stats()
    }

    /// Simulated time processed so far.
    pub fn now(&self) -> SimInstant {
        self.processed_until
    }

    /// Ground truth recorded so far.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Frames submitted to the GPU so far.
    pub fn frames_submitted(&self) -> u64 {
        self.frames_submitted
    }

    /// Queues one event.
    ///
    /// # Panics
    ///
    /// Panics if the event time is before [`UiSimulation::now`].
    pub fn queue(&mut self, ev: TimedEvent) {
        assert!(ev.at >= self.processed_until, "cannot queue an event in the past");
        self.queue.push(QueuedEvent { at: ev.at, seq: self.next_seq, event: ev.event });
        self.next_seq += 1;
    }

    /// Queues many events.
    pub fn queue_all<I: IntoIterator<Item = TimedEvent>>(&mut self, events: I) {
        for e in events {
            self.queue(e);
        }
    }

    /// Convenience: queues a full key tap (down at `at`, up after
    /// `duration`).
    pub fn tap_key(&mut self, at: SimInstant, key: Key, duration: SimDuration) {
        self.queue(TimedEvent::new(at, UiEvent::KeyDown(key)));
        self.queue(TimedEvent::new(at + duration, UiEvent::KeyUp(key)));
    }

    /// Advances simulated time to `target`, processing every queued event,
    /// vsync, cursor blink and noise source on the way, and finally moves
    /// the shared clock so device-file reads observe the new time.
    pub fn advance_to(&mut self, target: SimInstant) {
        loop {
            let ev_t = self.queue.peek().map(|e| e.at);
            let blink_t = matches!(self.app_state, AppState::InTarget).then_some(self.next_blink);
            let noise_t = self.next_noise;
            let vsync_t = Some(self.next_vsync);

            // Earliest actionable instant; ties resolve events first, then
            // blink, then noise, then the frame.
            let mut best: Option<(SimInstant, u8)> = None;
            for (t, pri) in [(ev_t, 0u8), (blink_t, 1), (noise_t, 2), (vsync_t, 3)]
                .into_iter()
                .filter_map(|(t, p)| t.map(|t| (t, p)))
            {
                if t > target {
                    continue;
                }
                best = match best {
                    None => Some((t, pri)),
                    Some(b) if (t, pri) < b => Some((t, pri)),
                    b => b,
                };
            }
            let Some((t, pri)) = best else { break };
            match pri {
                0 => {
                    let qe = self.queue.pop().expect("peeked");
                    self.handle_event(qe.at, qe.event);
                }
                1 => {
                    self.cursor_visible = !self.cursor_visible;
                    self.damage.field = true;
                    self.next_blink = t + BLINK_INTERVAL;
                }
                2 => {
                    self.fire_system_noise(t);
                    let rate = self.config.system_noise_hz;
                    self.next_noise = Some(t + exp_gap(&mut self.rng, rate));
                }
                _ => {
                    self.do_frame(t);
                    self.next_vsync = t + self.config.device.refresh.frame_interval();
                }
            }
            self.processed_until = t;
        }
        self.processed_until = target;
        if let Some(obf) = &mut self.obfuscator {
            obf.run_until(target, &mut self.gpu.lock());
        }
        self.clock.advance_to(target);
    }

    fn handle_event(&mut self, at: SimInstant, event: UiEvent) {
        match event {
            UiEvent::KeyDown(key) => self.key_down(at, key),
            UiEvent::KeyUp(key) => self.key_up(at, key),
            UiEvent::PopupHide(gen) => {
                // Only the generation that scheduled this hide may act on
                // it: a newer key press owns the popup now.
                if gen == self.popup_gen && self.keyboard.hide_popup() {
                    self.damage.keyboard = true;
                }
            }
            UiEvent::SwitchAway => {
                self.keyboard.hide_popup();
                self.app_state = AppState::SwitchingAway { frames_left: SWITCH_FRAMES };
                self.truth.push(at, TruthKind::SwitchAway);
            }
            UiEvent::SwitchBack => {
                self.app_state = AppState::SwitchingBack { frames_left: SWITCH_FRAMES };
                self.truth.push(at, TruthKind::SwitchBack);
            }
            UiEvent::OtherAppActivity => {
                if matches!(self.app_state, AppState::InOther) {
                    self.damage.other = true;
                }
            }
            UiEvent::LaunchTargetApp => {
                // Cold launch: the login screen and keyboard render from
                // scratch on the next frame.
                self.app_state = AppState::InTarget;
                self.damage.app_full = true;
                self.damage.keyboard = true;
                self.damage.other = false;
                self.next_blink = at + BLINK_INTERVAL;
                self.cursor_visible = true;
                self.truth.push(at, TruthKind::AppLaunch);
            }
            UiEvent::Notification => {
                self.status.add_icon();
                self.damage.status = true;
                self.truth.push(at, TruthKind::Notification);
            }
            UiEvent::ViewNotificationShade => {
                self.damage.shade = true;
                self.truth.push(at, TruthKind::ShadeView);
            }
        }
    }

    fn key_down(&mut self, at: SimInstant, key: Key) {
        if !matches!(self.app_state, AppState::InTarget) {
            return; // keys in other apps are other-app activity, not typing
        }
        match key {
            Key::Char(c) => {
                self.pending_presses.push((key, at));
                if self.keyboard.show_popup(c) {
                    self.popup_gen += 1;
                    self.damage.keyboard = true;
                    let dup_p = self.keyboard.layout().style().dup_probability;
                    self.popup_extra_frames = if self.rng.gen::<f64>() < dup_p { 1 } else { 0 };
                }
            }
            Key::Space => {
                self.pending_presses.push((key, at));
            }
            Key::Shift | Key::PageSwitch => {
                // Switching layouts dismisses any lingering popup — real
                // keyboards never draw a stale popup over the new page.
                if self.keyboard.hide_popup() {
                    self.popup_extra_frames = 0;
                    self.damage.keyboard = true;
                }
                if self.keyboard.apply_page_key(key) {
                    self.damage.keyboard = true;
                    self.truth.push(at, TruthKind::PageChange);
                }
            }
            Key::Backspace | Key::Enter => {}
        }
    }

    fn key_up(&mut self, at: SimInstant, key: Key) {
        if !matches!(self.app_state, AppState::InTarget) {
            return;
        }
        match key {
            Key::Char(c) => {
                let pressed_at = self.take_pending(key, at);
                self.text.push(c);
                self.damage.field = true;
                self.restart_cursor(at);
                self.truth.push(pressed_at, TruthKind::Commit(c));
                if self.keyboard.popup().is_some() {
                    self.queue(TimedEvent::new(
                        at + POPUP_LINGER,
                        UiEvent::PopupHide(self.popup_gen),
                    ));
                }
            }
            Key::Space => {
                let pressed_at = self.take_pending(key, at);
                self.text.push(' ');
                self.damage.field = true;
                self.restart_cursor(at);
                self.truth.push(pressed_at, TruthKind::Commit(' '));
            }
            Key::Backspace => {
                if self.text.pop().is_some() {
                    self.damage.field = true;
                    self.restart_cursor(at);
                    self.truth.push(at, TruthKind::Backspace);
                }
            }
            Key::Shift | Key::PageSwitch | Key::Enter => {}
        }
    }

    /// Pops the press-down time of `key` (falls back to `now` if a KeyUp
    /// arrives without its KeyDown).
    fn take_pending(&mut self, key: Key, now: SimInstant) -> SimInstant {
        match self.pending_presses.iter().position(|(k, _)| *k == key) {
            Some(i) => self.pending_presses.remove(i).1,
            None => now,
        }
    }

    /// Android restarts the cursor-blink timer on every text change, so the
    /// cursor stays solid while the user is actively typing.
    fn restart_cursor(&mut self, at: SimInstant) {
        self.cursor_visible = true;
        self.next_blink = at + BLINK_INTERVAL;
    }

    fn fire_system_noise(&mut self, at: SimInstant) {
        let popup_like = self.rng.gen::<f64>() < NOISE_POPUP_LIKE_P
            && matches!(self.app_state, AppState::InTarget)
            && self.config.popups_enabled;
        let dl = if popup_like {
            // An IME hint bubble: geometrically a popup on a random key —
            // the kind of system noise that can fool the classifier into an
            // inserted key press (§7.2's "random system noise").
            let keys = self.keyboard.layout().keys(self.keyboard.page());
            let chars: Vec<char> = keys
                .iter()
                .filter_map(|kg| match kg.key {
                    Key::Char(c) => Some(c),
                    _ => None,
                })
                .collect();
            let c = chars[self.rng.gen_range(0..chars.len())];
            let mut ghost = self.keyboard.clone();
            ghost.show_popup(c);
            ghost.draw()
        } else {
            // A toast of random size somewhere above the keyboard.
            let w = self.config.device.width();
            let tw = self.rng.gen_range(w / 3..w * 9 / 10);
            let th = self.rng.gen_range(80..220);
            let mut dl = adreno_sim::scene::DrawList::new(w, 320);
            dl.layer("toast")
                .quad(adreno_sim::geom::Rect::new((w - tw) / 2, 40, (w + tw) / 2, 40 + th), true);
            dl
        };
        self.submit(&dl, at);
        self.truth.push(at, TruthKind::SystemNoise);
    }

    fn submit(&mut self, dl: &adreno_sim::scene::DrawList, at: SimInstant) {
        self.gpu.lock().submit(dl, at);
        self.frames_submitted += 1;
    }

    fn do_frame(&mut self, t: SimInstant) {
        if let Some(obf) = &mut self.obfuscator {
            obf.run_until(t, &mut self.gpu.lock());
        }
        // Background GPU workload (Fig 22b): a slice of `gpu_load` per frame.
        if self.config.gpu_load > 0.0 {
            let frame_ns = self.config.device.refresh.frame_interval().as_nanos();
            let clock_mhz = self.config.device.gpu().params().clock_mhz as u64;
            let frame_cycles = clock_mhz * frame_ns / 1_000;
            // Real 3D frames vary wildly in cost; the variance is what
            // de-synchronises UI frame completions from the read grid.
            let jitter = self.rng.gen_range(0.1..1.9);
            let cycles = (frame_cycles as f64 * self.config.gpu_load * jitter) as u64;
            if cycles > 0 {
                let counters = external_load_counters(cycles);
                self.gpu.lock().submit_workload(counters, cycles, t);
            }
        }

        match self.app_state {
            AppState::SwitchingAway { frames_left } | AppState::SwitchingBack { frames_left } => {
                let away = matches!(self.app_state, AppState::SwitchingAway { .. });
                let progress = 1.0 - frames_left as f64 / SWITCH_FRAMES as f64;
                let progress = if away { progress } else { 1.0 - progress };
                let dl = draw_switch_frame(&self.config.device, progress);
                self.submit(&dl, t);
                let left = frames_left - 1;
                if left == 0 {
                    if away {
                        self.app_state = AppState::InOther;
                    } else {
                        self.app_state = AppState::InTarget;
                        self.damage.app_full = true;
                        self.damage.keyboard = true;
                        self.next_blink = t + BLINK_INTERVAL;
                    }
                } else if away {
                    self.app_state = AppState::SwitchingAway { frames_left: left };
                } else {
                    self.app_state = AppState::SwitchingBack { frames_left: left };
                }
                return;
            }
            AppState::InOther => {
                if self.damage.other {
                    let dl = draw_other_app_frame(&self.config.device, &mut self.rng);
                    self.submit(&dl, t);
                    self.damage.other = false;
                }
                return;
            }
            AppState::InTarget => {}
        }

        if self.damage.shade {
            let dl = draw_notification_shade(&self.config.device, self.status.icons());
            self.submit(&dl, t);
            self.damage.shade = false;
            // Closing the shade reveals the app again.
            self.damage.app_full = true;
        }
        if self.damage.status {
            let dl = self.status.draw();
            self.submit(&dl, t);
            self.damage.status = false;
        }
        // Animated logins (PNC) redraw at ~40 fps — decorative animations
        // run below the panel rate, which is what leaves the attacker the
        // occasional clean read window (Fig 29).
        let anim_frame = self.config.app.animated_login() && {
            let frame_idx =
                t.as_nanos() / self.config.device.refresh.frame_interval().as_nanos().max(1);
            frame_idx % 3 != 2
        };
        if self.damage.app_full || anim_frame {
            let phase = (t.as_nanos() % 2_000_000_000) as f64 / 2e9;
            let dl = self.login.draw(self.text.len(), self.cursor_visible, phase);
            self.submit(&dl, t);
            self.damage.app_full = false;
            self.damage.field = false; // covered by the full redraw
        } else if self.damage.field {
            let dl = self.login.draw_field_update(self.text.len(), self.cursor_visible);
            self.submit(&dl, t);
            self.damage.field = false;
        }
        if self.damage.keyboard {
            let dl = self.keyboard.draw();
            self.submit(&dl, t);
            // The popup entry animation may owe one more identical frame
            // (duplication, §5.1).
            if self.popup_extra_frames > 0 && self.keyboard.popup().is_some() {
                self.popup_extra_frames -= 1;
                self.damage.keyboard = true;
            } else {
                self.damage.keyboard = false;
            }
        }
    }
}

/// Counter profile of the background GPU workload (Fig 22b).
///
/// The paper's load generator "invokes OpenGL ES APIs to render 3D objects
/// in background": shader/ALU-heavy work that consumes GPU *time* but
/// barely exercises the binning rasteriser, so its footprint in the
/// LRZ/RAS/VPC tile counters is small. The accuracy impact of GPU load
/// comes from *scheduling* — UI frames queue behind load chunks and their
/// observable deltas jitter together — exactly the mechanism §7.3 names
/// ("unable to timely read GPU performance counters").
fn external_load_counters(cycles: u64) -> CounterSet {
    // Shader-bound offscreen work: a few counts of rasteriser activity per
    // megacycle, nothing in the fine-grained tile counters.
    let k = cycles / 1_000_000;
    let mut c = CounterSet::ZERO;
    c[TrackedCounter::RasSupertileActiveCycles] = k * 4;
    c[TrackedCounter::VpcSpComponents] = k;
    c
}

fn exp_gap(rng: &mut StdRng, rate_hz: f64) -> SimDuration {
    let u: f64 = rng.gen_range(1e-9..1.0);
    SimDuration::from_secs_f64((-u.ln() / rate_hz).min(120.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config(seed: u64) -> SimConfig {
        SimConfig { system_noise_hz: 0.0, ..SimConfig::paper_default(seed) }
    }

    fn counters_now(sim: &mut UiSimulation, t: SimInstant) -> CounterSet {
        sim.advance_to(t);
        sim.gpu().lock().counters_at(t)
    }

    #[test]
    fn idle_device_renders_initial_frames_then_blinks_only() {
        let mut sim = UiSimulation::new(quiet_config(1));
        sim.advance_to(SimInstant::from_millis(400));
        let frames_early = sim.frames_submitted();
        assert!(frames_early >= 3, "status + app + keyboard initial frames");
        sim.advance_to(SimInstant::from_millis(2_400));
        // Only cursor blinks after the initial render: 4 blinks in 2s.
        assert_eq!(sim.frames_submitted() - frames_early, 4);
    }

    #[test]
    fn tap_produces_three_counter_changes() {
        // Fig 3: popup appear, echo, popup hide.
        let mut sim = UiSimulation::new(quiet_config(2));
        sim.advance_to(SimInstant::from_millis(450));
        let before = sim.frames_submitted();
        sim.tap_key(SimInstant::from_millis(460), Key::Char('w'), SimDuration::from_millis(90));
        sim.advance_to(SimInstant::from_millis(900));
        let frames = sim.frames_submitted() - before;
        // 3 tap frames (+1 blink at 500ms lands inside the window).
        assert!((3..=5).contains(&frames), "expected ~3 tap frames, got {frames}");
        assert_eq!(sim.truth().final_text(), "w");
    }

    #[test]
    fn identical_taps_produce_identical_popup_deltas() {
        // The core repeatability property: same key → same first change.
        let run = |seed: u64, ch: char| -> CounterSet {
            let mut sim = UiSimulation::new(quiet_config(seed));
            sim.advance_to(SimInstant::from_millis(440));
            let t0 = SimInstant::from_millis(440);
            let before = counters_now(&mut sim, t0);
            sim.tap_key(SimInstant::from_millis(441), Key::Char(ch), SimDuration::from_millis(90));
            // Sample right after the first popup frame (next vsync ≈ 450ms)
            // but before a possible duplicated animation frame (~467ms) and
            // the echo (release at 531ms): the *first* change is the signal.
            let after = counters_now(&mut sim, SimInstant::from_millis(460));
            after - before
        };
        // Seeds differ (different dup rolls) but the *first* popup frame
        // cost is identical.
        assert_eq!(run(10, 'w'), run(99, 'w'));
        assert_ne!(run(10, 'w'), run(10, 'n'));
    }

    #[test]
    fn backspace_decrements_text() {
        let mut sim = UiSimulation::new(quiet_config(3));
        let mut t = SimInstant::from_millis(500);
        for c in "abc".chars() {
            sim.tap_key(t, Key::Char(c), SimDuration::from_millis(80));
            t += SimDuration::from_millis(300);
        }
        sim.tap_key(t, Key::Backspace, SimDuration::from_millis(80));
        sim.advance_to(t + SimDuration::from_millis(500));
        assert_eq!(sim.truth().final_text(), "ab");
        assert_eq!(sim.truth().keystrokes().len(), 3);
    }

    #[test]
    fn echo_visible_prims_move_by_two() {
        // Fig 14: +2 visible prims per committed character.
        let mut sim = UiSimulation::new(quiet_config(4));
        sim.advance_to(SimInstant::from_millis(400));
        let mut prev_echo_delta: Option<u64> = None;
        let mut t = SimInstant::from_millis(410);
        for c in "ab".chars() {
            sim.tap_key(t, Key::Char(c), SimDuration::from_millis(60));
            t += SimDuration::from_millis(400);
        }
        sim.advance_to(t);
        // Indirect check via ground truth length (full echo-delta check
        // lives in the attack's correction-detector tests).
        let _ = &mut prev_echo_delta;
        assert_eq!(sim.truth().final_text(), "ab");
    }

    #[test]
    fn app_switch_renders_bursts() {
        let mut sim = UiSimulation::new(quiet_config(5));
        sim.advance_to(SimInstant::from_millis(400));
        let before = sim.frames_submitted();
        sim.queue(TimedEvent::new(SimInstant::from_millis(500), UiEvent::SwitchAway));
        sim.queue(TimedEvent::new(SimInstant::from_millis(1_500), UiEvent::SwitchBack));
        for ms in (700..1_400).step_by(180) {
            sim.queue(TimedEvent::new(SimInstant::from_millis(ms), UiEvent::OtherAppActivity));
        }
        sim.advance_to(SimInstant::from_millis(2_200));
        let frames = sim.frames_submitted() - before;
        // 6 away + 6 back + ~4 other-app + redraws on return.
        assert!(frames >= 16, "switch bursts missing: {frames}");
    }

    #[test]
    fn keys_are_ignored_while_in_other_app() {
        let mut sim = UiSimulation::new(quiet_config(6));
        sim.queue(TimedEvent::new(SimInstant::from_millis(100), UiEvent::SwitchAway));
        sim.tap_key(SimInstant::from_millis(600), Key::Char('x'), SimDuration::from_millis(80));
        sim.advance_to(SimInstant::from_millis(1_000));
        assert_eq!(sim.truth().final_text(), "");
    }

    #[test]
    fn gpu_load_keeps_gpu_busy() {
        let mut sim = UiSimulation::new(SimConfig { gpu_load: 0.75, ..quiet_config(7) });
        sim.advance_to(SimInstant::from_millis(1_000));
        let busy = sim.device().gpu_busy_percentage();
        assert!((55..=95).contains(&busy), "expected ~75% busy, got {busy}%");
    }

    #[test]
    fn system_noise_fires_at_configured_rate() {
        let mut sim =
            UiSimulation::new(SimConfig { system_noise_hz: 5.0, ..SimConfig::paper_default(8) });
        sim.advance_to(SimInstant::from_millis(4_000));
        let noise = sim.truth().count(|k| matches!(k, TruthKind::SystemNoise));
        assert!((8..=40).contains(&noise), "expected ~20 noise events, got {noise}");
    }

    #[test]
    fn pnc_login_renders_every_frame() {
        let mut sim = UiSimulation::new(SimConfig { app: TargetApp::Pnc, ..quiet_config(9) });
        sim.advance_to(SimInstant::from_millis(1_000));
        // ~40 animation frames in 1s (decorative animations run below the
        // panel rate, leaving the attacker occasional clean read windows).
        assert!(
            (32..=50).contains(&(sim.frames_submitted() as i64)),
            "PNC must animate at ~40fps, got {} frames",
            sim.frames_submitted()
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = |_: ()| {
            let mut sim = UiSimulation::new(SimConfig::paper_default(77));
            let mut t = SimInstant::from_millis(300);
            for c in "secret".chars() {
                sim.tap_key(t, Key::Char(c), SimDuration::from_millis(85));
                t += SimDuration::from_millis(250);
            }
            sim.advance_to(SimInstant::from_millis(5_000));
            let snapshot = sim.gpu().lock().counters_at(SimInstant::from_millis(5_000));
            snapshot
        };
        assert_eq!(run(()), run(()));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn queueing_past_events_panics() {
        let mut sim = UiSimulation::new(quiet_config(10));
        sim.advance_to(SimInstant::from_millis(100));
        sim.queue(TimedEvent::new(SimInstant::from_millis(50), UiEvent::Notification));
    }

    #[test]
    fn popup_disabled_mitigation_suppresses_keyboard_frames() {
        let frames = |popups: bool| {
            let mut sim =
                UiSimulation::new(SimConfig { popups_enabled: popups, ..quiet_config(11) });
            sim.advance_to(SimInstant::from_millis(400));
            let before = sim.frames_submitted();
            sim.tap_key(SimInstant::from_millis(450), Key::Char('q'), SimDuration::from_millis(80));
            sim.advance_to(SimInstant::from_millis(900));
            sim.frames_submitted() - before
        };
        assert!(frames(false) < frames(true), "no popup → fewer keyboard redraws");
    }
}
