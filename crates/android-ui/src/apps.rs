//! Target applications and their login screens.
//!
//! The attack targets credential entry in banking/investment/credit apps and
//! their web versions (§3.1). Each app's login screen has distinct chrome,
//! so the *base* redraw cost differs per app — which is why the paper trains
//! and evaluates per application (Fig 19). The PNC app additionally runs a
//! decorative animation on its login screen, which the paper measures as an
//! accidental obfuscation defence (Fig 29, §9.3).

use crate::screen::DeviceConfig;
use adreno_sim::geom::{Rect, Segment};
use adreno_sim::scene::DrawList;
use std::fmt;

/// Applications (and web pages) the attack is evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetApp {
    /// Chase Mobile (the §7.1 headline evaluation app).
    Chase,
    /// American Express.
    Amex,
    /// Fidelity Investments.
    Fidelity,
    /// Charles Schwab.
    Schwab,
    /// myFICO.
    MyFico,
    /// Experian.
    Experian,
    /// chase.com in Chrome.
    ChromeChase,
    /// schwab.com in Chrome.
    ChromeSchwab,
    /// experian.com in Chrome.
    ChromeExperian,
    /// PNC Mobile — login screen with decorative animation (Fig 29).
    Pnc,
    /// gedit text editor (Table 2 baseline scene).
    Gedit,
    /// Gmail login page in a desktop browser (Table 2 baseline scene).
    GmailWeb,
    /// Dropbox client login (Table 2 baseline scene).
    DropboxClient,
}

/// The nine mobile targets of Fig 19, in the figure's order.
pub const FIG19_APPS: [TargetApp; 9] = [
    TargetApp::Chase,
    TargetApp::Amex,
    TargetApp::Fidelity,
    TargetApp::Schwab,
    TargetApp::MyFico,
    TargetApp::ChromeChase,
    TargetApp::ChromeSchwab,
    TargetApp::ChromeExperian,
    TargetApp::Experian,
];

impl TargetApp {
    /// Display name matching the paper's figure labels.
    pub const fn name(self) -> &'static str {
        match self {
            TargetApp::Chase => "Chase",
            TargetApp::Amex => "Amex",
            TargetApp::Fidelity => "Fidelity",
            TargetApp::Schwab => "Schwab",
            TargetApp::MyFico => "myFICO",
            TargetApp::Experian => "Experian",
            TargetApp::ChromeChase => "chase.com",
            TargetApp::ChromeSchwab => "schwab.com",
            TargetApp::ChromeExperian => "experian.com",
            TargetApp::Pnc => "PNC",
            TargetApp::Gedit => "gedit",
            TargetApp::GmailWeb => "Gmail web",
            TargetApp::DropboxClient => "Dropbox client",
        }
    }

    /// The short logo text drawn on the login card (distinct chrome per
    /// app → distinct base redraw cost).
    const fn logo(self) -> &'static str {
        match self {
            TargetApp::Chase => "CHASE",
            TargetApp::Amex => "AMEX",
            TargetApp::Fidelity => "Fidelity",
            TargetApp::Schwab => "Schwab",
            TargetApp::MyFico => "myFICO",
            TargetApp::Experian => "Experian",
            TargetApp::ChromeChase => "chase.com",
            TargetApp::ChromeSchwab => "schwab.com",
            TargetApp::ChromeExperian => "experian.com",
            TargetApp::Pnc => "PNC",
            TargetApp::Gedit => "gedit",
            TargetApp::GmailWeb => "Gmail",
            TargetApp::DropboxClient => "Dropbox",
        }
    }

    /// Number of decorative chrome quads (buttons, dividers, banners) on the
    /// login screen.
    const fn chrome_quads(self) -> i32 {
        match self {
            TargetApp::Chase => 6,
            TargetApp::Amex => 8,
            TargetApp::Fidelity => 5,
            TargetApp::Schwab => 7,
            TargetApp::MyFico => 4,
            TargetApp::Experian => 9,
            TargetApp::ChromeChase => 11,
            TargetApp::ChromeSchwab => 12,
            TargetApp::ChromeExperian => 10,
            TargetApp::Pnc => 6,
            TargetApp::Gedit => 3,
            TargetApp::GmailWeb => 9,
            TargetApp::DropboxClient => 7,
        }
    }

    /// Whether the login screen runs a continuous decorative animation
    /// (only PNC among the evaluated apps, Fig 29).
    pub const fn animated_login(self) -> bool {
        matches!(self, TargetApp::Pnc)
    }
}

impl fmt::Display for TargetApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Geometry of an app's login screen on a device.
#[derive(Debug, Clone)]
pub struct LoginScreen {
    app: TargetApp,
    width: i32,
    height: i32,
    card: Rect,
    field: Rect,
}

impl LoginScreen {
    /// Lays out `app`'s login screen on `config`'s display.
    pub fn new(app: TargetApp, config: &DeviceConfig) -> Self {
        let w = config.width();
        let h = config.height();
        let off = config.ui_scale_offset();
        let card = Rect::new(w / 12, h / 6 + off, w * 11 / 12, h / 2 + off);
        let field = Rect::new(
            card.x0 + 24,
            card.y0 + card.height() / 2,
            card.x1 - 24,
            card.y0 + card.height() / 2 + 96,
        );
        LoginScreen { app, width: w, height: h, card, field }
    }

    /// The app this screen belongs to.
    pub fn app(&self) -> TargetApp {
        self.app
    }

    /// The credential input field rectangle.
    pub fn field(&self) -> Rect {
        self.field
    }

    /// Builds the draw list of a *field-region* update: Android's damage
    /// tracking redraws only the invalidated text-field area when a
    /// character is echoed or the cursor blinks, not the whole window.
    /// This is why echo/blink deltas are small relative to popup deltas
    /// (compare Fig 14's ~90-count changes to Fig 5's ~1600-count ones).
    pub fn draw_field_update(&self, text_len: usize, cursor_visible: bool) -> DrawList {
        let mut dl = DrawList::new(self.width, self.height);
        let field_layer = dl.layer("text-field");
        self.draw_field_content(field_layer, text_len, cursor_visible);
        dl
    }

    fn draw_field_content(
        &self,
        field_layer: &mut adreno_sim::scene::Layer,
        text_len: usize,
        cursor_visible: bool,
    ) {
        field_layer.quad(self.field, true);
        // Committed characters: one cell quad each (masked input dots). The
        // 40 px cell pitch is a multiple of the 8 px LRZ tile, so every cell
        // contributes an identical counter delta — the +2/-2 linearity of
        // Fig 14.
        let cell_w = 30;
        let max_cells = self.max_cells();
        for i in 0..text_len.min(max_cells) {
            let cx = self.field.x0 + 12 + (i as i32) * (cell_w + 10);
            let cy = (self.field.y0 + self.field.y1) / 2;
            field_layer.quad(Rect::new(cx, cy - cell_w / 2, cx + cell_w, cy + cell_w / 2), true);
        }
        if cursor_visible {
            let cx = self.field.x0 + 12 + (text_len.min(max_cells) as i32) * (cell_w + 10);
            field_layer.quad(Rect::new(cx, self.field.y0 + 16, cx + 4, self.field.y1 - 16), true);
        }
    }

    /// Maximum number of visible character cells in the field.
    pub fn max_cells(&self) -> usize {
        (((self.field.width() - 24) / 40).max(1)) as usize
    }

    /// Builds the app window's draw list for one frame.
    ///
    /// * `text_len` — committed characters in the field; each draws one
    ///   small opaque quad (two triangles), which is why the visible-prim
    ///   counter moves by exactly ±2 per character (Fig 14).
    /// * `cursor_visible` — blink phase of the text cursor.
    /// * `anim_phase` — `0.0..1.0` phase of the decorative animation; only
    ///   used when [`TargetApp::animated_login`] is true.
    pub fn draw(&self, text_len: usize, cursor_visible: bool, anim_phase: f64) -> DrawList {
        let mut dl = DrawList::new(self.width, self.height);

        let bg = dl.layer("app-bg");
        bg.quad(Rect::new(0, 0, self.width, self.height), true);

        let chrome = dl.layer("app-chrome");
        chrome.quad(self.card, true);
        // Decorative chrome: deterministic pseudo-layout derived from the
        // app identity so every app has a unique base cost.
        let n = self.app.chrome_quads();
        for i in 0..n {
            let y = self.card.y1 + 40 + i * 90;
            let inset = 30 + (i * 37) % 120;
            chrome.quad(Rect::new(self.card.x0 + inset, y, self.card.x1 - inset, y + 56), true);
        }
        // Logo text.
        let logo = self.app.logo();
        let glyph_w = 54;
        let mut x = self.card.x0 + 32;
        for ch in logo.chars() {
            chrome.glyph(
                ch,
                Rect::new(x, self.card.y0 + 28, x + glyph_w, self.card.y0 + 28 + 72),
                6,
            );
            x += glyph_w + 6;
        }

        let field_layer = dl.layer("text-field");
        self.draw_field_content(field_layer, text_len, cursor_visible);

        if self.app.animated_login() {
            // PNC's decorative wave: a band of strokes sweeping across the
            // card every cycle — redrawn every frame, continuously feeding
            // the counters (the accidental defence of Fig 29).
            let anim = dl.layer("login-animation");
            let band_w = self.card.width() / 4;
            let sweep = (anim_phase * (self.card.width() - band_w) as f64) as i32;
            let origin = Rect::new(
                self.card.x0 + sweep,
                self.card.y0,
                self.card.x0 + sweep + band_w,
                self.card.y1,
            );
            anim.quad(origin, false);
            for k in 0..6 {
                let fx = k as f32 * 1.3;
                anim.stroke(Segment::new(0.5 + fx * 0.3, 1.0, 1.5 + fx * 0.5, 7.0), origin, 4);
            }
        }
        dl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::model::GpuModel;
    use adreno_sim::pipeline::render;

    fn cfg() -> DeviceConfig {
        DeviceConfig::oneplus8pro()
    }

    fn cost(app: TargetApp, text_len: usize, cursor: bool, phase: f64) -> u64 {
        let screen = LoginScreen::new(app, &cfg());
        render(&screen.draw(text_len, cursor, phase), &GpuModel::Adreno650.params()).totals.total()
    }

    #[test]
    fn apps_have_distinct_base_costs() {
        let mut costs: Vec<u64> = FIG19_APPS.iter().map(|&a| cost(a, 0, false, 0.0)).collect();
        costs.sort_unstable();
        costs.dedup();
        assert_eq!(costs.len(), FIG19_APPS.len(), "each app needs a unique chrome cost");
    }

    #[test]
    fn visible_prims_increase_by_two_per_character() {
        use adreno_sim::counters::TrackedCounter;
        let screen = LoginScreen::new(TargetApp::Chase, &cfg());
        let params = GpuModel::Adreno650.params();
        let p0 = render(&screen.draw(3, false, 0.0), &params).totals
            [TrackedCounter::LrzVisiblePrimAfterLrz];
        let p1 = render(&screen.draw(4, false, 0.0), &params).totals
            [TrackedCounter::LrzVisiblePrimAfterLrz];
        let p2 = render(&screen.draw(5, false, 0.0), &params).totals
            [TrackedCounter::LrzVisiblePrimAfterLrz];
        assert_eq!(p1 - p0, 2, "one character = one quad = two visible primitives (Fig 14)");
        assert_eq!(p2 - p1, 2);
    }

    #[test]
    fn cursor_toggle_changes_cost() {
        assert_ne!(cost(TargetApp::Chase, 4, true, 0.0), cost(TargetApp::Chase, 4, false, 0.0));
    }

    #[test]
    fn only_pnc_is_animated() {
        assert!(TargetApp::Pnc.animated_login());
        for a in FIG19_APPS {
            assert!(!a.animated_login());
        }
    }

    #[test]
    fn pnc_animation_varies_with_phase() {
        let a = cost(TargetApp::Pnc, 4, false, 0.1);
        let b = cost(TargetApp::Pnc, 4, false, 0.7);
        assert_ne!(a, b, "animation must move the counters every frame");
    }

    #[test]
    fn long_text_saturates_field() {
        // Once the field is full, extra characters stop adding cells.
        let base = cost(TargetApp::Chase, 30, false, 0.0);
        let more = cost(TargetApp::Chase, 31, false, 0.0);
        assert_eq!(base, more);
    }
}
