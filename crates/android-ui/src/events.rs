//! Input events and ground-truth records.
//!
//! Events model what the `/dev/input/eventX` interface would deliver (key
//! down/up) plus the coarser user behaviours of the paper's practical
//! experiments (§8, Fig 27): app switches, notifications, viewing the
//! notification shade.

use crate::keyboard::Key;
use adreno_sim::time::SimInstant;

/// A user/system event delivered to the UI simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UiEvent {
    /// A key is pressed (finger down). Character keys show their popup.
    KeyDown(Key),
    /// A key is released (finger up). Character keys commit their character.
    KeyUp(Key),
    /// The user starts switching away from the target app (§5.2).
    SwitchAway,
    /// The user switches back to the target app.
    SwitchBack,
    /// One burst of activity (scroll/tap) in the non-target app.
    OtherAppActivity,
    /// A notification arrives; its status-bar icon appears.
    Notification,
    /// The user pulls down the notification shade (Fig 27 "view
    /// notification bar").
    ViewNotificationShade,
    /// The victim launches the target application (its login screen renders
    /// from scratch and the keyboard comes up) — the §3.2 trigger the
    /// attacking service waits for.
    LaunchTargetApp,
    /// Internal: the popup of the last key press times out and hides. The
    /// payload is the popup generation that scheduled the hide, so a stale
    /// hide never dismisses a newer key's popup. Scheduled by the
    /// simulation itself; external callers normally never queue this.
    PopupHide(u64),
}

/// An event with its delivery time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    pub at: SimInstant,
    pub event: UiEvent,
}

impl TimedEvent {
    /// Creates a timed event.
    pub fn new(at: SimInstant, event: UiEvent) -> Self {
        TimedEvent { at, event }
    }
}

/// What actually happened on the device — the label stream that attack
/// output is scored against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TruthKind {
    /// A character was typed (popup shown at `at`, committed on release).
    Commit(char),
    /// The backspace key removed one character.
    Backspace,
    /// The keyboard switched pages (shift or `?123`).
    PageChange,
    /// The user left the target app.
    SwitchAway,
    /// The user returned to the target app.
    SwitchBack,
    /// A notification icon appeared.
    Notification,
    /// The notification shade was opened.
    ShadeView,
    /// A system-noise redraw occurred (IME hint, toast, …).
    SystemNoise,
    /// The target application launched.
    AppLaunch,
}

/// One ground-truth event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthEvent {
    pub at: SimInstant,
    pub kind: TruthKind,
}

/// The full ground truth of a simulated session.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    events: Vec<TruthEvent>,
}

impl GroundTruth {
    /// Creates an empty record.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Appends an event (simulation-internal).
    pub(crate) fn push(&mut self, at: SimInstant, kind: TruthKind) {
        self.events.push(TruthEvent { at, kind });
    }

    /// All events in time order.
    pub fn events(&self) -> &[TruthEvent] {
        &self.events
    }

    /// The characters typed (before backspace correction), with their press
    /// timestamps — what the eavesdropper tries to recover key-by-key.
    pub fn keystrokes(&self) -> Vec<(SimInstant, char)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TruthKind::Commit(c) => Some((e.at, c)),
                _ => None,
            })
            .collect()
    }

    /// The final text after applying backspaces — what the victim actually
    /// submitted (§5.3: deleted input must be excluded from results).
    pub fn final_text(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            match e.kind {
                TruthKind::Commit(c) => s.push(c),
                TruthKind::Backspace => {
                    s.pop();
                }
                _ => {}
            }
        }
        s
    }

    /// Number of events of a given kind.
    pub fn count(&self, kind_matches: impl Fn(&TruthKind) -> bool) -> usize {
        self.events.iter().filter(|e| kind_matches(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_text_applies_backspaces() {
        let mut gt = GroundTruth::new();
        let t = SimInstant::ZERO;
        for c in "abc".chars() {
            gt.push(t, TruthKind::Commit(c));
        }
        gt.push(t, TruthKind::Backspace);
        gt.push(t, TruthKind::Backspace);
        gt.push(t, TruthKind::Commit('z'));
        assert_eq!(gt.final_text(), "az");
        assert_eq!(gt.keystrokes().len(), 4);
    }

    #[test]
    fn backspace_on_empty_is_harmless() {
        let mut gt = GroundTruth::new();
        gt.push(SimInstant::ZERO, TruthKind::Backspace);
        gt.push(SimInstant::ZERO, TruthKind::Commit('x'));
        assert_eq!(gt.final_text(), "x");
    }

    #[test]
    fn count_filters() {
        let mut gt = GroundTruth::new();
        gt.push(SimInstant::ZERO, TruthKind::Notification);
        gt.push(SimInstant::ZERO, TruthKind::Commit('a'));
        gt.push(SimInstant::ZERO, TruthKind::Notification);
        assert_eq!(gt.count(|k| matches!(k, TruthKind::Notification)), 2);
        assert_eq!(gt.count(|k| matches!(k, TruthKind::Commit(_))), 1);
    }
}
