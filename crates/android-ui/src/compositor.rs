//! Per-window draw-list builders.
//!
//! Android renders each window (surface) independently and only when its
//! content is damaged. That per-window damage model is what gives the attack
//! its three distinct counter changes per key press (Fig 3):
//!
//! 1. key down   → the **keyboard window** redraws with the popup;
//! 2. key up     → the **app window** redraws with the text echo;
//! 3. popup hide → the keyboard window redraws without the popup.
//!
//! Because the *keyboard-window* redraw does not depend on the typed text so
//! far, the first change is position-independent and uniquely characterises
//! the key — the property the classifier is trained on.
//!
//! Consecutive damaged frames of one window differ by a layer or two (popup
//! shown/hidden, one more echo glyph), so the GPU renders these draw lists
//! through its incremental frame-delta engine
//! ([`adreno_sim::incremental`]): each surface's viewport keeps a persistent
//! renderer that diffs against the previous frame and recomputes only the
//! changed layers, with output bit-identical to a full render.

use crate::keyboard::{Key, KeyboardKind, KeyboardLayout, Page};
use crate::screen::DeviceConfig;
use adreno_sim::geom::Rect;
use adreno_sim::scene::DrawList;
use rand::Rng;

/// The popup currently showing on the keyboard, if any.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopupState {
    /// The character whose popup is showing.
    pub ch: char,
    /// The pressed key's rectangle (screen coordinates).
    pub key_rect: Rect,
}

/// The keyboard window: layout, active page and popup state.
#[derive(Debug, Clone)]
pub struct KeyboardWindow {
    layout: KeyboardLayout,
    page: Page,
    popup: Option<PopupState>,
    /// §9.1 mitigation: disable key-press popups entirely.
    popups_enabled: bool,
    /// Extra surface height above the keyboard so popups fit.
    headroom: i32,
    width: i32,
}

impl KeyboardWindow {
    /// Creates the keyboard window for a keyboard app on a device.
    pub fn new(kind: KeyboardKind, config: &DeviceConfig, popups_enabled: bool) -> Self {
        let layout = KeyboardLayout::new(kind, config);
        let headroom = layout.bounds().height(); // ample room for any popup
        KeyboardWindow {
            layout,
            page: Page::Lower,
            popup: None,
            popups_enabled,
            headroom,
            width: config.width(),
        }
    }

    /// The underlying layout.
    pub fn layout(&self) -> &KeyboardLayout {
        &self.layout
    }

    /// The active page.
    pub fn page(&self) -> Page {
        self.page
    }

    /// Applies a special key that changes the page. Returns `true` if the
    /// page changed (which damages the whole keyboard).
    pub fn apply_page_key(&mut self, key: Key) -> bool {
        let next = crate::keyboard::page_after(self.page, key);
        let changed = next != self.page;
        self.page = next;
        changed
    }

    /// Shows the popup for `ch` (no-op when popups are disabled or the
    /// character is not on the current page).
    pub fn show_popup(&mut self, ch: char) -> bool {
        if !self.popups_enabled {
            return false;
        }
        match self.layout.key_for_char(ch) {
            Some((page, key_rect)) if page == self.page => {
                self.popup = Some(PopupState { ch, key_rect });
                true
            }
            _ => false,
        }
    }

    /// Hides any active popup. Returns `true` if one was showing.
    pub fn hide_popup(&mut self) -> bool {
        self.popup.take().is_some()
    }

    /// The active popup, if any.
    pub fn popup(&self) -> Option<&PopupState> {
        self.popup.as_ref()
    }

    /// Builds the window's draw list (surface-local coordinates).
    pub fn draw(&self) -> DrawList {
        let kb = self.layout.bounds();
        let oy = kb.y0 - self.headroom; // surface origin in screen space
        let surface_h = self.headroom + kb.height();
        let mut dl = DrawList::new(self.width, surface_h);

        let bg = dl.layer("kb-bg");
        bg.quad(kb.translated(0, -oy), true);
        // The suggestion strip above the key rows. Suggestions stay blank on
        // credential fields (password managers disable them), so the strip
        // is static content — but top-row popups occlude it, which is part
        // of the per-key LRZ signal.
        let strip_h = kb.height() / 4 * 3 / 5;
        bg.quad(Rect::new(0, self.headroom - strip_h, self.width, self.headroom), true);

        let keys = dl.layer("kb-keys");
        let label_thickness = 4;
        for kg in self.layout.keys(self.page) {
            let r = kg.rect.translated(0, -oy);
            keys.quad(r, true);
            if let Key::Char(c) = kg.key {
                keys.glyph(c, r.inset(r.width() / 5), label_thickness);
            }
        }

        if let Some(p) = &self.popup {
            let popup_rect = self.layout.popup_rect(&p.key_rect).translated(0, -oy);
            let layer = dl.layer("popup");
            layer.quad(popup_rect, true);
            layer.glyph(
                p.ch,
                self.layout.popup_glyph_rect(&popup_rect),
                self.layout.glyph_thickness(),
            );
        }
        dl
    }
}

/// The status bar window (notification icons).
#[derive(Debug, Clone)]
pub struct StatusBar {
    width: i32,
    height: i32,
    icons: usize,
}

impl StatusBar {
    /// Creates the status bar for a device.
    pub fn new(config: &DeviceConfig) -> Self {
        StatusBar { width: config.width(), height: 64 + config.ui_scale_offset(), icons: 0 }
    }

    /// A notification arrived; its icon appears.
    pub fn add_icon(&mut self) {
        self.icons = (self.icons + 1).min(12);
    }

    /// Icons currently showing.
    pub fn icons(&self) -> usize {
        self.icons
    }

    /// Builds the status bar draw list.
    pub fn draw(&self) -> DrawList {
        let mut dl = DrawList::new(self.width, self.height);
        dl.layer("bar").quad(Rect::new(0, 0, self.width, self.height), true);
        let icons = dl.layer("icons");
        for i in 0..self.icons {
            let x = self.width - 80 - (i as i32) * 56;
            icons.quad(Rect::new(x, 14, x + 40, self.height - 14), false);
        }
        dl
    }
}

/// One frame of the app-switch (overview) animation.
///
/// The overview shows scaled-down cards of recent apps sliding in/out —
/// large, fast counter bursts with inter-frame spacing < 50 ms, which is the
/// signature the §5.2 detector keys on (Fig 13).
pub fn draw_switch_frame(config: &DeviceConfig, progress: f64) -> DrawList {
    let w = config.width();
    let h = config.height();
    let mut dl = DrawList::new(w, h);
    dl.layer("wallpaper").quad(Rect::new(0, 0, w, h), true);
    let cards = dl.layer("overview-cards");
    let p = progress.clamp(0.0, 1.0);
    // Cards shrink from full screen (p=0) to overview size (p=1).
    let scale = 1.0 - 0.45 * p;
    let card_w = (w as f64 * scale) as i32;
    let card_h = (h as f64 * scale) as i32;
    let slide = (p * w as f64 * 0.6) as i32;
    for i in -1..=1i32 {
        let cx = w / 2 + i * (card_w + 40) - slide / 3;
        let cy = h / 2;
        let r = Rect::new(cx - card_w / 2, cy - card_h / 2, cx + card_w / 2, cy + card_h / 2);
        cards.quad(r, true);
        // App preview content inside the card.
        cards.quad(r.inset(card_w / 10), false);
    }
    dl
}

/// One frame of activity in a non-target app (scrolling a feed, etc.).
/// Content is pseudo-random: item count and offsets come from `rng`.
pub fn draw_other_app_frame<R: Rng>(config: &DeviceConfig, rng: &mut R) -> DrawList {
    let w = config.width();
    let h = config.height();
    let mut dl = DrawList::new(w, h);
    dl.layer("bg").quad(Rect::new(0, 0, w, h), true);
    let feed = dl.layer("feed");
    let items = rng.gen_range(3..12);
    let offset = rng.gen_range(0..120);
    for i in 0..items {
        let y = offset + i * (h / items.max(1)) * 9 / 10;
        feed.quad(Rect::new(40, y, w - 40, y + h / items.max(1) * 7 / 10), true);
    }
    dl
}

/// The pulled-down notification shade (a full-width panel with one row per
/// notification) — the "view notification bar" user event of Fig 27.
pub fn draw_notification_shade(config: &DeviceConfig, notifications: usize) -> DrawList {
    let w = config.width();
    let h = config.height();
    let mut dl = DrawList::new(w, h);
    dl.layer("scrim").quad(Rect::new(0, 0, w, h), false);
    let panel = dl.layer("panel");
    let ph = (h / 3).max(300) + notifications as i32 * 140;
    panel.quad(Rect::new(0, 0, w, ph.min(h)), true);
    for i in 0..notifications {
        let y = 120 + i as i32 * 140;
        if y + 120 > h {
            break;
        }
        panel.quad(Rect::new(24, y, w - 24, y + 120), false);
    }
    dl
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::TrackedCounter;
    use adreno_sim::model::GpuModel;
    use adreno_sim::pipeline::render;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> DeviceConfig {
        DeviceConfig::oneplus8pro()
    }

    fn total(dl: &DrawList) -> u64 {
        render(dl, &GpuModel::Adreno650.params()).totals.total()
    }

    #[test]
    fn popup_changes_keyboard_frame_cost() {
        let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), true);
        let base = total(&kw.draw());
        assert!(kw.show_popup('w'));
        let with_popup = total(&kw.draw());
        assert!(with_popup > base, "popup adds pixels, tiles and primitives");
        assert!(kw.hide_popup());
        assert_eq!(total(&kw.draw()), base, "hide restores the exact base cost");
    }

    #[test]
    fn different_keys_give_different_popup_frames() {
        let params = GpuModel::Adreno650.params();
        let frame = |c: char| {
            let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), true);
            kw.show_popup(c);
            render(&kw.draw(), &params).totals
        };
        // All lowercase keys must be pairwise distinguishable in the full
        // 11-counter space — the foundation of the whole attack.
        let chars: Vec<char> = "qwertyuiopasdfghjklzxcvbnm".chars().collect();
        let frames: Vec<_> = chars.iter().map(|&c| frame(c)).collect();
        for i in 0..frames.len() {
            for j in (i + 1)..frames.len() {
                assert_ne!(
                    frames[i], frames[j],
                    "popup frames for {:?} and {:?} collide",
                    chars[i], chars[j]
                );
            }
        }
    }

    #[test]
    fn popup_disabled_mitigation_blocks_popup() {
        let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), false);
        assert!(!kw.show_popup('w'));
        assert!(kw.popup().is_none());
        assert!(!kw.hide_popup());
    }

    #[test]
    fn popup_requires_current_page() {
        let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), true);
        assert!(!kw.show_popup('7'), "'7' lives on the Number page");
        assert!(kw.apply_page_key(Key::PageSwitch));
        assert!(kw.show_popup('7'));
    }

    #[test]
    fn page_keys_follow_the_fsm() {
        let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), true);
        assert_eq!(kw.page(), Page::Lower);
        assert!(kw.apply_page_key(Key::Shift));
        assert_eq!(kw.page(), Page::Upper);
        assert!(kw.apply_page_key(Key::PageSwitch));
        assert_eq!(kw.page(), Page::Number);
        assert!(!kw.apply_page_key(Key::Shift), "shift is inert on the number page");
        assert!(kw.apply_page_key(Key::PageSwitch));
        assert_eq!(kw.page(), Page::Lower);
    }

    #[test]
    fn page_redraw_cost_differs_per_page() {
        let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), true);
        let lower = total(&kw.draw());
        kw.apply_page_key(Key::PageSwitch);
        let number = total(&kw.draw());
        assert_ne!(lower, number);
    }

    #[test]
    fn status_bar_icons_change_cost() {
        let mut sb = StatusBar::new(&cfg());
        let a = total(&sb.draw());
        sb.add_icon();
        let b = total(&sb.draw());
        assert!(b > a);
    }

    #[test]
    fn switch_frames_are_large_and_vary_with_progress() {
        let f0 = total(&draw_switch_frame(&cfg(), 0.1));
        let f1 = total(&draw_switch_frame(&cfg(), 0.9));
        assert_ne!(f0, f1);
        // Switch frames are far larger than a keyboard redraw.
        let kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), true);
        assert!(f0 > total(&kw.draw()));
    }

    #[test]
    fn other_app_frames_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = total(&draw_other_app_frame(&cfg(), &mut rng));
        let b = total(&draw_other_app_frame(&cfg(), &mut rng));
        assert_ne!(a, b, "feed scrolling must not be constant-cost");
    }

    #[test]
    fn keyboard_window_has_popup_headroom() {
        let kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), true);
        let dl = kw.draw();
        assert!(dl.height() > kw.layout().bounds().height());
    }

    #[test]
    fn popup_prims_survive_in_lrz() {
        // The popup layer sits on top: its primitives must be visible, and
        // it must occlude (LRZ-assign) key prims below it.
        let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg(), true);
        let params = GpuModel::Adreno650.params();
        let base = render(&kw.draw(), &params).totals;
        kw.show_popup('g'); // middle of the keyboard: popup covers keys above
        let with = render(&kw.draw(), &params).totals;
        assert!(
            with[TrackedCounter::VpcLrzAssignPrimitives]
                > base[TrackedCounter::VpcLrzAssignPrimitives],
            "popup must occlude keys underneath"
        );
    }
}
