//! On-screen keyboard layouts and key-press popups.
//!
//! The attack's signal source is the popup drawn above a pressed key
//! (Fig 1). Each keyboard app styles its keys and popups differently —
//! the paper evaluates six keyboards (Fig 20) — so popup geometry, popup
//! animation and key placement are all parameterised by [`KeyboardKind`].

use crate::screen::DeviceConfig;
use adreno_sim::geom::Rect;
use std::fmt;

/// The six on-screen keyboards evaluated in Fig 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyboardKind {
    /// Google Keyboard (GBoard) — the paper's default, with the richest
    /// popup animation (and hence the highest duplication rate, §5.1).
    Gboard,
    /// Microsoft SwiftKey.
    Swift,
    /// Sogou Keyboard.
    Sogou,
    /// Google Pinyin Keyboard.
    GooglePinyin,
    /// Go Keyboard.
    Go,
    /// Grammarly Keyboard.
    Grammarly,
}

/// All evaluated keyboards.
pub const ALL_KEYBOARDS: [KeyboardKind; 6] = [
    KeyboardKind::Gboard,
    KeyboardKind::Swift,
    KeyboardKind::Sogou,
    KeyboardKind::GooglePinyin,
    KeyboardKind::Go,
    KeyboardKind::Grammarly,
];

impl KeyboardKind {
    /// Short name used in reports (matches Fig 20 x-axis labels).
    pub const fn name(self) -> &'static str {
        match self {
            KeyboardKind::Swift => "swift",
            KeyboardKind::Gboard => "gboard",
            KeyboardKind::Sogou => "sogou",
            KeyboardKind::GooglePinyin => "pinyin",
            KeyboardKind::Go => "go",
            KeyboardKind::Grammarly => "grammarly",
        }
    }
}

impl fmt::Display for KeyboardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Style parameters distinguishing the keyboards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyboardStyle {
    /// Fraction of screen height the keyboard occupies.
    pub height_frac: f64,
    /// Gap between keys, in pixels at FHD+ (scaled with resolution).
    pub key_margin: i32,
    /// Popup size as a multiple of the key size.
    pub popup_scale: f64,
    /// How far above the key the popup floats, in key heights.
    pub popup_rise: f64,
    /// Probability that the popup's entry animation renders a second,
    /// identical frame — the paper's *duplication* factor (§5.1 found 633
    /// duplications in 3,485 presses on GBoard ≈ 0.18).
    pub dup_probability: f64,
    /// Stroke thickness of popup glyphs in pixels at FHD+.
    pub glyph_thickness: i32,
}

impl KeyboardKind {
    /// The keyboard's style parameters.
    pub const fn style(self) -> KeyboardStyle {
        match self {
            KeyboardKind::Gboard => KeyboardStyle {
                height_frac: 0.36,
                key_margin: 4,
                popup_scale: 2.2,
                popup_rise: 0.25,
                dup_probability: 0.18,
                glyph_thickness: 8,
            },
            KeyboardKind::Swift => KeyboardStyle {
                height_frac: 0.37,
                key_margin: 3,
                popup_scale: 2.0,
                popup_rise: 0.2,
                dup_probability: 0.05,
                glyph_thickness: 9,
            },
            KeyboardKind::Sogou => KeyboardStyle {
                height_frac: 0.35,
                key_margin: 5,
                popup_scale: 2.1,
                popup_rise: 0.3,
                dup_probability: 0.10,
                glyph_thickness: 8,
            },
            KeyboardKind::GooglePinyin => KeyboardStyle {
                height_frac: 0.36,
                key_margin: 4,
                popup_scale: 2.3,
                popup_rise: 0.2,
                dup_probability: 0.12,
                glyph_thickness: 7,
            },
            KeyboardKind::Go => KeyboardStyle {
                height_frac: 0.34,
                key_margin: 6,
                popup_scale: 1.9,
                popup_rise: 0.25,
                dup_probability: 0.08,
                glyph_thickness: 8,
            },
            KeyboardKind::Grammarly => KeyboardStyle {
                height_frac: 0.38,
                key_margin: 4,
                popup_scale: 2.0,
                popup_rise: 0.15,
                dup_probability: 0.06,
                glyph_thickness: 9,
            },
        }
    }
}

/// Keyboard pages (layers of the layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Page {
    /// Lowercase letters plus `,` `.` and space.
    Lower,
    /// Uppercase letters (shift held/locked).
    Upper,
    /// Digits and symbols (`?123` page).
    Number,
}

/// A key on the keyboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Key {
    /// A character key: pressing it pops up the character and commits it.
    Char(char),
    /// Space bar (no popup on any evaluated keyboard).
    Space,
    /// Backspace (no popup; removes the last committed character, §5.3).
    Backspace,
    /// Shift: switches Lower↔Upper (no popup; redraws the whole keyboard).
    Shift,
    /// `?123` / `ABC`: switches to/from the Number page (no popup; redraws
    /// the whole keyboard).
    PageSwitch,
    /// Enter/submit.
    Enter,
}

impl Key {
    /// Whether pressing this key shows a popup (only character keys do).
    pub const fn has_popup(self) -> bool {
        matches!(self, Key::Char(_))
    }
}

/// A key and its screen rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyGeometry {
    pub key: Key,
    pub rect: Rect,
}

/// The page the keyboard shows after pressing `key` on `page`.
///
/// Shift toggles Lower↔Upper (and is inert on the Number page); `?123`
/// toggles to the Number page and back to Lower. All other keys leave the
/// page unchanged.
pub fn page_after(page: Page, key: Key) -> Page {
    match (key, page) {
        (Key::Shift, Page::Lower) => Page::Upper,
        (Key::Shift, Page::Upper) => Page::Lower,
        (Key::Shift, Page::Number) => Page::Number,
        (Key::PageSwitch, Page::Number) => Page::Lower,
        (Key::PageSwitch, _) => Page::Number,
        _ => page,
    }
}

/// The special keys a typist must tap to move the keyboard from page `from`
/// to page `to` (empty when already there).
pub fn keys_to_reach(from: Page, to: Page) -> Vec<Key> {
    match (from, to) {
        (a, b) if a == b => vec![],
        (Page::Lower, Page::Upper) | (Page::Upper, Page::Lower) => vec![Key::Shift],
        (Page::Lower, Page::Number) | (Page::Upper, Page::Number) => vec![Key::PageSwitch],
        (Page::Number, Page::Lower) => vec![Key::PageSwitch],
        (Page::Number, Page::Upper) => vec![Key::PageSwitch, Key::Shift],
        _ => unreachable!("all page pairs covered"),
    }
}

/// Which page a character lives on. Space lives on every page; we place it
/// on [`Page::Lower`] canonically.
pub fn page_of(c: char) -> Option<Page> {
    match c {
        'a'..='z' | ',' | '.' | ' ' => Some(Page::Lower),
        'A'..='Z' => Some(Page::Upper),
        '0'..='9'
        | '@'
        | '#'
        | '$'
        | '&'
        | '-'
        | '+'
        | '('
        | ')'
        | '/'
        | '*'
        | '"'
        | '\''
        | ':'
        | ';'
        | '!'
        | '?' => Some(Page::Number),
        _ => None,
    }
}

const LOWER_ROWS: [&str; 3] = ["qwertyuiop", "asdfghjkl", "zxcvbnm"];
const UPPER_ROWS: [&str; 3] = ["QWERTYUIOP", "ASDFGHJKL", "ZXCVBNM"];
const NUMBER_ROWS: [&str; 3] = ["1234567890", "@#$&-+()/", "*\"':;!?"];

/// A concrete keyboard layout for one keyboard app on one device
/// configuration.
///
/// # Examples
///
/// ```
/// use android_ui::keyboard::{KeyboardKind, KeyboardLayout, Page};
/// use android_ui::screen::DeviceConfig;
///
/// let kb = KeyboardLayout::new(KeyboardKind::Gboard, &DeviceConfig::oneplus8pro());
/// let (page, rect) = kb.key_for_char('w').expect("'w' is on the keyboard");
/// assert_eq!(page, Page::Lower);
/// let popup = kb.popup_rect(&rect);
/// assert!(popup.area() > rect.area(), "popups are larger than keys");
/// assert!(popup.y0 < rect.y0, "popups float above the key");
/// ```
#[derive(Debug, Clone)]
pub struct KeyboardLayout {
    kind: KeyboardKind,
    style: KeyboardStyle,
    bounds: Rect,
    scale: f64,
}

impl KeyboardLayout {
    /// Builds the layout of `kind` on `config`'s screen.
    pub fn new(kind: KeyboardKind, config: &DeviceConfig) -> Self {
        let style = kind.style();
        let w = config.width();
        let h = config.height();
        let kb_h = (h as f64 * style.height_frac) as i32 + config.ui_scale_offset();
        let bounds = Rect::new(0, h - kb_h, w, h);
        let scale = w as f64 / 1080.0;
        KeyboardLayout { kind, style, bounds, scale }
    }

    /// The keyboard app this layout belongs to.
    pub fn kind(&self) -> KeyboardKind {
        self.kind
    }

    /// The style parameters in effect.
    pub fn style(&self) -> &KeyboardStyle {
        &self.style
    }

    /// The keyboard's screen area.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Glyph stroke thickness at this resolution.
    pub fn glyph_thickness(&self) -> i32 {
        ((self.style.glyph_thickness as f64 * self.scale).round() as i32).max(2)
    }

    fn margin(&self) -> i32 {
        ((self.style.key_margin as f64 * self.scale).round() as i32).max(1)
    }

    /// All keys of `page`, with their rectangles.
    pub fn keys(&self, page: Page) -> Vec<KeyGeometry> {
        let rows: [&str; 3] = match page {
            Page::Lower => LOWER_ROWS,
            Page::Upper => UPPER_ROWS,
            Page::Number => NUMBER_ROWS,
        };
        let m = self.margin();
        let kb = self.bounds;
        let row_h = kb.height() / 4;
        let mut out = Vec::with_capacity(40);

        for (ri, row) in rows.iter().enumerate() {
            let y0 = kb.y0 + ri as i32 * row_h;
            let chars: Vec<char> = row.chars().collect();
            // Row 2 carries shift (or page symmetry) on the left and
            // backspace on the right, like real layouts.
            let (lead, trail): (Option<Key>, Option<Key>) =
                if ri == 2 { (Some(Key::Shift), Some(Key::Backspace)) } else { (None, None) };
            let slots = chars.len() as i32 + lead.is_some() as i32 + trail.is_some() as i32;
            let key_w = kb.width() / slots.max(1);
            let mut x = kb.x0;
            if let Some(k) = lead {
                out.push(KeyGeometry {
                    key: k,
                    rect: Rect::new(x + m, y0 + m, x + key_w - m, y0 + row_h - m),
                });
                x += key_w;
            }
            for c in chars {
                out.push(KeyGeometry {
                    key: Key::Char(c),
                    rect: Rect::new(x + m, y0 + m, x + key_w - m, y0 + row_h - m),
                });
                x += key_w;
            }
            if let Some(k) = trail {
                out.push(KeyGeometry {
                    key: k,
                    rect: Rect::new(x + m, y0 + m, x + key_w - m, y0 + row_h - m),
                });
            }
        }

        // Bottom row: [?123] [,] [space] [.] [enter].
        let y0 = kb.y0 + 3 * row_h;
        let w = kb.width();
        let specs: [(Key, i32, i32); 5] = [
            (Key::PageSwitch, 0, w * 15 / 100),
            (Key::Char(','), w * 15 / 100, w * 27 / 100),
            (Key::Space, w * 27 / 100, w * 73 / 100),
            (Key::Char('.'), w * 73 / 100, w * 85 / 100),
            (Key::Enter, w * 85 / 100, w),
        ];
        for (key, x0, x1) in specs {
            out.push(KeyGeometry {
                key,
                rect: Rect::new(kb.x0 + x0 + m, y0 + m, kb.x0 + x1 - m, y0 + row_h - m),
            });
        }
        out
    }

    /// Finds the page and key rectangle for a character.
    pub fn key_for_char(&self, c: char) -> Option<(Page, Rect)> {
        let page = page_of(c)?;
        let key = if c == ' ' { Key::Space } else { Key::Char(c) };
        self.keys(page).into_iter().find(|kg| kg.key == key).map(|kg| (page, kg.rect))
    }

    /// The popup rectangle shown while `key_rect` is pressed.
    pub fn popup_rect(&self, key_rect: &Rect) -> Rect {
        let s = self.style.popup_scale;
        let kw = key_rect.width() as f64;
        let kh = key_rect.height() as f64;
        let pw = (kw * s) as i32;
        let ph = (kh * s) as i32;
        let cx = (key_rect.x0 + key_rect.x1) / 2;
        let rise = (kh * self.style.popup_rise) as i32;
        // The popup's bottom edge sits `rise` pixels above the key top.
        let top = key_rect.y0 - rise - ph;
        let mut r = Rect::new(cx - pw / 2, top, cx + pw / 2, top + ph);
        // Clamp horizontally to the screen (edge keys get shifted popups —
        // another source of per-key uniqueness).
        if r.x0 < 0 {
            r = r.translated(-r.x0, 0);
        }
        if r.x1 > self.bounds.x1 {
            r = r.translated(self.bounds.x1 - r.x1, 0);
        }
        r
    }

    /// Where the popup draws its glyph.
    pub fn popup_glyph_rect(&self, popup: &Rect) -> Rect {
        popup.inset(popup.width() / 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::font::FIG18_CHARSET;

    fn layout() -> KeyboardLayout {
        KeyboardLayout::new(KeyboardKind::Gboard, &DeviceConfig::oneplus8pro())
    }

    #[test]
    fn every_fig18_char_is_reachable() {
        let kb = layout();
        for c in FIG18_CHARSET.chars() {
            assert!(kb.key_for_char(c).is_some(), "char {c:?} must be on some page");
        }
        assert!(kb.key_for_char(' ').is_some());
        assert!(kb.key_for_char('€').is_none());
    }

    #[test]
    fn keys_do_not_overlap_within_a_page() {
        let kb = layout();
        for page in [Page::Lower, Page::Upper, Page::Number] {
            let keys = kb.keys(page);
            for (i, a) in keys.iter().enumerate() {
                for b in keys.iter().skip(i + 1) {
                    assert!(
                        !a.rect.intersects(&b.rect),
                        "{:?} and {:?} overlap on {page:?}",
                        a.key,
                        b.key
                    );
                }
            }
        }
    }

    #[test]
    fn keys_stay_inside_keyboard_bounds() {
        let kb = layout();
        for page in [Page::Lower, Page::Upper, Page::Number] {
            for kg in kb.keys(page) {
                assert!(kb.bounds().contains_rect(&kg.rect), "{:?} escapes bounds", kg.key);
            }
        }
    }

    #[test]
    fn distinct_keys_have_distinct_popups() {
        let kb = layout();
        let (_, w) = kb.key_for_char('w').unwrap();
        let (_, n) = kb.key_for_char('n').unwrap();
        assert_ne!(kb.popup_rect(&w), kb.popup_rect(&n));
    }

    #[test]
    fn popup_floats_above_key_and_stays_on_screen() {
        let kb = layout();
        for c in "qap0;".chars() {
            let (_, rect) = kb.key_for_char(c).unwrap();
            let popup = kb.popup_rect(&rect);
            assert!(popup.y1 <= rect.y0, "popup for {c:?} must not cover its key");
            assert!(popup.x0 >= 0 && popup.x1 <= DeviceConfig::oneplus8pro().width());
        }
    }

    #[test]
    fn keyboards_differ_in_geometry() {
        let cfg = DeviceConfig::oneplus8pro();
        let a = KeyboardLayout::new(KeyboardKind::Gboard, &cfg);
        let b = KeyboardLayout::new(KeyboardKind::Go, &cfg);
        assert_ne!(a.bounds(), b.bounds());
        let (_, ka) = a.key_for_char('g').unwrap();
        let (_, kb_) = b.key_for_char('g').unwrap();
        assert_ne!(ka, kb_);
    }

    #[test]
    fn only_char_keys_pop_up() {
        assert!(Key::Char('x').has_popup());
        for k in [Key::Space, Key::Backspace, Key::Shift, Key::PageSwitch, Key::Enter] {
            assert!(!k.has_popup());
        }
    }

    #[test]
    fn page_of_covers_charset() {
        assert_eq!(page_of('q'), Some(Page::Lower));
        assert_eq!(page_of('Q'), Some(Page::Upper));
        assert_eq!(page_of('7'), Some(Page::Number));
        assert_eq!(page_of(';'), Some(Page::Number));
        assert_eq!(page_of('€'), None);
    }

    #[test]
    fn resolution_scales_layout() {
        let fhd = KeyboardLayout::new(KeyboardKind::Gboard, &DeviceConfig::oneplus8pro());
        let mut qhd_cfg = DeviceConfig::oneplus8pro();
        qhd_cfg.resolution = crate::screen::Resolution::Qhd;
        let qhd = KeyboardLayout::new(KeyboardKind::Gboard, &qhd_cfg);
        let (_, a) = fhd.key_for_char('h').unwrap();
        let (_, b) = qhd.key_for_char('h').unwrap();
        assert!(b.area() > a.area(), "QHD keys are physically larger in pixels");
    }
}
