//! # android-ui — the victim-device UI substrate
//!
//! Models the parts of Android's graphics stack the attack observes through
//! GPU performance counters:
//!
//! * [`screen`] — phone models, resolutions, refresh rates, OS versions
//!   (§7.5 adaptability matrix);
//! * [`keyboard`] — six on-screen keyboards with per-key popup geometry and
//!   animation (Fig 1, Fig 20);
//! * [`apps`] — login screens of the target apps (Fig 19), including PNC's
//!   animated login (Fig 29);
//! * [`compositor`] — per-window damage-driven draw lists (the mechanism
//!   behind the three counter changes per key press, Fig 3);
//! * [`events`] — input events and ground truth;
//! * [`sim`] — the discrete-event simulation tying input, vsync, windows and
//!   the GPU together.
//!
//! ```
//! use adreno_sim::time::{SimDuration, SimInstant};
//! use android_ui::keyboard::Key;
//! use android_ui::sim::{SimConfig, UiSimulation};
//!
//! let mut sim = UiSimulation::new(SimConfig::default());
//! sim.tap_key(SimInstant::from_millis(200), Key::Char('p'), SimDuration::from_millis(95));
//! sim.advance_to(SimInstant::from_millis(800));
//! assert_eq!(sim.truth().final_text(), "p");
//! ```

pub mod apps;
pub mod compositor;
pub mod events;
pub mod keyboard;
pub mod screen;
pub mod sim;

pub use apps::{LoginScreen, TargetApp};
pub use compositor::{KeyboardWindow, StatusBar};
pub use events::{GroundTruth, TimedEvent, TruthEvent, TruthKind, UiEvent};
pub use keyboard::{Key, KeyboardKind, KeyboardLayout, Page};
pub use screen::{AndroidVersion, DeviceConfig, PhoneModel, RefreshRate, Resolution};
pub use sim::{SimConfig, UiSimulation};
