//! Property-based tests of the UI substrate's invariants.

use android_ui::keyboard::{
    keys_to_reach, page_after, page_of, Key, KeyboardLayout, Page, ALL_KEYBOARDS,
};
use android_ui::screen::{AndroidVersion, Resolution, ALL_PHONES};
use android_ui::{DeviceConfig, RefreshRate};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceConfig> {
    (
        prop::sample::select(ALL_PHONES.to_vec()),
        prop::sample::select(vec![
            AndroidVersion::V8_1,
            AndroidVersion::V9,
            AndroidVersion::V10,
            AndroidVersion::V11,
        ]),
        prop::sample::select(vec![Resolution::Fhd, Resolution::Qhd]),
        prop::sample::select(vec![RefreshRate::Hz60, RefreshRate::Hz120]),
    )
        .prop_map(|(phone, android, resolution, refresh)| DeviceConfig {
            phone,
            android,
            resolution,
            refresh,
        })
}

fn arb_page() -> impl Strategy<Value = Page> {
    prop::sample::select(vec![Page::Lower, Page::Upper, Page::Number])
}

fn arb_key() -> impl Strategy<Value = Key> {
    prop_oneof![
        prop::char::range('a', 'z').prop_map(Key::Char),
        Just(Key::Shift),
        Just(Key::PageSwitch),
        Just(Key::Backspace),
        Just(Key::Space),
        Just(Key::Enter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_layout_places_all_characters_without_overlap(
        device in arb_device(),
        kind in prop::sample::select(ALL_KEYBOARDS.to_vec()),
    ) {
        let kb = KeyboardLayout::new(kind, &device);
        for c in adreno_sim::font::FIG18_CHARSET.chars() {
            let (page, rect) = kb.key_for_char(c).expect("every evaluated char must be reachable");
            prop_assert!(kb.bounds().contains_rect(&rect), "{c:?} outside keyboard");
            let popup = kb.popup_rect(&rect);
            prop_assert!(popup.x0 >= 0 && popup.x1 <= device.width(), "{c:?} popup clipped");
            prop_assert!(popup.y1 <= rect.y0, "{c:?} popup must sit above its key");
            let _ = page;
        }
        for page in [Page::Lower, Page::Upper, Page::Number] {
            let keys = kb.keys(page);
            for (i, a) in keys.iter().enumerate() {
                for b in keys.iter().skip(i + 1) {
                    prop_assert!(!a.rect.intersects(&b.rect), "{:?}/{:?} overlap", a.key, b.key);
                }
            }
        }
    }

    #[test]
    fn keys_to_reach_always_arrives(from in arb_page(), to in arb_page()) {
        let mut page = from;
        for key in keys_to_reach(from, to) {
            page = page_after(page, key);
        }
        prop_assert_eq!(page, to);
    }

    #[test]
    fn page_fsm_is_total_and_returns_home(page in arb_page(), keys in prop::collection::vec(arb_key(), 0..20)) {
        let mut p = page;
        for k in keys {
            p = page_after(p, k);
        }
        // From anywhere, the canonical route home terminates.
        for k in keys_to_reach(p, Page::Lower) {
            p = page_after(p, k);
        }
        prop_assert_eq!(p, Page::Lower);
    }

    #[test]
    fn page_of_routes_every_typable_char(c in prop::char::range(' ', '~')) {
        if let Some(page) = page_of(c) {
            // A routed char must actually be on that page of every keyboard.
            let kb = KeyboardLayout::new(android_ui::KeyboardKind::Gboard, &DeviceConfig::oneplus8pro());
            let (found, _) = kb.key_for_char(c).expect("page_of implies presence");
            prop_assert_eq!(found, page);
        }
    }
}
