//! Integer screen geometry used by the scene and the tile pipeline.

use std::fmt;

/// A point in screen space, in pixels. The origin is the top-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    pub x: i32,
    pub y: i32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangle in screen space, in pixels.
///
/// `Rect` is half-open: it covers `x0..x1` by `y0..y1`. Empty and inverted
/// rectangles are normalised to zero area by the accessors.
///
/// # Examples
///
/// ```
/// use adreno_sim::geom::Rect;
///
/// let r = Rect::from_xywh(10, 20, 30, 40);
/// assert_eq!(r.width(), 30);
/// assert_eq!(r.area(), 30 * 40);
/// assert!(r.contains(10, 20));
/// assert!(!r.contains(40, 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    pub x0: i32,
    pub y0: i32,
    pub x1: i32,
    pub y1: i32,
}

impl Rect {
    /// A rectangle with zero area at the origin.
    pub const EMPTY: Rect = Rect { x0: 0, y0: 0, x1: 0, y1: 0 };

    /// Creates a rectangle from its corners. The corners are not reordered;
    /// an inverted rectangle simply has zero area.
    pub const fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Rect { x0, y0, x1, y1 }
    }

    /// Creates a rectangle from its top-left corner plus width and height.
    pub const fn from_xywh(x: i32, y: i32, w: i32, h: i32) -> Self {
        Rect { x0: x, y0: y, x1: x + w, y1: y + h }
    }

    /// Width in pixels (zero for inverted rectangles).
    pub const fn width(&self) -> i32 {
        if self.x1 > self.x0 {
            self.x1 - self.x0
        } else {
            0
        }
    }

    /// Height in pixels (zero for inverted rectangles).
    pub const fn height(&self) -> i32 {
        if self.y1 > self.y0 {
            self.y1 - self.y0
        } else {
            0
        }
    }

    /// Area in pixels.
    pub const fn area(&self) -> i64 {
        self.width() as i64 * self.height() as i64
    }

    /// Whether the rectangle covers no pixels.
    pub const fn is_empty(&self) -> bool {
        self.x1 <= self.x0 || self.y1 <= self.y0
    }

    /// Whether the pixel at `(x, y)` lies inside the rectangle.
    pub const fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Whether `other` is entirely inside `self`. Empty rectangles are
    /// contained by everything.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.x0 >= self.x0
                && other.x1 <= self.x1
                && other.y0 >= self.y0
                && other.y1 <= self.y1)
    }

    /// The overlapping region of two rectangles (possibly empty).
    pub fn intersect(&self, other: &Rect) -> Rect {
        let r = Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        };
        if r.is_empty() {
            Rect::EMPTY
        } else {
            r
        }
    }

    /// Whether the two rectangles share any pixel.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The smallest rectangle containing both inputs. Empty inputs are
    /// ignored.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Translates the rectangle by `(dx, dy)`.
    pub const fn translated(&self, dx: i32, dy: i32) -> Rect {
        Rect { x0: self.x0 + dx, y0: self.y0 + dy, x1: self.x1 + dx, y1: self.y1 + dy }
    }

    /// Shrinks the rectangle by `margin` pixels on every side, clamping at
    /// zero size.
    pub fn inset(&self, margin: i32) -> Rect {
        let r = Rect {
            x0: self.x0 + margin,
            y0: self.y0 + margin,
            x1: self.x1 - margin,
            y1: self.y1 - margin,
        };
        if r.is_empty() {
            Rect { x0: r.x0, y0: r.y0, x1: r.x0, y1: r.y0 }
        } else {
            r
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{} @ ({}, {})]", self.width(), self.height(), self.x0, self.y0)
    }
}

/// A line segment, used by the stroke font. Coordinates are in the glyph's
/// own unit grid (see [`crate::font`]) until scaled into screen space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub x0: f32,
    pub y0: f32,
    pub x1: f32,
    pub y1: f32,
}

impl Segment {
    /// Creates a segment between two endpoints.
    pub const fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        Segment { x0, y0, x1, y1 }
    }

    /// Euclidean length of the segment.
    pub fn length(&self) -> f32 {
        let dx = self.x1 - self.x0;
        let dy = self.y1 - self.y0;
        (dx * dx + dy * dy).sqrt()
    }

    /// The tight integer bounding box of the segment once mapped into the
    /// destination rectangle `dest` (the glyph cell in screen space), given
    /// the glyph grid size and a stroke thickness in pixels.
    pub fn screen_bounds(&self, dest: &Rect, grid: f32, thickness: i32) -> Rect {
        let sx = dest.width() as f32 / grid;
        let sy = dest.height() as f32 / grid;
        let x0 = dest.x0 as f32 + self.x0.min(self.x1) * sx;
        let x1 = dest.x0 as f32 + self.x0.max(self.x1) * sx;
        let y0 = dest.y0 as f32 + self.y0.min(self.y1) * sy;
        let y1 = dest.y0 as f32 + self.y0.max(self.y1) * sy;
        let half = (thickness / 2).max(1);
        Rect {
            x0: x0.floor() as i32 - half,
            y0: y0.floor() as i32 - half,
            x1: x1.ceil() as i32 + half,
            y1: y1.ceil() as i32 + half,
        }
    }

    /// Approximate pixel coverage of the stroked segment when mapped into
    /// `dest` with the given grid size and thickness: length × thickness,
    /// with a square cap.
    pub fn screen_coverage(&self, dest: &Rect, grid: f32, thickness: i32) -> i64 {
        let sx = dest.width() as f32 / grid;
        let sy = dest.height() as f32 / grid;
        let dx = (self.x1 - self.x0) * sx;
        let dy = (self.y1 - self.y0) * sy;
        let len = (dx * dx + dy * dy).sqrt();
        let t = thickness.max(1) as f32;
        ((len * t) + t * t).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basic_accessors() {
        let r = Rect::from_xywh(5, 6, 7, 8);
        assert_eq!(r.width(), 7);
        assert_eq!(r.height(), 8);
        assert_eq!(r.area(), 56);
        assert!(!r.is_empty());
    }

    #[test]
    fn inverted_rect_is_empty() {
        let r = Rect::new(10, 10, 5, 5);
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
        assert_eq!(r.width(), 0);
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::from_xywh(0, 0, 10, 10);
        let b = Rect::from_xywh(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 10, 10));
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));
        assert!(a.intersects(&b));
        let c = Rect::from_xywh(20, 20, 5, 5);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersect(&c), Rect::EMPTY);
    }

    #[test]
    fn containment() {
        let outer = Rect::from_xywh(0, 0, 100, 100);
        let inner = Rect::from_xywh(10, 10, 20, 20);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn inset_clamps() {
        let r = Rect::from_xywh(0, 0, 10, 10);
        assert_eq!(r.inset(2), Rect::new(2, 2, 8, 8));
        assert!(r.inset(6).is_empty());
    }

    #[test]
    fn segment_coverage_scales_with_dest() {
        let s = Segment::new(0.0, 0.0, 8.0, 0.0);
        let small = Rect::from_xywh(0, 0, 16, 16);
        let large = Rect::from_xywh(0, 0, 64, 64);
        assert!(s.screen_coverage(&large, 8.0, 2) > s.screen_coverage(&small, 8.0, 2));
    }

    #[test]
    fn segment_bounds_include_thickness() {
        let s = Segment::new(1.0, 1.0, 1.0, 7.0);
        let dest = Rect::from_xywh(100, 100, 80, 80);
        let b = s.screen_bounds(&dest, 8.0, 4);
        assert!(b.x0 < 110 + 1);
        assert!(b.width() >= 4);
    }
}
