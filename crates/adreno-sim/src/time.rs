//! Simulated time.
//!
//! The whole reproduction runs on a discrete simulated clock with nanosecond
//! resolution. Newtypes keep instants and durations from being confused with
//! each other or with raw counter values.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point on the simulated timeline, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use adreno_sim::time::{SimDuration, SimInstant};
///
/// let t = SimInstant::ZERO + SimDuration::from_millis(8);
/// assert_eq!(t.as_nanos(), 8_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use adreno_sim::time::SimDuration;
///
/// let frame = SimDuration::from_millis(16) + SimDuration::from_micros(667);
/// assert_eq!(frame.as_micros(), 16_667);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimInstant {
    /// The origin of the simulated timeline.
    pub const ZERO: SimInstant = SimInstant(0);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimInstant(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    ///
    /// Returns `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimInstant) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked duration subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a float factor, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.as_micros())
        }
    }
}

/// A shared, monotonically advancing simulation clock.
///
/// The UI simulation advances the clock; every other component (the KGSL
/// device, samplers, schedulers) reads it, mirroring how real code reads the
/// wall clock without owning it.
///
/// # Examples
///
/// ```
/// use adreno_sim::time::{SharedClock, SimInstant};
///
/// let clock = SharedClock::new();
/// let reader = clock.clone();
/// clock.advance_to(SimInstant::from_millis(5));
/// assert_eq!(reader.now(), SimInstant::from_millis(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedClock {
    nanos: Arc<AtomicU64>,
}

impl SharedClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SharedClock::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.nanos.load(Ordering::Acquire))
    }

    /// Advances the clock to `t`. Going backwards is a no-op: the clock is
    /// monotonic even with multiple writers.
    pub fn advance_to(&self, t: SimInstant) {
        self.nanos.fetch_max(t.as_nanos(), Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_clock_is_monotonic() {
        let clock = SharedClock::new();
        clock.advance_to(SimInstant::from_millis(10));
        clock.advance_to(SimInstant::from_millis(5)); // ignored
        assert_eq!(clock.now(), SimInstant::from_millis(10));
    }

    #[test]
    fn instant_arithmetic_round_trips() {
        let t = SimInstant::from_millis(100);
        let d = SimDuration::from_millis(8);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimInstant::from_nanos(5);
        let late = SimInstant::from_nanos(10);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(5));
    }

    #[test]
    fn checked_since_detects_order() {
        let early = SimInstant::from_nanos(5);
        let late = SimInstant::from_nanos(10);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_nanos(5)));
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert!((SimDuration::from_secs_f64(0.5).as_millis()) == 500);
    }

    #[test]
    fn duration_mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_nanos(3)); // 2.5 rounds to 3
        assert_eq!(d.mul_f64(2.0), SimDuration::from_nanos(20));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(8).to_string(), "8.000ms");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
    }
}
