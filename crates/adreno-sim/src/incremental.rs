//! Incremental frame-delta rendering: layer-granularity reuse between
//! consecutive frames of one surface.
//!
//! The UI simulation submits nearly-identical draw lists frame after frame —
//! a keyboard frame differs from its predecessor by one key popup, an
//! animated login frame by one decoration layer. The full pipeline
//! ([`crate::pipeline::render`]) reprocesses every primitive whenever the
//! whole-list memo misses; a [`FrameRenderer`] instead diffs the new
//! [`DrawList`] against the previous frame and recomputes only what changed:
//!
//! * **Layer fingerprints** — every layer gets a 128-bit content fingerprint
//!   (the `memo::Mixer` idiom) plus an *occlusion-above*
//!   fingerprint over the opaque quads of all higher layers.
//! * **Mask reuse** — a layer whose occlusion-above fingerprint is unchanged
//!   keeps its previous occlusion-mask `Arc` untouched; only layers at or
//!   below the topmost changed occluder are re-masked, top-down, exactly as
//!   the full renderer's pass 1 builds them.
//! * **Stats reuse** — a layer whose content fingerprint is unchanged *and*
//!   whose visible occlusion-region bits (the
//!   `memo::glyph_occlusion_fingerprint` over the layer's bounds)
//!   are unchanged reuses its cached per-prim stats `Arc`. Dirty layers go
//!   through a process-global per-layer stats cache keyed by
//!   `(content, region bits, params, viewport)`, so a layer recurring in any
//!   session is computed once per process.
//! * **Bit-identical assembly** — the merged per-prim stream, in submission
//!   order, is folded through the same
//!   `pipeline::fold_prim_stream` the full renderer uses, so
//!   totals, cycles and checkpoints are bit-identical to
//!   [`crate::pipeline::render_uncached`] (pinned by the frame-sequence
//!   proptests in `tests/incremental_proptests.rs`).
//!
//! A renderer also interoperates with the whole-list memo: the whole-frame
//! fingerprint it derives during the diff pass equals
//! [`crate::memo::fingerprint`], so identical frames — including frames
//! first rendered by *another* session — are served from the global cache
//! without touching a single primitive, and every incremental result is
//! published back into it.
//!
//! [`RendererSet`] keys renderers by viewport so one GPU timeline with
//! interleaved surfaces (keyboard window, app window, status bar) diffs each
//! surface against its own previous frame; submissions beyond the stream cap
//! fall back to [`crate::memo::render_cached`].

use std::sync::{Arc, OnceLock};

use crate::geom::Rect;
use crate::memo::{self, Fingerprint, Mixer};
use crate::model::GpuParams;
use crate::pipeline::{self, OcclusionGrid, PrimStats, RenderOutput};
use crate::scene::{DrawList, Primitive};

/// Streams (distinct viewports) one [`RendererSet`] tracks before falling
/// back to the whole-list cache. Simulations use a handful of surface sizes.
const MAX_STREAMS: usize = 8;

/// Entry cap of the process-global per-layer stats cache.
fn layer_cache() -> &'static memo::GlyphCache<Vec<PrimStats>> {
    static CACHE: OnceLock<memo::GlyphCache<Vec<PrimStats>>> = OnceLock::new();
    CACHE.get_or_init(|| {
        memo::GlyphCache::with_counters(
            "adreno.incremental.layer_hits",
            "adreno.incremental.layer_misses",
        )
    })
}

/// Per-layer stats cache hit/miss counters.
pub fn layer_cache_stats() -> memo::CacheStats {
    layer_cache().stats()
}

pub(crate) fn reset_layer_cache() {
    layer_cache().reset()
}

/// Counters of one renderer's (or one renderer set's) reuse behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Frames submitted through the incremental path.
    pub frames: u64,
    /// Frames served without any per-layer work (previous-frame or
    /// whole-list cache hit).
    pub identical_frames: u64,
    /// Layers whose cached per-prim stats were reused as-is.
    pub layers_reused: u64,
    /// Layers recomputed (content or visible occlusion region changed).
    pub layers_dirty: u64,
    /// Per-prim stats actually recomputed (layer-cache misses only).
    pub prims_recomputed: u64,
    /// Occlusion-mask snapshots reused from the previous frame.
    pub mask_reuse: u64,
    /// Submissions routed to the plain whole-list cache (stream cap hit).
    pub fallback_frames: u64,
}

impl IncrementalStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &IncrementalStats) {
        self.frames += other.frames;
        self.identical_frames += other.identical_frames;
        self.layers_reused += other.layers_reused;
        self.layers_dirty += other.layers_dirty;
        self.prims_recomputed += other.prims_recomputed;
        self.mask_reuse += other.mask_reuse;
        self.fallback_frames += other.fallback_frames;
    }
}

/// Per-layer fingerprints of the frame being rendered.
#[derive(Debug)]
struct LayerFp {
    /// Fingerprint of the layer's primitive stream.
    content: Fingerprint,
    /// Fingerprint of the opaque quads of every layer above, top-down.
    occ_above: Fingerprint,
    /// Union of the layer's primitive bounds in screen space.
    bounds: Rect,
    has_opaque: bool,
}

/// One retained layer of the previous frame.
#[derive(Debug)]
struct Slot {
    content_fp: Fingerprint,
    occ_above_fp: Fingerprint,
    bounds: Rect,
    mask: Arc<OcclusionGrid>,
    /// Occlusion bits of `mask` inside `bounds`, computed lazily the first
    /// time a content-identical layer needs the comparison.
    region_fp: Option<Fingerprint>,
    stats: Arc<Vec<PrimStats>>,
}

/// The previous frame's retained state.
#[derive(Debug)]
struct PrevFrame {
    width: i32,
    height: i32,
    params_fp: Fingerprint,
    whole_fp: Fingerprint,
    output: Arc<RenderOutput>,
    slots: Vec<Slot>,
}

/// A persistent renderer for one surface: diffs each submitted [`DrawList`]
/// against the previous frame at layer granularity and recomputes only dirty
/// layers. Output is bit-identical to [`crate::pipeline::render_uncached`].
///
/// # Examples
///
/// ```
/// use adreno_sim::geom::Rect;
/// use adreno_sim::incremental::FrameRenderer;
/// use adreno_sim::model::GpuModel;
/// use adreno_sim::pipeline::render_uncached;
/// use adreno_sim::scene::DrawList;
///
/// let params = GpuModel::Adreno650.params();
/// let mut r = FrameRenderer::new();
/// let mut dl = DrawList::new(256, 256);
/// dl.layer("bg").quad(Rect::from_xywh(0, 0, 256, 256), true);
/// let a = r.render(&dl, &params);
/// dl.layer("popup").glyph('w', Rect::from_xywh(40, 40, 90, 110), 8);
/// let b = r.render(&dl, &params); // only the popup layer is computed
/// assert_eq!(*a, render_uncached(&a_list(), &params));
/// # fn a_list() -> DrawList {
/// #     let mut dl = DrawList::new(256, 256);
/// #     dl.layer("bg").quad(Rect::from_xywh(0, 0, 256, 256), true);
/// #     dl
/// # }
/// assert_eq!(*b, render_uncached(&dl, &params));
/// ```
#[derive(Debug, Default)]
pub struct FrameRenderer {
    prev: Option<PrevFrame>,
    stats: IncrementalStats,
    /// Reusable per-frame scratch, high-water-marked so steady-state frames
    /// do not allocate for fingerprinting or mask bookkeeping.
    fp_scratch: Vec<LayerFp>,
    mask_scratch: Vec<Arc<OcclusionGrid>>,
    slots_spare: Vec<Slot>,
}

impl FrameRenderer {
    /// Creates a renderer with no previous frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse counters accumulated by this renderer.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Renders `draw_list`, reusing layer results from the previous frame
    /// where fingerprints prove them unchanged. A viewport or parameter
    /// change (a non-sequential submission) simply renders every layer dirty
    /// through the per-layer cache; correctness never depends on the diff.
    pub fn render(&mut self, draw_list: &DrawList, params: &GpuParams) -> Arc<RenderOutput> {
        self.stats.frames += 1;
        spansight::count("adreno.incremental.frames", 1);
        let _span = spansight::span("adreno", "render.incremental");
        let (w, h) = (draw_list.width(), draw_list.height());
        let layers = draw_list.layers();

        let mut pm = Mixer::new();
        memo::write_params(&mut pm, params);
        let params_fp = pm.finish();

        // Fingerprint pass: per-layer content fingerprints and bounds, plus
        // the whole-list fingerprint (identical to `memo::fingerprint`, so
        // the global whole-list cache can be probed without re-hashing).
        let base_fp = Mixer::new().finish();
        self.fp_scratch.clear();
        let mut whole = Mixer::new();
        whole.write_i32(w);
        whole.write_i32(h);
        for layer in layers {
            whole.write(0xA5A5_A5A5);
            let mut cm = Mixer::new();
            let mut bounds = Rect::EMPTY;
            let mut has_opaque = false;
            for prim in &layer.prims {
                memo::write_prim(&mut whole, prim);
                memo::write_prim(&mut cm, prim);
                bounds = bounds.union(&prim.bounds());
                if let Primitive::Quad { rect, opaque: true } = prim {
                    if !rect.is_empty() {
                        has_opaque = true;
                    }
                }
            }
            self.fp_scratch.push(LayerFp {
                content: cm.finish(),
                occ_above: base_fp,
                bounds,
                has_opaque,
            });
        }
        memo::write_params(&mut whole, params);
        let whole_fp = whole.finish();
        debug_assert_eq!(whole_fp, memo::fingerprint(draw_list, params));

        // Occlusion-above fingerprints, top-down: layer i's value hashes the
        // opaque quads of layers i+1.. in submission order. Layer boundaries
        // are irrelevant here — masks depend only on the rect stream.
        {
            let mut om = Mixer::new();
            for i in (0..self.fp_scratch.len()).rev() {
                self.fp_scratch[i].occ_above = om.finish();
                if self.fp_scratch[i].has_opaque {
                    for prim in &layers[i].prims {
                        if let Primitive::Quad { rect, opaque: true } = prim {
                            if !rect.is_empty() {
                                om.write_i32(rect.x0);
                                om.write_i32(rect.y0);
                                om.write_i32(rect.x1);
                                om.write_i32(rect.y1);
                            }
                        }
                    }
                }
            }
        }

        // Identical to the previous frame: nothing to do at all.
        if let Some(prev) = &self.prev {
            if prev.whole_fp == whole_fp {
                self.stats.identical_frames += 1;
                spansight::count("adreno.incremental.identical_frames", 1);
                return Arc::clone(&prev.output);
            }
        }
        // Identical to *some* frame rendered before, by any session: serve
        // from the global whole-list cache. The diff baseline stays at the
        // last locally-diffed frame, which is only a reuse heuristic.
        if let Some(hit) = memo::render_cache_lookup(whole_fp) {
            self.stats.identical_frames += 1;
            spansight::count("adreno.incremental.identical_frames", 1);
            return hit;
        }

        let sequential = self
            .prev
            .as_ref()
            .is_some_and(|p| p.width == w && p.height == h && p.params_fp == params_fp);
        let n = layers.len();
        let Self { prev, fp_scratch, mask_scratch, slots_spare, stats } = self;
        let fps = &fp_scratch[..];
        let prev_slots: &mut [Slot] = match (sequential, prev.as_mut()) {
            (true, Some(p)) => &mut p.slots,
            _ => &mut [],
        };

        // Occlusion pass: rebuild masks top-down, reusing the previous
        // frame's snapshot `Arc` for every layer whose occlusion-above
        // fingerprint is unchanged. Only layers at or below the topmost
        // changed occluder accumulate a fresh grid, and — like the full
        // renderer's pass 1 — a layer adding no opaque content shares its
        // upper neighbour's snapshot instead of cloning it.
        let pass1 = spansight::span("adreno", "render.occlusion_pass");
        mask_scratch.clear();
        {
            let mut cur: Option<Arc<OcclusionGrid>> = None;
            for i in (0..n).rev() {
                let reusable =
                    prev_slots.get(i).is_some_and(|s| s.occ_above_fp == fps[i].occ_above);
                let mask_i = if reusable {
                    stats.mask_reuse += 1;
                    spansight::count("adreno.incremental.mask_reuse", 1);
                    Arc::clone(&prev_slots[i].mask)
                } else if let Some(above) = &cur {
                    if fps[i + 1].has_opaque {
                        let mut g = (**above).clone();
                        for prim in &layers[i + 1].prims {
                            if let Primitive::Quad { rect, opaque: true } = prim {
                                if !rect.is_empty() {
                                    g.add_opaque_rect(rect);
                                }
                            }
                        }
                        Arc::new(g)
                    } else {
                        Arc::clone(above)
                    }
                } else {
                    Arc::new(OcclusionGrid::new(w, h))
                };
                mask_scratch.push(Arc::clone(&mask_i));
                cur = Some(mask_i);
            }
            mask_scratch.reverse();
        }
        drop(pass1);

        // Prim pass: reuse stats for layers whose content and visible
        // occlusion-region bits are unchanged; everything else recomputes
        // through the process-global per-layer cache.
        let pass2 = spansight::span("adreno", "render.prim_pass");
        let mut new_slots = std::mem::take(slots_spare);
        let mut recomputed = 0u64;
        for (i, fp) in fps.iter().enumerate() {
            let mask_i = &mask_scratch[i];
            let mut reused: Option<(Arc<Vec<PrimStats>>, Option<Fingerprint>)> = None;
            let mut fresh_region: Option<Fingerprint> = None;
            if let Some(ps) = prev_slots.get_mut(i) {
                if ps.content_fp == fp.content {
                    if Arc::ptr_eq(&ps.mask, mask_i) {
                        // Same mask snapshot → same region bits, trivially.
                        reused = Some((Arc::clone(&ps.stats), ps.region_fp));
                    } else {
                        let new_fp = memo::glyph_occlusion_fingerprint(&fp.bounds, mask_i);
                        fresh_region = Some(new_fp);
                        let prev_fp = *ps.region_fp.get_or_insert_with(|| {
                            memo::glyph_occlusion_fingerprint(&ps.bounds, &ps.mask)
                        });
                        if new_fp == prev_fp {
                            reused = Some((Arc::clone(&ps.stats), Some(new_fp)));
                        }
                    }
                }
            }
            let slot = match reused {
                Some((stats_arc, region_fp)) => {
                    stats.layers_reused += 1;
                    spansight::count("adreno.incremental.layers_reused", 1);
                    Slot {
                        content_fp: fp.content,
                        occ_above_fp: fp.occ_above,
                        bounds: fp.bounds,
                        mask: Arc::clone(mask_i),
                        region_fp,
                        stats: stats_arc,
                    }
                }
                None => {
                    stats.layers_dirty += 1;
                    spansight::count("adreno.incremental.layers_dirty", 1);
                    let region = fresh_region
                        .unwrap_or_else(|| memo::glyph_occlusion_fingerprint(&fp.bounds, mask_i));
                    let mut km = Mixer::new();
                    km.write(fp.content.lo);
                    km.write(fp.content.hi);
                    km.write(region.lo);
                    km.write(region.hi);
                    km.write(params_fp.lo);
                    km.write(params_fp.hi);
                    km.write_i32(w);
                    km.write_i32(h);
                    let stats_arc = layer_cache().get_or_insert_with(km.finish(), || {
                        let s = pipeline::layer_stats(&layers[i], mask_i, params);
                        recomputed += s.len() as u64;
                        s
                    });
                    Slot {
                        content_fp: fp.content,
                        occ_above_fp: fp.occ_above,
                        bounds: fp.bounds,
                        mask: Arc::clone(mask_i),
                        region_fp: Some(region),
                        stats: stats_arc,
                    }
                }
            };
            new_slots.push(slot);
        }
        drop(pass2);
        stats.prims_recomputed += recomputed;
        if recomputed > 0 {
            spansight::count("adreno.incremental.prims_recomputed", recomputed);
        }

        // Assemble the merged per-prim stream in submission order through
        // the same fold the full renderer uses — bit-identical output.
        let total_prims: usize = new_slots.iter().map(|s| s.stats.len()).sum();
        let output = Arc::new(pipeline::fold_prim_stream(
            new_slots.iter().flat_map(|s| s.stats.iter().copied()),
            total_prims,
        ));
        memo::render_cache_insert(whole_fp, Arc::clone(&output));
        let old = prev.replace(PrevFrame {
            width: w,
            height: h,
            params_fp,
            whole_fp,
            output: Arc::clone(&output),
            slots: new_slots,
        });
        if let Some(mut o) = old {
            o.slots.clear();
            *slots_spare = o.slots;
        }
        output
    }
}

/// A small set of [`FrameRenderer`]s keyed by viewport, so one GPU timeline
/// carrying interleaved surfaces (keyboard window, full-screen windows,
/// status bar) diffs each surface against its own previous frame.
/// Submissions beyond `MAX_STREAMS` (8) distinct viewports fall back to
/// the plain whole-list cache.
#[derive(Debug, Default)]
pub struct RendererSet {
    streams: Vec<((i32, i32), FrameRenderer)>,
    fallback_frames: u64,
}

impl RendererSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders through the stream for `draw_list`'s viewport, creating it on
    /// first use.
    pub fn render(&mut self, draw_list: &DrawList, params: &GpuParams) -> Arc<RenderOutput> {
        let key = (draw_list.width(), draw_list.height());
        if let Some(idx) = self.streams.iter().position(|(k, _)| *k == key) {
            return self.streams[idx].1.render(draw_list, params);
        }
        if self.streams.len() < MAX_STREAMS {
            self.streams.push((key, FrameRenderer::new()));
            let (_, renderer) = self.streams.last_mut().expect("just pushed");
            return renderer.render(draw_list, params);
        }
        self.fallback_frames += 1;
        spansight::count("adreno.incremental.fallback_frames", 1);
        memo::render_cached(draw_list, params)
    }

    /// Reuse counters summed over every stream, plus fallback submissions.
    pub fn stats(&self) -> IncrementalStats {
        let mut total =
            IncrementalStats { fallback_frames: self.fallback_frames, ..Default::default() };
        for (_, r) in &self.streams {
            total.merge(&r.stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GpuModel;
    use crate::pipeline::render_uncached;

    fn params() -> GpuParams {
        GpuModel::Adreno650.params()
    }

    /// `vw` must be unique per test: the whole-list cache is process-global,
    /// and a cache hit on another test's identical frame would bypass the
    /// diff machinery under assertion here.
    fn keyboard_frame(vw: i32, popup: Option<char>, field_len: i32) -> DrawList {
        let mut dl = DrawList::new(vw, 512);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, vw, 512), true);
        let field = dl.layer("field");
        field.quad(Rect::from_xywh(20, 20, 400, 40), true);
        for i in 0..field_len {
            field.quad(Rect::from_xywh(24 + i * 12, 28, 8, 24), false);
        }
        let keys = dl.layer("keys");
        for i in 0..10 {
            keys.quad(Rect::from_xywh(i * 50, 300, 46, 60), true);
            keys.glyph((b'a' + i as u8) as char, Rect::from_xywh(i * 50 + 8, 308, 30, 44), 4);
        }
        if let Some(ch) = popup {
            dl.layer("popup").quad(Rect::from_xywh(200, 180, 90, 110), true);
            dl.layer("popup-glyph").glyph(ch, Rect::from_xywh(205, 185, 80, 100), 8);
        }
        dl
    }

    #[test]
    fn frame_sequence_matches_uncached() {
        let params = params();
        let mut r = FrameRenderer::new();
        let frames = [
            keyboard_frame(512, None, 0),
            keyboard_frame(512, Some('w'), 0),
            keyboard_frame(512, Some('w'), 1), // popup held, cursor advances
            keyboard_frame(512, None, 1),
            keyboard_frame(512, Some('x'), 1),
            keyboard_frame(512, Some('x'), 1), // identical repeat
            keyboard_frame(512, None, 2),
            keyboard_frame(512, None, 0), // back to the first frame
        ];
        for dl in &frames {
            assert_eq!(*r.render(dl, &params), render_uncached(dl, &params));
        }
        let s = r.stats();
        assert_eq!(s.frames, frames.len() as u64);
        assert!(s.identical_frames >= 2, "repeat + revisit must shortcut: {s:?}");
        assert!(s.layers_reused > 0, "static layers must be reused: {s:?}");
        // The popup-held transition changes no opaque content: all five
        // masks carry over.
        assert!(s.mask_reuse >= 5, "unchanged upper masks must be reused: {s:?}");
    }

    #[test]
    fn non_occluding_change_reuses_every_other_layer() {
        let params = params();
        let mut r = FrameRenderer::new();
        let mut base = keyboard_frame(520, None, 0);
        base.layer("anim").quad(Rect::from_xywh(100, 100, 200, 200), false);
        let _ = r.render(&base, &params);
        let mut next = keyboard_frame(520, None, 0);
        next.layer("anim").quad(Rect::from_xywh(104, 100, 200, 200), false);
        let before = r.stats();
        assert_eq!(*r.render(&next, &params), render_uncached(&next, &params));
        let d = r.stats();
        // A translucent layer's movement occludes nothing: every mask is
        // reused and only the animated layer recomputes.
        assert_eq!(d.mask_reuse - before.mask_reuse, 4);
        assert_eq!(d.layers_dirty - before.layers_dirty, 1);
        assert_eq!(d.layers_reused - before.layers_reused, 3);
    }

    #[test]
    fn occluder_change_remasks_only_below() {
        let params = params();
        let mut r = FrameRenderer::new();
        let _ = r.render(&keyboard_frame(528, Some('w'), 0), &params);
        let before = r.stats();
        // Moving the opaque popup re-masks layers below it; the popup glyph
        // layer above keeps its mask.
        let mut moved = keyboard_frame(528, None, 0);
        moved.layer("popup").quad(Rect::from_xywh(240, 180, 90, 110), true);
        moved.layer("popup-glyph").glyph('w', Rect::from_xywh(245, 185, 80, 100), 8);
        assert_eq!(*r.render(&moved, &params), render_uncached(&moved, &params));
        let d = r.stats();
        assert_eq!(d.mask_reuse - before.mask_reuse, 2, "popup + glyph masks unchanged");
    }

    #[test]
    fn identical_frame_returns_previous_output_arc() {
        let params = params();
        let mut r = FrameRenderer::new();
        let dl = keyboard_frame(536, Some('q'), 3);
        let a = r.render(&dl, &params);
        let b = r.render(&dl, &params);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn viewport_change_is_handled_as_non_sequential() {
        let params = params();
        let mut r = FrameRenderer::new();
        let _ = r.render(&keyboard_frame(544, None, 0), &params);
        let mut small = DrawList::new(128, 128);
        small.layer("bg").quad(Rect::from_xywh(0, 0, 128, 128), true);
        assert_eq!(*r.render(&small, &params), render_uncached(&small, &params));
        // And diffing resumes against the new frame.
        let mut small2 = small.clone();
        small2.layer("dot").quad(Rect::from_xywh(10, 10, 8, 8), false);
        assert_eq!(*r.render(&small2, &params), render_uncached(&small2, &params));
    }

    #[test]
    fn empty_draw_list_renders_to_zero() {
        let params = params();
        let mut r = FrameRenderer::new();
        let dl = DrawList::new(64, 64);
        let out = r.render(&dl, &params);
        assert!(out.totals.is_zero());
        assert_eq!(out.total_cycles, 0);
        assert!(out.checkpoints.is_empty());
    }

    #[test]
    fn layer_insert_and_delete_stay_identical() {
        let params = params();
        let mut r = FrameRenderer::new();
        // Grow and shrink the layer stack; positional slot alignment shifts
        // but fingerprints keep the output exact.
        for n in [1usize, 3, 2, 5, 1, 4] {
            let mut dl = DrawList::new(300, 300);
            for i in 0..n {
                let layer = dl.layer("stack");
                layer.quad(Rect::from_xywh(10 * i as i32, 10 * i as i32, 120, 120), i % 2 == 0);
                layer.glyph('k', Rect::from_xywh(150, 10 + 30 * i as i32, 24, 28), 4);
            }
            assert_eq!(*r.render(&dl, &params), render_uncached(&dl, &params));
        }
    }

    #[test]
    fn renderer_set_keys_streams_by_viewport_and_falls_back() {
        let params = params();
        let mut set = RendererSet::new();
        // Interleave two viewports: each keeps its own diff stream.
        for round in 0..3 {
            for (w, h) in [(256, 256), (512, 384)] {
                let mut dl = DrawList::new(w, h);
                dl.layer("bg").quad(Rect::from_xywh(0, 0, w, h), true);
                dl.layer("blob").quad(Rect::from_xywh(10, 10 + round, 50, 50), false);
                assert_eq!(*set.render(&dl, &params), render_uncached(&dl, &params));
            }
        }
        assert!(set.stats().layers_reused > 0, "streams must reuse across interleaving");
        // Exhaust the stream cap: extra viewports still render correctly.
        for i in 0..(MAX_STREAMS as i32 + 3) {
            let mut dl = DrawList::new(600 + i, 100);
            dl.layer("bg").quad(Rect::from_xywh(0, 0, 600 + i, 100), true);
            assert_eq!(*set.render(&dl, &params), render_uncached(&dl, &params));
        }
        assert!(set.stats().fallback_frames > 0, "cap overflow must fall back");
    }
}
