//! Render memoization: process-global caches over the deterministic
//! pipeline.
//!
//! [`crate::pipeline::render`] is a pure function of `(DrawList, GpuParams)`
//! — the property the side channel itself exploits — so its outputs can be
//! cached without changing any observable result. The experiment suite
//! re-renders the same lists constantly: every keyboard frame of every
//! trial, and the calibration / field-update signature renders repeated by
//! every `Trainer::train` call. Two cache layers capture that reuse:
//!
//! 1. **Whole-list cache** ([`render_cached`]) — keyed by a 128-bit
//!    fingerprint of the draw-list contents plus the GPU parameters, valued
//!    by the complete [`RenderOutput`] behind an `Arc`.
//! 2. **Per-glyph stroke-stats cache** (used inside `render` itself) —
//!    keyed by `(ch, dest, thickness, occlusion fingerprint, params)`,
//!    valued by the per-stroke pipeline stats. This hits even when whole
//!    lists differ, e.g. the same popup glyph over different backgrounds.
//!
//! Both caches are thread-safe and deterministic: values are pure functions
//! of their keys, so concurrent fills from different threads are benign.
//! [`render_cache_stats`] exposes hit/miss counters;
//! [`reset_render_caches`] drops everything (benchmarks measuring the cold
//! path, and tests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::model::GpuParams;
use crate::pipeline::{self, OcclusionGrid, RenderOutput, LRZ_TILE};
use crate::scene::{DrawList, Primitive};

/// Entry cap of the whole-list cache; on overflow the cache is dropped
/// wholesale (the working set of the experiment suite is far below this, so
/// eviction is a backstop, not a policy).
const RENDER_CACHE_CAP: usize = 4096;
/// Entry cap of the per-glyph cache (entries are a few hundred bytes).
const GLYPH_CACHE_CAP: usize = 65_536;

/// A 128-bit content fingerprint. Two independently-mixed 64-bit lanes make
/// accidental collisions across the few thousand distinct draw lists the
/// suite produces vanishingly unlikely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    pub(crate) lo: u64,
    pub(crate) hi: u64,
}

/// Incremental two-lane mixer behind [`Fingerprint`]: FNV-1a in one lane,
/// a murmur-style multiply-shift in the other.
#[derive(Debug, Clone)]
pub(crate) struct Mixer {
    lo: u64,
    hi: u64,
}

impl Mixer {
    pub(crate) fn new() -> Self {
        Mixer { lo: 0xcbf2_9ce4_8422_2325, hi: 0x9e37_79b9_7f4a_7c15 }
    }

    pub(crate) fn write(&mut self, v: u64) {
        self.lo = (self.lo ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        let mut h = self.hi ^ v.rotate_left(31);
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        self.hi = h.wrapping_add(self.lo.rotate_left(17));
    }

    pub(crate) fn write_i32(&mut self, v: i32) {
        self.write(v as u32 as u64);
    }

    pub(crate) fn finish(&self) -> Fingerprint {
        Fingerprint { lo: self.lo, hi: self.hi }
    }
}

pub(crate) fn write_params(m: &mut Mixer, params: &GpuParams) {
    m.write_i32(params.supertile_w);
    m.write_i32(params.supertile_h);
    m.write(params.clock_mhz as u64);
    m.write(params.pixels_per_cycle as u64);
    m.write(params.prim_setup_cycles as u64);
}

pub(crate) fn write_prim(m: &mut Mixer, prim: &Primitive) {
    match prim {
        Primitive::Quad { rect, opaque } => {
            m.write(1);
            m.write_i32(rect.x0);
            m.write_i32(rect.y0);
            m.write_i32(rect.x1);
            m.write_i32(rect.y1);
            m.write(u64::from(*opaque));
        }
        Primitive::Glyph { ch, dest, thickness } => {
            m.write(2);
            m.write(*ch as u64);
            m.write_i32(dest.x0);
            m.write_i32(dest.y0);
            m.write_i32(dest.x1);
            m.write_i32(dest.y1);
            m.write_i32(*thickness);
        }
        Primitive::Stroke { seg, dest, thickness } => {
            m.write(3);
            m.write(seg.x0.to_bits() as u64);
            m.write(seg.y0.to_bits() as u64);
            m.write(seg.x1.to_bits() as u64);
            m.write(seg.y1.to_bits() as u64);
            m.write_i32(dest.x0);
            m.write_i32(dest.y0);
            m.write_i32(dest.x1);
            m.write_i32(dest.y1);
            m.write_i32(*thickness);
        }
    }
}

/// Fingerprints everything `render` consumes: the viewport, every
/// primitive of every layer in order, and the GPU parameters. Layer tags
/// are debug metadata the pipeline never reads, so they are excluded.
pub fn fingerprint(draw_list: &DrawList, params: &GpuParams) -> Fingerprint {
    let mut m = Mixer::new();
    m.write_i32(draw_list.width());
    m.write_i32(draw_list.height());
    for layer in draw_list.layers() {
        m.write(0xA5A5_A5A5); // layer boundary marker
        for prim in &layer.prims {
            write_prim(&mut m, prim);
        }
    }
    write_params(&mut m, params);
    m.finish()
}

/// Fingerprints the occlusion state a glyph at `(dest, thickness)` can
/// observe: the `is_occluded` bit of every LRZ cell in the glyph's padded
/// bounding region. Strokes only ever query cells inside their
/// `screen_bounds`, so agreeing on this region implies identical stats.
pub(crate) fn glyph_occlusion_fingerprint(
    bounds: &crate::geom::Rect,
    grid: &OcclusionGrid,
) -> Fingerprint {
    let mut m = Mixer::new();
    if bounds.is_empty() {
        return m.finish();
    }
    // One extra cell of padding on every side absorbs float rounding in the
    // stroke walk.
    let cx0 = bounds.x0.div_euclid(LRZ_TILE) - 1;
    let cx1 = (bounds.x1 - 1).div_euclid(LRZ_TILE) + 1;
    let cy0 = bounds.y0.div_euclid(LRZ_TILE) - 1;
    let cy1 = (bounds.y1 - 1).div_euclid(LRZ_TILE) + 1;
    for cy in cy0..=cy1 {
        let mut row = 0u64;
        for cx in cx0..=cx1 {
            row = (row << 1) | u64::from(grid.is_occluded(cx, cy));
            if (cx - cx0) % 64 == 63 {
                m.write(row);
                row = 0;
            }
        }
        m.write(row);
    }
    m.finish()
}

/// Hit/miss counters of one cache layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `0.0..=1.0` (1.0 when the cache was never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

struct RenderCache {
    map: Mutex<HashMap<Fingerprint, Arc<RenderOutput>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn render_cache() -> &'static RenderCache {
    static CACHE: OnceLock<RenderCache> = OnceLock::new();
    CACHE.get_or_init(|| RenderCache {
        map: Mutex::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders `draw_list`, satisfying the request from the whole-list cache
/// when an identical list was rendered before. Byte-identical to
/// [`pipeline::render`]; strictly faster on repeats.
pub fn render_cached(draw_list: &DrawList, params: &GpuParams) -> Arc<RenderOutput> {
    let fp = fingerprint(draw_list, params);
    let cache = render_cache();
    if let Some(hit) = lock(&cache.map).get(&fp) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        spansight::count("adreno.memo.render_hits", 1);
        return Arc::clone(hit);
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);
    spansight::count("adreno.memo.render_misses", 1);
    // Render outside the lock: a concurrent miss on the same key computes
    // the same pure value, and the first insert wins.
    let out = Arc::new(pipeline::render(draw_list, params));
    let mut map = lock(&cache.map);
    if map.len() >= RENDER_CACHE_CAP {
        map.clear();
    }
    Arc::clone(map.entry(fp).or_insert(out))
}

/// Probes the whole-list cache for a fingerprint computed by the caller
/// (the incremental renderer derives the identical fingerprint during its
/// layer-diff pass, so it shares this cache without re-hashing the list).
pub(crate) fn render_cache_lookup(fp: Fingerprint) -> Option<Arc<RenderOutput>> {
    let cache = render_cache();
    if let Some(hit) = lock(&cache.map).get(&fp) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        spansight::count("adreno.memo.render_hits", 1);
        return Some(Arc::clone(hit));
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);
    spansight::count("adreno.memo.render_misses", 1);
    None
}

/// Publishes an output computed outside [`render_cached`] (the incremental
/// renderer) under its whole-list fingerprint, so later submissions of the
/// same list — from any session — hit without rendering.
pub(crate) fn render_cache_insert(fp: Fingerprint, out: Arc<RenderOutput>) {
    let mut map = lock(&render_cache().map);
    if map.len() >= RENDER_CACHE_CAP {
        map.clear();
    }
    map.entry(fp).or_insert(out);
}

/// Whole-list cache hit/miss counters since process start (or the last
/// [`reset_render_caches`]).
pub fn render_cache_stats() -> CacheStats {
    let c = render_cache();
    CacheStats { hits: c.hits.load(Ordering::Relaxed), misses: c.misses.load(Ordering::Relaxed) }
}

/// Per-glyph stroke-stats cache hit/miss counters.
pub fn glyph_cache_stats() -> CacheStats {
    pipeline::glyph_cache_stats()
}

/// Empties every cache layer (whole-list, per-glyph, per-layer) and zeroes
/// their counters.
pub fn reset_render_caches() {
    let c = render_cache();
    lock(&c.map).clear();
    c.hits.store(0, Ordering::Relaxed);
    c.misses.store(0, Ordering::Relaxed);
    pipeline::reset_glyph_cache();
    crate::incremental::reset_layer_cache();
}

pub(crate) struct GlyphCache<V> {
    map: Mutex<HashMap<Fingerprint, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Telemetry counter names bumped on hit / miss.
    hit_counter: &'static str,
    miss_counter: &'static str,
}

impl<V> GlyphCache<V> {
    pub(crate) fn new() -> Self {
        Self::with_counters("adreno.memo.glyph_hits", "adreno.memo.glyph_misses")
    }

    /// A cache with the same policy but custom telemetry counter names (the
    /// incremental renderer's per-layer cache reuses this machinery).
    pub(crate) fn with_counters(hit_counter: &'static str, miss_counter: &'static str) -> Self {
        GlyphCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_counter,
            miss_counter,
        }
    }

    pub(crate) fn get_or_insert_with(
        &self,
        key: Fingerprint,
        compute: impl FnOnce() -> V,
    ) -> Arc<V> {
        if let Some(hit) = lock(&self.map).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            spansight::count(self.hit_counter, 1);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        spansight::count(self.miss_counter, 1);
        let value = Arc::new(compute());
        let mut map = lock(&self.map);
        if map.len() >= GLYPH_CACHE_CAP {
            map.clear();
        }
        Arc::clone(map.entry(key).or_insert(value))
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        lock(&self.map).clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::model::GpuModel;
    use crate::pipeline::render_uncached;

    fn sample_list(glyph: char) -> DrawList {
        let mut dl = DrawList::new(512, 512);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 512, 512), true);
        dl.layer("popup").glyph(glyph, Rect::from_xywh(100, 100, 90, 110), 8);
        dl
    }

    #[test]
    fn cached_render_matches_uncached() {
        let params = GpuModel::Adreno650.params();
        for ch in ['a', 'w', '#'] {
            let dl = sample_list(ch);
            let cached = render_cached(&dl, &params);
            let fresh = render_uncached(&dl, &params);
            assert_eq!(*cached, fresh);
            // Second lookup is a hit and still identical.
            assert_eq!(*render_cached(&dl, &params), fresh);
        }
    }

    #[test]
    fn fingerprint_separates_lists_params_and_tags() {
        let params = GpuModel::Adreno650.params();
        let a = fingerprint(&sample_list('a'), &params);
        assert_eq!(a, fingerprint(&sample_list('a'), &params));
        assert_ne!(a, fingerprint(&sample_list('b'), &params));
        assert_ne!(a, fingerprint(&sample_list('a'), &GpuModel::Adreno540.params()));

        // Layer tags are render-irrelevant and excluded.
        let mut tagged = DrawList::new(512, 512);
        tagged.layer("renamed").quad(Rect::from_xywh(0, 0, 512, 512), true);
        tagged.layer("other").glyph('a', Rect::from_xywh(100, 100, 90, 110), 8);
        assert_eq!(a, fingerprint(&tagged, &params));
    }

    #[test]
    fn layer_boundaries_are_part_of_the_fingerprint() {
        let params = GpuModel::Adreno650.params();
        // Same prims, different layer split → different occlusion → must
        // not collide.
        let mut merged = DrawList::new(256, 256);
        let layer = merged.layer("one");
        layer.quad(Rect::from_xywh(0, 0, 256, 256), true);
        layer.quad(Rect::from_xywh(10, 10, 50, 50), true);
        let mut split = DrawList::new(256, 256);
        split.layer("a").quad(Rect::from_xywh(0, 0, 256, 256), true);
        split.layer("b").quad(Rect::from_xywh(10, 10, 50, 50), true);
        assert_ne!(fingerprint(&merged, &params), fingerprint(&split, &params));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        reset_render_caches();
        let params = GpuModel::Adreno650.params();
        let dl = sample_list('q');
        let before = render_cache_stats();
        let _ = render_cached(&dl, &params);
        let _ = render_cached(&dl, &params);
        let after = render_cache_stats();
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits > before.hits);
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn occlusion_fingerprint_sees_region_bits() {
        let mut grid = OcclusionGrid::new(256, 256);
        let bounds = Rect::from_xywh(96, 96, 90, 110);
        let clear = glyph_occlusion_fingerprint(&bounds, &grid);
        grid.add_opaque_rect(&Rect::from_xywh(96, 96, 32, 32)); // inside region
        let covered = glyph_occlusion_fingerprint(&bounds, &grid);
        assert_ne!(clear, covered);

        // Occlusion far outside the region is invisible to the glyph.
        let mut far = OcclusionGrid::new(256, 256);
        far.add_opaque_rect(&Rect::from_xywh(0, 0, 24, 24));
        assert_eq!(clear, glyph_occlusion_fingerprint(&bounds, &far));
    }
}
