//! The per-group counter catalogue, as the GPU vendor publishes it.
//!
//! The attack's first step (§3.3) is *discovering* the interesting counters:
//! it iterates every group and countable through the
//! `GL_AMD_performance_monitor` extension and reads each counter's string
//! identifier. This module is the catalogue those queries answer from: each
//! group exposes a contiguous range of countables with vendor names, of
//! which the attack selects the eleven overdraw-related ones (Table 1).
//!
//! Only the tracked counters are modelled by the pipeline; the rest exist,
//! can be reserved and read, and simply stay quiescent — exactly how an
//! unimplemented-but-present hardware counter behaves to userspace.

use crate::counters::{CounterGroup, CounterId};

/// Names of the LRZ group countables (ids 0..).
const LRZ_NAMES: [&str; 20] = [
    "PERF_LRZ_BUSY_CYCLES",
    "PERF_LRZ_STARVE_CYCLES_FROM_FC",
    "PERF_LRZ_STALL_CYCLES_FROM_GRAS",
    "PERF_LRZ_STALL_CYCLES_FROM_VSC",
    "PERF_LRZ_STALL_CYCLES_FROM_VC",
    "PERF_LRZ_LRZ_READ",
    "PERF_LRZ_LRZ_WRITE",
    "PERF_LRZ_READ_LATENCY",
    "PERF_LRZ_MERGE_CACHE_UPDATING",
    "PERF_LRZ_PRIM_KILLED_BY_MASKGEN",
    "PERF_LRZ_PRIM_KILLED_BY_LRZ",
    "PERF_LRZ_VISIBLE_PRIM_AFTER_MASKGEN",
    "PERF_LRZ_FULL_8X8_TILES_FROM_MASKGEN",
    "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ", // 13 — Table 1
    "PERF_LRZ_FULL_8X8_TILES",         // 14 — Table 1
    "PERF_LRZ_PARTIAL_8X8_TILES",      // 15 — Table 1
    "PERF_LRZ_TILE_KILLED",
    "PERF_LRZ_TOTAL_PIXEL",
    "PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ", // 18 — Table 1
    "PERF_LRZ_FEEDBACK_ACCEPT",
];

/// Names of the RAS group countables.
const RAS_NAMES: [&str; 12] = [
    "PERF_RAS_BUSY_CYCLES",
    "PERF_RAS_SUPERTILE_ACTIVE_CYCLES", // 1 — Table 1
    "PERF_RAS_STALL_CYCLES_LRZ",
    "PERF_RAS_STARVE_CYCLES_TSE",
    "PERF_RAS_SUPER_TILES", // 4 — Table 1
    "PERF_RAS_8X4_TILES",   // 5 — Table 1
    "PERF_RAS_MASKGEN_ACTIVE",
    "PERF_RAS_FULLY_COVERED_SUPER_TILES",
    "PERF_RAS_FULLY_COVERED_8X4_TILES", // 8 — Table 1
    "PERF_RAS_PRIM_KILLED_INVISILBE",   // sic — vendor headers carry this typo
    "PERF_RAS_SUPERTILE_GEN_ACTIVE_CYCLES",
    "PERF_RAS_LRZ_INTF_WORKING_CYCLES",
];

/// Names of the VPC group countables.
const VPC_NAMES: [&str; 16] = [
    "PERF_VPC_BUSY_CYCLES",
    "PERF_VPC_WORKING_CYCLES",
    "PERF_VPC_STALL_CYCLES_UCHE",
    "PERF_VPC_STALL_CYCLES_VFD_WACK",
    "PERF_VPC_STALL_CYCLES_HLSQ_PRIM_ALLOC",
    "PERF_VPC_STALL_CYCLES_PC",
    "PERF_VPC_STALL_CYCLES_SP_LM",
    "PERF_VPC_STARVE_CYCLES_SP",
    "PERF_VPC_STARVE_CYCLES_LRZ",
    "PERF_VPC_PC_PRIMITIVES", // 9 — Table 1
    "PERF_VPC_SP_COMPONENTS", // 10 — Table 1
    "PERF_VPC_STALL_CYCLES_VPCRAM_POS",
    "PERF_VPC_LRZ_ASSIGN_PRIMITIVES", // 12 — Table 1
    "PERF_VPC_RB_VISIBLE_PRIMITIVES",
    "PERF_VPC_LM_TRANSACTION",
    "PERF_VPC_MRT_TRANSACTION",
];

/// Number of countables a group advertises.
pub fn group_len(group: CounterGroup) -> u32 {
    match group {
        CounterGroup::Lrz => LRZ_NAMES.len() as u32,
        CounterGroup::Ras => RAS_NAMES.len() as u32,
        CounterGroup::Vpc => VPC_NAMES.len() as u32,
    }
}

/// The vendor string identifier of a countable, or `None` when the
/// countable does not exist in this group.
pub fn countable_name(id: CounterId) -> Option<&'static str> {
    let names: &[&str] = match id.group {
        CounterGroup::Lrz => &LRZ_NAMES,
        CounterGroup::Ras => &RAS_NAMES,
        CounterGroup::Vpc => &VPC_NAMES,
    };
    names.get(id.countable as usize).copied()
}

/// The human-readable group name reported by
/// `GetPerfMonitorGroupStringAMD`.
pub fn group_name(group: CounterGroup) -> &'static str {
    match group {
        CounterGroup::Lrz => "LRZ",
        CounterGroup::Ras => "RAS",
        CounterGroup::Vpc => "VPC",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::ALL_TRACKED;

    #[test]
    fn table1_counters_carry_their_paper_names() {
        for c in ALL_TRACKED {
            assert_eq!(
                countable_name(c.id()),
                Some(c.name()),
                "catalogue must agree with Table 1 for {c:?}"
            );
        }
    }

    #[test]
    fn out_of_range_countables_do_not_exist() {
        for group in [CounterGroup::Lrz, CounterGroup::Ras, CounterGroup::Vpc] {
            assert!(countable_name(CounterId::new(group, group_len(group))).is_none());
            assert!(countable_name(CounterId::new(group, 0)).is_some());
        }
    }

    #[test]
    fn names_are_unique_within_a_group() {
        for group in [CounterGroup::Lrz, CounterGroup::Ras, CounterGroup::Vpc] {
            let mut names: Vec<&str> = (0..group_len(group))
                .filter_map(|i| countable_name(CounterId::new(group, i)))
                .collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), before, "{group}: duplicate counter names");
        }
    }

    /// The tracked counter with the id used in the paper's Fig 10 example.
    #[test]
    fn fig10_example_counter_exists() {
        assert_eq!(
            countable_name(CounterId::new(CounterGroup::Lrz, 14)),
            Some("PERF_LRZ_FULL_8X8_TILES")
        );
    }
}
