//! Scenes: what a window submits to the GPU for one frame.
//!
//! Android composes screen content in layers rendered back-to-front (Fig 2 of
//! the paper). A [`DrawList`] is an ordered stack of [`Layer`]s, each holding
//! [`Primitive`]s. Opaque quads in higher layers occlude content below them —
//! the source of the GPU overdraw signal the attack measures.

use crate::font;
use crate::geom::{Rect, Segment};

/// A single drawable primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum Primitive {
    /// A filled, axis-aligned rectangle. Opaque quads occlude lower layers;
    /// translucent ones do not.
    Quad { rect: Rect, opaque: bool },
    /// A character drawn with the stroke font into `dest`, with a stroke
    /// thickness in pixels. Each stroke becomes one GPU primitive.
    Glyph { ch: char, dest: Rect, thickness: i32 },
    /// A pre-resolved stroked segment in screen space (used for decorations
    /// and animations). `dest`/`grid` follow [`Segment::screen_bounds`].
    Stroke { seg: Segment, dest: Rect, thickness: i32 },
}

impl Primitive {
    /// A conservative bounding box of the primitive in screen space.
    pub fn bounds(&self) -> Rect {
        match self {
            Primitive::Quad { rect, .. } => *rect,
            Primitive::Glyph { ch, dest, thickness } => {
                font::glyph_screen_bounds(*ch, dest, *thickness)
            }
            Primitive::Stroke { seg, dest, thickness } => {
                seg.screen_bounds(dest, font::GRID, *thickness)
            }
        }
    }
}

/// One rendering layer: a group of primitives at the same depth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Layer {
    /// Human-readable tag, for debugging and tests ("keyboard", "popup", …).
    pub tag: &'static str,
    pub prims: Vec<Primitive>,
}

impl Layer {
    /// Creates an empty layer with a debug tag.
    pub fn new(tag: &'static str) -> Self {
        Layer { tag, prims: Vec::new() }
    }

    /// Adds a filled rectangle.
    pub fn quad(&mut self, rect: Rect, opaque: bool) -> &mut Self {
        self.prims.push(Primitive::Quad { rect, opaque });
        self
    }

    /// Adds a glyph.
    pub fn glyph(&mut self, ch: char, dest: Rect, thickness: i32) -> &mut Self {
        self.prims.push(Primitive::Glyph { ch, dest, thickness });
        self
    }

    /// Adds a raw stroke.
    pub fn stroke(&mut self, seg: Segment, dest: Rect, thickness: i32) -> &mut Self {
        self.prims.push(Primitive::Stroke { seg, dest, thickness });
        self
    }
}

/// A complete frame submission: layers ordered back-to-front.
///
/// # Examples
///
/// ```
/// use adreno_sim::geom::Rect;
/// use adreno_sim::scene::DrawList;
///
/// let mut dl = DrawList::new(1080, 2376);
/// dl.layer("background").quad(Rect::from_xywh(0, 0, 1080, 2376), true);
/// dl.layer("popup").glyph('w', Rect::from_xywh(200, 1400, 90, 110), 8);
/// assert_eq!(dl.layers().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DrawList {
    width: i32,
    height: i32,
    layers: Vec<Layer>,
}

impl DrawList {
    /// Creates an empty draw list for a `width`×`height` render target.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive.
    pub fn new(width: i32, height: i32) -> Self {
        assert!(width > 0 && height > 0, "render target must be non-empty");
        DrawList { width, height, layers: Vec::new() }
    }

    /// Render target width in pixels.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Render target height in pixels.
    pub fn height(&self) -> i32 {
        self.height
    }

    /// The full render target rectangle.
    pub fn viewport(&self) -> Rect {
        Rect::from_xywh(0, 0, self.width, self.height)
    }

    /// Appends a new topmost layer and returns it for population.
    pub fn layer(&mut self, tag: &'static str) -> &mut Layer {
        self.layers.push(Layer::new(tag));
        self.layers.last_mut().expect("just pushed")
    }

    /// Appends an already-built layer as the new topmost layer.
    pub fn push_layer(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// The layers, back-to-front.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total number of primitives across all layers (glyphs count as one
    /// here; the pipeline expands them into per-stroke primitives).
    pub fn prim_count(&self) -> usize {
        self.layers.iter().map(|l| l.prims.len()).sum()
    }

    /// Whether the draw list contains nothing to draw.
    pub fn is_empty(&self) -> bool {
        self.layers.iter().all(|l| l.prims.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_stacks_layers_in_order() {
        let mut dl = DrawList::new(100, 100);
        dl.layer("a").quad(Rect::from_xywh(0, 0, 10, 10), true);
        dl.layer("b").glyph('x', Rect::from_xywh(0, 0, 16, 16), 2);
        assert_eq!(dl.layers()[0].tag, "a");
        assert_eq!(dl.layers()[1].tag, "b");
        assert_eq!(dl.prim_count(), 2);
        assert!(!dl.is_empty());
    }

    #[test]
    fn glyph_bounds_cover_strokes() {
        let dest = Rect::from_xywh(100, 200, 80, 80);
        let p = Primitive::Glyph { ch: 'o', dest, thickness: 4 };
        let b = p.bounds();
        // 'o' spans grid 2..=7 in both axes; bounds must sit inside a
        // slightly padded dest and be non-empty.
        assert!(!b.is_empty());
        assert!(b.x0 >= dest.x0 - 4 && b.x1 <= dest.x1 + 4);
    }

    #[test]
    fn space_glyph_has_empty_bounds() {
        let p = Primitive::Glyph { ch: ' ', dest: Rect::from_xywh(0, 0, 50, 50), thickness: 4 };
        assert!(p.bounds().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_target_rejected() {
        let _ = DrawList::new(0, 10);
    }
}
