//! Adreno GPU model parameters.
//!
//! The paper evaluates Adreno 540, 640, 650 and 660 (§7.5). The models share
//! the counter architecture (all tracked counters exist on every model after
//! Adreno 540) but differ in binning geometry and clock, so the *same* scene
//! produces different absolute counter values on different models — which is
//! what lets the attack's preloaded models recognise the device (§3.2).

use std::fmt;

/// A Qualcomm Adreno GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuModel {
    /// Adreno 540 (LG V30+, Google Pixel 2).
    Adreno540,
    /// Adreno 640 (OnePlus 7 Pro).
    Adreno640,
    /// Adreno 650 (OnePlus 8 Pro — the paper's main evaluation device).
    Adreno650,
    /// Adreno 660 (OnePlus 9, Samsung Galaxy S21).
    Adreno660,
}

/// All supported models, oldest first.
pub const ALL_MODELS: [GpuModel; 4] =
    [GpuModel::Adreno540, GpuModel::Adreno640, GpuModel::Adreno650, GpuModel::Adreno660];

/// Static parameters of one GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GpuParams {
    /// Supertile (bin) width in pixels.
    pub supertile_w: i32,
    /// Supertile (bin) height in pixels.
    pub supertile_h: i32,
    /// Core clock in MHz; converts primitive cost in cycles to draw time.
    pub clock_mhz: u32,
    /// Rasteriser throughput: pixels shaded per cycle.
    pub pixels_per_cycle: u32,
    /// Fixed per-primitive setup cost in cycles.
    pub prim_setup_cycles: u32,
}

impl GpuModel {
    /// The model's static parameters.
    pub const fn params(self) -> GpuParams {
        match self {
            GpuModel::Adreno540 => GpuParams {
                supertile_w: 32,
                supertile_h: 32,
                clock_mhz: 710,
                pixels_per_cycle: 4,
                prim_setup_cycles: 220,
            },
            GpuModel::Adreno640 => GpuParams {
                supertile_w: 64,
                supertile_h: 32,
                clock_mhz: 585,
                pixels_per_cycle: 6,
                prim_setup_cycles: 180,
            },
            GpuModel::Adreno650 => GpuParams {
                supertile_w: 64,
                supertile_h: 64,
                clock_mhz: 587,
                pixels_per_cycle: 8,
                prim_setup_cycles: 160,
            },
            GpuModel::Adreno660 => GpuParams {
                supertile_w: 96,
                supertile_h: 48,
                clock_mhz: 840,
                pixels_per_cycle: 8,
                prim_setup_cycles: 150,
            },
        }
    }

    /// Marketing name, e.g. `"Adreno 650"`.
    pub const fn name(self) -> &'static str {
        match self {
            GpuModel::Adreno540 => "Adreno 540",
            GpuModel::Adreno640 => "Adreno 640",
            GpuModel::Adreno650 => "Adreno 650",
            GpuModel::Adreno660 => "Adreno 660",
        }
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_have_distinct_binning() {
        // Distinct (supertile_w, supertile_h) pairs are what make counter
        // values model-specific, enabling device recognition.
        let mut shapes: Vec<(i32, i32)> = ALL_MODELS
            .into_iter()
            .map(|m| (m.params().supertile_w, m.params().supertile_h))
            .collect();
        shapes.sort_unstable();
        shapes.dedup();
        assert_eq!(shapes.len(), ALL_MODELS.len());
    }

    #[test]
    fn params_are_sane() {
        for m in ALL_MODELS {
            let p = m.params();
            assert!(p.supertile_w >= 8 && p.supertile_h >= 8);
            assert!(p.supertile_w % 8 == 0, "{m}: supertile must align to 8x8 LRZ tiles");
            assert!(p.supertile_h % 8 == 0);
            assert!(p.clock_mhz > 0 && p.pixels_per_cycle > 0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(GpuModel::Adreno650.to_string(), "Adreno 650");
    }
}
