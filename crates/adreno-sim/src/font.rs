//! A compact vector stroke font.
//!
//! Every character the paper's Figure 18 evaluates is defined as a small set
//! of line segments on an 8×8 design grid (x to the right, y down, baseline
//! near y = 7, descenders to y = 8). The renderer scales the segments into a
//! destination rectangle and rasterises them as stroked primitives.
//!
//! The font is deliberately a *stroke* font rather than a bitmap font: each
//! stroke is one GPU primitive, so characters differ in primitive count
//! (VPC counters), rasterised pixel coverage (RAS counters) and occlusion
//! footprint (LRZ counters) — the exact per-key differences the side channel
//! measures. Visual fidelity is irrelevant; only the relative geometry
//! matters.
//!
//! Punctuation such as `'`, `:` and `;` is intentionally tiny, mirroring the
//! paper's observation that those keys produce the minimum amount of GPU
//! overdraw and are hardest to infer (Fig 18).

use crate::geom::{Rect, Segment};

/// The design grid extent: glyph coordinates live in `0.0..=GRID`.
pub const GRID: f32 = 8.0;

macro_rules! segs {
    ($(($x0:expr, $y0:expr, $x1:expr, $y1:expr)),* $(,)?) => {
        &[$(Segment { x0: $x0 as f32, y0: $y0 as f32, x1: $x1 as f32, y1: $y1 as f32 }),*]
    };
}

/// Fallback glyph (a hollow box) used for characters outside the supported
/// set, so that rendering never silently drops a primitive.
pub const FALLBACK: &[Segment] = segs![(2, 2, 6, 2), (6, 2, 6, 6), (6, 6, 2, 6), (2, 6, 2, 2)];

/// Returns the stroke segments of `c`, or `None` if the character is not in
/// the supported set (use [`FALLBACK`] or skip, at the caller's choice).
///
/// # Examples
///
/// ```
/// use adreno_sim::font::glyph_strokes;
///
/// let w = glyph_strokes('w').unwrap();
/// let l = glyph_strokes('l').unwrap();
/// assert!(w.len() > l.len(), "'w' is strokier than 'l'");
/// ```
pub fn glyph_strokes(c: char) -> Option<&'static [Segment]> {
    let s: &'static [Segment] = match c {
        // --- lowercase ---------------------------------------------------
        'a' => segs![(2, 4, 6, 4), (2, 4, 2, 7), (2, 7, 6, 7), (6, 7, 6, 4), (6, 3, 6, 7)],
        'b' => segs![(2, 1, 2, 7), (2, 4, 6, 4), (6, 4, 6, 7), (6, 7, 2, 7)],
        'c' => segs![(6, 3, 2, 3), (2, 3, 2, 7), (2, 7, 6, 7)],
        'd' => segs![(6, 1, 6, 7), (6, 4, 2, 4), (2, 4, 2, 7), (2, 7, 6, 7)],
        'e' => segs![(2, 3, 6, 3), (6, 3, 6, 5), (6, 5, 2, 5), (2, 3, 2, 7), (2, 7, 6, 7)],
        'f' => segs![(4, 1, 4, 7), (4, 1, 6, 1), (2, 4, 6, 4)],
        'g' => segs![(2, 3, 6, 3), (2, 3, 2, 6), (2, 6, 6, 6), (6, 3, 6, 8), (6, 8, 2, 8)],
        'h' => segs![(2, 1, 2, 7), (2, 4, 6, 4), (6, 4, 6, 7)],
        'i' => segs![(4, 1.2, 4, 2), (4, 3, 4, 7)],
        'j' => segs![(5, 1.2, 5, 2), (5, 3, 5, 8), (5, 8, 3, 8)],
        'k' => segs![(2, 1, 2, 7), (6, 3, 2, 5), (3, 4.6, 6, 7)],
        'l' => segs![(4, 1, 4, 7)],
        'm' => segs![(2, 3, 2, 7), (2, 3, 4, 3), (4, 3, 4, 7), (4, 3, 6, 3), (6, 3, 6, 7)],
        'n' => segs![(2, 3, 2, 7), (2, 3, 6, 3), (6, 3, 6, 7)],
        'o' => segs![(2, 3, 6, 3), (6, 3, 6, 7), (6, 7, 2, 7), (2, 7, 2, 3)],
        'p' => segs![(2, 3, 2, 8), (2, 3, 6, 3), (6, 3, 6, 6), (6, 6, 2, 6)],
        // 'q' carries an angled tail so it is not a perfect mirror image of
        // 'p' — mirror-symmetric glyphs on mirror-symmetric keys would
        // produce byte-identical counter deltas and be indistinguishable.
        'q' => segs![(6, 3, 2, 3), (2, 3, 2, 6), (2, 6, 6, 6), (6, 3, 6, 7.2), (6, 7.2, 7, 8)],
        'r' => segs![(2, 3, 2, 7), (2, 4.2, 5, 3)],
        's' => segs![(6, 3, 2, 3), (2, 3, 2, 5), (2, 5, 6, 5), (6, 5, 6, 7), (6, 7, 2, 7)],
        't' => segs![(4, 1, 4, 7), (2, 3, 6, 3), (4, 7, 6, 7)],
        'u' => segs![(2, 3, 2, 7), (2, 7, 6, 7), (6, 7, 6, 3)],
        'v' => segs![(2, 3, 4, 7), (4, 7, 6, 3)],
        'w' => segs![(2, 3, 3, 7), (3, 7, 4, 4), (4, 4, 5, 7), (5, 7, 6, 3)],
        'x' => segs![(2, 3, 6, 7), (6, 3, 2, 7)],
        'y' => segs![(2, 3, 4, 5.7), (6, 3, 3, 8)],
        'z' => segs![(2, 3, 6, 3), (6, 3, 2, 7), (2, 7, 6, 7)],
        // --- uppercase ---------------------------------------------------
        'A' => segs![(2, 7, 4, 1), (4, 1, 6, 7), (3, 5, 5, 5)],
        'B' => segs![
            (2, 1, 2, 7),
            (2, 1, 5, 1),
            (5, 1, 5, 4),
            (2, 4, 5, 4),
            (5, 4, 6, 5.5),
            (6, 5.5, 5, 7),
            (5, 7, 2, 7)
        ],
        'C' => segs![(6, 1, 2, 1), (2, 1, 2, 7), (2, 7, 6, 7)],
        'D' => segs![(2, 1, 2, 7), (2, 1, 5, 1), (5, 1, 6, 4), (6, 4, 5, 7), (5, 7, 2, 7)],
        'E' => segs![(2, 1, 2, 7), (2, 1, 6, 1), (2, 4, 5, 4), (2, 7, 6, 7)],
        'F' => segs![(2, 1, 2, 7), (2, 1, 6, 1), (2, 4, 5, 4)],
        'G' => segs![(6, 1, 2, 1), (2, 1, 2, 7), (2, 7, 6, 7), (6, 7, 6, 4), (6, 4, 4, 4)],
        'H' => segs![(2, 1, 2, 7), (6, 1, 6, 7), (2, 4, 6, 4)],
        'I' => segs![(4, 1, 4, 7), (2, 1, 6, 1), (2, 7, 6, 7)],
        'J' => segs![(6, 1, 6, 7), (6, 7, 2, 7), (2, 7, 2, 5)],
        'K' => segs![(2, 1, 2, 7), (6, 1, 2, 4.2), (3, 4, 6, 7)],
        'L' => segs![(2, 1, 2, 7), (2, 7, 6, 7)],
        'M' => segs![(2, 7, 2, 1), (2, 1, 4, 4.5), (4, 4.5, 6, 1), (6, 1, 6, 7)],
        'N' => segs![(2, 7, 2, 1), (2, 1, 6, 7), (6, 7, 6, 1)],
        'O' => segs![(2, 1, 6, 1), (6, 1, 6, 7), (6, 7, 2, 7), (2, 7, 2, 1)],
        'P' => segs![(2, 1, 2, 7), (2, 1, 6, 1), (6, 1, 6, 4), (6, 4, 2, 4)],
        'Q' => segs![(2, 1, 6, 1), (6, 1, 6, 7), (6, 7, 2, 7), (2, 7, 2, 1), (4.6, 5.4, 7, 8)],
        'R' => segs![(2, 1, 2, 7), (2, 1, 6, 1), (6, 1, 6, 4), (6, 4, 2, 4), (3.2, 4, 6, 7)],
        'S' => segs![(6, 1, 2, 1), (2, 1, 2, 4), (2, 4, 6, 4), (6, 4, 6, 7), (6, 7, 2, 7)],
        'T' => segs![(2, 1, 6, 1), (4, 1, 4, 7)],
        'U' => segs![(2, 1, 2, 7), (2, 7, 6, 7), (6, 7, 6, 1)],
        'V' => segs![(2, 1, 4, 7), (4, 7, 6, 1)],
        'W' => segs![(2, 1, 3, 7), (3, 7, 4, 3), (4, 3, 5, 7), (5, 7, 6, 1)],
        'X' => segs![(2, 1, 6, 7), (6, 1, 2, 7)],
        'Y' => segs![(2, 1, 4, 4), (6, 1, 4, 4), (4, 4, 4, 7)],
        'Z' => segs![(2, 1, 6, 1), (6, 1, 2, 7), (2, 7, 6, 7)],
        // --- digits ------------------------------------------------------
        '0' => segs![(2, 1, 6, 1), (6, 1, 6, 7), (6, 7, 2, 7), (2, 7, 2, 1), (2, 6, 6, 2)],
        '1' => segs![(3, 2, 4, 1), (4, 1, 4, 7), (2, 7, 6, 7)],
        '2' => segs![(2, 2, 2, 1), (2, 1, 6, 1), (6, 1, 6, 3.5), (6, 3.5, 2, 7), (2, 7, 6, 7)],
        '3' => segs![(2, 1, 6, 1), (6, 1, 6, 7), (6, 7, 2, 7), (3.2, 4, 6, 4)],
        '4' => segs![(5, 1, 2, 5), (2, 5, 6.6, 5), (5, 1, 5, 7)],
        '5' => segs![(6, 1, 2, 1), (2, 1, 2, 4), (2, 4, 6, 4), (6, 4, 6, 7), (6, 7, 2, 7)],
        '6' => segs![(6, 1, 2, 1), (2, 1, 2, 7), (2, 7, 6, 7), (6, 7, 6, 4), (6, 4, 2, 4)],
        '7' => segs![(2, 1, 6, 1), (6, 1, 3, 7)],
        '8' => segs![(2, 1, 6, 1), (6, 1, 6, 7), (6, 7, 2, 7), (2, 7, 2, 1), (2, 4, 6, 4)],
        '9' => segs![(6, 7, 6, 1), (6, 1, 2, 1), (2, 1, 2, 4), (2, 4, 6, 4)],
        // --- symbols -----------------------------------------------------
        ',' => segs![(4, 6, 4, 7), (4, 7, 3.2, 8)],
        '.' => segs![(4, 6.4, 4, 7)],
        '@' => segs![
            (1, 2, 7, 2),
            (7, 2, 7, 6),
            (7, 6, 1, 6),
            (1, 6, 1, 2),
            (3, 3.4, 5, 3.4),
            (5, 3.4, 5, 5),
            (5, 5, 3, 5),
            (3, 5, 3, 3.4),
            (5, 5, 6, 5)
        ],
        '#' => segs![(3, 1, 3, 7), (5, 1, 5, 7), (2, 3, 6, 3), (2, 5, 6, 5)],
        '$' => segs![
            (6, 1.5, 2, 1.5),
            (2, 1.5, 2, 4),
            (2, 4, 6, 4),
            (6, 4, 6, 6.5),
            (6, 6.5, 2, 6.5),
            (4, 0.6, 4, 7.4)
        ],
        '&' => segs![
            (6, 7, 3, 3),
            (3, 3, 3.8, 1.2),
            (3.8, 1.2, 5.2, 2.4),
            (2.2, 4.6, 2, 7),
            (2, 7, 6, 4.6)
        ],
        '-' => segs![(2, 4, 6, 4)],
        '+' => segs![(2, 4, 6, 4), (4, 2, 4, 6)],
        '(' => segs![(5, 1, 3.4, 3), (3.4, 3, 3.4, 5), (3.4, 5, 5, 7)],
        ')' => segs![(3, 1, 4.6, 3), (4.6, 3, 4.6, 5), (4.6, 5, 3, 7)],
        '/' => segs![(2, 7, 6, 1)],
        '*' => segs![(4, 1.6, 4, 6.4), (2, 2.8, 6, 5.2), (6, 2.8, 2, 5.2)],
        '"' => segs![(3.2, 1, 3.2, 2.4), (4.8, 1, 4.8, 2.4)],
        '\'' => segs![(4, 1, 4, 2.2)],
        ':' => segs![(4, 2.8, 4, 3.5), (4, 5.8, 4, 6.5)],
        ';' => segs![(4, 2.8, 4, 3.5), (4, 6, 4, 6.8), (4, 6.8, 3.4, 7.8)],
        '!' => segs![(4, 1, 4, 5), (4, 6.3, 4, 7)],
        '?' => segs![
            (2, 2, 2, 1.2),
            (2, 1.2, 6, 1.2),
            (6, 1.2, 6, 3),
            (6, 3, 4, 4.2),
            (4, 4.2, 4, 5),
            (4, 6.3, 4, 7)
        ],
        ' ' => segs![],
        _ => return None,
    };
    Some(s)
}

/// The full character set evaluated in the paper's Figure 18, in the order
/// the figure lists it.
pub const FIG18_CHARSET: &str =
    "abcdefghijklmnopqrstuvwxyz1234567890,.ABCDEFGHIJKLMNOPQRSTUVWXYZ@#$&-+()/*\"':;!?";

/// The number of stroke primitives in `c` (0 for space, [`FALLBACK`] length
/// for unsupported characters).
pub fn stroke_count(c: char) -> usize {
    glyph_strokes(c).unwrap_or(FALLBACK).len()
}

/// Design-grid bounding box of a glyph's strokes, or `None` for strokeless
/// glyphs (space).
#[derive(Debug, Clone, Copy)]
enum GridBbox {
    Empty,
    Box { x0: f32, y0: f32, x1: f32, y1: f32 },
}

fn bbox_of(strokes: &[Segment]) -> GridBbox {
    let mut it = strokes.iter();
    let Some(first) = it.next() else { return GridBbox::Empty };
    let (mut x0, mut x1) = (first.x0.min(first.x1), first.x0.max(first.x1));
    let (mut y0, mut y1) = (first.y0.min(first.y1), first.y0.max(first.y1));
    for s in it {
        x0 = x0.min(s.x0.min(s.x1));
        x1 = x1.max(s.x0.max(s.x1));
        y0 = y0.min(s.y0.min(s.y1));
        y1 = y1.max(s.y0.max(s.y1));
    }
    GridBbox::Box { x0, y0, x1, y1 }
}

/// Per-glyph design-grid bounding boxes for the printable ASCII range,
/// computed once per process. Every supported glyph lives in this range;
/// anything else falls back to the [`FALLBACK`] box.
fn bbox_table() -> &'static [GridBbox; 96] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[GridBbox; 96]> = OnceLock::new();
    TABLE.get_or_init(|| {
        std::array::from_fn(|i| {
            let ch = char::from_u32(0x20 + i as u32).expect("printable ASCII");
            bbox_of(glyph_strokes(ch).unwrap_or(FALLBACK))
        })
    })
}

/// Screen-space bounding box of the glyph `ch` drawn into `dest` at the
/// given stroke thickness: identical to the union of every stroke's
/// [`Segment::screen_bounds`] (the grid→screen mapping is monotone per
/// coordinate, so min/max commute with it), but computed from the cached
/// per-glyph design-grid bounding box instead of a per-call fold over the
/// stroke table.
pub(crate) fn glyph_screen_bounds(ch: char, dest: &Rect, thickness: i32) -> Rect {
    let code = ch as u32;
    let bbox = if (0x20..0x80).contains(&code) {
        bbox_table()[(code - 0x20) as usize]
    } else {
        bbox_of(glyph_strokes(ch).unwrap_or(FALLBACK))
    };
    match bbox {
        GridBbox::Empty => Rect::EMPTY,
        GridBbox::Box { x0, y0, x1, y1 } => {
            Segment { x0, y0, x1, y1 }.screen_bounds(dest, GRID, thickness)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_fig18_characters_have_glyphs() {
        for c in FIG18_CHARSET.chars() {
            assert!(glyph_strokes(c).is_some(), "missing glyph for {c:?}");
        }
    }

    #[test]
    fn fig18_charset_has_no_duplicates() {
        let mut seen = HashSet::new();
        for c in FIG18_CHARSET.chars() {
            assert!(seen.insert(c), "duplicate char {c:?} in FIG18_CHARSET");
        }
        // 26 lower + 10 digits + ',' '.' + 26 upper + 16 symbols
        assert_eq!(seen.len(), 80);
    }

    #[test]
    fn glyph_coordinates_stay_on_grid() {
        for c in FIG18_CHARSET.chars() {
            for s in glyph_strokes(c).unwrap() {
                for v in [s.x0, s.y0, s.x1, s.y1] {
                    assert!((0.0..=GRID).contains(&v), "{c:?} has out-of-grid coord {v}");
                }
            }
        }
    }

    #[test]
    fn no_zero_length_strokes() {
        for c in FIG18_CHARSET.chars() {
            for s in glyph_strokes(c).unwrap() {
                assert!(s.length() > 0.0, "{c:?} has a zero-length stroke");
            }
        }
    }

    #[test]
    fn tiny_punctuation_has_minimal_ink() {
        // The paper observes ';' and '\'' cause the minimum overdraw; our
        // font must preserve that ranking against average letters.
        let ink = |c: char| -> f32 { glyph_strokes(c).unwrap().iter().map(|s| s.length()).sum() };
        assert!(ink('\'') < ink('a'));
        assert!(ink(';') < ink('a'));
        assert!(ink('.') < ink(','));
        assert!(ink('@') > ink('o'), "'@' should be the busiest glyph");
    }

    #[test]
    fn unknown_chars_fall_back() {
        assert_eq!(glyph_strokes('€'), None);
        assert_eq!(stroke_count('€'), FALLBACK.len());
    }

    #[test]
    fn space_has_no_strokes() {
        assert_eq!(stroke_count(' '), 0);
    }
}
