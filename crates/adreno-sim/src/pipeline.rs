//! The tile-based rendering pipeline.
//!
//! Adreno GPUs divide the render target into bins ("supertiles") and process
//! each bin with a Low-Resolution-Z (LRZ) pre-pass that discards occluded
//! work early (§2.1–2.2 of the paper). This module reproduces the counter
//! semantics of that pipeline:
//!
//! 1. **LRZ pass** — layers are considered front-to-back; opaque quads in
//!    higher layers build an occlusion mask at 8×8-pixel tile granularity.
//!    Primitives fully inside occluded tiles are killed; the rest report
//!    full/partial tile footprints and visible pixels.
//! 2. **RAS** — surviving primitives report supertile and 8×4 tile
//!    footprints plus rasterisation cycles.
//! 3. **VPC** — primitive/vertex-component accounting, including the count of
//!    primitives the LRZ unit had to re-assign.
//!
//! The renderer is *deterministic*: the same draw list always produces the
//! same counter increments. All noise in the reproduction comes from timing
//! (sampling alignment) and the UI layer, never from the pipeline itself.

use std::sync::{Arc, OnceLock};

use crate::counters::{CounterSet, TrackedCounter};
use crate::font::{self, FALLBACK};
use crate::geom::{Rect, Segment};
use crate::memo;
use crate::model::GpuParams;
use crate::scene::{DrawList, Primitive};

/// Side of an LRZ tile in pixels (8×8).
pub const LRZ_TILE: i32 = 8;
/// RAS fine tile width in pixels (8×4 tiles).
pub const RAS_TILE_W: i32 = 8;
/// RAS fine tile height in pixels.
pub const RAS_TILE_H: i32 = 4;

/// Number of timeline checkpoints recorded per frame. A mid-frame counter
/// read lands between checkpoints and observes a partial ("split") delta.
pub const CHECKPOINTS_PER_FRAME: usize = 8;

/// Occlusion mask at LRZ-tile granularity. A set bit means the tile is fully
/// covered by opaque content in a *higher* layer.
#[derive(Debug, Clone)]
pub struct OcclusionGrid {
    cells_x: i32,
    cells_y: i32,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl OcclusionGrid {
    /// Creates an all-clear grid for a `width`×`height` pixel viewport.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive.
    pub fn new(width: i32, height: i32) -> Self {
        assert!(width > 0 && height > 0, "viewport must be non-empty");
        let cells_x = (width + LRZ_TILE - 1) / LRZ_TILE;
        let cells_y = (height + LRZ_TILE - 1) / LRZ_TILE;
        let words_per_row = (cells_x as usize).div_ceil(64);
        OcclusionGrid {
            cells_x,
            cells_y,
            words_per_row,
            bits: vec![0; words_per_row * cells_y as usize],
        }
    }

    /// Grid width in cells.
    pub fn cells_x(&self) -> i32 {
        self.cells_x
    }

    /// Grid height in cells.
    pub fn cells_y(&self) -> i32 {
        self.cells_y
    }

    /// Marks every cell *fully covered* by `rect` as occluded.
    pub fn add_opaque_rect(&mut self, rect: &Rect) {
        if rect.is_empty() {
            return;
        }
        // Cells fully inside the rect: first cell whose origin >= x0 and
        // whose end <= x1.
        let cx0 = (rect.x0 + LRZ_TILE - 1) / LRZ_TILE;
        let cx1 = rect.x1 / LRZ_TILE; // exclusive
        let cy0 = (rect.y0 + LRZ_TILE - 1) / LRZ_TILE;
        let cy1 = rect.y1 / LRZ_TILE; // exclusive
        let cx0 = cx0.max(0);
        let cx1 = cx1.min(self.cells_x);
        let cy0 = cy0.max(0);
        let cy1 = cy1.min(self.cells_y);
        if cx0 >= cx1 || cy0 >= cy1 {
            return;
        }
        for cy in cy0..cy1 {
            self.set_row_range(cy, cx0, cx1);
        }
    }

    fn set_row_range(&mut self, cy: i32, cx0: i32, cx1: i32) {
        let row = cy as usize * self.words_per_row;
        let (w0, b0) = ((cx0 as usize) / 64, (cx0 as usize) % 64);
        let (w1, b1) = ((cx1 as usize) / 64, (cx1 as usize) % 64);
        if w0 == w1 {
            // Caller guarantees cx0 < cx1, so b1 > 0 here.
            let mask = (u64::MAX << b0) & !(u64::MAX << b1);
            self.bits[row + w0] |= mask;
            return;
        }
        self.bits[row + w0] |= u64::MAX << b0;
        for w in (w0 + 1)..w1 {
            self.bits[row + w] = u64::MAX;
        }
        if b1 > 0 {
            self.bits[row + w1] |= !(u64::MAX << b1);
        }
    }

    /// Whether the cell at `(cx, cy)` is occluded. Out-of-range cells read
    /// as not occluded.
    pub fn is_occluded(&self, cx: i32, cy: i32) -> bool {
        if cx < 0 || cy < 0 || cx >= self.cells_x || cy >= self.cells_y {
            return false;
        }
        let row = cy as usize * self.words_per_row;
        let w = (cx as usize) / 64;
        let b = (cx as usize) % 64;
        self.bits[row + w] & (1u64 << b) != 0
    }

    /// Counts occluded cells among the cells *touched* by `rect`.
    pub fn count_occluded_touched(&self, rect: &Rect) -> u64 {
        if rect.is_empty() {
            return 0;
        }
        let cx0 = (rect.x0 / LRZ_TILE).max(0);
        let cx1 = (((rect.x1 - 1) / LRZ_TILE) + 1).min(self.cells_x); // exclusive
        let cy0 = (rect.y0 / LRZ_TILE).max(0);
        let cy1 = (((rect.y1 - 1) / LRZ_TILE) + 1).min(self.cells_y);
        if cx0 >= cx1 || cy0 >= cy1 {
            return 0;
        }
        let mut count = 0u64;
        for cy in cy0..cy1 {
            count += self.count_row_range(cy, cx0, cx1);
        }
        count
    }

    fn count_row_range(&self, cy: i32, cx0: i32, cx1: i32) -> u64 {
        let row = cy as usize * self.words_per_row;
        let (w0, b0) = ((cx0 as usize) / 64, (cx0 as usize) % 64);
        let (w1, b1) = ((cx1 as usize) / 64, (cx1 as usize) % 64);
        if w0 == w1 {
            let mask = if b1 == 0 { 0 } else { (u64::MAX << b0) & !(u64::MAX << b1) };
            return (self.bits[row + w0] & mask).count_ones() as u64;
        }
        let mut n = (self.bits[row + w0] & (u64::MAX << b0)).count_ones() as u64;
        for w in (w0 + 1)..w1 {
            n += self.bits[row + w].count_ones() as u64;
        }
        if b1 > 0 {
            n += (self.bits[row + w1] & !(u64::MAX << b1)).count_ones() as u64;
        }
        n
    }
}

/// Counts of `(touched, fully_covered)` tiles of size `tw`×`th` for a rect.
fn rect_tile_counts(rect: &Rect, tw: i32, th: i32) -> (u64, u64) {
    if rect.is_empty() {
        return (0, 0);
    }
    let tx = ((rect.x1 - 1) / tw - rect.x0 / tw + 1) as u64;
    let ty = ((rect.y1 - 1) / th - rect.y0 / th + 1) as u64;
    let full_x = (rect.x1 / tw - (rect.x0 + tw - 1) / tw).max(0) as u64;
    let full_y = (rect.y1 / th - (rect.y0 + th - 1) / th).max(0) as u64;
    (tx * ty, full_x * full_y)
}

/// Per-primitive pipeline result, before aggregation.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PrimStats {
    /// Primitives submitted to the primitive controller.
    submitted: u64,
    /// Primitives surviving the LRZ kill.
    visible: u64,
    /// Whether the LRZ unit touched (re-assigned or killed) the primitive.
    lrz_assigned: bool,
    full_8x8: u64,
    partial_8x8: u64,
    visible_pixels: u64,
    supertiles: u64,
    ras_8x4: u64,
    ras_full_8x4: u64,
    components: u64,
    cycles: u64,
}

/// Reusable scratch for the stroke walk: a row-bitmask set over the cells of
/// one stroke's bounding box. Long strokes (the PNC login animation spans
/// hundreds of 8×4 RAS cells) made the old `Vec::contains` dedup O(n²) in
/// touched cells; the bitmask is O(1) per stamp and, being thread-local and
/// high-water-marked, allocates nothing in steady state.
#[derive(Default)]
struct StrokeScratch {
    words: Vec<u64>,
}

thread_local! {
    static STROKE_SCRATCH: std::cell::RefCell<StrokeScratch> =
        std::cell::RefCell::new(StrokeScratch::default());
}

/// Walks a stroked segment and reports `(touched, full)` cells for an
/// arbitrary tile grid, plus how many of the touched cells are occluded in
/// `grid` when the tile grid is the LRZ grid.
fn stroke_tiles(
    seg: &Segment,
    dest: &Rect,
    thickness: i32,
    tw: i32,
    th: i32,
    occlusion: Option<&OcclusionGrid>,
) -> (u64, u64, u64) {
    let sx = dest.width() as f32 / font::GRID;
    let sy = dest.height() as f32 / font::GRID;
    let x0 = dest.x0 as f32 + seg.x0 * sx;
    let y0 = dest.y0 as f32 + seg.y0 * sy;
    let x1 = dest.x0 as f32 + seg.x1 * sx;
    let y1 = dest.y0 as f32 + seg.y1 * sy;
    let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
    let half = (thickness.max(1) as f32) / 2.0;

    // Cell-space bounding box of every stamp square. The interpolated point
    // stays within the endpoint interval up to float rounding; truncation and
    // `div_euclid` are monotone, so endpoint-derived bounds padded by one
    // cell cover every step the walk can visit.
    let bx_min = ((x0.min(x1) - half) as i32).div_euclid(tw) - 1;
    let bx_max = ((x0.max(x1) + half) as i32).div_euclid(tw) + 1;
    let by_min = ((y0.min(y1) - half) as i32).div_euclid(th) - 1;
    let by_max = ((y0.max(y1) + half) as i32).div_euclid(th) + 1;
    let cols = (bx_max - bx_min + 1) as usize;
    let rows = (by_max - by_min + 1) as usize;
    let wpr = cols.div_ceil(64);
    let words_needed = wpr * rows;

    STROKE_SCRATCH.with(|scratch| {
        let words = &mut scratch.borrow_mut().words;
        if words.len() < words_needed {
            words.resize(words_needed, 0);
        }
        words[..words_needed].fill(0);

        let mut touched = 0u64;
        let mut full = 0u64;
        let mut occluded = 0u64;
        let steps = (len / (tw.min(th) as f32 / 2.0)).ceil().max(1.0) as i32;
        for i in 0..=steps {
            let t = i as f32 / steps as f32;
            let px = x0 + (x1 - x0) * t;
            let py = y0 + (y1 - y0) * t;
            let bx0 = ((px - half) as i32).div_euclid(tw);
            let bx1 = ((px + half) as i32).div_euclid(tw);
            let by0 = ((py - half) as i32).div_euclid(th);
            let by1 = ((py + half) as i32).div_euclid(th);
            debug_assert!(bx0 >= bx_min && bx1 <= bx_max && by0 >= by_min && by1 <= by_max);
            for cy in by0..=by1 {
                let row = (cy - by_min) as usize * wpr;
                for cx in bx0..=bx1 {
                    let col = (cx - bx_min) as usize;
                    let word = row + col / 64;
                    let bit = 1u64 << (col % 64);
                    if words[word] & bit == 0 {
                        words[word] |= bit;
                        touched += 1;
                        // A cell is "full" if the stamp square covers it
                        // fully — judged at first touch, like the old walk.
                        let covers = (px - half) <= (cx * tw) as f32
                            && (px + half) >= ((cx + 1) * tw) as f32
                            && (py - half) <= (cy * th) as f32
                            && (py + half) >= ((cy + 1) * th) as f32;
                        if covers {
                            full += 1;
                        }
                        if let Some(g) = occlusion {
                            if g.is_occluded(cx, cy) {
                                occluded += 1;
                            }
                        }
                    }
                }
            }
        }
        (touched, full, occluded)
    })
}

fn process_quad(rect: &Rect, opaque: bool, occ: &OcclusionGrid, params: &GpuParams) -> PrimStats {
    let _ = opaque; // opacity affects the mask built by the caller, not stats
    let mut s = PrimStats { submitted: 2, components: 32, ..PrimStats::default() };
    if rect.is_empty() {
        // Degenerate quads are still submitted and culled, costing setup.
        s.cycles = params.prim_setup_cycles as u64;
        return s;
    }
    let (touched, full) = rect_tile_counts(rect, LRZ_TILE, LRZ_TILE);
    let occluded = occ.count_occluded_touched(rect);
    if touched > 0 && occluded >= touched {
        // Fully occluded: killed by LRZ.
        s.lrz_assigned = true;
        s.cycles = params.prim_setup_cycles as u64;
        return s;
    }
    let vis_ratio = if touched == 0 { 1.0 } else { (touched - occluded) as f64 / touched as f64 };
    let scale = |v: u64| -> u64 { (v as f64 * vis_ratio).round() as u64 };
    s.visible = 2;
    s.lrz_assigned = occluded > 0;
    s.full_8x8 = scale(full);
    s.partial_8x8 = scale(touched - full);
    s.visible_pixels = scale(rect.area() as u64);
    let (st, _) = rect_tile_counts(rect, params.supertile_w, params.supertile_h);
    let (t84, f84) = rect_tile_counts(rect, RAS_TILE_W, RAS_TILE_H);
    s.supertiles = scale(st).max(1);
    s.ras_8x4 = scale(t84);
    s.ras_full_8x4 = scale(f84);
    s.cycles = params.prim_setup_cycles as u64
        + s.visible_pixels / params.pixels_per_cycle as u64
        + s.ras_8x4 * 2;
    s
}

fn process_stroke(
    seg: &Segment,
    dest: &Rect,
    thickness: i32,
    occ: &OcclusionGrid,
    params: &GpuParams,
) -> PrimStats {
    let mut s = PrimStats { submitted: 1, components: 24, ..PrimStats::default() };
    let (touched, full, occluded) =
        stroke_tiles(seg, dest, thickness, LRZ_TILE, LRZ_TILE, Some(occ));
    if touched > 0 && occluded >= touched {
        s.lrz_assigned = true;
        s.cycles = params.prim_setup_cycles as u64;
        return s;
    }
    let vis_ratio = if touched == 0 { 1.0 } else { (touched - occluded) as f64 / touched as f64 };
    let scale = |v: u64| -> u64 { (v as f64 * vis_ratio).round() as u64 };
    s.visible = 1;
    s.lrz_assigned = occluded > 0;
    s.full_8x8 = scale(full);
    s.partial_8x8 = scale(touched - full);
    s.visible_pixels = scale(seg.screen_coverage(dest, font::GRID, thickness) as u64);
    let (t84, f84, _) = stroke_tiles(seg, dest, thickness, RAS_TILE_W, RAS_TILE_H, None);
    let (st, _, _) =
        stroke_tiles(seg, dest, thickness, params.supertile_w, params.supertile_h, None);
    s.supertiles = scale(st).max(1);
    s.ras_8x4 = scale(t84);
    s.ras_full_8x4 = scale(f84);
    s.cycles = params.prim_setup_cycles as u64
        + s.visible_pixels / params.pixels_per_cycle as u64
        + s.ras_8x4 * 2;
    s
}

/// Expands a glyph into its per-stroke pipeline stats, uncached.
fn glyph_stats(
    ch: char,
    dest: &Rect,
    thickness: i32,
    occ: &OcclusionGrid,
    params: &GpuParams,
) -> Vec<PrimStats> {
    let strokes = font::glyph_strokes(ch).unwrap_or(FALLBACK);
    strokes.iter().map(|seg| process_stroke(seg, dest, thickness, occ, params)).collect()
}

/// [`glyph_stats`] through the process-global per-glyph cache. The key
/// captures everything the stroke walk reads: the glyph identity and
/// placement, the GPU parameters, and the occlusion bits inside the glyph's
/// padded bounding region (strokes never query cells outside their
/// [`Segment::screen_bounds`]).
///
/// The key computation itself is cache-hit-cheap: the glyph's screen bounds
/// come from the once-per-process design-grid bounding-box table
/// ([`font::glyph_screen_bounds`]) instead of a per-call fold over every
/// stroke's `screen_bounds`, and the stroke table lookup is deferred into
/// the miss closure.
pub(crate) fn glyph_stats_cached(
    ch: char,
    dest: &Rect,
    thickness: i32,
    occ: &OcclusionGrid,
    params: &GpuParams,
) -> Arc<Vec<PrimStats>> {
    let bounds = font::glyph_screen_bounds(ch, dest, thickness);
    let mut m = memo::Mixer::new();
    m.write(ch as u64);
    m.write_i32(dest.x0);
    m.write_i32(dest.y0);
    m.write_i32(dest.x1);
    m.write_i32(dest.y1);
    m.write_i32(thickness);
    memo::write_params(&mut m, params);
    let occ_fp = memo::glyph_occlusion_fingerprint(&bounds, occ);
    m.write(occ_fp.lo);
    m.write(occ_fp.hi);
    glyph_cache().get_or_insert_with(m.finish(), || glyph_stats(ch, dest, thickness, occ, params))
}

fn glyph_cache() -> &'static memo::GlyphCache<Vec<PrimStats>> {
    static CACHE: OnceLock<memo::GlyphCache<Vec<PrimStats>>> = OnceLock::new();
    CACHE.get_or_init(memo::GlyphCache::new)
}

pub(crate) fn glyph_cache_stats() -> memo::CacheStats {
    glyph_cache().stats()
}

pub(crate) fn reset_glyph_cache() {
    glyph_cache().reset()
}

/// Per-prim stats of one layer against its occlusion mask — exactly the
/// pass-2 inner loop of [`render_impl`] for a single layer, glyph cache on.
/// The incremental renderer recomputes dirty layers through this, so a
/// merged stream of per-layer results is element-identical to a full pass 2.
pub(crate) fn layer_stats(
    layer: &crate::scene::Layer,
    mask: &OcclusionGrid,
    params: &GpuParams,
) -> Vec<PrimStats> {
    let mut out: Vec<PrimStats> = Vec::with_capacity(layer.prims.len() * 2);
    for prim in &layer.prims {
        match prim {
            Primitive::Quad { rect, opaque } => {
                out.push(process_quad(rect, *opaque, mask, params));
            }
            Primitive::Glyph { ch, dest, thickness } => {
                let stats = glyph_stats_cached(*ch, dest, *thickness, mask, params);
                out.extend(stats.iter().copied());
            }
            Primitive::Stroke { seg, dest, thickness } => {
                out.push(process_stroke(seg, dest, *thickness, mask, params));
            }
        }
    }
    out
}

/// Folds an ordered per-prim stats stream into a [`RenderOutput`]: totals,
/// cycles, and the [`CHECKPOINTS_PER_FRAME`] cumulative checkpoints. Both
/// the full renderer and the incremental renderer aggregate through this
/// single function, so their outputs agree bit-for-bit whenever their
/// per-prim streams do (everything here is integer addition in stream
/// order).
pub(crate) fn fold_prim_stream(
    prims: impl Iterator<Item = PrimStats>,
    total_prims: usize,
) -> RenderOutput {
    let mut checkpoints = Vec::with_capacity(CHECKPOINTS_PER_FRAME);
    let mut cum = CounterSet::ZERO;
    let mut cyc = 0u64;
    if total_prims > 0 {
        let chunk = total_prims.div_ceil(CHECKPOINTS_PER_FRAME);
        for (i, s) in prims.enumerate() {
            cum += s.to_counters();
            cyc += s.cycles;
            if (i + 1) % chunk == 0 || i + 1 == total_prims {
                checkpoints.push((cyc, cum));
            }
        }
    }
    RenderOutput { totals: cum, total_cycles: cyc, checkpoints }
}

impl PrimStats {
    fn to_counters(self) -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[TrackedCounter::LrzVisiblePrimAfterLrz] = self.visible;
        c[TrackedCounter::LrzFull8x8Tiles] = self.full_8x8;
        c[TrackedCounter::LrzPartial8x8Tiles] = self.partial_8x8;
        c[TrackedCounter::LrzVisiblePixelAfterLrz] = self.visible_pixels / 16;
        c[TrackedCounter::RasSupertileActiveCycles] =
            self.supertiles * 16 + self.ras_8x4 * 2 + self.visible_pixels / 64;
        c[TrackedCounter::RasSuperTiles] = self.supertiles;
        c[TrackedCounter::Ras8x4Tiles] = self.ras_8x4;
        c[TrackedCounter::RasFullyCovered8x4Tiles] = self.ras_full_8x4;
        c[TrackedCounter::VpcPcPrimitives] = self.submitted;
        c[TrackedCounter::VpcSpComponents] = if self.visible > 0 { self.components } else { 0 };
        c[TrackedCounter::VpcLrzAssignPrimitives] =
            if self.lrz_assigned { self.submitted } else { 0 };
        c
    }
}

/// The result of rendering one draw list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderOutput {
    /// Total counter increments contributed by the frame.
    pub totals: CounterSet,
    /// Total GPU cycles consumed by the frame.
    pub total_cycles: u64,
    /// Cumulative `(cycles_done, counters_so_far)` checkpoints in execution
    /// (back-to-front) order, ending at `(total_cycles, totals)`. A read that
    /// lands mid-frame observes the last checkpoint at or before its time.
    pub checkpoints: Vec<(u64, CounterSet)>,
}

/// Renders `draw_list` on a GPU with parameters `params`, producing counter
/// increments and a cycle-accurate-ish checkpoint timeline.
///
/// Layers occlude strictly lower layers via their opaque quads, at LRZ-tile
/// granularity. Primitives execute in submission (back-to-front) order.
///
/// # Examples
///
/// ```
/// use adreno_sim::geom::Rect;
/// use adreno_sim::model::GpuModel;
/// use adreno_sim::pipeline::render;
/// use adreno_sim::scene::DrawList;
///
/// let mut dl = DrawList::new(256, 256);
/// dl.layer("bg").quad(Rect::from_xywh(0, 0, 256, 256), true);
/// let out = render(&dl, &GpuModel::Adreno650.params());
/// assert!(out.totals.total() > 0);
/// ```
pub fn render(draw_list: &DrawList, params: &GpuParams) -> RenderOutput {
    render_impl(draw_list, params, true)
}

/// [`render`] with every cache layer bypassed: glyph stroke stats are
/// recomputed from scratch. Reference implementation for the memoization
/// property tests and the cold-path benchmarks; produces output identical
/// to [`render`] and [`crate::memo::render_cached`].
pub fn render_uncached(draw_list: &DrawList, params: &GpuParams) -> RenderOutput {
    render_impl(draw_list, params, false)
}

fn render_impl(draw_list: &DrawList, params: &GpuParams, use_glyph_cache: bool) -> RenderOutput {
    let _span = spansight::span("adreno", "render");
    let layers = draw_list.layers();

    // Pass 1 (front-to-back): per-layer occlusion masks from higher layers.
    let pass1 = spansight::span("adreno", "render.occlusion_pass");
    // `masks[i]` is the occlusion seen by layer i. Snapshots are shared:
    // a layer adding no opaque occlusion reuses the previous snapshot `Arc`
    // untouched, and the bottom layer takes the accumulator by move, so a
    // full grid clone happens only per *occluding* interior layer.
    let masks: Vec<Arc<OcclusionGrid>> = {
        let mut acc = Some(OcclusionGrid::new(draw_list.width(), draw_list.height()));
        // `snap`, when set, is an Arc whose contents equal `acc`.
        let mut snap: Option<Arc<OcclusionGrid>> = None;
        let mut rev: Vec<Arc<OcclusionGrid>> = Vec::with_capacity(layers.len());
        for (k, layer) in layers.iter().rev().enumerate() {
            let is_bottom = k + 1 == layers.len();
            let cur: Arc<OcclusionGrid> = match snap.take() {
                Some(s) => s,
                None if is_bottom => Arc::new(acc.take().expect("acc taken only at bottom")),
                None => Arc::new(acc.as_ref().expect("acc alive above bottom").clone()),
            };
            rev.push(Arc::clone(&cur));
            if is_bottom {
                break; // nothing below observes further occlusion
            }
            let grid = acc.as_mut().expect("acc alive above bottom");
            let mut changed = false;
            for prim in &layer.prims {
                if let Primitive::Quad { rect, opaque: true } = prim {
                    if !rect.is_empty() {
                        grid.add_opaque_rect(rect);
                        changed = true;
                    }
                }
            }
            if !changed {
                snap = Some(cur);
            }
        }
        rev.reverse();
        rev
    };
    drop(pass1);

    // Pass 2 (back-to-front): process primitives against their layer's mask.
    let pass2 = spansight::span("adreno", "render.prim_pass");
    let mut per_prim: Vec<PrimStats> = Vec::with_capacity(draw_list.prim_count() * 2);
    for (layer, mask) in layers.iter().zip(masks.iter()) {
        for prim in &layer.prims {
            match prim {
                Primitive::Quad { rect, opaque } => {
                    per_prim.push(process_quad(rect, *opaque, mask, params));
                }
                Primitive::Glyph { ch, dest, thickness } => {
                    if use_glyph_cache {
                        let stats = glyph_stats_cached(*ch, dest, *thickness, mask, params);
                        per_prim.extend(stats.iter().copied());
                    } else {
                        per_prim.extend(glyph_stats(*ch, dest, *thickness, mask, params));
                    }
                }
                Primitive::Stroke { seg, dest, thickness } => {
                    per_prim.push(process_stroke(seg, dest, *thickness, mask, params));
                }
            }
        }
    }

    drop(pass2);

    // Aggregate + checkpoint.
    let out = fold_prim_stream(per_prim.iter().copied(), per_prim.len());
    spansight::count("adreno.render.calls", 1);
    spansight::count("adreno.render.prims", per_prim.len() as u64);
    spansight::count(
        "adreno.render.lrz_8x8_tiles",
        out.totals[TrackedCounter::LrzFull8x8Tiles]
            + out.totals[TrackedCounter::LrzPartial8x8Tiles],
    );
    spansight::count("adreno.render.ras_8x4_tiles", out.totals[TrackedCounter::Ras8x4Tiles]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GpuModel;

    fn params() -> GpuParams {
        GpuModel::Adreno650.params()
    }

    #[test]
    fn occlusion_grid_marks_and_counts() {
        let mut g = OcclusionGrid::new(256, 256);
        g.add_opaque_rect(&Rect::from_xywh(0, 0, 64, 64)); // 8x8 cells
        assert!(g.is_occluded(0, 0));
        assert!(g.is_occluded(7, 7));
        assert!(!g.is_occluded(8, 0));
        assert_eq!(g.count_occluded_touched(&Rect::from_xywh(0, 0, 64, 64)), 64);
        assert_eq!(g.count_occluded_touched(&Rect::from_xywh(64, 64, 64, 64)), 0);
        // Rect straddling the boundary touches 16x8 cells, half occluded.
        assert_eq!(g.count_occluded_touched(&Rect::from_xywh(0, 0, 128, 64)), 64);
    }

    #[test]
    fn occlusion_partial_cells_not_marked() {
        let mut g = OcclusionGrid::new(256, 256);
        // A rect not aligned to tiles only fully covers the interior cells.
        g.add_opaque_rect(&Rect::from_xywh(4, 4, 16, 16)); // covers cells [1,1] fully? 4..20 → cell 1 spans 8..16: yes
        assert!(g.is_occluded(1, 1));
        assert!(!g.is_occluded(0, 0));
        assert!(!g.is_occluded(2, 2));
    }

    #[test]
    fn rect_tile_counts_basic() {
        let (t, f) = rect_tile_counts(&Rect::from_xywh(0, 0, 16, 16), 8, 8);
        assert_eq!((t, f), (4, 4));
        let (t, f) = rect_tile_counts(&Rect::from_xywh(4, 4, 16, 16), 8, 8);
        assert_eq!(t, 9);
        assert_eq!(f, 1);
        let (t, f) = rect_tile_counts(&Rect::from_xywh(0, 0, 4, 4), 8, 8);
        assert_eq!((t, f), (1, 0));
    }

    #[test]
    fn fullscreen_quad_counts_everything() {
        let mut dl = DrawList::new(256, 256);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 256, 256), true);
        let out = render(&dl, &params());
        assert_eq!(out.totals[TrackedCounter::LrzVisiblePrimAfterLrz], 2);
        assert_eq!(out.totals[TrackedCounter::LrzFull8x8Tiles], 32 * 32);
        assert_eq!(out.totals[TrackedCounter::LrzPartial8x8Tiles], 0);
        assert_eq!(out.totals[TrackedCounter::VpcPcPrimitives], 2);
        assert_eq!(out.totals[TrackedCounter::VpcLrzAssignPrimitives], 0);
        assert!(out.total_cycles > 0);
    }

    #[test]
    fn occluded_quad_is_killed() {
        let mut dl = DrawList::new(256, 256);
        dl.layer("below").quad(Rect::from_xywh(64, 64, 64, 64), false);
        dl.layer("above").quad(Rect::from_xywh(0, 0, 256, 256), true);
        let out = render(&dl, &params());
        // The lower quad is fully occluded: only the top quad is visible.
        assert_eq!(out.totals[TrackedCounter::LrzVisiblePrimAfterLrz], 2);
        // Both quads were submitted.
        assert_eq!(out.totals[TrackedCounter::VpcPcPrimitives], 4);
        // The killed quad counts as LRZ-assigned.
        assert_eq!(out.totals[TrackedCounter::VpcLrzAssignPrimitives], 2);
    }

    #[test]
    fn occlusion_is_strictly_from_higher_layers() {
        // An opaque quad must not occlude content in its own or higher layers.
        let mut dl = DrawList::new(256, 256);
        let mut layer = crate::scene::Layer::new("both");
        layer.quad(Rect::from_xywh(0, 0, 256, 256), true);
        layer.quad(Rect::from_xywh(0, 0, 64, 64), false);
        dl.push_layer(layer);
        let out = render(&dl, &params());
        assert_eq!(out.totals[TrackedCounter::LrzVisiblePrimAfterLrz], 4);
    }

    #[test]
    fn overdraw_increases_counters() {
        let mut base = DrawList::new(512, 512);
        base.layer("bg").quad(Rect::from_xywh(0, 0, 512, 512), true);
        let a = render(&base, &params());

        let mut over = DrawList::new(512, 512);
        over.layer("bg").quad(Rect::from_xywh(0, 0, 512, 512), true);
        over.layer("popup").quad(Rect::from_xywh(100, 100, 90, 110), true);
        let b = render(&over, &params());

        assert!(b.totals[TrackedCounter::Ras8x4Tiles] > a.totals[TrackedCounter::Ras8x4Tiles]);
        assert!(
            b.totals[TrackedCounter::VpcPcPrimitives] > a.totals[TrackedCounter::VpcPcPrimitives]
        );
        // The popup occludes part of the background → LRZ assignment changes.
        assert!(b.totals[TrackedCounter::VpcLrzAssignPrimitives] > 0);
    }

    #[test]
    fn different_glyphs_produce_different_counters() {
        let render_key = |ch: char| {
            let mut dl = DrawList::new(512, 512);
            dl.layer("bg").quad(Rect::from_xywh(0, 0, 512, 512), true);
            dl.layer("popup").glyph(ch, Rect::from_xywh(100, 100, 90, 110), 8);
            render(&dl, &params()).totals
        };
        let w = render_key('w');
        let n = render_key('n');
        let l = render_key('l');
        assert_ne!(w, n, "'w' and 'n' must be distinguishable");
        assert!(
            w[TrackedCounter::VpcPcPrimitives] > l[TrackedCounter::VpcPcPrimitives],
            "'w' has more strokes than 'l'"
        );
    }

    #[test]
    fn render_is_deterministic() {
        let mut dl = DrawList::new(512, 512);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 512, 512), true);
        dl.layer("popup").glyph('q', Rect::from_xywh(37, 410, 90, 110), 8);
        let a = render(&dl, &params());
        let b = render(&dl, &params());
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoints_are_monotonic_and_end_at_totals() {
        let mut dl = DrawList::new(512, 512);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 512, 512), true);
        for i in 0..10 {
            dl.layer("keys").quad(Rect::from_xywh(i * 40, 300, 36, 48), true);
        }
        let out = render(&dl, &params());
        assert!(!out.checkpoints.is_empty());
        assert!(out.checkpoints.len() <= CHECKPOINTS_PER_FRAME + 1);
        let mut prev = 0u64;
        for (cyc, _) in &out.checkpoints {
            assert!(*cyc >= prev);
            prev = *cyc;
        }
        let (last_cyc, last_set) = out.checkpoints.last().unwrap();
        assert_eq!(*last_cyc, out.total_cycles);
        assert_eq!(*last_set, out.totals);
    }

    #[test]
    fn different_supertile_geometry_changes_ras_counters() {
        let mut dl = DrawList::new(1024, 1024);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 1024, 1024), true);
        let a = render(&dl, &GpuModel::Adreno540.params());
        let b = render(&dl, &GpuModel::Adreno660.params());
        assert_ne!(
            a.totals[TrackedCounter::RasSuperTiles],
            b.totals[TrackedCounter::RasSuperTiles]
        );
    }

    #[test]
    fn empty_draw_list_renders_to_zero() {
        let dl = DrawList::new(64, 64);
        let out = render(&dl, &params());
        assert!(out.totals.is_zero());
        assert_eq!(out.total_cycles, 0);
        assert!(out.checkpoints.is_empty());
    }
}
