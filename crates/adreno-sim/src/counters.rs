//! GPU performance counters.
//!
//! Mirrors the counter naming of Qualcomm Adreno GPUs as exposed through the
//! `GL_AMD_performance_monitor` extension and the KGSL driver. The attack in
//! the paper (Table 1) uses eleven counters from three groups:
//!
//! | Group | ID | String identifier |
//! |-------|----|-------------------|
//! | LRZ   | 13 | `PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ` |
//! | LRZ   | 14 | `PERF_LRZ_FULL_8X8_TILES` |
//! | LRZ   | 15 | `PERF_LRZ_PARTIAL_8X8_TILES` |
//! | LRZ   | 18 | `PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ` |
//! | RAS   | 1  | `PERF_RAS_SUPERTILE_ACTIVE_CYCLES` |
//! | RAS   | 4  | `PERF_RAS_SUPER_TILES` |
//! | RAS   | 5  | `PERF_RAS_8X4_TILES` |
//! | RAS   | 8  | `PERF_RAS_FULLY_COVERED_8X4_TILES` |
//! | VPC   | 9  | `PERF_VPC_PC_PRIMITIVES` |
//! | VPC   | 10 | `PERF_VPC_SP_COMPONENTS` |
//! | VPC   | 12 | `PERF_VPC_LRZ_ASSIGN_PRIMITIVES` |
//!
//! Counters are free-running and monotonic: the hardware only ever adds to
//! them, and readers observe cumulative values.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub};

/// A hardware counter group, with the group IDs used by the KGSL driver
/// (`msm_kgsl.h`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterGroup {
    /// Vertex cache (`KGSL_PERFCOUNTER_GROUP_VPC`).
    Vpc,
    /// Rasterizer (`KGSL_PERFCOUNTER_GROUP_RAS`).
    Ras,
    /// Low-resolution-Z pass (`KGSL_PERFCOUNTER_GROUP_LRZ`).
    Lrz,
}

impl CounterGroup {
    /// The KGSL group id, matching `msm_kgsl.h`.
    pub const fn kgsl_id(self) -> u32 {
        match self {
            CounterGroup::Vpc => 0x5,
            CounterGroup::Ras => 0x7,
            CounterGroup::Lrz => 0x19,
        }
    }

    /// Looks a group up by its KGSL id.
    pub const fn from_kgsl_id(id: u32) -> Option<CounterGroup> {
        match id {
            0x5 => Some(CounterGroup::Vpc),
            0x7 => Some(CounterGroup::Ras),
            0x19 => Some(CounterGroup::Lrz),
            _ => None,
        }
    }
}

impl fmt::Display for CounterGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CounterGroup::Vpc => "VPC",
            CounterGroup::Ras => "RAS",
            CounterGroup::Lrz => "LRZ",
        };
        f.write_str(s)
    }
}

/// Identifies a single hardware counter: a group plus the "countable"
/// selector within that group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CounterId {
    pub group: CounterGroup,
    pub countable: u32,
}

impl CounterId {
    /// Creates a counter id.
    pub const fn new(group: CounterGroup, countable: u32) -> Self {
        CounterId { group, countable }
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.group, self.countable)
    }
}

/// The eleven counters the attack tracks (Table 1 of the paper), in a fixed
/// order so that counter vectors can live in flat arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum TrackedCounter {
    LrzVisiblePrimAfterLrz = 0,
    LrzFull8x8Tiles = 1,
    LrzPartial8x8Tiles = 2,
    LrzVisiblePixelAfterLrz = 3,
    RasSupertileActiveCycles = 4,
    RasSuperTiles = 5,
    Ras8x4Tiles = 6,
    RasFullyCovered8x4Tiles = 7,
    VpcPcPrimitives = 8,
    VpcSpComponents = 9,
    VpcLrzAssignPrimitives = 10,
}

/// Number of tracked counters.
pub const NUM_TRACKED: usize = 11;

/// All tracked counters in index order.
pub const ALL_TRACKED: [TrackedCounter; NUM_TRACKED] = [
    TrackedCounter::LrzVisiblePrimAfterLrz,
    TrackedCounter::LrzFull8x8Tiles,
    TrackedCounter::LrzPartial8x8Tiles,
    TrackedCounter::LrzVisiblePixelAfterLrz,
    TrackedCounter::RasSupertileActiveCycles,
    TrackedCounter::RasSuperTiles,
    TrackedCounter::Ras8x4Tiles,
    TrackedCounter::RasFullyCovered8x4Tiles,
    TrackedCounter::VpcPcPrimitives,
    TrackedCounter::VpcSpComponents,
    TrackedCounter::VpcLrzAssignPrimitives,
];

impl TrackedCounter {
    /// The flat vector index of this counter.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The `(group, countable)` pair of this counter, matching Table 1.
    pub const fn id(self) -> CounterId {
        use CounterGroup::*;
        use TrackedCounter::*;
        match self {
            LrzVisiblePrimAfterLrz => CounterId::new(Lrz, 13),
            LrzFull8x8Tiles => CounterId::new(Lrz, 14),
            LrzPartial8x8Tiles => CounterId::new(Lrz, 15),
            LrzVisiblePixelAfterLrz => CounterId::new(Lrz, 18),
            RasSupertileActiveCycles => CounterId::new(Ras, 1),
            RasSuperTiles => CounterId::new(Ras, 4),
            Ras8x4Tiles => CounterId::new(Ras, 5),
            RasFullyCovered8x4Tiles => CounterId::new(Ras, 8),
            VpcPcPrimitives => CounterId::new(Vpc, 9),
            VpcSpComponents => CounterId::new(Vpc, 10),
            VpcLrzAssignPrimitives => CounterId::new(Vpc, 12),
        }
    }

    /// The string identifier reported by `GetPerfMonitorCounterStringAMD`.
    pub const fn name(self) -> &'static str {
        use TrackedCounter::*;
        match self {
            LrzVisiblePrimAfterLrz => "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ",
            LrzFull8x8Tiles => "PERF_LRZ_FULL_8X8_TILES",
            LrzPartial8x8Tiles => "PERF_LRZ_PARTIAL_8X8_TILES",
            LrzVisiblePixelAfterLrz => "PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ",
            RasSupertileActiveCycles => "PERF_RAS_SUPERTILE_ACTIVE_CYCLES",
            RasSuperTiles => "PERF_RAS_SUPER_TILES",
            Ras8x4Tiles => "PERF_RAS_8X4_TILES",
            RasFullyCovered8x4Tiles => "PERF_RAS_FULLY_COVERED_8X4_TILES",
            VpcPcPrimitives => "PERF_VPC_PC_PRIMITIVES",
            VpcSpComponents => "PERF_VPC_SP_COMPONENTS",
            VpcLrzAssignPrimitives => "PERF_VPC_LRZ_ASSIGN_PRIMITIVES",
        }
    }

    /// Looks a tracked counter up from its `(group, countable)` pair.
    ///
    /// This is the inverse of [`TrackedCounter::id`], written as a direct
    /// match so the per-entry lookup in the block-read ioctl path costs a
    /// jump table instead of a linear scan over [`ALL_TRACKED`].
    pub const fn from_id(id: CounterId) -> Option<TrackedCounter> {
        use CounterGroup::*;
        use TrackedCounter::*;
        match (id.group, id.countable) {
            (Lrz, 13) => Some(LrzVisiblePrimAfterLrz),
            (Lrz, 14) => Some(LrzFull8x8Tiles),
            (Lrz, 15) => Some(LrzPartial8x8Tiles),
            (Lrz, 18) => Some(LrzVisiblePixelAfterLrz),
            (Ras, 1) => Some(RasSupertileActiveCycles),
            (Ras, 4) => Some(RasSuperTiles),
            (Ras, 5) => Some(Ras8x4Tiles),
            (Ras, 8) => Some(RasFullyCovered8x4Tiles),
            (Vpc, 9) => Some(VpcPcPrimitives),
            (Vpc, 10) => Some(VpcSpComponents),
            (Vpc, 12) => Some(VpcLrzAssignPrimitives),
            _ => None,
        }
    }
}

impl fmt::Display for TrackedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A vector of the eleven tracked counter values: either a cumulative
/// snapshot or a delta between two snapshots.
///
/// `CounterSet` supports element-wise arithmetic so that snapshots can be
/// differenced into deltas and deltas accumulated back into snapshots.
///
/// # Examples
///
/// ```
/// use adreno_sim::counters::{CounterSet, TrackedCounter};
///
/// let mut a = CounterSet::ZERO;
/// a[TrackedCounter::VpcPcPrimitives] = 10;
/// let mut b = a;
/// b[TrackedCounter::VpcPcPrimitives] = 25;
/// let delta = b - a;
/// assert_eq!(delta[TrackedCounter::VpcPcPrimitives], 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CounterSet {
    values: [u64; NUM_TRACKED],
}

impl CounterSet {
    /// All-zero counter set.
    pub const ZERO: CounterSet = CounterSet { values: [0; NUM_TRACKED] };

    /// Creates a set from a raw value array in [`ALL_TRACKED`] order.
    pub const fn from_array(values: [u64; NUM_TRACKED]) -> Self {
        CounterSet { values }
    }

    /// The raw value array in [`ALL_TRACKED`] order.
    pub const fn as_array(&self) -> &[u64; NUM_TRACKED] {
        &self.values
    }

    /// Sum of all elements (a scalar "total activity" measure).
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// Whether all elements are zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Element-wise checked subtraction: `None` if any element would
    /// underflow. Used by classifiers that peel a known signature off a
    /// composite delta.
    pub fn checked_sub(&self, rhs: &CounterSet) -> Option<CounterSet> {
        let mut out = [0u64; NUM_TRACKED];
        for (o, (a, b)) in out.iter_mut().zip(self.values.iter().zip(&rhs.values)) {
            *o = a.checked_sub(*b)?;
        }
        Some(CounterSet { values: out })
    }

    /// Element-wise multiplication by a scalar.
    pub fn scaled(&self, factor: u64) -> CounterSet {
        let mut out = [0u64; NUM_TRACKED];
        for (o, v) in out.iter_mut().zip(&self.values) {
            *o = v * factor;
        }
        CounterSet { values: out }
    }

    /// Element-wise saturating subtraction — useful when comparing snapshots
    /// that may have been taken out of order.
    pub fn saturating_sub(&self, rhs: &CounterSet) -> CounterSet {
        let mut out = [0u64; NUM_TRACKED];
        for (o, (a, b)) in out.iter_mut().zip(self.values.iter().zip(&rhs.values)) {
            *o = a.saturating_sub(*b);
        }
        CounterSet { values: out }
    }

    /// Euclidean distance between two sets viewed as points in counter
    /// space. Used by the nearest-centroid classifier.
    pub fn distance(&self, rhs: &CounterSet) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..NUM_TRACKED {
            let d = self.values[i] as f64 - rhs.values[i] as f64;
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Converts to an `f64` vector (for classifiers that work in float
    /// space).
    pub fn to_f64(&self) -> [f64; NUM_TRACKED] {
        let mut out = [0.0; NUM_TRACKED];
        for (o, v) in out.iter_mut().zip(&self.values) {
            *o = *v as f64;
        }
        out
    }

    /// Iterates over `(counter, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TrackedCounter, u64)> + '_ {
        ALL_TRACKED.into_iter().map(move |c| (c, self.values[c.index()]))
    }
}

impl Index<TrackedCounter> for CounterSet {
    type Output = u64;
    fn index(&self, c: TrackedCounter) -> &u64 {
        &self.values[c.index()]
    }
}

impl IndexMut<TrackedCounter> for CounterSet {
    fn index_mut(&mut self, c: TrackedCounter) -> &mut u64 {
        &mut self.values[c.index()]
    }
}

impl Add for CounterSet {
    type Output = CounterSet;
    fn add(self, rhs: CounterSet) -> CounterSet {
        let mut out = [0u64; NUM_TRACKED];
        for (o, (a, b)) in out.iter_mut().zip(self.values.iter().zip(&rhs.values)) {
            *o = a + b;
        }
        CounterSet { values: out }
    }
}

impl AddAssign for CounterSet {
    fn add_assign(&mut self, rhs: CounterSet) {
        for i in 0..NUM_TRACKED {
            self.values[i] += rhs.values[i];
        }
    }
}

impl Sub for CounterSet {
    type Output = CounterSet;

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any element underflows; in release builds
    /// this wraps (snapshots are monotonic, so a well-ordered pair never
    /// underflows).
    fn sub(self, rhs: CounterSet) -> CounterSet {
        let mut out = [0u64; NUM_TRACKED];
        for i in 0..NUM_TRACKED {
            out[i] = self.values[i].wrapping_sub(rhs.values[i]);
            debug_assert!(
                self.values[i] >= rhs.values[i],
                "counter {} underflow: {} - {}",
                ALL_TRACKED[i].name(),
                self.values[i],
                rhs.values[i]
            );
        }
        CounterSet { values: out }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (c, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", c.id(), v)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ids_match_paper() {
        assert_eq!(
            TrackedCounter::LrzVisiblePrimAfterLrz.id(),
            CounterId::new(CounterGroup::Lrz, 13)
        );
        assert_eq!(TrackedCounter::LrzFull8x8Tiles.id(), CounterId::new(CounterGroup::Lrz, 14));
        assert_eq!(TrackedCounter::LrzPartial8x8Tiles.id(), CounterId::new(CounterGroup::Lrz, 15));
        assert_eq!(
            TrackedCounter::LrzVisiblePixelAfterLrz.id(),
            CounterId::new(CounterGroup::Lrz, 18)
        );
        assert_eq!(
            TrackedCounter::RasSupertileActiveCycles.id(),
            CounterId::new(CounterGroup::Ras, 1)
        );
        assert_eq!(TrackedCounter::RasSuperTiles.id(), CounterId::new(CounterGroup::Ras, 4));
        assert_eq!(TrackedCounter::Ras8x4Tiles.id(), CounterId::new(CounterGroup::Ras, 5));
        assert_eq!(
            TrackedCounter::RasFullyCovered8x4Tiles.id(),
            CounterId::new(CounterGroup::Ras, 8)
        );
        assert_eq!(TrackedCounter::VpcPcPrimitives.id(), CounterId::new(CounterGroup::Vpc, 9));
        assert_eq!(TrackedCounter::VpcSpComponents.id(), CounterId::new(CounterGroup::Vpc, 10));
        assert_eq!(
            TrackedCounter::VpcLrzAssignPrimitives.id(),
            CounterId::new(CounterGroup::Vpc, 12)
        );
    }

    #[test]
    fn group_ids_match_msm_kgsl_h() {
        assert_eq!(CounterGroup::Vpc.kgsl_id(), 0x5);
        assert_eq!(CounterGroup::Ras.kgsl_id(), 0x7);
        assert_eq!(CounterGroup::Lrz.kgsl_id(), 0x19);
        assert_eq!(CounterGroup::from_kgsl_id(0x19), Some(CounterGroup::Lrz));
        assert_eq!(CounterGroup::from_kgsl_id(0x42), None);
    }

    #[test]
    fn tracked_round_trip_by_id() {
        for c in ALL_TRACKED {
            assert_eq!(TrackedCounter::from_id(c.id()), Some(c));
        }
        assert_eq!(TrackedCounter::from_id(CounterId::new(CounterGroup::Lrz, 99)), None);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in ALL_TRACKED.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn set_arithmetic() {
        let mut a = CounterSet::ZERO;
        a[TrackedCounter::Ras8x4Tiles] = 7;
        let mut b = CounterSet::ZERO;
        b[TrackedCounter::Ras8x4Tiles] = 3;
        b[TrackedCounter::VpcSpComponents] = 4;
        let sum = a + b;
        assert_eq!(sum[TrackedCounter::Ras8x4Tiles], 10);
        assert_eq!(sum[TrackedCounter::VpcSpComponents], 4);
        assert_eq!((sum - b)[TrackedCounter::Ras8x4Tiles], 7);
        assert_eq!(sum.total(), 14);
    }

    #[test]
    fn distance_is_euclidean() {
        let mut a = CounterSet::ZERO;
        let mut b = CounterSet::ZERO;
        a[TrackedCounter::LrzFull8x8Tiles] = 3;
        b[TrackedCounter::LrzVisiblePixelAfterLrz] = 4;
        assert!((a.distance(&b) - 5.0).abs() < 1e-9);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn checked_sub_detects_underflow() {
        let mut a = CounterSet::ZERO;
        let mut b = CounterSet::ZERO;
        a[TrackedCounter::VpcPcPrimitives] = 5;
        b[TrackedCounter::VpcPcPrimitives] = 2;
        b[TrackedCounter::Ras8x4Tiles] = 1;
        assert_eq!(a.checked_sub(&b), None, "tiles dim underflows");
        b[TrackedCounter::Ras8x4Tiles] = 0;
        assert_eq!(a.checked_sub(&b).unwrap()[TrackedCounter::VpcPcPrimitives], 3);
    }

    #[test]
    fn scaled_multiplies_elementwise() {
        let mut a = CounterSet::ZERO;
        a[TrackedCounter::Ras8x4Tiles] = 7;
        assert_eq!(a.scaled(3)[TrackedCounter::Ras8x4Tiles], 21);
        assert!(a.scaled(0).is_zero());
    }

    #[test]
    fn saturating_sub_never_panics() {
        let mut a = CounterSet::ZERO;
        let mut b = CounterSet::ZERO;
        a[TrackedCounter::VpcPcPrimitives] = 1;
        b[TrackedCounter::VpcPcPrimitives] = 5;
        assert_eq!(a.saturating_sub(&b)[TrackedCounter::VpcPcPrimitives], 0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            TrackedCounter::LrzVisiblePrimAfterLrz.name(),
            "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ"
        );
    }
}
