//! The GPU device: a timeline of frame jobs over simulated time.
//!
//! Counters are free-running: a read at time `t` observes the cumulative
//! increments of every job checkpoint completed by `t`. Reads that land in
//! the middle of a frame observe a *partial* delta — the paper's "split"
//! system factor (§5.1) — with no special-case code: it falls out of the
//! timeline model.

use std::collections::VecDeque;

use crate::counters::CounterSet;
use crate::incremental::{IncrementalStats, RendererSet};
use crate::model::{GpuModel, GpuParams};
use crate::scene::DrawList;
use crate::time::{SimDuration, SimInstant};

/// Summary of one submitted frame, returned by [`Gpu::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameStats {
    /// When the GPU started executing the frame (submissions queue behind
    /// in-flight work).
    pub start: SimInstant,
    /// When the frame finished.
    pub end: SimInstant,
    /// Counter increments contributed by the frame.
    pub totals: CounterSet,
    /// GPU cycles consumed.
    pub cycles: u64,
}

#[derive(Debug, Clone)]
struct Job {
    start: SimInstant,
    end: SimInstant,
    totals: CounterSet,
    /// `(absolute completion time, cumulative counters)` checkpoints.
    checkpoints: Vec<(SimInstant, CounterSet)>,
}

/// A simulated Adreno GPU.
///
/// # Examples
///
/// ```
/// use adreno_sim::geom::Rect;
/// use adreno_sim::gpu::Gpu;
/// use adreno_sim::model::GpuModel;
/// use adreno_sim::scene::DrawList;
/// use adreno_sim::time::SimInstant;
///
/// let mut gpu = Gpu::new(GpuModel::Adreno650);
/// let mut dl = DrawList::new(256, 256);
/// dl.layer("bg").quad(Rect::from_xywh(0, 0, 256, 256), true);
/// let frame = gpu.submit(&dl, SimInstant::ZERO);
/// let after = gpu.counters_at(frame.end);
/// assert_eq!(after, frame.totals);
/// ```
#[derive(Debug)]
pub struct Gpu {
    model: GpuModel,
    params: GpuParams,
    /// Counter values of all jobs fully folded away.
    base: CounterSet,
    /// No reads may target a time before this (reads are monotonic).
    compacted_until: SimInstant,
    jobs: VecDeque<Job>,
    busy_until: SimInstant,
    /// Recent busy intervals for utilisation queries, oldest first.
    busy_log: VecDeque<(SimInstant, SimInstant)>,
    /// Per-viewport incremental frame renderers ([`crate::incremental`]).
    renderers: RendererSet,
}

/// How much busy-interval history the GPU retains for utilisation queries.
const BUSY_LOG_HORIZON: SimDuration = SimDuration::from_secs(2);

impl Gpu {
    /// Creates an idle GPU of the given model.
    pub fn new(model: GpuModel) -> Self {
        Gpu {
            model,
            params: model.params(),
            base: CounterSet::ZERO,
            compacted_until: SimInstant::ZERO,
            jobs: VecDeque::new(),
            busy_until: SimInstant::ZERO,
            busy_log: VecDeque::new(),
            renderers: RendererSet::new(),
        }
    }

    /// The GPU model.
    pub fn model(&self) -> GpuModel {
        self.model
    }

    /// The GPU's static parameters.
    pub fn params(&self) -> &GpuParams {
        &self.params
    }

    /// When the GPU becomes idle given everything submitted so far.
    pub fn busy_until(&self) -> SimInstant {
        self.busy_until
    }

    fn cycles_to_duration(&self, cycles: u64) -> SimDuration {
        // cycles / (MHz * 1e6) seconds = cycles * 1000 / MHz nanoseconds.
        SimDuration::from_nanos(cycles.saturating_mul(1_000) / self.params.clock_mhz as u64)
    }

    /// Renders `draw_list` as a frame job submitted at `now`. If the GPU is
    /// still busy, the job queues behind in-flight work.
    ///
    /// Rendering goes through this GPU's per-viewport incremental renderers
    /// ([`crate::incremental::RendererSet`]): consecutive frames of one
    /// surface are diffed at layer granularity and only changed layers are
    /// recomputed, with identical frames served from the process-global
    /// whole-list memo. Output is bit-identical to
    /// [`crate::pipeline::render_uncached`].
    pub fn submit(&mut self, draw_list: &DrawList, now: SimInstant) -> FrameStats {
        let out = self.renderers.render(draw_list, &self.params);
        self.enqueue(now, out.totals, out.total_cycles, out.checkpoints.clone())
    }

    /// Reuse counters of this GPU's incremental frame renderers.
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.renderers.stats()
    }

    /// Submits an opaque workload (e.g. a background 3D app or a mitigation
    /// decoy) that consumes `cycles` and bumps counters by `totals`.
    pub fn submit_workload(
        &mut self,
        totals: CounterSet,
        cycles: u64,
        now: SimInstant,
    ) -> FrameStats {
        // A single mid-job checkpoint keeps split behaviour for workloads too.
        let half = CounterSet::from_array({
            let mut a = [0u64; crate::counters::NUM_TRACKED];
            for (i, v) in totals.as_array().iter().enumerate() {
                a[i] = v / 2;
            }
            a
        });
        let cps = vec![(cycles / 2, half), (cycles, totals)];
        self.enqueue(now, totals, cycles, cps)
    }

    fn enqueue(
        &mut self,
        now: SimInstant,
        totals: CounterSet,
        cycles: u64,
        checkpoints: Vec<(u64, CounterSet)>,
    ) -> FrameStats {
        let start = if self.busy_until > now { self.busy_until } else { now };
        let duration = self.cycles_to_duration(cycles);
        let end = start + duration;
        let abs_cps: Vec<(SimInstant, CounterSet)> = checkpoints
            .into_iter()
            .map(|(cyc, set)| (start + self.cycles_to_duration(cyc), set))
            .collect();
        self.jobs.push_back(Job { start, end, totals, checkpoints: abs_cps });
        self.busy_until = end;
        if cycles > 0 {
            self.busy_log.push_back((start, end));
            while let Some(&(_, first_end)) = self.busy_log.front() {
                if end.saturating_since(first_end) > BUSY_LOG_HORIZON {
                    self.busy_log.pop_front();
                } else {
                    break;
                }
            }
        }
        FrameStats { start, end, totals, cycles }
    }

    /// Reads the cumulative counter values visible at time `t`.
    ///
    /// Reads must be monotonic in `t`: older jobs are folded away as reads
    /// advance, matching how a real free-running counter file behaves.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `t` precedes an earlier read.
    pub fn counters_at(&mut self, t: SimInstant) -> CounterSet {
        debug_assert!(
            t >= self.compacted_until,
            "counter reads must be monotonic: {t} < {}",
            self.compacted_until
        );
        // Fold fully-completed jobs into the base.
        while let Some(job) = self.jobs.front() {
            if job.end <= t {
                self.base += job.totals;
                self.jobs.pop_front();
            } else {
                break;
            }
        }
        self.compacted_until = t;
        let mut out = self.base;
        for job in &self.jobs {
            if job.start >= t {
                break; // jobs are ordered by start time
            }
            // Partial: last checkpoint at or before t.
            let mut partial = CounterSet::ZERO;
            for (cp_t, cp_set) in &job.checkpoints {
                if *cp_t <= t {
                    partial = *cp_set;
                } else {
                    break;
                }
            }
            out += partial;
        }
        out
    }

    /// GPU utilisation over `[t - window, t]`, in `0.0..=1.0` — the analogue
    /// of Android's `/sys/class/kgsl/kgsl-3d0/gpu_busy_percentage`.
    pub fn busy_fraction(&self, t: SimInstant, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        let w_start = t - window;
        let mut busy = 0u64;
        for &(s, e) in &self.busy_log {
            let s = if s > w_start { s } else { w_start };
            let e = if e < t { e } else { t };
            busy += e.saturating_since(s).as_nanos();
        }
        (busy as f64 / window.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;

    fn simple_dl() -> DrawList {
        let mut dl = DrawList::new(512, 512);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 512, 512), true);
        dl
    }

    #[test]
    fn counters_monotonic_across_frames() {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        let dl = simple_dl();
        let f1 = gpu.submit(&dl, SimInstant::ZERO);
        let after1 = gpu.counters_at(f1.end);
        let f2 = gpu.submit(&dl, f1.end + SimDuration::from_millis(10));
        let after2 = gpu.counters_at(f2.end);
        assert_eq!(after2 - after1, f2.totals);
        assert_eq!(after1, f1.totals);
    }

    #[test]
    fn mid_frame_read_sees_partial_delta() {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        // Uniform-cost primitives so checkpoints spread evenly in time.
        let mut dl = DrawList::new(1024, 1024);
        for i in 0..20 {
            dl.layer("keys").quad(Rect::from_xywh(i * 50, 300, 46, 60), true);
        }
        let f = gpu.submit(&dl, SimInstant::ZERO);
        assert!(f.end > f.start);
        let mid = SimInstant::from_nanos((f.start.as_nanos() + f.end.as_nanos()) / 2);
        let partial = gpu.counters_at(mid);
        let full = gpu.counters_at(f.end);
        assert!(partial.total() > 0, "some checkpoints completed by mid-frame");
        assert!(partial.total() < full.total(), "mid-frame read must be partial");
        assert_eq!(full, f.totals);
    }

    #[test]
    fn queued_jobs_execute_back_to_back() {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        let dl = simple_dl();
        let f1 = gpu.submit(&dl, SimInstant::ZERO);
        // Submit while the first frame is still drawing.
        let f2 = gpu.submit(&dl, SimInstant::ZERO);
        assert_eq!(f2.start, f1.end);
        assert!(gpu.busy_until() == f2.end);
    }

    #[test]
    fn idle_gpu_reports_zero_busy() {
        let gpu = Gpu::new(GpuModel::Adreno650);
        assert_eq!(
            gpu.busy_fraction(SimInstant::from_millis(100), SimDuration::from_millis(100)),
            0.0
        );
    }

    #[test]
    fn busy_fraction_tracks_load() {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        // Saturate the GPU for ~100ms with external workloads.
        let cycles_100ms = gpu.params().clock_mhz as u64 * 1_000 * 100; // 100ms worth
        gpu.submit_workload(CounterSet::ZERO, cycles_100ms, SimInstant::ZERO);
        let frac = gpu.busy_fraction(SimInstant::from_millis(100), SimDuration::from_millis(100));
        assert!(frac > 0.95, "expected ~1.0 busy, got {frac}");
        let frac_after =
            gpu.busy_fraction(SimInstant::from_millis(300), SimDuration::from_millis(100));
        assert_eq!(frac_after, 0.0);
    }

    #[test]
    fn compaction_preserves_totals() {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        let dl = simple_dl();
        let mut expected = CounterSet::ZERO;
        let mut t = SimInstant::ZERO;
        for _ in 0..50 {
            let f = gpu.submit(&dl, t);
            expected += f.totals;
            t = f.end + SimDuration::from_millis(5);
            let _ = gpu.counters_at(t); // forces compaction as we go
        }
        assert_eq!(gpu.counters_at(t), expected);
        assert!(gpu.jobs.is_empty(), "all jobs should be folded away");
    }

    #[test]
    fn workload_counters_split_in_half() {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        let mut noise = CounterSet::ZERO;
        noise[crate::counters::TrackedCounter::Ras8x4Tiles] = 100;
        let f = gpu.submit_workload(noise, 1_000_000, SimInstant::ZERO);
        let mid = SimInstant::from_nanos((f.start.as_nanos() + f.end.as_nanos()) / 2);
        let partial = gpu.counters_at(mid);
        assert_eq!(partial[crate::counters::TrackedCounter::Ras8x4Tiles], 50);
    }
}
