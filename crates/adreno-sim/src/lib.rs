//! # adreno-sim — a tile-based mobile-GPU simulator with performance counters
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Eavesdropping User Credentials via GPU Side Channels on Smartphones"*
//! (ASPLOS 2022). It models the parts of a Qualcomm Adreno GPU that the
//! attack observes:
//!
//! * a **layered, back-to-front renderer** where opaque upper layers occlude
//!   content below (GPU *overdraw*, §2.1 of the paper);
//! * a **Low-Resolution-Z (LRZ) pre-pass** discarding occluded work at
//!   8×8-pixel tile granularity;
//! * **rasterisation (RAS)** and **vertex-cache (VPC)** accounting;
//! * the eleven **performance counters** of the paper's Table 1, free-running
//!   and cumulative, with mid-frame reads observing partial deltas.
//!
//! The renderer is deterministic: identical draw lists produce identical
//! counter increments, which is precisely the hardware property the side
//! channel exploits.
//!
//! ## Quick example
//!
//! ```
//! use adreno_sim::counters::TrackedCounter;
//! use adreno_sim::geom::Rect;
//! use adreno_sim::gpu::Gpu;
//! use adreno_sim::model::GpuModel;
//! use adreno_sim::scene::DrawList;
//! use adreno_sim::time::SimInstant;
//!
//! let mut gpu = Gpu::new(GpuModel::Adreno650);
//!
//! // A keyboard frame without a popup...
//! let mut base = DrawList::new(1080, 800);
//! base.layer("keyboard").quad(Rect::from_xywh(0, 0, 1080, 800), true);
//!
//! // ...and the same frame with the popup of key 'w' on top.
//! let mut popup = base.clone();
//! popup.layer("popup").glyph('w', Rect::from_xywh(200, 100, 90, 110), 8);
//!
//! let f0 = gpu.submit(&base, SimInstant::ZERO);
//! let f1 = gpu.submit(&popup, f0.end);
//! assert!(f1.totals[TrackedCounter::VpcPcPrimitives]
//!     > f0.totals[TrackedCounter::VpcPcPrimitives]);
//! ```

pub mod catalog;
pub mod counters;
pub mod font;
pub mod geom;
pub mod gpu;
pub mod incremental;
pub mod memo;
pub mod model;
pub mod pipeline;
pub mod scene;
pub mod time;

pub use counters::{CounterGroup, CounterId, CounterSet, TrackedCounter, ALL_TRACKED, NUM_TRACKED};
pub use gpu::{FrameStats, Gpu};
pub use incremental::{FrameRenderer, IncrementalStats, RendererSet};
pub use memo::{render_cache_stats, render_cached, reset_render_caches, CacheStats};
pub use model::{GpuModel, GpuParams, ALL_MODELS};
pub use scene::{DrawList, Layer, Primitive};
pub use time::{SharedClock, SimDuration, SimInstant};
