//! Proves the warm incremental render paths are (near-)allocation-free.
//!
//! A victim simulation submits tens of thousands of frames per session, most
//! of them identical or one-layer dirty, so per-frame heap traffic in the
//! renderer costs real throughput. Two paths are pinned here with a counting
//! global allocator:
//!
//! * **Warm identical frame** — fingerprinting reuses high-water-marked
//!   scratch, the previous-frame shortcut returns an `Arc` clone: exactly
//!   zero allocations.
//! * **Warm dirty frame** — one animated stroke layer changes per frame.
//!   The stroke walk uses the thread-local row-bitmask scratch in
//!   `stroke_tiles` (the old dedup `Vec` allocated ~3 times *per stroke per
//!   grid*), masks and clean layers are reused as `Arc` clones, and only the
//!   inherent per-frame products allocate: the dirty layer's stats vector
//!   and its cache `Arc`, the output's checkpoint vector and `Arc`, and
//!   amortised cache-map growth. With 32 strokes in the dirty layer the old
//!   path would allocate 96+ times; the bound asserted here is a small
//!   stroke-count-independent constant.
//!
//! Methodology (as in core's `alloc_free.rs`): warm everything up first —
//! thread-local telemetry buffers, the stroke scratch, glyph/render caches,
//! renderer scratch capacity — then `spansight::flush()` so the measured
//! window stays under the telemetry buffer's flush threshold, then measure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adreno_sim::geom::{Rect, Segment};
use adreno_sim::incremental::FrameRenderer;
use adreno_sim::model::GpuModel;
use adreno_sim::scene::DrawList;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const STROKES: usize = 32;

/// A keyboard-like frame whose topmost layer is a stroke animation varying
/// with `phase` — the PNC-style animated login decoration. The animation
/// layer is translucent, so a phase change occludes nothing: every mask and
/// every other layer is reusable, and only the animation layer recomputes.
fn frame(phase: u32) -> DrawList {
    let mut dl = DrawList::new(1080, 800);
    dl.layer("bg").quad(Rect::from_xywh(0, 0, 1080, 800), true);
    let keys = dl.layer("keys");
    for i in 0..10 {
        keys.quad(Rect::from_xywh(i * 100, 560, 92, 90), true);
        keys.glyph((b'a' + i as u8) as char, Rect::from_xywh(i * 100 + 20, 574, 52, 62), 4);
    }
    let band = Rect::from_xywh(40, 120, 1000, 360);
    let anim = dl.layer("login-animation");
    anim.quad(band, false);
    for s in 0..STROKES as i32 {
        // Distinct per phase, spread over the band.
        let y = (phase % 97) as f32 * 0.07 + s as f32 * 0.23;
        anim.stroke(Segment { x0: 0.2, y0: y % 8.0, x1: 7.8, y1: (y + 3.1) % 8.0 }, band, 4);
    }
    dl
}

#[test]
fn warm_incremental_render_paths_are_allocation_free() {
    let params = GpuModel::Adreno650.params();
    let mut renderer = FrameRenderer::new();

    // Warm-up: several distinct phases drive lazy initialisation everywhere
    // (glyph bbox/stats tables, stroke scratch growth, cache maps, renderer
    // scratch capacity, telemetry thread-locals).
    for phase in 0..12 {
        let _ = renderer.render(&frame(phase), &params);
    }
    spansight::flush();

    // Warm identical frame: previous-frame shortcut, zero allocations.
    let held = frame(11);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = renderer.render(&held, &params);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    drop(out);
    assert_eq!(after - before, 0, "a warm identical-frame render must not heap-allocate");

    // Warm dirty frames: novel phases, so the animation layer recomputes
    // every time (whole-frame and layer caches both miss). The budget is
    // per-frame and independent of STROKES: the old stroke walk alone would
    // cost 3+ allocations per stroke.
    const FRAMES: u64 = 8;
    const PER_FRAME_BUDGET: u64 = 16;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for phase in 100..100 + FRAMES as u32 {
        let _ = renderer.render(&frame(phase), &params);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    let total = after - before;
    assert!(
        total <= FRAMES * PER_FRAME_BUDGET,
        "warm dirty-frame renders allocated {total} times over {FRAMES} frames \
         (budget {PER_FRAME_BUDGET}/frame); the stroke walk must stay allocation-free"
    );
}
