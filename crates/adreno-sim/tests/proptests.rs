//! Property-based tests of the GPU substrate's invariants.

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use adreno_sim::geom::Rect;
use adreno_sim::gpu::Gpu;
use adreno_sim::memo::render_cached;
use adreno_sim::model::{GpuModel, ALL_MODELS};
use adreno_sim::pipeline::{render, render_uncached, OcclusionGrid};
use adreno_sim::scene::DrawList;
use adreno_sim::time::{SimDuration, SimInstant};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = GpuModel> {
    prop::sample::select(ALL_MODELS.to_vec())
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0..500i32, 0..500i32, 1..300i32, 1..300i32)
        .prop_map(|(x, y, w, h)| Rect::from_xywh(x, y, w, h))
}

fn arb_char() -> impl Strategy<Value = char> {
    prop::sample::select(adreno_sim::font::FIG18_CHARSET.chars().collect::<Vec<_>>())
}

/// An arbitrary small scene: a background plus a few quads and glyphs.
fn arb_scene() -> impl Strategy<Value = DrawList> {
    (
        prop::collection::vec((arb_rect(), any::<bool>()), 0..8),
        prop::collection::vec((arb_char(), arb_rect()), 0..4),
    )
        .prop_map(|(quads, glyphs)| {
            let mut dl = DrawList::new(800, 800);
            dl.layer("bg").quad(Rect::from_xywh(0, 0, 800, 800), true);
            let layer = dl.layer("content");
            for (r, opaque) in quads {
                layer.quad(r, opaque);
            }
            let top = dl.layer("glyphs");
            for (c, r) in glyphs {
                top.glyph(c, r, 4);
            }
            dl
        })
}

/// A scene with arbitrary layer structure — including layers with no opaque
/// quads, which exercise the occlusion-snapshot sharing in render pass 1.
fn arb_layered_scene() -> impl Strategy<Value = DrawList> {
    prop::collection::vec(
        (
            prop::collection::vec((arb_rect(), any::<bool>()), 0..4),
            prop::collection::vec((arb_char(), arb_rect()), 0..3),
        ),
        1..5,
    )
    .prop_map(|layers| {
        let mut dl = DrawList::new(800, 800);
        for (quads, glyphs) in layers {
            let layer = dl.layer("layer");
            for (r, opaque) in quads {
                layer.quad(r, opaque);
            }
            for (c, r) in glyphs {
                layer.glyph(c, r, 4);
            }
        }
        dl
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memoized_render_matches_uncached(scene in arb_layered_scene(), model in arb_model()) {
        let params = model.params();
        let reference = render_uncached(&scene, &params);
        // Glyph-stats cache only.
        prop_assert_eq!(&render(&scene, &params), &reference);
        // Whole-list cache on top: cold fill, then warm hit.
        prop_assert_eq!(&*render_cached(&scene, &params), &reference);
        prop_assert_eq!(&*render_cached(&scene, &params), &reference);
    }

    #[test]
    fn render_is_deterministic(scene in arb_scene(), model in arb_model()) {
        let a = render(&scene, &model.params());
        let b = render(&scene, &model.params());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn checkpoints_never_exceed_totals(scene in arb_scene(), model in arb_model()) {
        let out = render(&scene, &model.params());
        let mut prev_cycles = 0u64;
        for (cyc, set) in &out.checkpoints {
            prop_assert!(*cyc >= prev_cycles, "cycle checkpoints must be monotonic");
            prev_cycles = *cyc;
            for i in 0..NUM_TRACKED {
                prop_assert!(set.as_array()[i] <= out.totals.as_array()[i]);
            }
        }
        if let Some((cyc, set)) = out.checkpoints.last() {
            prop_assert_eq!(*cyc, out.total_cycles);
            prop_assert_eq!(*set, out.totals);
        }
    }

    #[test]
    fn adding_a_prim_never_decreases_submitted_prims(
        scene in arb_scene(),
        extra in arb_rect(),
        model in arb_model(),
    ) {
        use adreno_sim::counters::TrackedCounter;
        let base = render(&scene, &model.params());
        let mut bigger = scene.clone();
        bigger.layer("extra").quad(extra, false);
        let more = render(&bigger, &model.params());
        prop_assert!(
            more.totals[TrackedCounter::VpcPcPrimitives]
                >= base.totals[TrackedCounter::VpcPcPrimitives] + 2
        );
    }

    #[test]
    fn counter_reads_are_monotonic_over_time(
        scene in arb_scene(),
        gaps in prop::collection::vec(1_000_000u64..40_000_000, 1..12),
        read_offsets in prop::collection::vec(0u64..60_000_000, 1..12),
    ) {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        let mut t = SimInstant::ZERO;
        for gap in &gaps {
            gpu.submit(&scene, t);
            t += SimDuration::from_nanos(*gap);
        }
        let mut reads: Vec<u64> = read_offsets;
        reads.sort_unstable();
        let mut prev = CounterSet::ZERO;
        for off in reads {
            let snap = gpu.counters_at(SimInstant::from_nanos(off));
            for i in 0..NUM_TRACKED {
                prop_assert!(snap.as_array()[i] >= prev.as_array()[i], "counters must never decrease");
            }
            prev = snap;
        }
    }

    #[test]
    fn occlusion_counts_bounded_by_touched_cells(
        occluders in prop::collection::vec(arb_rect(), 0..6),
        probe in arb_rect(),
    ) {
        let mut grid = OcclusionGrid::new(800, 800);
        for r in &occluders {
            grid.add_opaque_rect(r);
        }
        let touched_x = ((probe.x1 - 1) / 8 - probe.x0 / 8 + 1).max(0) as u64;
        let touched_y = ((probe.y1 - 1) / 8 - probe.y0 / 8 + 1).max(0) as u64;
        prop_assert!(grid.count_occluded_touched(&probe) <= touched_x * touched_y);
    }

    #[test]
    fn occlusion_is_monotone_in_occluders(
        occluders in prop::collection::vec(arb_rect(), 1..6),
        probe in arb_rect(),
    ) {
        let mut grid = OcclusionGrid::new(800, 800);
        let mut prev = 0;
        for r in &occluders {
            grid.add_opaque_rect(r);
            let now = grid.count_occluded_touched(&probe);
            prop_assert!(now >= prev, "adding occluders can only occlude more");
            prev = now;
        }
    }

    #[test]
    fn counterset_add_sub_round_trips(
        a in prop::collection::vec(0u64..1_000_000, NUM_TRACKED),
        b in prop::collection::vec(0u64..1_000_000, NUM_TRACKED),
    ) {
        let a = CounterSet::from_array(a.try_into().unwrap());
        let b = CounterSet::from_array(b.try_into().unwrap());
        prop_assert_eq!((a + b) - b, a);
        prop_assert_eq!((a + b).checked_sub(&b), Some(a));
        // checked_sub agrees with saturating_sub when it succeeds.
        if let Some(d) = a.checked_sub(&b) {
            prop_assert_eq!(d, a.saturating_sub(&b));
        }
    }

    #[test]
    fn distance_is_a_metric_sketch(
        a in prop::collection::vec(0u64..100_000, NUM_TRACKED),
        b in prop::collection::vec(0u64..100_000, NUM_TRACKED),
    ) {
        let a = CounterSet::from_array(a.try_into().unwrap());
        let b = CounterSet::from_array(b.try_into().unwrap());
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9, "symmetry");
        prop_assert_eq!(a.distance(&a), 0.0);
        if a != b {
            prop_assert!(a.distance(&b) > 0.0);
        }
    }

    #[test]
    fn rect_intersection_commutes_and_shrinks(r1 in arb_rect(), r2 in arb_rect()) {
        let i1 = r1.intersect(&r2);
        let i2 = r2.intersect(&r1);
        prop_assert_eq!(i1, i2);
        prop_assert!(i1.area() <= r1.area());
        prop_assert!(i1.area() <= r2.area());
        prop_assert!(r1.union(&r2).area() >= r1.area().max(r2.area()));
    }

    #[test]
    fn mid_frame_reads_bounded_by_frame_totals(scene in arb_scene(), frac in 0u64..100) {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        let f = gpu.submit(&scene, SimInstant::ZERO);
        let span = f.end.as_nanos() - f.start.as_nanos();
        let mid = SimInstant::from_nanos(f.start.as_nanos() + span * frac / 100);
        let partial = gpu.counters_at(mid);
        for i in 0..NUM_TRACKED {
            prop_assert!(partial.as_array()[i] <= f.totals.as_array()[i]);
        }
    }
}
