//! Frame-sequence equivalence for the incremental frame-delta renderer.
//!
//! A persistent [`FrameRenderer`] carries reuse state from frame to frame, so
//! its correctness is a property of *sequences*, not of single draw lists:
//! a stale fingerprint comparison only shows up when a specific edit follows
//! a specific history. These tests drive a renderer through random
//! keyboard-like edit scripts — popup add/remove/move (including positions
//! hanging off the viewport edge), typing and deleting echo glyphs, layer
//! insert/delete, occluder resize/toggle and identical-frame holds — and
//! require the output of every frame to be bit-identical to
//! [`render_uncached`].

use adreno_sim::geom::Rect;
use adreno_sim::incremental::FrameRenderer;
use adreno_sim::model::{GpuModel, ALL_MODELS};
use adreno_sim::pipeline::render_uncached;
use adreno_sim::scene::DrawList;
use proptest::prelude::*;

const W: i32 = 720;
const H: i32 = 760;

/// One step of a keyboard-like edit script.
#[derive(Debug, Clone)]
enum Edit {
    /// Show (or replace) the key popup at a position, possibly hanging off
    /// the viewport edge.
    ShowPopup {
        ch: char,
        x: i32,
        y: i32,
    },
    /// Translate the popup if one is showing.
    MovePopup {
        dx: i32,
        dy: i32,
    },
    HidePopup,
    /// Append one echo glyph to the text field.
    TypeChar(char),
    /// Remove the last echo glyph.
    Backspace,
    /// Push an extra decoration layer on top.
    PushLayer {
        rect: Rect,
        opaque: bool,
    },
    /// Remove the topmost extra layer.
    PopLayer,
    /// Show the mid-screen occluder at a new size.
    ResizeOccluder {
        w: i32,
        h: i32,
    },
    /// Toggle the occluder on/off at its last size.
    ToggleOccluder,
    /// Submit the previous frame unchanged.
    Hold,
}

fn arb_char() -> impl Strategy<Value = char> {
    prop::sample::select(adreno_sim::font::FIG18_CHARSET.chars().collect::<Vec<_>>())
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-40..W, -40..H, 1..320i32, 1..320i32).prop_map(|(x, y, w, h)| Rect::from_xywh(x, y, w, h))
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (arb_char(), -60..W, -80..H).prop_map(|(ch, x, y)| Edit::ShowPopup { ch, x, y }),
        (-90..90i32, -90..90i32).prop_map(|(dx, dy)| Edit::MovePopup { dx, dy }),
        Just(Edit::HidePopup),
        arb_char().prop_map(Edit::TypeChar),
        Just(Edit::Backspace),
        (arb_rect(), any::<bool>()).prop_map(|(rect, opaque)| Edit::PushLayer { rect, opaque }),
        Just(Edit::PopLayer),
        (1..420i32, 1..420i32).prop_map(|(w, h)| Edit::ResizeOccluder { w, h }),
        Just(Edit::ToggleOccluder),
        Just(Edit::Hold),
    ]
}

/// The mutable scene a script edits; `build` lowers it to a draw list.
#[derive(Debug, Default)]
struct SceneState {
    text: Vec<char>,
    popup: Option<(char, i32, i32)>,
    extra: Vec<(Rect, bool)>,
    occluder_size: (i32, i32),
    occluder_on: bool,
}

impl SceneState {
    fn apply(&mut self, edit: &Edit) {
        match *edit {
            Edit::ShowPopup { ch, x, y } => self.popup = Some((ch, x, y)),
            Edit::MovePopup { dx, dy } => {
                if let Some((_, x, y)) = &mut self.popup {
                    *x += dx;
                    *y += dy;
                }
            }
            Edit::HidePopup => self.popup = None,
            Edit::TypeChar(ch) => {
                if self.text.len() < 24 {
                    self.text.push(ch);
                }
            }
            Edit::Backspace => {
                self.text.pop();
            }
            Edit::PushLayer { rect, opaque } => {
                if self.extra.len() < 4 {
                    self.extra.push((rect, opaque));
                }
            }
            Edit::PopLayer => {
                self.extra.pop();
            }
            Edit::ResizeOccluder { w, h } => {
                self.occluder_size = (w, h);
                self.occluder_on = true;
            }
            Edit::ToggleOccluder => self.occluder_on = !self.occluder_on,
            Edit::Hold => {}
        }
    }

    fn build(&self) -> DrawList {
        let mut dl = DrawList::new(W, H);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, W, H), true);
        let field = dl.layer("field");
        field.quad(Rect::from_xywh(16, 16, W - 32, 48), true);
        for (i, ch) in self.text.iter().enumerate() {
            field.glyph(*ch, Rect::from_xywh(20 + 26 * i as i32, 22, 22, 34), 4);
        }
        if self.occluder_on {
            let (w, h) = self.occluder_size;
            dl.layer("occluder").quad(Rect::from_xywh(60, 340, w, h), true);
        }
        let keys = dl.layer("keys");
        for i in 0..10 {
            keys.quad(Rect::from_xywh(i * 72, H - 180, 66, 80), true);
            keys.glyph((b'a' + i as u8) as char, Rect::from_xywh(i * 72 + 12, H - 168, 42, 56), 4);
        }
        for (rect, opaque) in &self.extra {
            dl.layer("extra").quad(*rect, *opaque);
        }
        if let Some((ch, x, y)) = self.popup {
            dl.layer("popup").quad(Rect::from_xywh(x, y, 90, 110), true);
            dl.layer("popup-glyph").glyph(ch, Rect::from_xywh(x + 5, y + 5, 80, 100), 8);
        }
        dl
    }
}

fn run_script(script: &[Edit], model: GpuModel) -> Result<(), TestCaseError> {
    let params = model.params();
    let mut renderer = FrameRenderer::new();
    let mut state = SceneState::default();
    for (frame, edit) in script.iter().enumerate() {
        state.apply(edit);
        let dl = state.build();
        let incremental = renderer.render(&dl, &params);
        let reference = render_uncached(&dl, &params);
        prop_assert_eq!(&*incremental, &reference, "frame {} diverged after {:?}", frame, edit);
        prop_assert_eq!(incremental.totals, reference.totals);
    }
    prop_assert_eq!(renderer.stats().frames, script.len() as u64);
    Ok(())
}

proptest! {
    // Long scripts at few cases: reuse bugs need history to manifest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn long_edit_scripts_match_uncached(
        script in prop::collection::vec(arb_edit(), 200..240),
        model in prop::sample::select(ALL_MODELS.to_vec()),
    ) {
        run_script(&script, model)?;
    }
}

proptest! {
    // Short scripts at many cases: breadth over the first few transitions,
    // where slot alignment against an empty or tiny previous frame lives.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn short_edit_scripts_match_uncached(
        script in prop::collection::vec(arb_edit(), 1..24),
        model in prop::sample::select(ALL_MODELS.to_vec()),
    ) {
        run_script(&script, model)?;
    }
}

#[test]
fn offscreen_popup_sequence_matches_uncached() {
    // Deterministic viewport-edge regression: the popup walks off every
    // edge, including fully outside the render target.
    let params = GpuModel::Adreno650.params();
    let mut renderer = FrameRenderer::new();
    let mut state = SceneState::default();
    let walk = [
        Edit::ShowPopup { ch: 'w', x: -50, y: -70 },
        Edit::MovePopup { dx: 60, dy: 0 },
        Edit::MovePopup { dx: 0, dy: 80 },
        Edit::ShowPopup { ch: 'w', x: W - 10, y: H - 10 },
        Edit::MovePopup { dx: 89, dy: 89 },
        Edit::HidePopup,
    ];
    for edit in &walk {
        state.apply(edit);
        let dl = state.build();
        assert_eq!(*renderer.render(&dl, &params), render_uncached(&dl, &params));
    }
}
