//! Property-based fuzzing of the device-file surface: arbitrary ioctl
//! sequences must never panic, corrupt reservations, or grant access a
//! policy forbids.

use std::sync::Arc;

use adreno_sim::{Gpu, GpuModel, SharedClock};
use kgsl::abi::*;
use kgsl::{AccessPolicy, Errno, KgslDevice, KgslFd, SelinuxDomain};
use parking_lot::Mutex;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Open(SelinuxDomain),
    Close(usize),
    Get { fd: usize, group: u32, countable: u32 },
    Put { fd: usize, group: u32, countable: u32 },
    Read { fd: usize, group: u32, countable: u32 },
    SetPolicy(u8),
}

fn arb_domain() -> impl Strategy<Value = SelinuxDomain> {
    prop::sample::select(vec![
        SelinuxDomain::UntrustedApp,
        SelinuxDomain::PlatformApp,
        SelinuxDomain::GpuProfiler,
        SelinuxDomain::Shell,
    ])
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_domain().prop_map(Op::Open),
        (0usize..8).prop_map(Op::Close),
        (0usize..8, 0u32..0x20, 0u32..40).prop_map(|(fd, group, countable)| Op::Get {
            fd,
            group,
            countable
        }),
        (0usize..8, 0u32..0x20, 0u32..40).prop_map(|(fd, group, countable)| Op::Put {
            fd,
            group,
            countable
        }),
        (0usize..8, 0u32..0x20, 0u32..40).prop_map(|(fd, group, countable)| Op::Read {
            fd,
            group,
            countable
        }),
        (0u8..3).prop_map(Op::SetPolicy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_ioctl_sequences_never_panic(ops in prop::collection::vec(arb_op(), 0..60)) {
        let gpu = Arc::new(Mutex::new(Gpu::new(GpuModel::Adreno650)));
        let device = KgslDevice::new(gpu, SharedClock::new());
        let mut fds: Vec<KgslFd> = Vec::new();
        let mut denied_everything = false;

        for op in ops {
            match op {
                Op::Open(domain) => {
                    fds.push(device.open(1000 + fds.len() as u32, domain).expect("open never fails"));
                }
                Op::Close(i) => {
                    if let Some(fd) = fds.get(i).copied() {
                        let _ = device.close(fd);
                        fds.remove(i);
                    }
                }
                Op::Get { fd, group, countable } => {
                    if let Some(fd) = fds.get(fd).copied() {
                        let mut get = KgslPerfcounterGet { groupid: group, countable, ..Default::default() };
                        let r = device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get));
                        if denied_everything {
                            // Target validation precedes the policy check,
                            // so invalid targets still fail with EINVAL.
                            prop_assert!(
                                matches!(r, Err(Errno::Eacces) | Err(Errno::Einval)),
                                "DenyAll must deny gets, got {r:?}"
                            );
                        }
                    }
                }
                Op::Put { fd, group, countable } => {
                    if let Some(fd) = fds.get(fd).copied() {
                        let put = KgslPerfcounterPut { groupid: group, countable };
                        let _ = device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_PUT, IoctlRequest::PerfcounterPut(put));
                    }
                }
                Op::Read { fd, group, countable } => {
                    if let Some(fd) = fds.get(fd).copied() {
                        let mut reads = [KgslPerfcounterReadGroup::new(group, countable)];
                        let r = device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads));
                        if denied_everything {
                            prop_assert!(
                                matches!(r, Err(Errno::Eacces) | Err(Errno::Einval)),
                                "DenyAll must deny reads, got {r:?}"
                            );
                        }
                        if r.is_ok() {
                            // Nothing ever renders in this test, so every
                            // successful read observes a quiescent counter.
                            prop_assert_eq!(reads[0].value, 0);
                        }
                    }
                }
                Op::SetPolicy(which) => {
                    let policy = match which {
                        0 => AccessPolicy::Unrestricted,
                        1 => AccessPolicy::DenyAll,
                        _ => AccessPolicy::role_based([SelinuxDomain::GpuProfiler]),
                    };
                    denied_everything = matches!(policy, AccessPolicy::DenyAll);
                    device.set_policy(policy);
                }
            }
        }
    }

    #[test]
    fn get_put_refcounts_balance(reps in 1usize..12) {
        let gpu = Arc::new(Mutex::new(Gpu::new(GpuModel::Adreno650)));
        let device = KgslDevice::new(gpu, SharedClock::new());
        let fd = device.open(1, SelinuxDomain::UntrustedApp).unwrap();
        for _ in 0..reps {
            let mut get = KgslPerfcounterGet {
                groupid: KGSL_PERFCOUNTER_GROUP_LRZ,
                countable: 14,
                ..Default::default()
            };
            device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get)).unwrap();
        }
        let put = KgslPerfcounterPut { groupid: KGSL_PERFCOUNTER_GROUP_LRZ, countable: 14 };
        for _ in 0..reps {
            device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_PUT, IoctlRequest::PerfcounterPut(put)).unwrap();
        }
        // One more put than get must fail.
        prop_assert_eq!(
            device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_PUT, IoctlRequest::PerfcounterPut(put)),
            Err(Errno::Einval)
        );
    }
}
