//! Error types of the simulated device file.

use std::error::Error;
use std::fmt;

/// Unix-style error numbers returned by the device file, matching what the
/// real KGSL driver returns for the corresponding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Operation not permitted (blocked by the kernel, e.g. the §9.2 RBAC
    /// mitigation denying a global counter read).
    Eperm,
    /// Invalid argument (unknown group/countable, mismatched request code).
    Einval,
    /// Bad file descriptor (closed or never opened).
    Ebadf,
    /// Permission denied by a mandatory access control policy (SELinux).
    Eacces,
    /// No such device or address (device file not present).
    Enodev,
    /// Counter space exhausted — all physical counters of the group are
    /// reserved.
    Ebusy,
    /// Interrupted system call — the ioctl was cut short by a signal (or,
    /// under fault injection, a simulated one) and may simply be retried.
    Eintr,
}

impl Errno {
    /// The conventional errno value.
    pub const fn code(self) -> i32 {
        match self {
            Errno::Eperm => 1,
            Errno::Einval => 22,
            Errno::Ebadf => 9,
            Errno::Eacces => 13,
            Errno::Enodev => 6,
            Errno::Ebusy => 16,
            Errno::Eintr => 4,
        }
    }

    /// Whether the failure is transient in the Unix sense: the same call may
    /// succeed if simply retried (`EBUSY`, `EINTR`). Policy denials, bad
    /// descriptors and validation errors are not retryable as-is.
    pub const fn is_transient(self) -> bool {
        matches!(self, Errno::Ebusy | Errno::Eintr)
    }

    /// The conventional symbol name, e.g. `"EPERM"`.
    pub const fn name(self) -> &'static str {
        match self {
            Errno::Eperm => "EPERM",
            Errno::Einval => "EINVAL",
            Errno::Ebadf => "EBADF",
            Errno::Eacces => "EACCES",
            Errno::Enodev => "ENODEV",
            Errno::Ebusy => "EBUSY",
            Errno::Eintr => "EINTR",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (errno {})", self.name(), self.code())
    }
}

impl Error for Errno {}

/// Result alias for device-file operations.
pub type DeviceResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_unix_convention() {
        assert_eq!(Errno::Eperm.code(), 1);
        assert_eq!(Errno::Einval.code(), 22);
        assert_eq!(Errno::Ebadf.code(), 9);
        assert_eq!(Errno::Eacces.code(), 13);
        assert_eq!(Errno::Eintr.code(), 4);
    }

    #[test]
    fn transience_classification() {
        assert!(Errno::Ebusy.is_transient());
        assert!(Errno::Eintr.is_transient());
        assert!(!Errno::Eacces.is_transient());
        assert!(!Errno::Ebadf.is_transient());
        assert!(!Errno::Einval.is_transient());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Errno::Eperm.to_string(), "EPERM (errno 1)");
    }
}
