//! Error types of the simulated device file.

use std::error::Error;
use std::fmt;

/// Unix-style error numbers returned by the device file, matching what the
/// real KGSL driver returns for the corresponding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Operation not permitted (blocked by the kernel, e.g. the §9.2 RBAC
    /// mitigation denying a global counter read).
    Eperm,
    /// Invalid argument (unknown group/countable, mismatched request code).
    Einval,
    /// Bad file descriptor (closed or never opened).
    Ebadf,
    /// Permission denied by a mandatory access control policy (SELinux).
    Eacces,
    /// No such device or address (device file not present).
    Enodev,
    /// Counter space exhausted — all physical counters of the group are
    /// reserved.
    Ebusy,
}

impl Errno {
    /// The conventional errno value.
    pub const fn code(self) -> i32 {
        match self {
            Errno::Eperm => 1,
            Errno::Einval => 22,
            Errno::Ebadf => 9,
            Errno::Eacces => 13,
            Errno::Enodev => 6,
            Errno::Ebusy => 16,
        }
    }

    /// The conventional symbol name, e.g. `"EPERM"`.
    pub const fn name(self) -> &'static str {
        match self {
            Errno::Eperm => "EPERM",
            Errno::Einval => "EINVAL",
            Errno::Ebadf => "EBADF",
            Errno::Eacces => "EACCES",
            Errno::Enodev => "ENODEV",
            Errno::Ebusy => "EBUSY",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (errno {})", self.name(), self.code())
    }
}

impl Error for Errno {}

/// Result alias for device-file operations.
pub type DeviceResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_unix_convention() {
        assert_eq!(Errno::Eperm.code(), 1);
        assert_eq!(Errno::Einval.code(), 22);
        assert_eq!(Errno::Ebadf.code(), 9);
        assert_eq!(Errno::Eacces.code(), 13);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Errno::Eperm.to_string(), "EPERM (errno 1)");
    }
}
