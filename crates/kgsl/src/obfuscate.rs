//! Counter-value obfuscation — the §9.3 mitigation.
//!
//! "Obfuscation could also be more effectively applied from the OS, by
//! randomly executing small GPU workloads in background. The major
//! challenge, however, is how to decide the appropriate amount of these
//! workloads, as excessive GPU workloads impair the system's performance."
//!
//! The [`Obfuscator`] injects decoy workloads with exponentially distributed
//! inter-arrival times and randomised magnitudes shaped like small UI
//! frames, so decoy deltas land inside the range of genuine key-press
//! deltas. The experiment harness sweeps the injection rate to reproduce the
//! accuracy-vs-overhead trade-off the paper calls an open question.

use adreno_sim::counters::{CounterSet, TrackedCounter};
use adreno_sim::gpu::Gpu;
use adreno_sim::time::{SimDuration, SimInstant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the decoy-injection mitigation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObfuscationConfig {
    /// Mean decoy injections per second. Zero disables the mitigation.
    pub rate_hz: f64,
    /// Minimum decoy magnitude, in "popup equivalents" (1.0 ≈ the GPU cost
    /// of one key-press popup frame).
    pub min_magnitude: f64,
    /// Maximum decoy magnitude.
    pub max_magnitude: f64,
}

impl ObfuscationConfig {
    /// A decoy profile spanning the size range of real popup frames.
    pub fn popup_sized(rate_hz: f64) -> Self {
        ObfuscationConfig { rate_hz, min_magnitude: 0.6, max_magnitude: 1.4 }
    }
}

impl Default for ObfuscationConfig {
    fn default() -> Self {
        ObfuscationConfig::popup_sized(0.0)
    }
}

/// Injects decoy GPU workloads over simulated time.
///
/// # Examples
///
/// ```
/// use adreno_sim::{Gpu, GpuModel, SimInstant};
/// use kgsl::obfuscate::{ObfuscationConfig, Obfuscator};
///
/// let mut gpu = Gpu::new(GpuModel::Adreno650);
/// let mut obf = Obfuscator::new(ObfuscationConfig::popup_sized(50.0), 7);
/// let injected = obf.run_until(SimInstant::from_millis(1_000), &mut gpu);
/// assert!(injected > 20, "~50 decoys expected in 1s, got {injected}");
/// ```
#[derive(Debug)]
pub struct Obfuscator {
    config: ObfuscationConfig,
    rng: StdRng,
    next_at: Option<SimInstant>,
    cursor: SimInstant,
}

/// Baseline counter profile of a decoy: roughly the shape of a small
/// translucent UI surface redraw, scaled by magnitude.
fn decoy_counters(magnitude: f64) -> (CounterSet, u64) {
    let m = magnitude.max(0.0);
    let mut c = CounterSet::ZERO;
    let s = |v: f64| -> u64 { (v * m).round() as u64 };
    c[TrackedCounter::LrzVisiblePrimAfterLrz] = s(9.0);
    c[TrackedCounter::LrzFull8x8Tiles] = s(120.0);
    c[TrackedCounter::LrzPartial8x8Tiles] = s(60.0);
    c[TrackedCounter::LrzVisiblePixelAfterLrz] = s(700.0);
    c[TrackedCounter::RasSupertileActiveCycles] = s(2_600.0);
    c[TrackedCounter::RasSuperTiles] = s(10.0);
    c[TrackedCounter::Ras8x4Tiles] = s(380.0);
    c[TrackedCounter::RasFullyCovered8x4Tiles] = s(250.0);
    c[TrackedCounter::VpcPcPrimitives] = s(12.0);
    c[TrackedCounter::VpcSpComponents] = s(180.0);
    c[TrackedCounter::VpcLrzAssignPrimitives] = s(4.0);
    let cycles = s(24_000.0).max(1_000);
    (c, cycles)
}

impl Obfuscator {
    /// Creates an obfuscator with a deterministic seed.
    pub fn new(config: ObfuscationConfig, seed: u64) -> Self {
        Obfuscator {
            config,
            rng: StdRng::seed_from_u64(seed),
            next_at: None,
            cursor: SimInstant::ZERO,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ObfuscationConfig {
        &self.config
    }

    fn sample_gap(&mut self) -> SimDuration {
        // Exponential inter-arrival with mean 1/rate.
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let secs = -u.ln() / self.config.rate_hz;
        SimDuration::from_secs_f64(secs.min(60.0))
    }

    /// Injects every decoy due in `(cursor, until]` and advances the cursor.
    /// Returns the number of decoys injected.
    pub fn run_until(&mut self, until: SimInstant, gpu: &mut Gpu) -> usize {
        if self.config.rate_hz <= 0.0 {
            self.cursor = until;
            return 0;
        }
        let mut injected = 0;
        loop {
            let due = match self.next_at {
                Some(t) => t,
                None => {
                    let gap = self.sample_gap();
                    let t = self.cursor + gap;
                    self.next_at = Some(t);
                    t
                }
            };
            if due > until {
                break;
            }
            let magnitude =
                self.rng.gen_range(self.config.min_magnitude..=self.config.max_magnitude);
            let (counters, cycles) = decoy_counters(magnitude);
            gpu.submit_workload(counters, cycles, due);
            injected += 1;
            self.cursor = due;
            self.next_at = None;
        }
        self.cursor = until;
        injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::GpuModel;

    #[test]
    fn zero_rate_injects_nothing() {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        let mut obf = Obfuscator::new(ObfuscationConfig::popup_sized(0.0), 1);
        assert_eq!(obf.run_until(SimInstant::from_millis(10_000), &mut gpu), 0);
        assert!(gpu.counters_at(SimInstant::from_millis(10_000)).is_zero());
    }

    #[test]
    fn rate_controls_injection_count() {
        let mut gpu = Gpu::new(GpuModel::Adreno650);
        let mut obf = Obfuscator::new(ObfuscationConfig::popup_sized(100.0), 42);
        let n = obf.run_until(SimInstant::from_millis(2_000), &mut gpu);
        assert!((140..=260).contains(&n), "expected ~200 decoys, got {n}");
        assert!(!gpu.counters_at(SimInstant::from_millis(2_000)).is_zero());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut gpu = Gpu::new(GpuModel::Adreno650);
            let mut obf = Obfuscator::new(ObfuscationConfig::popup_sized(30.0), seed);
            obf.run_until(SimInstant::from_millis(1_000), &mut gpu);
            gpu.counters_at(SimInstant::from_millis(1_000))
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn incremental_runs_match_single_run() {
        let mut gpu_a = Gpu::new(GpuModel::Adreno650);
        let mut obf_a = Obfuscator::new(ObfuscationConfig::popup_sized(40.0), 9);
        for ms in (100..=1_000).step_by(100) {
            obf_a.run_until(SimInstant::from_millis(ms), &mut gpu_a);
        }
        let mut gpu_b = Gpu::new(GpuModel::Adreno650);
        let mut obf_b = Obfuscator::new(ObfuscationConfig::popup_sized(40.0), 9);
        obf_b.run_until(SimInstant::from_millis(1_000), &mut gpu_b);
        assert_eq!(
            gpu_a.counters_at(SimInstant::from_millis(1_000)),
            gpu_b.counters_at(SimInstant::from_millis(1_000))
        );
    }

    #[test]
    fn decoy_magnitude_scales() {
        let (small, c1) = decoy_counters(0.5);
        let (large, c2) = decoy_counters(2.0);
        assert!(large.total() > small.total());
        assert!(c2 > c1);
    }
}
