//! The userspace ABI of the KGSL driver, mirroring `msm_kgsl.h`.
//!
//! The attack never links a GPU library: it issues raw `ioctl()` calls
//! against `/dev/kgsl-3d0` using the request codes and struct layouts from
//! Qualcomm's open-source kernel header (§4, Fig 9 of the paper). This module
//! reproduces those constants so that the simulated device file speaks the
//! same "language".

/// `KGSL_IOC_TYPE` — the ioctl magic byte of the KGSL driver.
pub const KGSL_IOC_TYPE: u32 = 0x09;

/// `KGSL_PERFCOUNTER_GROUP_VPC`.
pub const KGSL_PERFCOUNTER_GROUP_VPC: u32 = 0x5;
/// `KGSL_PERFCOUNTER_GROUP_RAS`.
pub const KGSL_PERFCOUNTER_GROUP_RAS: u32 = 0x7;
/// `KGSL_PERFCOUNTER_GROUP_LRZ`.
pub const KGSL_PERFCOUNTER_GROUP_LRZ: u32 = 0x19;

// Linux ioctl encoding: dir(2) | size(14) | type(8) | nr(8), dir in the top
// bits. `_IOWR` is read+write.
const IOC_NRBITS: u32 = 8;
const IOC_TYPEBITS: u32 = 8;
const IOC_SIZEBITS: u32 = 14;
const IOC_NRSHIFT: u32 = 0;
const IOC_TYPESHIFT: u32 = IOC_NRSHIFT + IOC_NRBITS;
const IOC_SIZESHIFT: u32 = IOC_TYPESHIFT + IOC_TYPEBITS;
const IOC_DIRSHIFT: u32 = IOC_SIZESHIFT + IOC_SIZEBITS;
const IOC_WRITE: u32 = 1;
const IOC_READ: u32 = 2;

/// Encodes an `_IOWR(type, nr, size)` ioctl request number.
pub const fn iowr(ty: u32, nr: u32, size: u32) -> u32 {
    ((IOC_READ | IOC_WRITE) << IOC_DIRSHIFT)
        | (size << IOC_SIZESHIFT)
        | (ty << IOC_TYPESHIFT)
        | (nr << IOC_NRSHIFT)
}

/// Wire size of `struct kgsl_perfcounter_get` (3×u32 + padding + u64s in the
/// real header; we use the 64-bit layout size).
pub const SIZEOF_PERFCOUNTER_GET: u32 = 16;
/// Wire size of `struct kgsl_perfcounter_read` (pointer + 2×u32 on 64-bit).
pub const SIZEOF_PERFCOUNTER_READ: u32 = 16;
/// Wire size of `struct kgsl_perfcounter_put`.
pub const SIZEOF_PERFCOUNTER_PUT: u32 = 8;

/// `IOCTL_KGSL_PERFCOUNTER_GET` — reserve a performance counter (nr `0x38`).
pub const IOCTL_KGSL_PERFCOUNTER_GET: u32 = iowr(KGSL_IOC_TYPE, 0x38, SIZEOF_PERFCOUNTER_GET);
/// `IOCTL_KGSL_PERFCOUNTER_PUT` — release a performance counter (nr `0x39`).
pub const IOCTL_KGSL_PERFCOUNTER_PUT: u32 = iowr(KGSL_IOC_TYPE, 0x39, SIZEOF_PERFCOUNTER_PUT);
/// `IOCTL_KGSL_PERFCOUNTER_READ` — block-read counter values (nr `0x3B`).
pub const IOCTL_KGSL_PERFCOUNTER_READ: u32 = iowr(KGSL_IOC_TYPE, 0x3B, SIZEOF_PERFCOUNTER_READ);

/// `struct kgsl_perfcounter_get`: reserves `(groupid, countable)` and
/// returns the assigned hardware register offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KgslPerfcounterGet {
    /// Counter group to reserve from (`KGSL_PERFCOUNTER_GROUP_*`).
    pub groupid: u32,
    /// Event selector within the group.
    pub countable: u32,
    /// Filled by the driver: low register offset of the assigned counter.
    pub offset: u32,
    /// Filled by the driver: high register offset.
    pub offset_hi: u32,
}

/// `struct kgsl_perfcounter_put`: releases a reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KgslPerfcounterPut {
    /// Counter group the reservation was made in.
    pub groupid: u32,
    /// Event selector of the reservation being released.
    pub countable: u32,
}

/// `struct kgsl_perfcounter_read_group`: one entry of a block-read — the
/// driver fills `value` with the counter's current cumulative value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KgslPerfcounterReadGroup {
    /// Counter group to read from.
    pub groupid: u32,
    /// Event selector within the group.
    pub countable: u32,
    /// Filled by the driver: the counter's cumulative value.
    pub value: u64,
}

impl KgslPerfcounterReadGroup {
    /// Creates a read request entry for `(groupid, countable)` with a zeroed
    /// value slot.
    pub const fn new(groupid: u32, countable: u32) -> Self {
        KgslPerfcounterReadGroup { groupid, countable, value: 0 }
    }
}

/// The ioctl request argument, dispatched by [`crate::KgslDevice::ioctl`].
///
/// In real code this is a raw pointer; here it is a typed enum so the
/// simulation stays memory-safe while keeping the request-code dispatch
/// structure of the driver.
#[derive(Debug)]
pub enum IoctlRequest<'a> {
    /// `IOCTL_KGSL_PERFCOUNTER_GET`: reserve a counter.
    PerfcounterGet(&'a mut KgslPerfcounterGet),
    /// `IOCTL_KGSL_PERFCOUNTER_PUT`: release a reservation.
    PerfcounterPut(KgslPerfcounterPut),
    /// `IOCTL_KGSL_PERFCOUNTER_READ`: block-read reserved counters.
    PerfcounterRead(&'a mut [KgslPerfcounterReadGroup]),
}

impl IoctlRequest<'_> {
    /// The request code this argument must be paired with.
    pub fn expected_code(&self) -> u32 {
        match self {
            IoctlRequest::PerfcounterGet(_) => IOCTL_KGSL_PERFCOUNTER_GET,
            IoctlRequest::PerfcounterPut(_) => IOCTL_KGSL_PERFCOUNTER_PUT,
            IoctlRequest::PerfcounterRead(_) => IOCTL_KGSL_PERFCOUNTER_READ,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ioctl_codes_use_kgsl_magic_and_paper_nrs() {
        // nr is the low byte; type is the next byte.
        assert_eq!(IOCTL_KGSL_PERFCOUNTER_GET & 0xff, 0x38);
        assert_eq!(IOCTL_KGSL_PERFCOUNTER_READ & 0xff, 0x3B);
        assert_eq!(IOCTL_KGSL_PERFCOUNTER_PUT & 0xff, 0x39);
        assert_eq!((IOCTL_KGSL_PERFCOUNTER_GET >> 8) & 0xff, KGSL_IOC_TYPE);
        // _IOWR direction bits (read|write = 3) live in the top two bits.
        assert_eq!(IOCTL_KGSL_PERFCOUNTER_GET >> 30, 3);
    }

    #[test]
    fn group_ids_match_paper_figure9() {
        assert_eq!(KGSL_PERFCOUNTER_GROUP_VPC, 0x5);
        assert_eq!(KGSL_PERFCOUNTER_GROUP_RAS, 0x7);
        assert_eq!(KGSL_PERFCOUNTER_GROUP_LRZ, 0x19);
    }

    #[test]
    fn distinct_codes() {
        assert_ne!(IOCTL_KGSL_PERFCOUNTER_GET, IOCTL_KGSL_PERFCOUNTER_READ);
        assert_ne!(IOCTL_KGSL_PERFCOUNTER_GET, IOCTL_KGSL_PERFCOUNTER_PUT);
    }
}
