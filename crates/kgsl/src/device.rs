//! The simulated `/dev/kgsl-3d0` device file.
//!
//! User-space drivers (OpenGL ES, Vulkan) and — crucially — any unprivileged
//! process can `open()` this file and issue perf-counter ioctls (§4 of the
//! paper). The device holds the GPU behind a lock, reads the shared clock for
//! "now", validates requests exactly like the real driver (request-code
//! match, reservation-before-read, group/countable bounds) and applies the
//! configured [`AccessPolicy`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use adreno_sim::counters::{CounterGroup, CounterId, CounterSet, TrackedCounter};
use adreno_sim::gpu::Gpu;
use adreno_sim::time::{SharedClock, SimDuration};
use parking_lot::Mutex;

use crate::abi::{IoctlRequest, KgslPerfcounterReadGroup};
use crate::error::{DeviceResult, Errno};
use crate::fault::{FaultEvent, FaultInjector, FaultLog, FaultPlan};
use crate::policy::{AccessPolicy, CounterVisibility, SelinuxDomain};

/// Maximum countable selector per group (the real hardware exposes a few
/// dozen per group; requests beyond this are `EINVAL`).
pub const MAX_COUNTABLE: u32 = 32;

/// Physical counter registers available per group; `PERFCOUNTER_GET` beyond
/// this returns `EBUSY`.
pub const COUNTERS_PER_GROUP: usize = 16;

/// Modelled counter groups (VPC, RAS, LRZ).
const NUM_GROUPS: usize = 3;

/// Countable selectors per group (`0..=MAX_COUNTABLE`).
const COUNTABLES: usize = (MAX_COUNTABLE + 1) as usize;

/// Block-read entries resolved on the stack before spilling to the heap —
/// comfortably above the attack's 11-counter request.
const INLINE_READ_ENTRIES: usize = 16;

/// Dense index of a KGSL group id within the reservation tables, `None` for
/// unknown groups.
const fn group_index(groupid: u32) -> Option<usize> {
    match CounterGroup::from_kgsl_id(groupid) {
        Some(CounterGroup::Vpc) => Some(0),
        Some(CounterGroup::Ras) => Some(1),
        Some(CounterGroup::Lrz) => Some(2),
        None => None,
    }
}

/// Reservation refcounts as a dense `[group][countable]` table.
///
/// The whole `(group, countable)` key space is 3 × 33 slots, so flat arrays
/// replace the former hash maps: the block-read ioctl validates its eleven
/// entries with direct indexing instead of eleven SipHash lookups, on every
/// one of the millions of reads a full suite issues.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ResvTable {
    counts: [[u32; COUNTABLES]; NUM_GROUPS],
    /// Distinct reserved countables per group — the `COUNTERS_PER_GROUP`
    /// capacity check, maintained incrementally.
    live: [usize; NUM_GROUPS],
}

impl ResvTable {
    const EMPTY: ResvTable =
        ResvTable { counts: [[0; COUNTABLES]; NUM_GROUPS], live: [0; NUM_GROUPS] };

    fn count(&self, group: usize, countable: usize) -> u32 {
        self.counts[group][countable]
    }

    fn live(&self, group: usize) -> usize {
        self.live[group]
    }

    fn acquire(&mut self, group: usize, countable: usize) {
        if self.counts[group][countable] == 0 {
            self.live[group] += 1;
        }
        self.counts[group][countable] += 1;
    }

    /// Drops one refcount; does nothing when none are held.
    fn release(&mut self, group: usize, countable: usize) {
        if self.counts[group][countable] == 0 {
            return;
        }
        self.counts[group][countable] -= 1;
        if self.counts[group][countable] == 0 {
            self.live[group] -= 1;
        }
    }

    fn clear(&mut self) {
        *self = ResvTable::EMPTY;
    }
}

/// The telemetry span name for one ioctl request kind.
fn ioctl_span_name(req: &IoctlRequest<'_>) -> &'static str {
    match req {
        IoctlRequest::PerfcounterGet(_) => "ioctl.perfcounter_get",
        IoctlRequest::PerfcounterPut(_) => "ioctl.perfcounter_put",
        IoctlRequest::PerfcounterRead(_) => "ioctl.perfcounter_read",
    }
}

/// Counts a failed device call under its errno.
fn count_errno(errno: Errno) {
    let name = match errno {
        Errno::Eperm => "kgsl.errno.eperm",
        Errno::Einval => "kgsl.errno.einval",
        Errno::Ebadf => "kgsl.errno.ebadf",
        Errno::Eacces => "kgsl.errno.eacces",
        Errno::Enodev => "kgsl.errno.enodev",
        Errno::Ebusy => "kgsl.errno.ebusy",
        Errno::Eintr => "kgsl.errno.eintr",
    };
    spansight::count(name, 1);
}

/// An open handle to the device file (a simulated file descriptor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KgslFd(u32);

#[derive(Debug, Clone)]
struct HandleState {
    pid: u32,
    domain: SelinuxDomain,
    /// This handle's own reservation refcounts, so `close()` can release
    /// exactly what the handle still holds (like the real driver's per-context
    /// cleanup).
    reservations: ResvTable,
}

#[derive(Debug, Default)]
struct DeviceState {
    handles: HashMap<u32, HandleState>,
    /// Device-wide reservation refcounts — the sum of every handle's counts,
    /// used for capacity (`EBUSY`) and read validation.
    reservations: ResvTable,
}

impl Default for ResvTable {
    fn default() -> Self {
        ResvTable::EMPTY
    }
}

impl DeviceState {
    /// Forgets every reservation, device-wide and per-handle (GPU slumber).
    fn clear_reservations(&mut self) {
        self.reservations.clear();
        for handle in self.handles.values_mut() {
            handle.reservations.clear();
        }
    }
}

/// The device file.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use adreno_sim::{Gpu, GpuModel, SharedClock};
/// use kgsl::abi::*;
/// use kgsl::device::KgslDevice;
/// use kgsl::policy::SelinuxDomain;
/// use parking_lot::Mutex;
///
/// # fn main() -> Result<(), kgsl::error::Errno> {
/// let gpu = Arc::new(Mutex::new(Gpu::new(GpuModel::Adreno650)));
/// let clock = SharedClock::new();
/// let dev = KgslDevice::new(gpu, clock);
///
/// let fd = dev.open(1234, SelinuxDomain::UntrustedApp)?;
/// let mut get = KgslPerfcounterGet { groupid: KGSL_PERFCOUNTER_GROUP_LRZ, countable: 14, ..Default::default() };
/// dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get))?;
///
/// let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 14)];
/// dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))?;
/// assert_eq!(reads[0].value, 0); // nothing rendered yet
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KgslDevice {
    gpu: Arc<Mutex<Gpu>>,
    clock: SharedClock,
    policy: Mutex<AccessPolicy>,
    state: Mutex<DeviceState>,
    next_fd: AtomicU32,
    /// Installed fault injector, if any (see [`crate::fault`]).
    fault: Mutex<Option<FaultInjector>>,
    /// Counter values at the last GPU slumber. Hardware registers reset to
    /// zero across a power collapse, so reads report cumulative values
    /// *since* this baseline — which is what makes post-slumber reads jump
    /// backwards from the attacker's point of view.
    counter_baseline: Mutex<CounterSet>,
}

impl KgslDevice {
    /// Creates the device over a GPU and a clock.
    pub fn new(gpu: Arc<Mutex<Gpu>>, clock: SharedClock) -> Self {
        KgslDevice {
            gpu,
            clock,
            policy: Mutex::new(AccessPolicy::default()),
            state: Mutex::new(DeviceState::default()),
            next_fd: AtomicU32::new(3), // 0..2 are stdio, as a nod to realism
            fault: Mutex::new(None),
            counter_baseline: Mutex::new(CounterSet::ZERO),
        }
    }

    /// Installs a fault-injection plan. Subsequent `open`/`ioctl` calls
    /// consult the plan's schedule and transient rates; see [`crate::fault`].
    /// Replaces any previously installed plan (and its log).
    pub fn install_fault_plan(&self, plan: &FaultPlan) {
        *self.fault.lock() = Some(FaultInjector::new(plan));
    }

    /// Removes the fault injector; the device returns to ideal behaviour.
    pub fn clear_fault_plan(&self) {
        *self.fault.lock() = None;
    }

    /// Counts of faults delivered so far, if a plan is installed.
    pub fn fault_log(&self) -> Option<FaultLog> {
        self.fault.lock().as_ref().map(|inj| inj.log())
    }

    /// Delivers due scheduled fault events, then makes this call's transient
    /// draw. Called at every `open`/`ioctl` entry; `Some(errno)` means the
    /// call fails with that transient error.
    fn service_faults(&self) -> Option<Errno> {
        let mut guard = self.fault.lock();
        let injector = guard.as_mut()?;
        let now = self.clock.now();
        for event in injector.due_events(now) {
            match event {
                FaultEvent::Slumber => {
                    spansight::instant("kgsl", "kgsl.fault.slumber");
                    // The hardware forgets: registers restart from zero and
                    // reservations are gone.
                    *self.counter_baseline.lock() = self.gpu.lock().counters_at(now);
                    self.state.lock().clear_reservations();
                }
                FaultEvent::RevokeFds => {
                    spansight::instant("kgsl", "kgsl.fault.revoke_fds");
                    let mut st = self.state.lock();
                    st.handles.clear();
                    st.reservations.clear();
                }
                FaultEvent::PolicyChange(policy) => {
                    spansight::instant("kgsl", "kgsl.fault.policy_change");
                    *self.policy.lock() = policy;
                }
            }
        }
        let transient = injector.draw_transient();
        if transient.is_some() {
            spansight::count("kgsl.fault.transient", 1);
        }
        transient
    }

    /// The shared clock this device reads.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// The GPU behind the device (shared with the compositor).
    pub fn gpu(&self) -> &Arc<Mutex<Gpu>> {
        &self.gpu
    }

    /// Installs a new access-control policy (the "OS security update" hook
    /// used by the §9.2 mitigation experiments).
    pub fn set_policy(&self, policy: AccessPolicy) {
        *self.policy.lock() = policy;
    }

    /// The currently installed policy.
    pub fn policy(&self) -> AccessPolicy {
        self.policy.lock().clone()
    }

    /// Opens the device file from a process.
    ///
    /// Opening always succeeds on stock Android — user-space GPU drivers run
    /// inside every app's process, so the file must be world-accessible
    /// (§4). Policies restrict *ioctls*, not `open`. Under fault injection
    /// the call may still fail transiently (`EBUSY`/`EINTR`), like any
    /// interrupted syscall.
    pub fn open(&self, pid: u32, domain: SelinuxDomain) -> DeviceResult<KgslFd> {
        spansight::count("kgsl.open", 1);
        if let Some(errno) = self.service_faults() {
            count_errno(errno);
            return Err(errno);
        }
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.state
            .lock()
            .handles
            .insert(fd, HandleState { pid, domain, reservations: ResvTable::EMPTY });
        Ok(KgslFd(fd))
    }

    /// Closes a handle, releasing every reservation it still holds (the real
    /// driver's per-context cleanup). Closing an unknown handle returns
    /// `EBADF`.
    pub fn close(&self, fd: KgslFd) -> DeviceResult<()> {
        spansight::count("kgsl.close", 1);
        let mut st = self.state.lock();
        match st.handles.remove(&fd.0) {
            Some(handle) => {
                for group in 0..NUM_GROUPS {
                    for countable in 0..COUNTABLES {
                        for _ in 0..handle.reservations.count(group, countable) {
                            st.reservations.release(group, countable);
                        }
                    }
                }
                Ok(())
            }
            None => Err(Errno::Ebadf),
        }
    }

    fn domain_of(&self, fd: KgslFd) -> DeviceResult<SelinuxDomain> {
        self.state.lock().handles.get(&fd.0).map(|h| h.domain).ok_or(Errno::Ebadf)
    }

    /// The pid that opened `fd` (as `lsof` would report).
    pub fn owner_pid(&self, fd: KgslFd) -> DeviceResult<u32> {
        self.state.lock().handles.get(&fd.0).map(|h| h.pid).ok_or(Errno::Ebadf)
    }

    /// The `ioctl(2)` entry point.
    ///
    /// # Errors
    ///
    /// * `EBADF` — `fd` is not open.
    /// * `EINVAL` — request code does not match the argument, or the
    ///   group/countable is out of range, or a read targets an unreserved
    ///   counter.
    /// * `EBUSY` — all physical counters of the group are reserved, or an
    ///   injected transient fault.
    /// * `EINTR` — an injected transient fault (simulated signal delivery).
    /// * `EACCES`/`EPERM` — blocked by the installed [`AccessPolicy`].
    pub fn ioctl(&self, fd: KgslFd, code: u32, req: IoctlRequest<'_>) -> DeviceResult<()> {
        let _span = spansight::span("kgsl", ioctl_span_name(&req));
        spansight::count("kgsl.ioctl.calls", 1);
        let result = self.ioctl_inner(fd, code, req);
        if let Err(errno) = result {
            count_errno(errno);
        }
        result
    }

    fn ioctl_inner(&self, fd: KgslFd, code: u32, mut req: IoctlRequest<'_>) -> DeviceResult<()> {
        if let Some(errno) = self.service_faults() {
            return Err(errno);
        }
        let domain = self.domain_of(fd)?;
        if code != req.expected_code() {
            return Err(Errno::Einval);
        }
        match &mut req {
            IoctlRequest::PerfcounterGet(get) => {
                let group = self.validate_target(get.groupid, get.countable)?;
                if self.policy.lock().visibility(domain) == CounterVisibility::Denied {
                    return Err(Errno::Eacces);
                }
                let countable = get.countable as usize;
                let mut st = self.state.lock();
                if st.reservations.count(group, countable) == 0
                    && st.reservations.live(group) >= COUNTERS_PER_GROUP
                {
                    return Err(Errno::Ebusy);
                }
                st.reservations.acquire(group, countable);
                st.handles
                    .get_mut(&fd.0)
                    .expect("checked by domain_of")
                    .reservations
                    .acquire(group, countable);
                // Fabricate plausible register offsets.
                get.offset = 0xA000 + get.groupid * 0x40 + get.countable * 2;
                get.offset_hi = get.offset + 1;
                Ok(())
            }
            IoctlRequest::PerfcounterPut(put) => {
                let group = self.validate_target(put.groupid, put.countable)?;
                let countable = put.countable as usize;
                let mut st = self.state.lock();
                let handle = st.handles.get_mut(&fd.0).expect("checked by domain_of");
                if handle.reservations.count(group, countable) == 0 {
                    // This handle holds no such reservation (it may never
                    // have taken one, or lost it across a slumber).
                    return Err(Errno::Einval);
                }
                handle.reservations.release(group, countable);
                st.reservations.release(group, countable);
                Ok(())
            }
            IoctlRequest::PerfcounterRead(reads) => self.perfcounter_read(domain, reads),
        }
    }

    /// Checks a `(group, countable)` target and returns the group's dense
    /// reservation-table index.
    fn validate_target(&self, groupid: u32, countable: u32) -> DeviceResult<usize> {
        let group = group_index(groupid).ok_or(Errno::Einval)?;
        if countable > MAX_COUNTABLE {
            return Err(Errno::Einval);
        }
        Ok(group)
    }

    fn perfcounter_read(
        &self,
        domain: SelinuxDomain,
        reads: &mut [KgslPerfcounterReadGroup],
    ) -> DeviceResult<()> {
        let visibility = self.policy.lock().visibility(domain);
        if visibility == CounterVisibility::Denied {
            return Err(Errno::Eacces);
        }
        // Validate all targets first — the real driver fails the whole
        // block-read on the first bad entry without partial writes — and
        // resolve each entry to its tracked counter in the same pass, so
        // the fill loops below run over precomputed lookups instead of
        // re-deriving group and countable per entry per loop. The
        // resolution buffer lives on the stack for anything up to
        // `INLINE_READ_ENTRIES` (the attack's request is 11 entries);
        // oversized requests spill to the heap.
        let mut inline = [None; INLINE_READ_ENTRIES];
        let mut heap: Vec<Option<TrackedCounter>> = Vec::new();
        let resolved: &mut [Option<TrackedCounter>] = if reads.len() <= INLINE_READ_ENTRIES {
            &mut inline[..reads.len()]
        } else {
            heap.resize(reads.len(), None);
            &mut heap
        };
        {
            let st = self.state.lock();
            for (r, slot) in reads.iter().zip(resolved.iter_mut()) {
                let group = self.validate_target(r.groupid, r.countable)?;
                if st.reservations.count(group, r.countable as usize) == 0 {
                    return Err(Errno::Einval);
                }
                let group = CounterGroup::from_kgsl_id(r.groupid).expect("validated above");
                // `None` is a valid hardware counter our simulation does
                // not model: it reads as a quiescent counter.
                *slot = TrackedCounter::from_id(CounterId::new(group, r.countable));
            }
        }
        if visibility == CounterVisibility::LocalOnly {
            // The caller sees only its own GPU activity. The attacking
            // process renders nothing, so its local view never moves —
            // this is exactly how the mitigation starves the channel.
            for r in reads.iter_mut() {
                r.value = 0;
            }
            return Ok(());
        }
        // A truncated read fills a strict prefix of the request and fails
        // `EINTR` — the ioctl analogue of a short `read(2)`. Callers must
        // discard the buffer, like the wire decoder discards short frames.
        let truncate_at =
            self.fault.lock().as_mut().and_then(|inj| inj.draw_truncation(reads.len()));
        let snapshot = self.gpu.lock().counters_at(self.clock.now());
        // Registers physically reset across a GPU slumber, so a read reports
        // the cumulative count since the most recent slumber baseline.
        let baseline = *self.counter_baseline.lock();
        let fill = |r: &mut KgslPerfcounterReadGroup, tracked: Option<TrackedCounter>| {
            r.value = match tracked {
                Some(tracked) => snapshot[tracked].saturating_sub(baseline[tracked]),
                None => 0,
            };
        };
        if let Some(k) = truncate_at {
            spansight::count("kgsl.fault.truncated_read", 1);
            for (r, &tracked) in reads[..k].iter_mut().zip(resolved.iter()) {
                fill(r, tracked);
            }
            return Err(Errno::Eintr);
        }
        for (r, &tracked) in reads.iter_mut().zip(resolved.iter()) {
            fill(r, tracked);
        }
        Ok(())
    }

    /// The `/sys/class/kgsl/kgsl-3d0/gpu_busy_percentage` sysfs endpoint:
    /// GPU utilisation over the last 100 ms, in percent.
    pub fn gpu_busy_percentage(&self) -> u32 {
        let now = self.clock.now();
        let frac = self.gpu.lock().busy_fraction(now, SimDuration::from_millis(100));
        (frac * 100.0).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::*;
    use adreno_sim::geom::Rect;
    use adreno_sim::scene::DrawList;
    use adreno_sim::time::SimInstant;
    use adreno_sim::GpuModel;

    fn device() -> KgslDevice {
        let gpu = Arc::new(Mutex::new(Gpu::new(GpuModel::Adreno650)));
        KgslDevice::new(gpu, SharedClock::new())
    }

    fn get_counter(dev: &KgslDevice, fd: KgslFd, group: u32, countable: u32) -> DeviceResult<()> {
        let mut get = KgslPerfcounterGet { groupid: group, countable, ..Default::default() };
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get))
    }

    #[test]
    fn unprivileged_open_succeeds() {
        let dev = device();
        assert!(dev.open(1000, SelinuxDomain::UntrustedApp).is_ok());
    }

    #[test]
    fn read_requires_reservation() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 13)];
        let err = dev
            .ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap_err();
        assert_eq!(err, Errno::Einval);
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
    }

    #[test]
    fn read_observes_rendered_frames() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();

        // Some other process renders a frame.
        let mut dl = DrawList::new(256, 256);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 256, 256), true);
        let end = {
            let mut gpu = dev.gpu().lock();
            gpu.submit(&dl, SimInstant::ZERO).end
        };
        dev.clock().advance_to(end);

        let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 13)];
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        assert_eq!(reads[0].value, 2, "the quad's two triangles are visible globally");
    }

    #[test]
    fn mismatched_request_code_is_einval() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        let mut get = KgslPerfcounterGet::default();
        let err = dev
            .ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterGet(&mut get))
            .unwrap_err();
        assert_eq!(err, Errno::Einval);
    }

    #[test]
    fn unknown_group_is_einval() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        assert_eq!(get_counter(&dev, fd, 0x42, 1).unwrap_err(), Errno::Einval);
        assert_eq!(
            get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, MAX_COUNTABLE + 1).unwrap_err(),
            Errno::Einval
        );
    }

    #[test]
    fn closed_fd_is_ebadf() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        dev.close(fd).unwrap();
        assert_eq!(
            get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap_err(),
            Errno::Ebadf
        );
        assert_eq!(dev.close(fd).unwrap_err(), Errno::Ebadf);
    }

    #[test]
    fn group_capacity_exhaustion_is_ebusy() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        for c in 0..COUNTERS_PER_GROUP as u32 {
            get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_RAS, c).unwrap();
        }
        assert_eq!(
            get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_RAS, COUNTERS_PER_GROUP as u32)
                .unwrap_err(),
            Errno::Ebusy
        );
        // Re-getting an already reserved countable is fine (refcounted).
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_RAS, 0).unwrap();
    }

    #[test]
    fn put_releases_reservation() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_VPC, 9).unwrap();
        let put = KgslPerfcounterPut { groupid: KGSL_PERFCOUNTER_GROUP_VPC, countable: 9 };
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_PUT, IoctlRequest::PerfcounterPut(put)).unwrap();
        // Second put fails: nothing reserved any more.
        assert_eq!(
            dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_PUT, IoctlRequest::PerfcounterPut(put))
                .unwrap_err(),
            Errno::Einval
        );
    }

    #[test]
    fn close_releases_the_handles_reservations() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        // Exhaust the group from one handle...
        for c in 0..COUNTERS_PER_GROUP as u32 {
            get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_RAS, c).unwrap();
        }
        let other = dev.open(2, SelinuxDomain::UntrustedApp).unwrap();
        assert_eq!(
            get_counter(&dev, other, KGSL_PERFCOUNTER_GROUP_RAS, COUNTERS_PER_GROUP as u32)
                .unwrap_err(),
            Errno::Ebusy
        );
        // ...then close it: the capacity must come back for other handles.
        dev.close(fd).unwrap();
        get_counter(&dev, other, KGSL_PERFCOUNTER_GROUP_RAS, COUNTERS_PER_GROUP as u32).unwrap();
        let mut reads =
            [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_RAS, COUNTERS_PER_GROUP as u32)];
        dev.ioctl(other, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        // The closed handle's reservations are gone: reading one is EINVAL.
        let mut stale = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_RAS, 0)];
        assert_eq!(
            dev.ioctl(
                other,
                IOCTL_KGSL_PERFCOUNTER_READ,
                IoctlRequest::PerfcounterRead(&mut stale)
            )
            .unwrap_err(),
            Errno::Einval
        );
    }

    #[test]
    fn close_only_releases_its_own_refcounts() {
        let dev = device();
        let a = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        let b = dev.open(2, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, a, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        get_counter(&dev, b, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        dev.close(a).unwrap();
        // b's reservation must survive a's close.
        let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 13)];
        dev.ioctl(b, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
    }

    #[test]
    fn put_requires_the_handles_own_reservation() {
        let dev = device();
        let a = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        let b = dev.open(2, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, a, KGSL_PERFCOUNTER_GROUP_VPC, 9).unwrap();
        let put = KgslPerfcounterPut { groupid: KGSL_PERFCOUNTER_GROUP_VPC, countable: 9 };
        // b never reserved it, so b cannot release it.
        assert_eq!(
            dev.ioctl(b, IOCTL_KGSL_PERFCOUNTER_PUT, IoctlRequest::PerfcounterPut(put))
                .unwrap_err(),
            Errno::Einval
        );
        dev.ioctl(a, IOCTL_KGSL_PERFCOUNTER_PUT, IoctlRequest::PerfcounterPut(put)).unwrap();
    }

    #[test]
    fn deny_all_policy_blocks_get_and_read() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        dev.set_policy(AccessPolicy::DenyAll);
        let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 13)];
        assert_eq!(
            dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
                .unwrap_err(),
            Errno::Eacces
        );
        assert_eq!(
            get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 14).unwrap_err(),
            Errno::Eacces
        );
    }

    #[test]
    fn rbac_gives_untrusted_apps_a_frozen_local_view() {
        let dev = device();
        dev.set_policy(AccessPolicy::role_based([SelinuxDomain::GpuProfiler]));
        let attacker = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        let profiler = dev.open(2, SelinuxDomain::GpuProfiler).unwrap();
        get_counter(&dev, attacker, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();

        let mut dl = DrawList::new(256, 256);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 256, 256), true);
        let end = dev.gpu().lock().submit(&dl, SimInstant::ZERO).end;
        dev.clock().advance_to(end);

        let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 13)];
        dev.ioctl(attacker, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        assert_eq!(reads[0].value, 0, "attacker only sees its own (empty) activity");

        dev.ioctl(profiler, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        assert_eq!(reads[0].value, 2, "profiler retains global visibility");
    }

    fn render_a_frame(dev: &KgslDevice, at: SimInstant) {
        let mut dl = DrawList::new(256, 256);
        dl.layer("bg").quad(Rect::from_xywh(0, 0, 256, 256), true);
        let end = dev.gpu().lock().submit(&dl, at).end;
        dev.clock().advance_to(end);
    }

    #[test]
    fn slumber_zeroes_live_counters_and_drops_reservations() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        render_a_frame(&dev, SimInstant::ZERO);

        let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 13)];
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        assert_eq!(reads[0].value, 2);

        let plan = FaultPlan::new(0)
            .at(dev.clock().now() + SimDuration::from_millis(1), crate::fault::FaultEvent::Slumber);
        dev.install_fault_plan(&plan);
        dev.clock().advance_to(dev.clock().now() + SimDuration::from_millis(2));

        // The reservation is gone: the read is EINVAL until re-acquired.
        assert_eq!(
            dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
                .unwrap_err(),
            Errno::Einval
        );
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        assert_eq!(reads[0].value, 0, "registers restart from zero after slumber");
        assert_eq!(dev.fault_log().unwrap().slumbers, 1);

        // New work after the slumber is visible again.
        render_a_frame(&dev, dev.clock().now());
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        assert_eq!(reads[0].value, 2);
    }

    #[test]
    fn revocation_makes_every_fd_ebadf() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        dev.install_fault_plan(
            &FaultPlan::new(0).at(SimInstant::from_millis(10), crate::fault::FaultEvent::RevokeFds),
        );
        dev.clock().advance_to(SimInstant::from_millis(20));
        assert_eq!(
            get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 14).unwrap_err(),
            Errno::Ebadf
        );
        // Reopening works and the device is fully functional again.
        let fd2 = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd2, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        assert_eq!(dev.fault_log().unwrap().revocations, 1);
    }

    #[test]
    fn scheduled_policy_flip_is_applied() {
        let dev = device();
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        dev.install_fault_plan(&FaultPlan::new(0).at(
            SimInstant::from_millis(5),
            crate::fault::FaultEvent::PolicyChange(AccessPolicy::DenyAll),
        ));
        dev.clock().advance_to(SimInstant::from_millis(6));
        assert_eq!(
            get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 14).unwrap_err(),
            Errno::Eacces
        );
    }

    #[test]
    fn transient_faults_are_deterministic_per_seed() {
        let run = || {
            let dev = device();
            dev.install_fault_plan(&FaultPlan::new(77).with_transient_rates(0.3, 0.2));
            let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap_or(KgslFd(u32::MAX));
            (0..64)
                .map(|i| get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, i % 8).err())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|e| matches!(e, Some(Errno::Ebusy))));
        assert!(a.iter().any(|e| matches!(e, Some(Errno::Eintr))));
    }

    #[test]
    fn truncated_reads_fill_a_prefix_and_fail_eintr() {
        let dev = device();
        dev.install_fault_plan(&FaultPlan::new(13).with_truncated_reads(0.5));
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 14).unwrap();
        render_a_frame(&dev, SimInstant::ZERO);

        let sentinel = u64::MAX;
        let mut truncated = 0u32;
        for _ in 0..256 {
            let mut reads = [
                KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 13),
                KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 14),
            ];
            for r in reads.iter_mut() {
                r.value = sentinel;
            }
            match dev.ioctl(
                fd,
                IOCTL_KGSL_PERFCOUNTER_READ,
                IoctlRequest::PerfcounterRead(&mut reads),
            ) {
                Ok(()) => assert!(reads.iter().all(|r| r.value != sentinel)),
                Err(Errno::Eintr) => {
                    truncated += 1;
                    // A strict prefix is filled; at least the last entry is
                    // left untouched.
                    assert_eq!(reads[1].value, sentinel, "truncation must leave a suffix");
                }
                Err(other) => panic!("unexpected errno {other:?}"),
            }
        }
        assert!(truncated > 50, "truncation rate 0.5 barely fired: {truncated}");
        assert_eq!(dev.fault_log().unwrap().truncated_reads, truncated as u64);
    }

    #[test]
    fn null_fault_plan_changes_nothing() {
        let dev = device();
        dev.install_fault_plan(&FaultPlan::new(123));
        let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        get_counter(&dev, fd, KGSL_PERFCOUNTER_GROUP_LRZ, 13).unwrap();
        render_a_frame(&dev, SimInstant::ZERO);
        let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 13)];
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        assert_eq!(reads[0].value, 2);
        assert_eq!(dev.fault_log().unwrap().total(), 0);
    }

    #[test]
    fn busy_percentage_reflects_load() {
        let dev = device();
        assert_eq!(dev.gpu_busy_percentage(), 0);
        let cycles = {
            let mut gpu = dev.gpu().lock();
            let c = gpu.params().clock_mhz as u64 * 1_000 * 50; // 50ms of work
            gpu.submit_workload(adreno_sim::CounterSet::ZERO, c, SimInstant::ZERO);
            c
        };
        let _ = cycles;
        dev.clock().advance_to(SimInstant::from_millis(100));
        let pct = dev.gpu_busy_percentage();
        assert!((45..=55).contains(&pct), "expected ~50% busy, got {pct}");
    }
}
