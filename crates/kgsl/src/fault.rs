//! Deterministic fault injection for the simulated device file.
//!
//! Real `/dev/kgsl-3d0` is not the quiet, always-on oracle the happy-path
//! pipeline assumes: ioctls get interrupted by signals, the GPU power-collapses
//! ("slumber") and loses its counter registers, drivers recover from hangs by
//! revoking every open context, and SELinux policy reloads flip access rules
//! mid-session. A [`FaultPlan`] describes such an environment — seeded
//! per-ioctl transient rates plus device-level events — and a
//! [`FaultInjector`] (installed via
//! [`KgslDevice::install_fault_plan`](crate::KgslDevice::install_fault_plan))
//! replays it **deterministically**: the same plan against the same call
//! sequence produces the same fault schedule, bit for bit.
//!
//! The event schedule is expanded eagerly at construction from the plan's
//! seed (exponential interarrivals over a fixed horizon), so two injectors
//! built from equal plans agree on *when* the device misbehaves regardless of
//! how callers interleave their ioctls.

use adreno_sim::time::{SimDuration, SimInstant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Errno;
use crate::policy::AccessPolicy;

/// A device-level fault event, delivered at a scheduled sim-time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The GPU power-collapses: live counter registers reset to zero and all
    /// outstanding perf-counter reservations are dropped, exactly as the real
    /// hardware forgets them across a slumber/resume cycle.
    Slumber,
    /// The driver tears down every open context (e.g. after recovering from a
    /// GPU hang): all file descriptors are revoked and subsequent calls on
    /// them return `EBADF`.
    RevokeFds,
    /// The access-control policy changes mid-session, as a security update or
    /// SELinux policy reload would.
    PolicyChange(AccessPolicy),
}

impl FaultEvent {
    /// Short symbolic name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultEvent::Slumber => "slumber",
            FaultEvent::RevokeFds => "revoke-fds",
            FaultEvent::PolicyChange(_) => "policy-change",
        }
    }
}

/// A reproducible description of how the device misbehaves.
///
/// Two kinds of fault are described:
///
/// * **Per-ioctl transients** — every `open`/`ioctl` independently fails with
///   `EBUSY` (probability [`transient_busy`](Self::transient_busy)) or
///   `EINTR` ([`transient_intr`](Self::transient_intr)). Draws come from the
///   plan's seed, so a fixed call sequence sees a fixed error sequence.
///   Block-reads can additionally be *truncated*
///   ([`truncated_read`](Self::truncated_read)): only a prefix of the
///   request entries is filled before the copy is "interrupted" and the call
///   fails `EINTR` — the ioctl analogue of a short `read(2)`.
/// * **Scheduled events** — [`FaultEvent`]s at concrete sim-times, either
///   listed explicitly via [`at`](Self::at) or generated from mean
///   interarrival times over [`horizon`](Self::horizon).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for both the transient draws and the generated event schedule.
    pub seed: u64,
    /// Per-call probability of a spurious `EBUSY`.
    pub transient_busy: f64,
    /// Per-call probability of a spurious `EINTR`.
    pub transient_intr: f64,
    /// Per-block-read probability that the read is truncated: a strict
    /// prefix of the request entries is filled, the rest is left untouched,
    /// and the call fails `EINTR`. Downstream consumers must treat the
    /// buffer as garbage — exactly the partial-frame discipline the wire
    /// layer's decoder applies to short datagrams.
    pub truncated_read: f64,
    /// Mean interarrival of [`FaultEvent::Slumber`] events (`None` = never).
    pub slumber_mean: Option<SimDuration>,
    /// Mean interarrival of [`FaultEvent::RevokeFds`] events (`None` = never).
    pub revoke_mean: Option<SimDuration>,
    /// Horizon over which rate-based events are generated.
    pub horizon: SimDuration,
    /// Explicitly scheduled events, merged with the generated ones.
    pub scheduled: Vec<(SimInstant, FaultEvent)>,
}

impl FaultPlan {
    /// A plan that injects nothing (rates zero, no events) — installing it is
    /// behaviourally identical to running without fault injection.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_busy: 0.0,
            transient_intr: 0.0,
            truncated_read: 0.0,
            slumber_mean: None,
            revoke_mean: None,
            horizon: SimDuration::from_millis(60_000),
            scheduled: Vec::new(),
        }
    }

    /// Sets the per-ioctl transient failure rates.
    pub fn with_transient_rates(mut self, busy: f64, intr: f64) -> Self {
        assert!((0.0..=1.0).contains(&busy) && (0.0..=1.0).contains(&intr));
        self.transient_busy = busy;
        self.transient_intr = intr;
        self
    }

    /// Sets the per-block-read truncation probability.
    pub fn with_truncated_reads(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.truncated_read = rate;
        self
    }

    /// Generates slumber events with the given mean interarrival time.
    pub fn with_slumber_every(mut self, mean: SimDuration) -> Self {
        self.slumber_mean = Some(mean);
        self
    }

    /// Generates fd-revocation events with the given mean interarrival time.
    pub fn with_revocation_every(mut self, mean: SimDuration) -> Self {
        self.revoke_mean = Some(mean);
        self
    }

    /// Sets the horizon over which rate-based events are generated.
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Schedules an explicit event at a fixed sim-time.
    pub fn at(mut self, when: SimInstant, event: FaultEvent) -> Self {
        self.scheduled.push((when, event));
        self
    }

    /// A one-knob plan for sweeps: `intensity` in `[0, 1]` scales everything.
    ///
    /// At 0 nothing is injected; at 1 roughly 30% of ioctls fail transiently
    /// and several slumber/revocation events land within `horizon`.
    pub fn with_intensity(seed: u64, intensity: f64, horizon: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&intensity));
        let mut plan = FaultPlan::new(seed).with_horizon(horizon);
        if intensity > 0.0 {
            plan.transient_busy = 0.18 * intensity;
            plan.transient_intr = 0.12 * intensity;
            plan.truncated_read = 0.06 * intensity;
            // Expected counts over the horizon: up to ~3 slumbers and ~1.5
            // revocations at full intensity.
            plan.slumber_mean = Some(horizon.mul_f64(1.0 / (3.0 * intensity)));
            plan.revoke_mean = Some(horizon.mul_f64(1.0 / (1.5 * intensity)));
        }
        plan
    }
}

/// Poisson-process schedule expansion: appends `event` at exponential
/// interarrivals with the given `mean`, truncated at `horizon`.
///
/// This is the scaffolding every seeded fault plan in the workspace shares:
/// [`FaultInjector`] expands slumber/revocation schedules with it, and the
/// wire layer's link plans reuse it for scheduled outages so device faults
/// and link faults follow the same deterministic idiom.
pub fn expand_poisson<E: Clone>(
    rng: &mut StdRng,
    schedule: &mut Vec<(SimInstant, E)>,
    mean: SimDuration,
    horizon: SimDuration,
    event: E,
) {
    let mut t = SimInstant::ZERO;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += mean.mul_f64(-u.ln());
        if t.saturating_since(SimInstant::ZERO) >= horizon {
            return;
        }
        schedule.push((t, event.clone()));
    }
}

/// Counts of every fault delivered so far, for tests and degradation reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultLog {
    /// Spurious `EBUSY` failures injected.
    pub transient_busy: u64,
    /// Spurious `EINTR` failures injected.
    pub transient_intr: u64,
    /// Truncated block-reads injected (partial fill + `EINTR`).
    pub truncated_reads: u64,
    /// Slumber events delivered.
    pub slumbers: u64,
    /// Fd-revocation events delivered.
    pub revocations: u64,
    /// Policy-change events delivered.
    pub policy_changes: u64,
}

impl FaultLog {
    /// Total number of faults of any kind.
    pub fn total(&self) -> u64 {
        self.transient_busy
            + self.transient_intr
            + self.truncated_reads
            + self.slumbers
            + self.revocations
            + self.policy_changes
    }
}

/// The runtime half: a concrete, sorted event schedule plus the transient RNG.
///
/// Built from a [`FaultPlan`] by
/// [`KgslDevice::install_fault_plan`](crate::KgslDevice::install_fault_plan);
/// the device consults it at every `open`/`ioctl` entry.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: StdRng,
    /// Sorted `(when, event)` pairs, consumed front to back.
    schedule: Vec<(SimInstant, FaultEvent)>,
    next: usize,
    transient_busy: f64,
    transient_intr: f64,
    truncated_read: f64,
    log: FaultLog,
}

impl FaultInjector {
    /// Expands `plan` into a concrete schedule. Deterministic: equal plans
    /// yield equal injectors.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut rng = StdRng::seed_from_u64(plan.seed ^ 0xFA17_1A7E_D0D0_CAFE);
        let mut schedule = plan.scheduled.clone();
        if let Some(mean) = plan.slumber_mean {
            expand_poisson(&mut rng, &mut schedule, mean, plan.horizon, FaultEvent::Slumber);
        }
        if let Some(mean) = plan.revoke_mean {
            expand_poisson(&mut rng, &mut schedule, mean, plan.horizon, FaultEvent::RevokeFds);
        }
        schedule.sort_by_key(|(when, _)| when.as_nanos());
        FaultInjector {
            rng,
            schedule,
            next: 0,
            transient_busy: plan.transient_busy,
            transient_intr: plan.transient_intr,
            truncated_read: plan.truncated_read,
            log: FaultLog::default(),
        }
    }

    /// Removes and returns every scheduled event due at or before `now`.
    pub fn due_events(&mut self, now: SimInstant) -> Vec<FaultEvent> {
        let mut due = Vec::new();
        while self.next < self.schedule.len() && self.schedule[self.next].0 <= now {
            let event = self.schedule[self.next].1.clone();
            match event {
                FaultEvent::Slumber => self.log.slumbers += 1,
                FaultEvent::RevokeFds => self.log.revocations += 1,
                FaultEvent::PolicyChange(_) => self.log.policy_changes += 1,
            }
            due.push(event);
            self.next += 1;
        }
        due
    }

    /// One per-call transient draw: `Some(EBUSY | EINTR)` or `None`.
    pub fn draw_transient(&mut self) -> Option<Errno> {
        if self.transient_busy <= 0.0 && self.transient_intr <= 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen();
        if u < self.transient_busy {
            self.log.transient_busy += 1;
            Some(Errno::Ebusy)
        } else if u < self.transient_busy + self.transient_intr {
            self.log.transient_intr += 1;
            Some(Errno::Eintr)
        } else {
            None
        }
    }

    /// One per-block-read truncation draw. `Some(k)` means only the first
    /// `k < entries` entries of the read get filled before the call fails
    /// `EINTR`; `None` means the read proceeds normally. A zero-rate plan
    /// never touches the RNG, so installing it is invisible to every other
    /// draw stream.
    pub fn draw_truncation(&mut self, entries: usize) -> Option<usize> {
        if self.truncated_read <= 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen();
        if u >= self.truncated_read {
            return None;
        }
        self.log.truncated_reads += 1;
        if entries == 0 {
            return Some(0);
        }
        Some(self.rng.gen_range(0..entries))
    }

    /// Scheduled events not yet delivered.
    pub fn pending_events(&self) -> &[(SimInstant, FaultEvent)] {
        &self.schedule[self.next..]
    }

    /// Everything delivered so far.
    pub fn log(&self) -> FaultLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_millis(s * 1000)
    }

    #[test]
    fn same_plan_same_schedule() {
        let plan = FaultPlan::new(7)
            .with_transient_rates(0.1, 0.05)
            .with_slumber_every(secs(2))
            .with_revocation_every(secs(5))
            .with_horizon(secs(20));
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        assert_eq!(a.pending_events(), b.pending_events());
        assert!(!a.pending_events().is_empty());

        // And the transient streams agree call for call.
        let (mut a, mut b) = (a, b);
        for _ in 0..256 {
            assert_eq!(a.draw_transient(), b.draw_transient());
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mk = |seed| {
            FaultInjector::new(
                &FaultPlan::new(seed).with_slumber_every(secs(1)).with_horizon(secs(30)),
            )
        };
        assert_ne!(mk(1).pending_events(), mk(2).pending_events());
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let mut inj = FaultInjector::new(&FaultPlan::new(3));
        assert!(inj.pending_events().is_empty());
        for _ in 0..64 {
            assert_eq!(inj.draw_transient(), None);
        }
        assert_eq!(inj.log().total(), 0);
    }

    #[test]
    fn schedule_is_sorted_and_respects_horizon() {
        let plan = FaultPlan::new(11)
            .with_slumber_every(secs(1))
            .with_revocation_every(secs(2))
            .with_horizon(secs(10))
            .at(SimInstant::from_millis(1500), FaultEvent::PolicyChange(AccessPolicy::DenyAll));
        let inj = FaultInjector::new(&plan);
        let events = inj.pending_events();
        for w in events.windows(2) {
            assert!(w[0].0 <= w[1].0, "schedule must be time-sorted");
        }
        // Generated events stay within the horizon; the explicit one is kept.
        for (when, event) in events {
            if matches!(event, FaultEvent::PolicyChange(_)) {
                assert_eq!(*when, SimInstant::from_millis(1500));
            } else {
                assert!(when.saturating_since(SimInstant::ZERO) < secs(10));
            }
        }
    }

    #[test]
    fn due_events_drain_in_order_and_are_logged() {
        let plan = FaultPlan::new(0)
            .at(SimInstant::from_millis(100), FaultEvent::Slumber)
            .at(SimInstant::from_millis(300), FaultEvent::RevokeFds);
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.due_events(SimInstant::from_millis(50)).is_empty());
        assert_eq!(inj.due_events(SimInstant::from_millis(200)), vec![FaultEvent::Slumber]);
        assert_eq!(inj.due_events(SimInstant::from_millis(400)), vec![FaultEvent::RevokeFds]);
        assert!(inj.due_events(SimInstant::from_millis(500)).is_empty());
        assert_eq!(inj.log().slumbers, 1);
        assert_eq!(inj.log().revocations, 1);
    }

    #[test]
    fn transient_rates_are_roughly_honoured() {
        let plan = FaultPlan::new(42).with_transient_rates(0.2, 0.1);
        let mut inj = FaultInjector::new(&plan);
        let (mut busy, mut intr, mut none) = (0u32, 0u32, 0u32);
        for _ in 0..10_000 {
            match inj.draw_transient() {
                Some(Errno::Ebusy) => busy += 1,
                Some(Errno::Eintr) => intr += 1,
                None => none += 1,
                other => panic!("unexpected transient {other:?}"),
            }
        }
        assert!((1500..=2500).contains(&busy), "EBUSY rate off: {busy}");
        assert!((700..=1300).contains(&intr), "EINTR rate off: {intr}");
        assert!(none > 6000);
        assert_eq!(inj.log().transient_busy, busy as u64);
        assert_eq!(inj.log().transient_intr, intr as u64);
    }

    #[test]
    fn truncation_draws_are_strict_prefixes_and_logged() {
        let plan = FaultPlan::new(5).with_truncated_reads(0.3);
        let mut inj = FaultInjector::new(&plan);
        let mut truncated = 0u32;
        for _ in 0..10_000 {
            if let Some(k) = inj.draw_truncation(11) {
                assert!(k < 11, "truncation must fill a strict prefix, got {k}");
                truncated += 1;
            }
        }
        assert!((2500..=3500).contains(&truncated), "truncation rate off: {truncated}");
        assert_eq!(inj.log().truncated_reads, truncated as u64);
        // Degenerate empty reads still count but fill nothing.
        assert!(matches!(inj.draw_truncation(0), None | Some(0)));
    }

    #[test]
    fn zero_truncation_rate_never_consumes_rng() {
        // Two injectors differing only in the (zero) truncation knob must
        // produce identical transient streams even when one of them is asked
        // for truncation draws in between.
        let plan = FaultPlan::new(21).with_transient_rates(0.2, 0.1);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for _ in 0..256 {
            assert_eq!(a.draw_truncation(8), None);
            assert_eq!(a.draw_transient(), b.draw_transient());
        }
    }

    #[test]
    fn intensity_zero_is_the_null_plan() {
        let plan = FaultPlan::with_intensity(9, 0.0, secs(10));
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.pending_events().is_empty());
        assert_eq!(inj.draw_transient(), None);
    }
}
