//! Access control on GPU performance counters — the §9.2 mitigation.
//!
//! The paper argues that coarse "root or nothing" RBAC (as on desktop
//! Nvidia) cannot work on Android, and proposes fine-grained role-based
//! access control enforced at the ioctl boundary via SELinux command
//! whitelisting: listed roles may read *global* counter values, every other
//! process may only observe its *own* local counter activity.

use std::collections::BTreeSet;
use std::fmt;

/// The SELinux domain (role) a process runs in.
///
/// Android assigns `untrusted_app` to everything installed from an app
/// store; system components and vendor profilers get privileged domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SelinuxDomain {
    /// Ordinary installed application — the attacker's domain.
    UntrustedApp,
    /// Preinstalled platform application.
    PlatformApp,
    /// System server processes.
    SystemServer,
    /// Vendor GPU profiling/debugging tooling (Snapdragon Profiler etc.).
    GpuProfiler,
    /// Shell/adb debugging domain.
    Shell,
}

impl SelinuxDomain {
    /// The SELinux context string, as `ps -Z` would print it.
    pub const fn context(self) -> &'static str {
        match self {
            SelinuxDomain::UntrustedApp => "u:r:untrusted_app:s0",
            SelinuxDomain::PlatformApp => "u:r:platform_app:s0",
            SelinuxDomain::SystemServer => "u:r:system_server:s0",
            SelinuxDomain::GpuProfiler => "u:r:gpu_profiler:s0",
            SelinuxDomain::Shell => "u:r:shell:s0",
        }
    }
}

impl fmt::Display for SelinuxDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.context())
    }
}

/// What a counter-read request is allowed to observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterVisibility {
    /// Global, device-wide counter values (the side channel).
    Global,
    /// Only the calling process's own contribution.
    LocalOnly,
    /// Nothing at all — the ioctl fails.
    Denied,
}

/// An access-control policy over performance-counter ioctls.
///
/// # Examples
///
/// ```
/// use kgsl::policy::{AccessPolicy, CounterVisibility, SelinuxDomain};
///
/// // Stock Android before the paper's disclosure: everyone sees everything.
/// let stock = AccessPolicy::Unrestricted;
/// assert_eq!(stock.visibility(SelinuxDomain::UntrustedApp), CounterVisibility::Global);
///
/// // The proposed fine-grained RBAC mitigation.
/// let rbac = AccessPolicy::role_based([SelinuxDomain::GpuProfiler]);
/// assert_eq!(rbac.visibility(SelinuxDomain::UntrustedApp), CounterVisibility::LocalOnly);
/// assert_eq!(rbac.visibility(SelinuxDomain::GpuProfiler), CounterVisibility::Global);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPolicy {
    /// Stock behaviour: any process may read global counters (the
    /// vulnerability the paper exploits).
    Unrestricted,
    /// Blunt mitigation: nobody may read any counter. Breaks profiling
    /// tools and run-time tuning (§9.2 explains why this is impractical).
    DenyAll,
    /// Fine-grained RBAC: allow-listed domains read global values, everyone
    /// else only their local activity.
    RoleBased {
        /// Domains with global visibility.
        allowed: BTreeSet<SelinuxDomain>,
    },
}

impl AccessPolicy {
    /// Convenience constructor for [`AccessPolicy::RoleBased`].
    pub fn role_based<I: IntoIterator<Item = SelinuxDomain>>(allowed: I) -> Self {
        AccessPolicy::RoleBased { allowed: allowed.into_iter().collect() }
    }

    /// What `domain` may observe under this policy.
    pub fn visibility(&self, domain: SelinuxDomain) -> CounterVisibility {
        match self {
            AccessPolicy::Unrestricted => CounterVisibility::Global,
            AccessPolicy::DenyAll => CounterVisibility::Denied,
            AccessPolicy::RoleBased { allowed } => {
                if allowed.contains(&domain) {
                    CounterVisibility::Global
                } else {
                    CounterVisibility::LocalOnly
                }
            }
        }
    }
}

impl Default for AccessPolicy {
    /// The default is the *vulnerable* stock configuration, because that is
    /// what shipped on every device the paper evaluated.
    fn default() -> Self {
        AccessPolicy::Unrestricted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_all_blocks_everyone() {
        for d in
            [SelinuxDomain::UntrustedApp, SelinuxDomain::PlatformApp, SelinuxDomain::GpuProfiler]
        {
            assert_eq!(AccessPolicy::DenyAll.visibility(d), CounterVisibility::Denied);
        }
    }

    #[test]
    fn rbac_distinguishes_roles() {
        let p = AccessPolicy::role_based([SelinuxDomain::GpuProfiler, SelinuxDomain::Shell]);
        assert_eq!(p.visibility(SelinuxDomain::GpuProfiler), CounterVisibility::Global);
        assert_eq!(p.visibility(SelinuxDomain::Shell), CounterVisibility::Global);
        assert_eq!(p.visibility(SelinuxDomain::UntrustedApp), CounterVisibility::LocalOnly);
        assert_eq!(p.visibility(SelinuxDomain::SystemServer), CounterVisibility::LocalOnly);
    }

    #[test]
    fn default_is_vulnerable_stock() {
        assert_eq!(AccessPolicy::default(), AccessPolicy::Unrestricted);
    }

    #[test]
    fn contexts_look_like_selinux() {
        assert!(SelinuxDomain::UntrustedApp.context().starts_with("u:r:"));
    }
}
