//! The `GL_AMD_performance_monitor` extension surface (§3.3).
//!
//! This is the *documented* way to touch Adreno performance counters from
//! userspace: enumerate groups, enumerate countables, read their string
//! identifiers, and run a monitor over a span of your own rendering. The
//! paper uses the enumeration half to discover the Table 1 counters — and
//! then abandons the extension, because a monitor only reports the *local*
//! counter activity of the calling application (\[28\] in the paper), which
//! for a background attacker is zero. The global values come from the raw
//! device file instead ([`crate::KgslDevice`]).

use adreno_sim::catalog;
use adreno_sim::counters::{CounterGroup, CounterId, CounterSet};
use adreno_sim::time::SimInstant;
use std::sync::Arc;

use crate::device::KgslDevice;

/// `glGetPerfMonitorGroupsAMD`: the available counter groups.
pub fn get_perf_monitor_groups() -> Vec<CounterGroup> {
    vec![CounterGroup::Vpc, CounterGroup::Ras, CounterGroup::Lrz]
}

/// `glGetPerfMonitorCountersAMD`: the countables of one group.
pub fn get_perf_monitor_counters(group: CounterGroup) -> Vec<CounterId> {
    (0..catalog::group_len(group)).map(|i| CounterId::new(group, i)).collect()
}

/// `glGetPerfMonitorGroupStringAMD`.
pub fn get_perf_monitor_group_string(group: CounterGroup) -> &'static str {
    catalog::group_name(group)
}

/// `glGetPerfMonitorCounterStringAMD`: the vendor name of a countable, or
/// `None` for a countable the group does not have.
pub fn get_perf_monitor_counter_string(id: CounterId) -> Option<&'static str> {
    catalog::countable_name(id)
}

/// A local performance monitor (`glBeginPerfMonitorAMD` /
/// `glEndPerfMonitorAMD`).
///
/// Real monitors report the GPU work submitted *by the calling context*
/// between begin and end. The attacking application renders nothing, so its
/// monitors always read zero — the §3.3 dead end that motivates the ioctl
/// path.
///
/// # Examples
///
/// ```
/// use android_ui::{SimConfig, UiSimulation};
/// use adreno_sim::time::SimInstant;
/// use kgsl::gles::PerfMonitor;
///
/// let mut sim = UiSimulation::new(SimConfig::default());
/// let mut monitor = PerfMonitor::begin(std::sync::Arc::clone(sim.device()));
/// sim.advance_to(SimInstant::from_millis(500)); // the victim renders…
/// let local = monitor.end();
/// assert!(local.is_zero(), "…but none of it is the monitor owner's work");
/// ```
#[derive(Debug)]
pub struct PerfMonitor {
    device: Arc<KgslDevice>,
    /// GPU work submitted by this context between begin and end. The
    /// simulation never attributes work to the attacking context, so this
    /// stays at zero; a victim-side profiler would accumulate here.
    local: CounterSet,
    started_at: SimInstant,
    ended: bool,
}

impl PerfMonitor {
    /// `glBeginPerfMonitorAMD`.
    pub fn begin(device: Arc<KgslDevice>) -> Self {
        let started_at = device.clock().now();
        PerfMonitor { device, local: CounterSet::ZERO, started_at, ended: false }
    }

    /// When the monitor started.
    pub fn started_at(&self) -> SimInstant {
        self.started_at
    }

    /// Attributes locally-rendered work to this monitor — what the GL
    /// driver does implicitly for every draw call the context makes. The
    /// attacking app never calls this; a profiler measuring its own
    /// rendering would.
    pub fn attribute_local_work(&mut self, work: CounterSet) {
        assert!(!self.ended, "monitor already ended");
        self.local += work;
    }

    /// `glEndPerfMonitorAMD` + `glGetPerfMonitorCounterDataAMD`: the local
    /// counter activity of this context over the monitored span.
    pub fn end(mut self) -> CounterSet {
        self.ended = true;
        let _ = self.device.clock().now(); // the driver stamps the end time
        self.local
    }
}

/// The §3.3 discovery procedure, verbatim: iterate every group and
/// countable, read its string identifier, and keep the ones whose names
/// mark them as overdraw-related (the LRZ/RAS/VPC counters of Table 1).
pub fn discover_overdraw_counters() -> Vec<CounterId> {
    let wanted = [
        "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ",
        "PERF_LRZ_FULL_8X8_TILES",
        "PERF_LRZ_PARTIAL_8X8_TILES",
        "PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ",
        "PERF_RAS_SUPERTILE_ACTIVE_CYCLES",
        "PERF_RAS_SUPER_TILES",
        "PERF_RAS_8X4_TILES",
        "PERF_RAS_FULLY_COVERED_8X4_TILES",
        "PERF_VPC_PC_PRIMITIVES",
        "PERF_VPC_SP_COMPONENTS",
        "PERF_VPC_LRZ_ASSIGN_PRIMITIVES",
    ];
    let mut out = Vec::new();
    for group in get_perf_monitor_groups() {
        for id in get_perf_monitor_counters(group) {
            if let Some(name) = get_perf_monitor_counter_string(id) {
                if wanted.contains(&name) {
                    out.push(id);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::ALL_TRACKED;

    #[test]
    fn discovery_finds_exactly_the_table1_counters() {
        let mut discovered = discover_overdraw_counters();
        let mut expected: Vec<CounterId> = ALL_TRACKED.iter().map(|c| c.id()).collect();
        discovered.sort_unstable();
        expected.sort_unstable();
        assert_eq!(discovered, expected);
    }

    #[test]
    fn every_group_enumerates_nonempty() {
        for group in get_perf_monitor_groups() {
            let counters = get_perf_monitor_counters(group);
            assert!(!counters.is_empty());
            assert!(!get_perf_monitor_group_string(group).is_empty());
            for id in counters {
                assert!(get_perf_monitor_counter_string(id).is_some());
            }
        }
    }

    #[test]
    fn profiler_sees_its_own_work_only() {
        use adreno_sim::counters::TrackedCounter;
        use adreno_sim::{Gpu, GpuModel, SharedClock};
        use parking_lot::Mutex;

        let gpu = Arc::new(Mutex::new(Gpu::new(GpuModel::Adreno650)));
        let device = Arc::new(KgslDevice::new(gpu, SharedClock::new()));
        let mut mon = PerfMonitor::begin(Arc::clone(&device));
        let mut own = CounterSet::ZERO;
        own[TrackedCounter::VpcPcPrimitives] = 42;
        mon.attribute_local_work(own);
        assert_eq!(mon.end()[TrackedCounter::VpcPcPrimitives], 42);
    }
}
