//! # kgsl — simulated Kernel Graphics Support Layer
//!
//! The OS-boundary substrate of the reproduction: a software model of
//! Qualcomm's `/dev/kgsl-3d0` device file, which is the interface the
//! attack uses to read **global** GPU performance counters from an
//! unprivileged Android app (§4 of the paper).
//!
//! The crate provides:
//!
//! * [`abi`] — the `msm_kgsl.h` request codes and struct layouts (Fig 9);
//! * [`device::KgslDevice`] — `open`/`ioctl`/`close` semantics with the real
//!   driver's validation rules (reservation before read, `EINVAL`/`EBUSY`/
//!   `EBADF` paths) plus the `gpu_busy_percentage` sysfs endpoint;
//! * [`policy`] — the §9.2 mitigation: SELinux-style role-based access
//!   control over counter visibility;
//! * [`obfuscate`] — the §9.3 mitigation: random decoy GPU workloads;
//! * [`fault`] — deterministic fault injection (transient `EBUSY`/`EINTR`,
//!   GPU slumber, fd revocation, mid-session policy flips) for robustness
//!   testing of everything built on the device.
//!
//! ```
//! use std::sync::Arc;
//! use adreno_sim::{Gpu, GpuModel, SharedClock};
//! use kgsl::abi::*;
//! use kgsl::{KgslDevice, SelinuxDomain};
//! use parking_lot::Mutex;
//!
//! # fn main() -> Result<(), kgsl::Errno> {
//! let gpu = Arc::new(Mutex::new(Gpu::new(GpuModel::Adreno650)));
//! let dev = KgslDevice::new(gpu, SharedClock::new());
//! // Any app may open the device file and reserve a counter...
//! let fd = dev.open(4242, SelinuxDomain::UntrustedApp)?;
//! let mut get = KgslPerfcounterGet {
//!     groupid: KGSL_PERFCOUNTER_GROUP_LRZ,
//!     countable: 14,
//!     ..Default::default()
//! };
//! dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get))?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod abi;
pub mod device;
pub mod error;
pub mod fault;
pub mod gles;
pub mod obfuscate;
pub mod policy;

pub use device::{KgslDevice, KgslFd};
pub use error::{DeviceResult, Errno};
pub use fault::{expand_poisson, FaultEvent, FaultLog, FaultPlan};
pub use obfuscate::{ObfuscationConfig, Obfuscator};
pub use policy::{AccessPolicy, CounterVisibility, SelinuxDomain};
