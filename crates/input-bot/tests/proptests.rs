//! Property-based tests of the input bot's invariants.

use adreno_sim::time::SimInstant;
use android_ui::events::UiEvent;
use input_bot::corpus::{class_of, generate, CredentialKind};
use input_bot::script::{practical_session, SessionConfig, Typist};
use input_bot::timing::{SpeedClass, VOLUNTEERS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_volunteer() -> impl Strategy<Value = usize> {
    0..VOLUNTEERS.len()
}

fn check_down_up_discipline(events: &[android_ui::TimedEvent]) -> Result<(), TestCaseError> {
    let mut sorted = events.to_vec();
    sorted.sort_by_key(|e| e.at);
    let mut held: Option<android_ui::Key> = None;
    let mut downs = Vec::new();
    for e in &sorted {
        match e.event {
            UiEvent::KeyDown(k) => {
                prop_assert!(held.is_none(), "one-finger typing never overlaps taps");
                held = Some(k);
                downs.push(e.at);
            }
            UiEvent::KeyUp(k) => {
                prop_assert_eq!(held.take(), Some(k), "up must match the held key");
            }
            _ => {}
        }
    }
    prop_assert!(held.is_none(), "every press is released");
    for w in downs.windows(2) {
        prop_assert!(
            (w[1] - w[0]).as_millis() >= 75,
            "press spacing must respect the human minimum"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn typed_text_has_clean_tap_discipline(
        text in "[a-zA-Z0-9;:!?]{1,20}",
        v in arb_volunteer(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut typist = Typist::new(VOLUNTEERS[v]);
        let plan = typist.type_text(&text, SimInstant::from_millis(100), &mut rng);
        check_down_up_discipline(&plan.events)?;
        // Every character requires exactly one Char/Space tap.
        let char_taps = plan
            .events
            .iter()
            .filter(|e| matches!(e.event, UiEvent::KeyDown(android_ui::Key::Char(_) | android_ui::Key::Space)))
            .count();
        prop_assert_eq!(char_taps, text.chars().count());
    }

    #[test]
    fn speed_constrained_typing_stays_in_class(
        text in "[a-z]{4,12}",
        class in prop::sample::select(vec![SpeedClass::Fast, SpeedClass::Medium, SpeedClass::Slow]),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut typist = Typist::with_speed(VOLUNTEERS[1], class);
        let plan = typist.type_text(&text, SimInstant::from_millis(100), &mut rng);
        let downs: Vec<_> = plan
            .events
            .iter()
            .filter(|e| matches!(e.event, UiEvent::KeyDown(_)))
            .map(|e| e.at)
            .collect();
        let (lo, hi) = class.interval_range();
        for w in downs.windows(2) {
            let gap = (w[1] - w[0]).as_secs_f64();
            // The anti-rollover clamp may stretch a short sampled gap.
            prop_assert!(gap >= lo - 1e-9, "gap {gap} under class floor {lo}");
            prop_assert!(gap <= hi + 0.35, "gap {gap} far above class ceiling {hi}");
        }
    }

    #[test]
    fn practical_sessions_balance_switches_and_keys(
        text in "[a-z0-9]{4,14}",
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut typist = Typist::new(VOLUNTEERS[seed as usize % VOLUNTEERS.len()]);
        let cfg = SessionConfig { correction_prob: 0.2, switch_prob: 0.2, shade_prob: 0.1, away_secs_mean: 1.0 };
        let plan = practical_session(&mut typist, &text, SimInstant::from_millis(500), &cfg, &mut rng);
        let aways = plan.events.iter().filter(|e| matches!(e.event, UiEvent::SwitchAway)).count();
        let backs = plan.events.iter().filter(|e| matches!(e.event, UiEvent::SwitchBack)).count();
        prop_assert_eq!(aways, backs);
        // Corrections add a wrong char + a backspace per correction: chars
        // typed ≥ text length, backspaces = extras.
        let chars = plan
            .events
            .iter()
            .filter(|e| matches!(e.event, UiEvent::KeyDown(android_ui::Key::Char(_))))
            .count();
        let backspaces = plan
            .events
            .iter()
            .filter(|e| matches!(e.event, UiEvent::KeyDown(android_ui::Key::Backspace)))
            .count();
        prop_assert_eq!(chars, text.chars().count() + backspaces);
    }

    #[test]
    fn generated_credentials_match_their_class(
        kind in prop::sample::select(vec![
            CredentialKind::Username,
            CredentialKind::Password,
            CredentialKind::LowerOnly,
            CredentialKind::UpperOnly,
            CredentialKind::NumberOnly,
            CredentialKind::SymbolOnly,
        ]),
        len in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = generate(&mut rng, kind, len);
        prop_assert_eq!(s.chars().count(), len);
        for c in s.chars() {
            prop_assert!(class_of(c).is_some(), "{c:?} must be a classified keyboard char");
        }
    }
}
