//! Human typing-timing models (Fig 16).
//!
//! The paper collects key-press *durations* (down→up) and *intervals*
//! (press→press) from five student volunteers typing random 8–16 character
//! strings, then replays those distributions when emulating inputs. This
//! module reproduces the five volunteer profiles and the §7.2 speed classes
//! (fast < 0.24 s, medium 0.24–0.4 s, slow > 0.4 s between presses).

use adreno_sim::time::SimDuration;
use rand::Rng;
use std::fmt;

/// A volunteer's typing profile: normal distributions over press duration
/// and inter-press interval, truncated to plausible human ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolunteerModel {
    /// Volunteer index (1-based, matching Fig 16's legend).
    pub id: u8,
    /// Mean key-press duration in seconds.
    pub duration_mean: f64,
    /// Standard deviation of the duration.
    pub duration_std: f64,
    /// Mean interval between consecutive key presses in seconds.
    pub interval_mean: f64,
    /// Standard deviation of the interval.
    pub interval_std: f64,
}

/// The five volunteers of Fig 16. Profiles are fitted by eye to the figure:
/// durations cluster in 0.05–0.25 s, intervals spread 0.1–1.0 s, with
/// noticeable heterogeneity across volunteers.
pub const VOLUNTEERS: [VolunteerModel; 5] = [
    VolunteerModel {
        id: 1,
        duration_mean: 0.08,
        duration_std: 0.020,
        interval_mean: 0.22,
        interval_std: 0.06,
    },
    VolunteerModel {
        id: 2,
        duration_mean: 0.12,
        duration_std: 0.030,
        interval_mean: 0.30,
        interval_std: 0.10,
    },
    VolunteerModel {
        id: 3,
        duration_mean: 0.10,
        duration_std: 0.025,
        interval_mean: 0.45,
        interval_std: 0.15,
    },
    VolunteerModel {
        id: 4,
        duration_mean: 0.15,
        duration_std: 0.040,
        interval_mean: 0.28,
        interval_std: 0.08,
    },
    VolunteerModel {
        id: 5,
        duration_mean: 0.09,
        duration_std: 0.020,
        interval_mean: 0.60,
        interval_std: 0.20,
    },
];

/// Shortest physiologically plausible press duration.
const MIN_DURATION_S: f64 = 0.04;
/// Longest press duration before it would register as a long-press.
const MAX_DURATION_S: f64 = 0.30;
/// Shortest interval between two presses of a human typist. The paper's
/// duplication filter assumes ≥ 75 ms (§5.1, citing keystroke-dynamics
/// work); humans are modelled never to beat 90 ms.
const MIN_INTERVAL_S: f64 = 0.09;
/// Longest interval we sample (a pause, not a walk-away).
const MAX_INTERVAL_S: f64 = 1.6;

/// Typing speed classes of §7.2, defined by the interval between presses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpeedClass {
    /// Interval < 0.24 s.
    Fast,
    /// Interval 0.24–0.4 s.
    Medium,
    /// Interval > 0.4 s.
    Slow,
}

impl SpeedClass {
    /// The inclusive interval range (seconds) of this class.
    pub const fn interval_range(self) -> (f64, f64) {
        match self {
            SpeedClass::Fast => (MIN_INTERVAL_S, 0.24),
            SpeedClass::Medium => (0.24, 0.40),
            SpeedClass::Slow => (0.40, MAX_INTERVAL_S),
        }
    }

    /// Classifies an interval.
    pub fn of_interval(seconds: f64) -> SpeedClass {
        if seconds < 0.24 {
            SpeedClass::Fast
        } else if seconds <= 0.40 {
            SpeedClass::Medium
        } else {
            SpeedClass::Slow
        }
    }

    /// Name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            SpeedClass::Fast => "fast",
            SpeedClass::Medium => "medium",
            SpeedClass::Slow => "slow",
        }
    }
}

impl fmt::Display for SpeedClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Samples a normal variate via Box–Muller (keeps us off external distr
/// crates).
fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

impl VolunteerModel {
    /// Samples one key-press duration.
    pub fn sample_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let s = normal(rng, self.duration_mean, self.duration_std)
            .clamp(MIN_DURATION_S, MAX_DURATION_S);
        SimDuration::from_secs_f64(s)
    }

    /// Samples one press-to-press interval.
    pub fn sample_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let s = normal(rng, self.interval_mean, self.interval_std)
            .clamp(MIN_INTERVAL_S, MAX_INTERVAL_S);
        SimDuration::from_secs_f64(s)
    }

    /// Samples an interval constrained to a §7.2 speed class (the paper
    /// splits the collected presses into three equal parts by interval).
    pub fn sample_interval_in_class<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: SpeedClass,
    ) -> SimDuration {
        let (lo, hi) = class.interval_range();
        // Rejection-sample from the volunteer's own distribution, falling
        // back to uniform within the class if the volunteer rarely types at
        // that speed.
        for _ in 0..32 {
            let s = normal(rng, self.interval_mean, self.interval_std);
            if s >= lo && s <= hi {
                return SimDuration::from_secs_f64(s);
            }
        }
        SimDuration::from_secs_f64(rng.gen_range(lo..hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn durations_stay_in_human_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for v in VOLUNTEERS {
            for _ in 0..500 {
                let d = v.sample_duration(&mut rng).as_secs_f64();
                assert!((MIN_DURATION_S..=MAX_DURATION_S).contains(&d));
            }
        }
    }

    #[test]
    fn intervals_never_beat_the_duplication_window() {
        // §5.1 relies on real presses being ≥ 75 ms apart.
        let mut rng = StdRng::seed_from_u64(2);
        for v in VOLUNTEERS {
            for _ in 0..500 {
                assert!(v.sample_interval(&mut rng).as_millis() >= 75);
            }
        }
    }

    #[test]
    fn volunteers_are_heterogeneous() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = |v: &VolunteerModel, rng: &mut StdRng| {
            (0..300).map(|_| v.sample_interval(rng).as_secs_f64()).sum::<f64>() / 300.0
        };
        let m1 = mean(&VOLUNTEERS[0], &mut rng);
        let m5 = mean(&VOLUNTEERS[4], &mut rng);
        assert!(m5 > m1 + 0.2, "volunteer 5 must be visibly slower than volunteer 1");
    }

    #[test]
    fn class_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for class in [SpeedClass::Fast, SpeedClass::Medium, SpeedClass::Slow] {
            let (lo, hi) = class.interval_range();
            for v in VOLUNTEERS {
                for _ in 0..100 {
                    let s = v.sample_interval_in_class(&mut rng, class).as_secs_f64();
                    assert!(s >= lo - 1e-9 && s <= hi + 1e-9, "{class}: {s} outside [{lo}, {hi}]");
                }
            }
        }
    }

    #[test]
    fn classification_matches_paper_cuts() {
        assert_eq!(SpeedClass::of_interval(0.1), SpeedClass::Fast);
        assert_eq!(SpeedClass::of_interval(0.3), SpeedClass::Medium);
        assert_eq!(SpeedClass::of_interval(0.5), SpeedClass::Slow);
    }
}
