//! Random credential corpora.
//!
//! The paper evaluates 300 random texts per length (8–16), drawn from the
//! keyboard's character set. Usernames skew alphanumeric; passwords mix all
//! four character classes.

use rand::Rng;

/// Character classes available on the keyboard, matching Fig 17(c)'s
/// grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CharClass {
    Lower,
    Upper,
    Number,
    Symbol,
}

/// The printable characters of each class (the Fig 18 character set).
pub fn class_chars(class: CharClass) -> &'static str {
    match class {
        CharClass::Lower => "abcdefghijklmnopqrstuvwxyz",
        CharClass::Upper => "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
        CharClass::Number => "1234567890",
        CharClass::Symbol => ",.@#$&-+()/*\"':;!?",
    }
}

/// Classifies a character (None for space and unsupported characters).
pub fn class_of(c: char) -> Option<CharClass> {
    if c.is_ascii_lowercase() {
        Some(CharClass::Lower)
    } else if c.is_ascii_uppercase() {
        Some(CharClass::Upper)
    } else if c.is_ascii_digit() {
        Some(CharClass::Number)
    } else if class_chars(CharClass::Symbol).contains(c) {
        Some(CharClass::Symbol)
    } else {
        None
    }
}

/// What kind of credential to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CredentialKind {
    /// Lowercase letters and digits (typical login username).
    Username,
    /// All four character classes (typical password).
    Password,
    /// Lowercase only (the "lower" group of Fig 17c / Fig 21c).
    LowerOnly,
    /// Uppercase only.
    UpperOnly,
    /// Digits only.
    NumberOnly,
    /// Symbols only.
    SymbolOnly,
}

impl CredentialKind {
    fn alphabet(self) -> String {
        use CharClass::*;
        match self {
            CredentialKind::Username => format!("{}{}", class_chars(Lower), class_chars(Number)),
            CredentialKind::Password => format!(
                "{}{}{}{}",
                class_chars(Lower),
                class_chars(Upper),
                class_chars(Number),
                class_chars(Symbol)
            ),
            CredentialKind::LowerOnly => class_chars(Lower).to_owned(),
            CredentialKind::UpperOnly => class_chars(Upper).to_owned(),
            CredentialKind::NumberOnly => class_chars(Number).to_owned(),
            CredentialKind::SymbolOnly => class_chars(Symbol).to_owned(),
        }
    }
}

/// Generates one random credential of exactly `len` characters.
///
/// # Examples
///
/// ```
/// use input_bot::corpus::{generate, CredentialKind};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let cred = generate(&mut rng, CredentialKind::Password, 12);
/// assert_eq!(cred.chars().count(), 12);
/// ```
pub fn generate<R: Rng + ?Sized>(rng: &mut R, kind: CredentialKind, len: usize) -> String {
    let alphabet: Vec<char> = kind.alphabet().chars().collect();
    (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
}

/// Generates one credential with a length drawn uniformly from
/// `min_len..=max_len` (the paper uses 8–16).
///
/// # Panics
///
/// Panics if `min_len > max_len` or `min_len == 0`.
pub fn generate_ranged<R: Rng + ?Sized>(
    rng: &mut R,
    kind: CredentialKind,
    min_len: usize,
    max_len: usize,
) -> String {
    assert!(min_len > 0 && min_len <= max_len, "invalid length range");
    let len = rng.gen_range(min_len..=max_len);
    generate(rng, kind, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lengths_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in 8..=16 {
            assert_eq!(generate(&mut rng, CredentialKind::Password, len).chars().count(), len);
        }
    }

    #[test]
    fn usernames_are_alphanumeric() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let u = generate(&mut rng, CredentialKind::Username, 12);
            assert!(u.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{u}");
        }
    }

    #[test]
    fn passwords_eventually_use_all_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            for c in generate(&mut rng, CredentialKind::Password, 16).chars() {
                seen.insert(class_of(c).expect("generated char must classify"));
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn class_of_is_total_on_generated_chars() {
        assert_eq!(class_of('a'), Some(CharClass::Lower));
        assert_eq!(class_of('Z'), Some(CharClass::Upper));
        assert_eq!(class_of('5'), Some(CharClass::Number));
        assert_eq!(class_of(';'), Some(CharClass::Symbol));
        assert_eq!(class_of(' '), None);
        assert_eq!(class_of('€'), None);
    }

    #[test]
    fn ranged_lengths_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let len = generate_ranged(&mut rng, CredentialKind::Username, 8, 16).chars().count();
            assert!((8..=16).contains(&len));
        }
    }

    #[test]
    #[should_panic(expected = "invalid length range")]
    fn zero_length_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = generate_ranged(&mut rng, CredentialKind::Username, 0, 4);
    }
}
