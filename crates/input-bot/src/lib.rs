//! # input-bot — the offline-phase input bot and human typing models
//!
//! The paper's offline phase drives a bot through the Android input stack to
//! emulate every key press and collect training data (§6); its evaluation
//! replays the key-press durations and intervals of five human volunteers
//! (Fig 16). This crate reproduces both:
//!
//! * [`timing`] — volunteer duration/interval distributions and the §7.2
//!   speed classes;
//! * [`corpus`] — random credential generation (length 8–16, per-class);
//! * [`script`] — converting texts into timed key events with page-switch
//!   handling, corrections, app switches and the other §8 behaviours.
//!
//! ```
//! use adreno_sim::time::SimInstant;
//! use input_bot::corpus::{generate, CredentialKind};
//! use input_bot::script::Typist;
//! use input_bot::timing::VOLUNTEERS;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let password = generate(&mut rng, CredentialKind::Password, 10);
//! let mut typist = Typist::new(VOLUNTEERS[2]);
//! let plan = typist.type_text(&password, SimInstant::from_millis(300), &mut rng);
//! assert!(!plan.events.is_empty());
//! ```

pub mod corpus;
pub mod script;
pub mod timing;

pub use corpus::{generate, generate_ranged, CharClass, CredentialKind};
pub use script::{calibration_taps, practical_session, Plan, SessionConfig, Typist};
pub use timing::{SpeedClass, VolunteerModel, VOLUNTEERS};
