//! Scripted input sessions.
//!
//! This is the reproduction of the paper's bot program (§6): it converts
//! texts into timed key-down/key-up event streams, handling keyboard page
//! switches, human timing, input corrections, app switches and the other
//! user behaviours of the practical experiments (§8, Fig 27).

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::events::{TimedEvent, UiEvent};
use android_ui::keyboard::{keys_to_reach, page_after, page_of, Key, Page};
use rand::Rng;

use crate::timing::{SpeedClass, VolunteerModel};

/// A planned event stream plus the instant the plan finishes.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    pub events: Vec<TimedEvent>,
    pub end: SimInstant,
}

impl Plan {
    fn push(&mut self, at: SimInstant, event: UiEvent) {
        self.events.push(TimedEvent::new(at, event));
        if at > self.end {
            self.end = at;
        }
    }

    /// Merges another plan's events (the result is unsorted; the simulation
    /// queue orders by time).
    pub fn extend(&mut self, other: Plan) {
        self.events.extend(other.events);
        if other.end > self.end {
            self.end = other.end;
        }
    }
}

/// A typist: tracks the keyboard page and produces tap streams with a
/// volunteer's timing.
///
/// # Examples
///
/// ```
/// use adreno_sim::time::SimInstant;
/// use input_bot::script::Typist;
/// use input_bot::timing::VOLUNTEERS;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut typist = Typist::new(VOLUNTEERS[0]);
/// let plan = typist.type_text("Pa5s", SimInstant::from_millis(500), &mut rng);
/// // 4 chars + page switches (→Upper, →Lower, →Number, →Lower) ≥ 8 taps.
/// assert!(plan.events.len() >= 16, "each tap is a down+up pair");
/// ```
#[derive(Debug, Clone)]
pub struct Typist {
    volunteer: VolunteerModel,
    speed: Option<SpeedClass>,
    page: Page,
}

impl Typist {
    /// A typist with a volunteer's natural timing, starting on the
    /// lowercase page.
    pub fn new(volunteer: VolunteerModel) -> Self {
        Typist { volunteer, speed: None, page: Page::Lower }
    }

    /// Constrains all intervals to a §7.2 speed class.
    pub fn with_speed(volunteer: VolunteerModel, speed: SpeedClass) -> Self {
        Typist { volunteer, speed: Some(speed), page: Page::Lower }
    }

    /// The page the typist believes the keyboard shows.
    pub fn page(&self) -> Page {
        self.page
    }

    fn interval<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match self.speed {
            Some(class) => self.volunteer.sample_interval_in_class(rng, class),
            None => self.volunteer.sample_interval(rng),
        }
    }

    fn tap<R: Rng + ?Sized>(
        &mut self,
        plan: &mut Plan,
        at: SimInstant,
        key: Key,
        rng: &mut R,
    ) -> SimInstant {
        let duration = self.volunteer.sample_duration(rng);
        plan.push(at, UiEvent::KeyDown(key));
        plan.push(at + duration, UiEvent::KeyUp(key));
        self.page = page_after(self.page, key);
        // The next press never lands before this key is released: one-finger
        // typing has no rollover (Fig 16's interval/duration scatter shows
        // intervals exceeding durations).
        let gap = self.interval(rng);
        let min_gap = duration + SimDuration::from_millis(40);
        at + if gap > min_gap { gap } else { min_gap }
    }

    /// Plans typing `text` starting at `start`, inserting page-switch taps
    /// as needed. Characters outside the keyboard's set are skipped.
    pub fn type_text<R: Rng + ?Sized>(
        &mut self,
        text: &str,
        start: SimInstant,
        rng: &mut R,
    ) -> Plan {
        let mut plan = Plan::default();
        let mut at = start;
        for c in text.chars() {
            let Some(target_page) = page_of(c) else { continue };
            for key in keys_to_reach(self.page, target_page) {
                at = self.tap(&mut plan, at, key, rng);
            }
            let key = if c == ' ' { Key::Space } else { Key::Char(c) };
            at = self.tap(&mut plan, at, key, rng);
        }
        plan.end = at;
        plan
    }

    /// Plans `n` backspace taps starting at `start`.
    pub fn backspaces<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        start: SimInstant,
        rng: &mut R,
    ) -> Plan {
        let mut plan = Plan::default();
        let mut at = start;
        for _ in 0..n {
            at = self.tap(&mut plan, at, Key::Backspace, rng);
        }
        plan.end = at;
        plan
    }
}

/// Deterministic calibration taps for the offline phase: every character in
/// `chars`, `reps` times each, spaced far apart, with fixed press duration —
/// the §6 bot collecting training data.
pub fn calibration_taps<I: IntoIterator<Item = char>>(
    chars: I,
    reps: usize,
    start: SimInstant,
) -> Plan {
    const DURATION: SimDuration = SimDuration::from_millis(100);
    let mut plan = Plan::default();
    let mut page = Page::Lower;
    let mut at = start;
    let mut tap_idx: u64 = 0;
    // Deterministic but *dephased* spacing: a cadence that is an exact
    // multiple of the read interval and the frame interval would put every
    // repetition at the same sampling phase, so a split read would corrupt
    // every sample of a key identically. Varying the spacing by a few
    // primes guarantees different phases across repetitions.
    let spacing = |idx: u64| SimDuration::from_millis(391 + 17 * (idx % 5));
    let mut tap = |plan: &mut Plan, at: SimInstant, key: Key, page: &mut Page| -> SimInstant {
        plan.push(at, UiEvent::KeyDown(key));
        plan.push(at + DURATION, UiEvent::KeyUp(key));
        *page = page_after(*page, key);
        tap_idx += 1;
        at + spacing(tap_idx)
    };
    for c in chars {
        let Some(target) = page_of(c) else { continue };
        for _ in 0..reps {
            for key in keys_to_reach(page, target) {
                at = tap(&mut plan, at, key, &mut page);
            }
            let key = if c == ' ' { Key::Space } else { Key::Char(c) };
            at = tap(&mut plan, at, key, &mut page);
        }
    }
    plan.end = at;
    plan
}

/// Behavioural parameters of a practical usage session (§8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Per-character probability of typing a wrong character and deleting
    /// it with backspace before continuing.
    pub correction_prob: f64,
    /// Per-character probability of switching to another app mid-input,
    /// using it briefly, and switching back.
    pub switch_prob: f64,
    /// Per-character probability of pulling down the notification shade.
    pub shade_prob: f64,
    /// How long the user stays in the other app, mean seconds.
    pub away_secs_mean: f64,
}

impl Default for SessionConfig {
    /// Rates tuned to resemble the Fig 27 event traces: a handful of
    /// corrections and switches per 3-minute session.
    fn default() -> Self {
        SessionConfig {
            correction_prob: 0.06,
            switch_prob: 0.03,
            shade_prob: 0.02,
            away_secs_mean: 4.0,
        }
    }
}

/// Plans a practical session: the volunteer types `text` into the target
/// app while occasionally correcting mistakes, checking notifications and
/// hopping to other apps (Fig 27/28).
pub fn practical_session<R: Rng + ?Sized>(
    typist: &mut Typist,
    text: &str,
    start: SimInstant,
    cfg: &SessionConfig,
    rng: &mut R,
) -> Plan {
    let mut plan = Plan::default();
    let mut at = start;
    for c in text.chars() {
        // Possible detour before this character.
        if rng.gen::<f64>() < cfg.switch_prob {
            plan.push(at, UiEvent::SwitchAway);
            let away = SimDuration::from_secs_f64(rng.gen_range(0.5..cfg.away_secs_mean * 2.0));
            let mut t = at + SimDuration::from_millis(400);
            while t < at + away {
                plan.push(t, UiEvent::OtherAppActivity);
                t += SimDuration::from_secs_f64(rng.gen_range(0.3..1.0));
            }
            plan.push(at + away, UiEvent::SwitchBack);
            at = at + away + SimDuration::from_millis(600);
        }
        if rng.gen::<f64>() < cfg.shade_prob {
            plan.push(at, UiEvent::ViewNotificationShade);
            at += SimDuration::from_secs_f64(rng.gen_range(0.8..2.0));
        }
        // A typo: wrong character, then backspace, then the intended one.
        if rng.gen::<f64>() < cfg.correction_prob {
            if let Some(page) = page_of(c) {
                let wrong = wrong_char_on(page, c, rng);
                let p = typist.type_text(&wrong.to_string(), at, rng);
                at = p.end;
                plan.extend(p);
                let p = typist.backspaces(1, at, rng);
                at = p.end;
                plan.extend(p);
            }
        }
        let p = typist.type_text(&c.to_string(), at, rng);
        at = p.end;
        plan.extend(p);
    }
    plan.end = at;
    plan
}

/// Picks a different character on the same page (so the typo needs no page
/// switch, like real fat-finger errors).
fn wrong_char_on<R: Rng + ?Sized>(page: Page, not: char, rng: &mut R) -> char {
    let pool: &str = match page {
        Page::Lower => "abcdefghijklmnopqrstuvwxyz",
        Page::Upper => "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
        Page::Number => "1234567890",
    };
    let chars: Vec<char> = pool.chars().filter(|&c| c != not).collect();
    chars[rng.gen_range(0..chars.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::VOLUNTEERS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lowercase_needs_no_page_switch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Typist::new(VOLUNTEERS[0]);
        let plan = t.type_text("abc", SimInstant::ZERO, &mut rng);
        assert_eq!(plan.events.len(), 6, "3 taps, no page keys");
        assert_eq!(t.page(), Page::Lower);
    }

    #[test]
    fn page_switches_are_inserted() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = Typist::new(VOLUNTEERS[0]);
        let plan = t.type_text("a7B", SimInstant::ZERO, &mut rng);
        // a(1), ?123(1)+7(1), ?123→Lower? Number→Upper = PageSwitch+Shift(2)+B(1) = 6 taps.
        assert_eq!(plan.events.len(), 12);
        assert_eq!(t.page(), Page::Upper);
        // Events are down/up pairs with down before up.
        let mut downs = 0;
        for e in &plan.events {
            match e.event {
                UiEvent::KeyDown(_) => downs += 1,
                UiEvent::KeyUp(_) => downs -= 1,
                _ => {}
            }
        }
        assert_eq!(downs, 0);
    }

    #[test]
    fn events_are_time_ordered_per_key() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = Typist::new(VOLUNTEERS[2]);
        let plan = t.type_text("hello7World", SimInstant::from_millis(100), &mut rng);
        let mut sorted = plan.events.clone();
        sorted.sort_by_key(|e| e.at);
        // All downs precede their ups and intervals respect the human
        // minimum between consecutive downs.
        let downs: Vec<_> = sorted
            .iter()
            .filter(|e| matches!(e.event, UiEvent::KeyDown(_)))
            .map(|e| e.at)
            .collect();
        for w in downs.windows(2) {
            assert!((w[1] - w[0]).as_millis() >= 75, "human presses must be ≥75ms apart");
        }
    }

    #[test]
    fn speed_classes_constrain_intervals() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = Typist::with_speed(VOLUNTEERS[1], SpeedClass::Slow);
        let plan = t.type_text("abcdefgh", SimInstant::ZERO, &mut rng);
        let downs: Vec<_> = plan
            .events
            .iter()
            .filter(|e| matches!(e.event, UiEvent::KeyDown(_)))
            .map(|e| e.at)
            .collect();
        for w in downs.windows(2) {
            assert!((w[1] - w[0]).as_secs_f64() >= 0.4, "slow class must type slowly");
        }
    }

    #[test]
    fn calibration_covers_charset_deterministically() {
        let a = calibration_taps("ab7".chars(), 2, SimInstant::ZERO);
        let b = calibration_taps("ab7".chars(), 2, SimInstant::ZERO);
        assert_eq!(a.events, b.events);
        // a×2, b×2, ?123, 7, 7 → 7 taps... plus page key only once.
        let taps = a.events.len() / 2;
        assert_eq!(taps, 7);
    }

    #[test]
    fn practical_session_contains_detours() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Typist::new(VOLUNTEERS[0]);
        let cfg = SessionConfig {
            correction_prob: 0.5,
            switch_prob: 0.5,
            shade_prob: 0.3,
            away_secs_mean: 1.0,
        };
        let plan =
            practical_session(&mut t, "abcdef", SimInstant::from_millis(200), &cfg, &mut rng);
        let has = |f: &dyn Fn(&UiEvent) -> bool| plan.events.iter().any(|e| f(&e.event));
        assert!(has(&|e| matches!(e, UiEvent::SwitchAway)));
        assert!(has(&|e| matches!(e, UiEvent::SwitchBack)));
        assert!(has(&|e| matches!(e, UiEvent::KeyDown(Key::Backspace))));
    }

    #[test]
    fn practical_session_switches_are_balanced() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut t = Typist::new(VOLUNTEERS[3]);
        let cfg = SessionConfig { switch_prob: 0.4, ..SessionConfig::default() };
        let plan = practical_session(&mut t, "abcdefghij", SimInstant::ZERO, &cfg, &mut rng);
        let aways = plan.events.iter().filter(|e| matches!(e.event, UiEvent::SwitchAway)).count();
        let backs = plan.events.iter().filter(|e| matches!(e.event, UiEvent::SwitchBack)).count();
        assert_eq!(aways, backs, "every switch away must return");
    }
}
