//! Property-based coverage of the wire codec: every [`Message`] variant
//! round-trips through its binary encoding and the frame envelope, a
//! foreign version tag is always rejected, and the decoder never panics on
//! arbitrary bytes — every malformation maps to a typed [`WireError`].

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use adreno_sim::time::SimInstant;
use gpu_sc_attack::online::InferredKey;
use gpu_sc_attack::registry::ModelDigest;
use gpu_sc_attack::sampler::SamplerReport;
use gpu_sc_attack::trace::Sample;
use proptest::prelude::*;
use wire::{Frame, Message, SampleBatch, WireError, WIRE_VERSION};

fn arb_sample() -> impl Strategy<Value = Sample> {
    (any::<u64>(), prop::collection::vec(any::<u64>(), NUM_TRACKED)).prop_map(|(at, values)| {
        let mut array = [0u64; NUM_TRACKED];
        array.copy_from_slice(&values);
        Sample { at: SimInstant::from_nanos(at), values: CounterSet::from_array(array) }
    })
}

fn arb_batch() -> impl Strategy<Value = SampleBatch> {
    prop::collection::vec(arb_sample(), 0..48)
        .prop_map(|samples| SampleBatch::from_samples(&samples))
}

fn arb_report() -> impl Strategy<Value = SamplerReport> {
    prop::collection::vec(any::<u64>(), 11).prop_map(|v| SamplerReport {
        attempted: v[0],
        acquired: v[1],
        scheduler_drops: v[2],
        abandoned: v[3],
        transient_errors: v[4],
        denied_reads: v[5],
        revocations_seen: v[6],
        reservation_losses: v[7],
        fd_reopens: v[8],
        reservations_reacquired: v[9],
        retries_spent: v[10],
    })
}

fn arb_key() -> impl Strategy<Value = InferredKey> {
    (any::<u64>(), any::<u64>(), any::<char>(), any::<bool>()).prop_map(
        |(at, decided_at, ch, via_split)| InferredKey {
            at: SimInstant::from_nanos(at),
            decided_at: SimInstant::from_nanos(decided_at),
            ch,
            via_split,
        },
    )
}

/// Every variant of the protocol, with arbitrary payloads.
fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), prop::collection::vec(any::<u64>(), 4)).prop_map(
            |(session_id, resume_from, words)| {
                let mut digest = [0u8; 32];
                for (chunk, word) in digest.chunks_exact_mut(8).zip(&words) {
                    chunk.copy_from_slice(&word.to_le_bytes());
                }
                Message::Hello {
                    session_id,
                    resume_from,
                    model_digest: ModelDigest::from_bytes(digest),
                }
            }
        ),
        arb_batch().prop_map(Message::SampleBatch),
        arb_report().prop_map(|report| Message::Fin { report }),
        any::<u64>().prop_map(|next_expected| Message::Ack { next_expected }),
        prop::collection::vec(arb_key(), 0..16).prop_map(|keys| Message::InferredKeys { keys }),
        ".{0,40}".prop_map(|recovered| Message::FinAck { recovered }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → decode is the identity for every message variant.
    #[test]
    fn every_message_round_trips(msg in arb_message()) {
        let encoded = msg.encode();
        prop_assert_eq!(Message::decode(&encoded), Ok(msg));
    }

    /// The same identity through the full frame envelope (seq + CRC).
    #[test]
    fn every_message_round_trips_framed(msg in arb_message(), seq in any::<u64>()) {
        let frame = Frame::new(seq, msg.encode());
        let decoded = Frame::decode(&frame.encode()).expect("own encoding must decode");
        prop_assert_eq!(decoded.seq, seq);
        prop_assert_eq!(Message::decode(&decoded.payload), Ok(msg));
    }

    /// A frame stamped with any version other than ours is rejected before
    /// the payload is interpreted, whatever the payload is.
    #[test]
    fn foreign_version_tags_are_rejected(msg in arb_message(), seq in any::<u64>(), raw_version in any::<u8>()) {
        // Map the one colliding draw onto a neighbouring foreign version
        // rather than discarding the case.
        let version = if raw_version == WIRE_VERSION { raw_version.wrapping_add(1) } else { raw_version };
        let mut encoded = Frame::new(seq, msg.encode()).encode();
        encoded[2] = version;
        prop_assert_eq!(Frame::decode(&encoded), Err(WireError::VersionMismatch { got: version }));
    }

    /// Frame-decoding arbitrary bytes never panics: every outcome is either
    /// a valid frame or a typed [`WireError`].
    #[test]
    fn frame_decoder_never_panics_on_fuzz(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        match Frame::decode(&bytes) {
            Ok(frame) => {
                // Anything that decodes must re-encode to the same bytes
                // (the envelope has exactly one encoding per frame).
                prop_assert_eq!(frame.encode(), bytes);
            }
            Err(
                WireError::Truncated
                | WireError::BadMagic
                | WireError::VersionMismatch { .. }
                | WireError::CrcMismatch
                | WireError::VarintOverflow
                | WireError::BadTag(_)
                | WireError::LengthMismatch
                | WireError::TrailingBytes
                | WireError::Malformed(_),
            ) => {}
        }
    }

    /// Message-decoding arbitrary bytes never panics and never
    /// over-allocates: typed errors only.
    #[test]
    fn message_decoder_never_panics_on_fuzz(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes);
    }

    /// Corrupting any single byte of a framed message is detected — the
    /// decode either fails with a typed error or (only when the flip lands
    /// in the payload-length varint's redundant space) never silently
    /// yields a different message.
    #[test]
    fn single_byte_corruption_is_never_silent(msg in arb_message(), flip_at in any::<usize>(), flip_bit in 0u32..8) {
        let encoded = Frame::new(3, msg.encode()).encode();
        let mut bad = encoded.clone();
        let i = flip_at % bad.len();
        bad[i] ^= 1 << flip_bit;
        match Frame::decode(&bad) {
            Err(_) => {}
            Ok(frame) => {
                // CRC-32 catches every single-bit flip over its span; the
                // only way decode can still succeed is if it did not
                // actually change the bytes (impossible here) — so any Ok
                // is a hard failure.
                prop_assert!(false, "flip at byte {} bit {} went unnoticed: {:?}", i, flip_bit, frame.seq);
            }
        }
    }
}
