//! The length-prefixed frame envelope.
//!
//! Every datagram on the link is exactly one frame:
//!
//! ```text
//! ┌────────┬─────────┬─────────────┬─────────────┬─────────┬───────────┐
//! │ magic  │ version │ seq         │ payload len │ payload │ CRC-32    │
//! │ 2 B    │ 1 B     │ varint      │ varint      │ len B   │ 4 B LE    │
//! └────────┴─────────┴─────────────┴─────────────┴─────────┴───────────┘
//! ```
//!
//! The CRC covers everything before it, so a frame truncated anywhere —
//! including mid-CRC — fails closed. The version byte sits *outside* the
//! checksummed payload semantics on purpose: a peer speaking a different
//! protocol revision is rejected before any payload is interpreted.

use crate::crc::crc32;
use crate::error::{WireError, WireResult};
use crate::varint;

/// Protocol revision; bump on any incompatible layout change.
/// v2: `Hello` carries the 32-byte model digest (content address).
pub const WIRE_VERSION: u8 = 2;

/// Two fixed bytes opening every frame ("GW": GPU wire).
pub const MAGIC: [u8; 2] = [0x47, 0x57];

/// One decoded frame: a sequence number and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Position of this frame in its sender's reliable stream. Acks are
    /// cumulative over these; the receiver applies frames in `seq` order.
    pub seq: u64,
    /// The encoded [`Message`](crate::message::Message) bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Wraps a payload under a sequence number.
    pub fn new(seq: u64, payload: Vec<u8>) -> Self {
        Frame { seq, payload }
    }

    /// Encodes the frame into one datagram.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.payload.len() + 16);
        buf.extend_from_slice(&MAGIC);
        buf.push(WIRE_VERSION);
        varint::write_u64(&mut buf, self.seq);
        varint::write_u64(&mut buf, self.payload.len() as u64);
        buf.extend_from_slice(&self.payload);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes one datagram into a frame.
    ///
    /// # Errors
    ///
    /// Every malformation maps to a typed [`WireError`]: wrong magic,
    /// foreign version, truncation anywhere, checksum mismatch, or bytes
    /// past the end.
    pub fn decode(bytes: &[u8]) -> WireResult<Frame> {
        let mut pos = 0;
        if bytes.len() < MAGIC.len() + 1 {
            return Err(WireError::Truncated);
        }
        if bytes[..2] != MAGIC {
            return Err(WireError::BadMagic);
        }
        pos += 2;
        let version = bytes[pos];
        pos += 1;
        if version != WIRE_VERSION {
            return Err(WireError::VersionMismatch { got: version });
        }
        let seq = varint::read_u64(bytes, &mut pos)?;
        let len = varint::read_u64(bytes, &mut pos)?;
        let len = usize::try_from(len).map_err(|_| WireError::LengthMismatch)?;
        // The declared payload plus the trailing CRC must fit exactly.
        let crc_at = pos.checked_add(len).ok_or(WireError::LengthMismatch)?;
        match (crc_at + 4).cmp(&bytes.len()) {
            std::cmp::Ordering::Greater => return Err(WireError::Truncated),
            std::cmp::Ordering::Less => return Err(WireError::TrailingBytes),
            std::cmp::Ordering::Equal => {}
        }
        let expected = u32::from_le_bytes(bytes[crc_at..crc_at + 4].try_into().expect("4 bytes"));
        if crc32(&bytes[..crc_at]) != expected {
            return Err(WireError::CrcMismatch);
        }
        Ok(Frame { seq, payload: bytes[pos..crc_at].to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for (seq, payload) in [(0u64, vec![]), (7, vec![1, 2, 3]), (u64::MAX, vec![0xff; 300])] {
            let frame = Frame::new(seq, payload);
            assert_eq!(Frame::decode(&frame.encode()), Ok(frame));
        }
    }

    #[test]
    fn any_truncation_fails_closed() {
        let encoded = Frame::new(42, (0..64).collect()).encode();
        for cut in 0..encoded.len() {
            let err = Frame::decode(&encoded[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::LengthMismatch),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_detected() {
        let encoded = Frame::new(9, vec![5; 32]).encode();
        // Flip one bit in every byte position past the version tag and
        // demand a typed error every time.
        for i in 3..encoded.len() {
            let mut bad = encoded.clone();
            bad[i] ^= 0x40;
            assert!(Frame::decode(&bad).is_err(), "flip at {i} went unnoticed");
        }
    }

    #[test]
    fn foreign_version_is_rejected_before_payload() {
        let mut encoded = Frame::new(1, vec![1, 2]).encode();
        encoded[2] = WIRE_VERSION + 1;
        assert_eq!(
            Frame::decode(&encoded),
            Err(WireError::VersionMismatch { got: WIRE_VERSION + 1 })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut encoded = Frame::new(3, vec![8, 8]).encode();
        encoded.push(0);
        assert_eq!(Frame::decode(&encoded), Err(WireError::TrailingBytes));
    }
}
