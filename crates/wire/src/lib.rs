//! Resilient exfiltration wire protocol for the split sampler/classifier.
//!
//! The paper's attack runs sampler and classifier in one process; a real
//! deployment exfiltrates the counter stream from the victim device to an
//! offsite classifier over a network that drops, duplicates, reorders,
//! truncates, and delays. This crate is that link, end to end, in
//! deterministic sim-time:
//!
//! * [`varint`] / [`crc`] / [`frame`] — the encoding floor: LEB128 varints
//!   with zigzag, CRC-32 integrity, and the versioned length-prefixed
//!   [`Frame`] envelope every datagram travels in.
//! * [`message`] — the protocol: a versioned [`Message`] enum whose
//!   [`SampleBatch`] payload encodes counter batches columnar as
//!   delta-of-delta varints (about one byte per column entry on the steady
//!   8 ms grid).
//! * [`transport`] — [`SimTransport`], a seeded hostile link driven by a
//!   [`LinkPlan`] in the same deterministic-plan idiom as
//!   [`kgsl::FaultPlan`].
//! * [`session`] — the resilience: [`ExfilClient`] (send window,
//!   ack/retransmit with capped backoff, reconnect-and-resume) and
//!   [`ClassifierServer`] (resequencing, dedup, incremental inference,
//!   streamed-back presses), plus [`run_split_session`] which runs a whole
//!   eavesdropping session split across the wire and folds a
//!   [`LinkDegradationReport`](gpu_sc_attack::service::LinkDegradationReport)
//!   into the [`SessionResult`](gpu_sc_attack::service::SessionResult).
//!
//! The invariant the whole crate is built around: over a fault-free plan
//! the split session reproduces the in-process streaming pipeline exactly,
//! and over any seeded lossy plan it still *completes*, reporting the
//! damage instead of failing.

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod frame;
pub mod message;
pub mod session;
pub mod transport;
pub mod varint;

pub use error::{WireError, WireResult};
pub use frame::{Frame, MAGIC, WIRE_VERSION};
pub use message::{Message, SampleBatch};
pub use session::{
    run_split_session, BatchStage, ClassifierServer, ExfilClient, ExfilConfig, ResequenceStage,
    SplitDriver, SplitOutcome, SplitSessionOutcome, SplitSessionTask, CONTROL_SEQ,
};
pub use transport::{Direction, LinkPlan, SimTransport, TransportStats};
