//! Typed decode errors.
//!
//! Everything the decoder can dislike about a byte stream maps to a
//! [`WireError`] — never a panic. The fuzz proptests in `tests/` feed the
//! decoder arbitrary byte soup and assert exactly that.

use std::fmt;

/// Why a frame or message failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure did (a truncated datagram).
    Truncated,
    /// The frame does not start with the protocol magic.
    BadMagic,
    /// The frame's version tag does not match [`crate::frame::WIRE_VERSION`].
    VersionMismatch {
        /// Version tag found in the frame.
        got: u8,
    },
    /// The frame checksum does not match its contents (corruption).
    CrcMismatch,
    /// A varint ran longer than 10 bytes (no valid `u64` does).
    VarintOverflow,
    /// An unknown message tag.
    BadTag(u8),
    /// A declared length is inconsistent with the bytes actually present.
    LengthMismatch,
    /// Bytes were left over after the structure was fully decoded.
    TrailingBytes,
    /// A field decoded to a semantically invalid value (bad char, bad
    /// bool, non-UTF-8 text, …).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer ends mid-structure"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::VersionMismatch { got } => {
                write!(f, "wire version {got} is not {}", crate::frame::WIRE_VERSION)
            }
            WireError::CrcMismatch => write!(f, "frame checksum mismatch"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::LengthMismatch => write!(f, "declared length inconsistent with buffer"),
            WireError::TrailingBytes => write!(f, "trailing bytes after structure"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decode-side result alias.
pub type WireResult<T> = Result<T, WireError>;
