//! The resilient split session: [`ExfilClient`] on the victim device,
//! [`ClassifierServer`] offsite, and [`run_split_session`] driving both over
//! a [`SimTransport`].
//!
//! # Reliability model
//!
//! The client owns a reliable byte-free *frame* stream: every data frame
//! ([`Message::SampleBatch`], [`Message::Fin`]) carries a dense sequence
//! number starting at 0. The server acknowledges cumulatively
//! ([`Message::Ack`] carries the next sequence number it is missing) and
//! resequences out-of-order arrivals in a bounded buffer. The client
//! retransmits unacked frames on a capped exponential backoff and, when the
//! oldest unacked frame has been retransmitted [`ExfilConfig::reconnect_after`]
//! times without progress (the signature of a link outage rather than
//! sporadic loss), performs a reconnect: a fresh [`Message::Hello`] carrying
//! `resume_from` — the oldest unacked sequence number — which the server
//! answers with its actual `next_expected`, snapping both ends back into
//! agreement.
//!
//! Control frames (Hello, Ack) travel *outside* the data sequence space
//! under [`CONTROL_SEQ`]: they are idempotent and applied on arrival, so a
//! duplicated or reordered Hello can never wedge the resequencer.
//!
//! Server → client traffic ([`Message::InferredKeys`] as presses commit,
//! [`Message::FinAck`] with the recovered credential) uses the server's own
//! data sequence space; the client discards duplicates by sequence number.
//! `InferredKeys` frames are fire-and-forget (a lost one costs a latency
//! datapoint, nothing else), while the `FinAck` is re-sent every time a
//! retransmitted `Fin` arrives, so the handshake always terminates.

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::UiSimulation;
use gpu_sc_attack::online::InferredKey;
use gpu_sc_attack::registry::ModelDigest;
use gpu_sc_attack::sampler::{Sampler, SamplerReport};
use gpu_sc_attack::service::{
    AttackService, LinkDegradationReport, ServiceError, SessionResult, StreamingSession,
};
use gpu_sc_attack::stage::Stage;
use gpu_sc_attack::trace::Sample;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::frame::Frame;
use crate::message::{Message, SampleBatch};
use crate::transport::{Direction, LinkPlan, SimTransport, TransportStats};

/// The sequence number reserved for control frames (Hello, Ack), which live
/// outside the resequenced data stream.
pub const CONTROL_SEQ: u64 = u64::MAX;

/// Tuning for the client side of the split session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExfilConfig {
    /// Samples per [`Message::SampleBatch`] frame.
    pub batch_samples: usize,
    /// Maximum unacknowledged data frames in flight; further frames queue
    /// locally (backpressure) until acks open the window.
    pub window: usize,
    /// First retransmit timeout; doubles per retransmit of the same frame.
    pub retransmit_after: SimDuration,
    /// Ceiling on the per-frame retransmit backoff.
    pub max_retransmit_backoff: SimDuration,
    /// Retransmits of the *oldest* unacked frame before the client declares
    /// the link down and reconnects.
    pub reconnect_after: u32,
    /// How long past the end of sampling the driver keeps pumping the link
    /// waiting for the final handshake.
    pub drain_timeout: SimDuration,
}

impl Default for ExfilConfig {
    fn default() -> Self {
        ExfilConfig {
            batch_samples: 32,
            window: 8,
            retransmit_after: SimDuration::from_millis(30),
            max_retransmit_backoff: SimDuration::from_millis(500),
            reconnect_after: 4,
            drain_timeout: SimDuration::from_secs(30),
        }
    }
}

/// A [`Stage`] that packs samples into fixed-size [`Message::SampleBatch`]
/// frames; `finish` flushes the partial tail batch.
#[derive(Debug)]
pub struct BatchStage {
    capacity: usize,
    staging: SampleBatch,
}

impl BatchStage {
    /// A stage emitting one message per `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        BatchStage { capacity: capacity.max(1), staging: SampleBatch::new() }
    }
}

impl Stage for BatchStage {
    type In = Sample;
    type Out = Message;

    fn push(&mut self, input: Sample, out: &mut Vec<Message>) {
        self.staging.push(input);
        if self.staging.len() >= self.capacity {
            out.push(Message::SampleBatch(std::mem::take(&mut self.staging)));
        }
    }

    fn finish(&mut self, out: &mut Vec<Message>) {
        if !self.staging.is_empty() {
            out.push(Message::SampleBatch(std::mem::take(&mut self.staging)));
        }
    }
}

/// A [`Stage`] that restores sequence order over a lossy arrival stream:
/// frames are released strictly in sequence, duplicates are discarded, and
/// early arrivals wait in a bounded buffer. Feeds the receive side of
/// [`ClassifierServer`].
#[derive(Debug, Default)]
pub struct ResequenceStage {
    next_expected: u64,
    buffer: BTreeMap<u64, Message>,
    /// Duplicate frames discarded by sequence number.
    pub duplicates_discarded: u64,
    /// Frames that arrived ahead of sequence and were buffered.
    pub reorders_observed: u64,
}

impl ResequenceStage {
    /// The next sequence number the stage is waiting for (the cumulative
    /// ack value).
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }
}

impl Stage for ResequenceStage {
    type In = Frame;
    type Out = Message;

    fn push(&mut self, input: Frame, out: &mut Vec<Message>) {
        if input.seq < self.next_expected || self.buffer.contains_key(&input.seq) {
            self.duplicates_discarded += 1;
            return;
        }
        // The payload was already decoded once by the server to classify
        // control vs data; decoding again here keeps the stage self-contained.
        let Ok(msg) = Message::decode(&input.payload) else {
            return;
        };
        if input.seq > self.next_expected {
            self.reorders_observed += 1;
            self.buffer.insert(input.seq, msg);
            return;
        }
        self.next_expected += 1;
        out.push(msg);
        while let Some(msg) = self.buffer.remove(&self.next_expected) {
            self.next_expected += 1;
            out.push(msg);
        }
    }

    fn finish(&mut self, _out: &mut Vec<Message>) {
        // Frames still gapped at end of session are lost for good; the
        // buffer is intentionally not flushed out of order.
        self.buffer.clear();
    }
}

#[derive(Debug)]
struct PendingFrame {
    seq: u64,
    datagram: Vec<u8>,
    payload_len: u64,
    /// `None` until first transmission (backpressure keeps it queued).
    last_sent: Option<SimInstant>,
    backoff: SimDuration,
    retransmits: u32,
}

/// The on-device half: packs samples into frames, keeps the reliable
/// stream's send window, retransmits, and reconnects through outages.
#[derive(Debug)]
pub struct ExfilClient {
    config: ExfilConfig,
    session_id: u64,
    /// Content address of the model this sampler expects the server to
    /// classify with; [`ModelDigest::ZERO`] requests device recognition.
    model_digest: ModelDigest,
    batcher: BatchStage,
    staged: Vec<Message>,
    pending: VecDeque<PendingFrame>,
    next_seq: u64,
    /// Lowest data seq not yet acknowledged by the server.
    acked_to: u64,
    finished: bool,
    done: bool,
    recovered: Option<String>,
    server_seen: BTreeSet<u64>,
    key_arrivals: Vec<(InferredKey, SimInstant)>,
    link: LinkDegradationReport,
}

impl ExfilClient {
    /// A client for one session. `session_id` only needs to be unique per
    /// transport. The Hello carries [`ModelDigest::ZERO`]: the server falls
    /// back to device recognition. Use [`ExfilClient::with_model`] to pin a
    /// registry model by content address.
    pub fn new(config: ExfilConfig, session_id: u64) -> Self {
        ExfilClient::with_model(config, session_id, ModelDigest::ZERO)
    }

    /// A client whose Hello pins the server-side model by content address.
    pub fn with_model(config: ExfilConfig, session_id: u64, model_digest: ModelDigest) -> Self {
        ExfilClient {
            config,
            session_id,
            model_digest,
            batcher: BatchStage::new(config.batch_samples),
            staged: Vec::new(),
            pending: VecDeque::new(),
            next_seq: 0,
            acked_to: 0,
            finished: false,
            done: false,
            recovered: None,
            server_seen: BTreeSet::new(),
            key_arrivals: Vec::new(),
            link: LinkDegradationReport::default(),
        }
    }

    /// Opens the session: sends the initial Hello control frame.
    pub fn connect(&mut self, transport: &mut SimTransport, now: SimInstant) {
        self.send_control(
            transport,
            now,
            Message::Hello {
                session_id: self.session_id,
                resume_from: 0,
                model_digest: self.model_digest,
            },
        );
    }

    /// Stages one counter sample for exfiltration.
    pub fn push_sample(&mut self, sample: Sample) {
        self.push_samples(std::slice::from_ref(&sample));
    }

    /// Stages a burst of counter samples for exfiltration in one pass.
    /// Frame boundaries depend only on the cumulative sample count, so this
    /// produces exactly the frames the equivalent [`ExfilClient::push_sample`]
    /// calls would. [`run_split_session`] drains its sampling ring straight
    /// into this.
    pub fn push_samples(&mut self, samples: &[Sample]) {
        let mut staged = std::mem::take(&mut self.staged);
        for &s in samples {
            self.batcher.push(s, &mut staged);
        }
        self.staged = staged;
        self.enqueue_staged();
    }

    /// Ends sampling: flushes the tail batch and queues the Fin frame
    /// carrying the sampler's report.
    pub fn finish_sampling(&mut self, report: &SamplerReport) {
        assert!(!self.finished, "finish_sampling called twice");
        self.finished = true;
        let mut staged = std::mem::take(&mut self.staged);
        self.batcher.finish(&mut staged);
        staged.push(Message::Fin { report: *report });
        self.staged = staged;
        self.enqueue_staged();
    }

    /// Whether the final handshake completed (FinAck received).
    pub fn done(&self) -> bool {
        self.done
    }

    /// The credential text the server reported back, once done.
    pub fn recovered(&self) -> Option<&str> {
        self.recovered.as_deref()
    }

    /// Presses streamed back by the server, stamped with their sim-time of
    /// arrival at the client — the end-to-end press-to-inference latency
    /// source.
    pub fn key_arrivals(&self) -> &[(InferredKey, SimInstant)] {
        &self.key_arrivals
    }

    /// The client's half of the link degradation tally.
    pub fn link_report(&self) -> LinkDegradationReport {
        self.link
    }

    fn enqueue_staged(&mut self) {
        for msg in self.staged.drain(..) {
            let seq = self.next_seq;
            self.next_seq += 1;
            let payload = msg.encode();
            let payload_len = payload.len() as u64;
            let datagram = Frame::new(seq, payload).encode();
            self.pending.push_back(PendingFrame {
                seq,
                datagram,
                payload_len,
                last_sent: None,
                backoff: self.config.retransmit_after,
                retransmits: 0,
            });
        }
    }

    fn send_control(&mut self, transport: &mut SimTransport, now: SimInstant, msg: Message) {
        let datagram = Frame::new(CONTROL_SEQ, msg.encode()).encode();
        self.link.frames_sent += 1;
        self.link.bytes_sent += datagram.len() as u64;
        transport.send(Direction::ToServer, now, datagram);
    }

    /// One scheduling round: absorb server traffic, transmit what the
    /// window allows, retransmit what timed out, reconnect if the link
    /// looks dead. Call at every sample slot and on a coarse tick while
    /// draining.
    pub fn pump(&mut self, transport: &mut SimTransport, now: SimInstant) {
        for datagram in transport.recv(Direction::ToClient, now) {
            self.absorb(&datagram, now);
        }
        if self.done {
            return;
        }
        // First transmissions, bounded by the send window.
        let in_flight = self.pending.iter().filter(|p| p.last_sent.is_some()).count();
        let mut budget = self.config.window.saturating_sub(in_flight);
        for p in self.pending.iter_mut() {
            if budget == 0 {
                break;
            }
            if p.last_sent.is_none() {
                p.last_sent = Some(now);
                self.link.frames_sent += 1;
                self.link.bytes_sent += p.datagram.len() as u64;
                transport.send(Direction::ToServer, now, p.datagram.clone());
                budget -= 1;
            }
        }
        // Retransmissions on capped exponential backoff.
        let mut reconnect = false;
        let max_backoff = self.config.max_retransmit_backoff;
        let mut resend: Vec<Vec<u8>> = Vec::new();
        for (i, p) in self.pending.iter_mut().enumerate() {
            let Some(sent_at) = p.last_sent else { continue };
            if now.saturating_since(sent_at) < p.backoff {
                continue;
            }
            p.last_sent = Some(now);
            p.backoff = (p.backoff * 2).min(max_backoff);
            p.retransmits += 1;
            self.link.frames_sent += 1;
            self.link.retransmits += 1;
            self.link.bytes_sent += p.datagram.len() as u64;
            resend.push(p.datagram.clone());
            if i == 0 && p.retransmits >= self.config.reconnect_after {
                reconnect = true;
                p.retransmits = 0;
            }
        }
        for datagram in resend {
            transport.send(Direction::ToServer, now, datagram);
        }
        if reconnect {
            // The oldest unacked frame has been retransmitted into the void
            // repeatedly: assume an outage ended state agreement and re-open
            // the session from our low-water mark. The server's Ack reply
            // restores a shared view of `next_expected`.
            self.link.reconnects += 1;
            self.send_control(
                transport,
                now,
                Message::Hello {
                    session_id: self.session_id,
                    resume_from: self.acked_to,
                    model_digest: self.model_digest,
                },
            );
        }
    }

    fn absorb(&mut self, datagram: &[u8], now: SimInstant) {
        let Ok(frame) = Frame::decode(datagram) else {
            self.link.frames_corrupt += 1;
            return;
        };
        let Ok(msg) = Message::decode(&frame.payload) else {
            self.link.frames_corrupt += 1;
            return;
        };
        if frame.seq != CONTROL_SEQ {
            // Server data frame: dedup by seq.
            if !self.server_seen.insert(frame.seq) {
                self.link.duplicates_discarded += 1;
                return;
            }
        }
        match msg {
            Message::Ack { next_expected } => {
                if next_expected > self.acked_to {
                    self.acked_to = next_expected;
                }
                while self.pending.front().is_some_and(|p| p.seq < self.acked_to) {
                    let p = self.pending.pop_front().expect("checked front");
                    self.link.bytes_acked += p.payload_len;
                }
            }
            Message::InferredKeys { keys } => {
                for key in keys {
                    self.key_arrivals.push((key, now));
                }
            }
            Message::FinAck { recovered } => {
                self.recovered = Some(recovered);
                self.done = true;
                self.pending.clear();
            }
            // Client-bound messages only; anything else is a peer bug, not
            // link damage — drop it.
            Message::Hello { .. } | Message::SampleBatch(_) | Message::Fin { .. } => {}
        }
    }
}

/// The offsite half: reassembles the sample stream off the wire, feeds the
/// incremental pipeline, streams presses back as they commit, and finishes
/// the session when Fin arrives.
pub struct ClassifierServer<'s> {
    service: &'s AttackService,
    session: Option<StreamingSession<'s>>,
    /// The model digest the client's Hello asked for (`None` until a Hello
    /// arrives; a zero digest means device recognition).
    requested_digest: Option<ModelDigest>,
    resequencer: ResequenceStage,
    inbox: Vec<Message>,
    fresh_keys: Vec<InferredKey>,
    streamed_keys: u64,
    next_out_seq: u64,
    finack: Option<Vec<u8>>,
    result: Option<Result<SessionResult, ServiceError>>,
    link: LinkDegradationReport,
}

impl<'s> ClassifierServer<'s> {
    /// A server analysing one session with `service`'s models and config.
    pub fn new(service: &'s AttackService) -> Self {
        ClassifierServer {
            service,
            session: None,
            requested_digest: None,
            resequencer: ResequenceStage::default(),
            inbox: Vec::new(),
            fresh_keys: Vec::new(),
            streamed_keys: 0,
            next_out_seq: 0,
            finack: None,
            result: None,
            link: LinkDegradationReport::default(),
        }
    }

    /// The finished session result, once Fin has been processed.
    pub fn result(&self) -> Option<&Result<SessionResult, ServiceError>> {
        self.result.as_ref()
    }

    /// Count of presses streamed back over the wire so far.
    pub fn keys_streamed(&self) -> u64 {
        self.streamed_keys
    }

    /// The server's half of the link degradation tally.
    pub fn link_report(&self) -> LinkDegradationReport {
        let mut link = self.link;
        link.duplicates_discarded += self.resequencer.duplicates_discarded;
        link.reorders_observed += self.resequencer.reorders_observed;
        link
    }

    /// Receives everything due on the transport and answers it.
    pub fn pump(&mut self, transport: &mut SimTransport, now: SimInstant) {
        let datagrams = transport.recv(Direction::ToServer, now);
        for datagram in datagrams {
            self.handle(&datagram, transport, now);
        }
    }

    fn send(&mut self, transport: &mut SimTransport, now: SimInstant, datagram: Vec<u8>) {
        self.link.frames_sent += 1;
        self.link.bytes_sent += datagram.len() as u64;
        transport.send(Direction::ToClient, now, datagram);
    }

    fn send_data(
        &mut self,
        transport: &mut SimTransport,
        now: SimInstant,
        msg: &Message,
    ) -> Vec<u8> {
        let seq = self.next_out_seq;
        self.next_out_seq += 1;
        let datagram = Frame::new(seq, msg.encode()).encode();
        self.send(transport, now, datagram.clone());
        datagram
    }

    fn send_ack(&mut self, transport: &mut SimTransport, now: SimInstant) {
        let msg = Message::Ack { next_expected: self.resequencer.next_expected() };
        let datagram = Frame::new(CONTROL_SEQ, msg.encode()).encode();
        self.send(transport, now, datagram);
    }

    fn handle(&mut self, datagram: &[u8], transport: &mut SimTransport, now: SimInstant) {
        let Ok(frame) = Frame::decode(datagram) else {
            self.link.frames_corrupt += 1;
            return;
        };
        if frame.seq == CONTROL_SEQ {
            match Message::decode(&frame.payload) {
                Ok(Message::Hello { model_digest, .. }) => {
                    // Initial open or reconnect-resume: both are answered
                    // with where the data stream actually stands. The
                    // session itself is created lazily on first data.
                    self.requested_digest = Some(model_digest);
                    self.ensure_session();
                    self.send_ack(transport, now);
                }
                Ok(_) => {}
                Err(_) => self.link.frames_corrupt += 1,
            }
            return;
        }
        if Message::decode(&frame.payload).is_err() {
            self.link.frames_corrupt += 1;
            return;
        }
        let before = self.resequencer.next_expected();
        let was_duplicate_fin = frame.seq < before && self.finack.is_some();
        let mut inbox = std::mem::take(&mut self.inbox);
        self.resequencer.push(frame, &mut inbox);
        for msg in inbox.drain(..) {
            self.apply(msg, transport, now);
        }
        self.inbox = inbox;
        self.send_ack(transport, now);
        if was_duplicate_fin {
            // A retransmitted Fin means our FinAck was lost: re-send the
            // exact same frame (the client dedups it by seq).
            if let Some(datagram) = self.finack.clone() {
                self.send(transport, now, datagram);
            }
        }
    }

    fn ensure_session(&mut self) {
        if self.session.is_some() || self.result.is_some() {
            return;
        }
        match self.requested_digest {
            // A pinned model: resolve it in the service's store. A digest
            // the store does not hold is this session's final (typed)
            // result — samples are dropped and Fin is answered with an
            // empty FinAck so the client's handshake still terminates.
            Some(digest) if !digest.is_zero() => {
                match self.service.streaming_session_for(&digest) {
                    Ok(session) => self.session = Some(session),
                    Err(err) => {
                        spansight::count("wire.session.digest_mismatches", 1);
                        self.result = Some(Err(err));
                    }
                }
            }
            // Zero digest (or no Hello seen yet): legacy device recognition.
            _ => self.session = Some(self.service.streaming_session()),
        }
    }

    fn apply(&mut self, msg: Message, transport: &mut SimTransport, now: SimInstant) {
        match msg {
            Message::SampleBatch(batch) => {
                self.ensure_session();
                let Some(session) = self.session.as_mut() else { return };
                session.push_samples(&batch.samples());
                let mut fresh = std::mem::take(&mut self.fresh_keys);
                session.drain_new_keys(&mut fresh);
                if !fresh.is_empty() {
                    self.streamed_keys += fresh.len() as u64;
                    let msg = Message::InferredKeys { keys: std::mem::take(&mut fresh) };
                    self.send_data(transport, now, &msg);
                }
                self.fresh_keys = fresh;
            }
            Message::Fin { report } => {
                self.ensure_session();
                let recovered = match self.session.take() {
                    Some(session) => {
                        let result = session.finish(&report);
                        let recovered = match &result {
                            Ok(r) => r.recovered_text.clone(),
                            Err(_) => String::new(),
                        };
                        self.result = Some(result);
                        recovered
                    }
                    // No session: the result was already decided (e.g. a
                    // model-digest mismatch). Still FinAck — the client's
                    // handshake must terminate either way.
                    None if self.result.is_some() => String::new(),
                    None => return,
                };
                let msg = Message::FinAck { recovered };
                let datagram = self.send_data(transport, now, &msg);
                self.finack = Some(datagram);
            }
            // Server-bound messages only; Hello is handled before
            // resequencing and the rest are peer bugs — drop them.
            Message::Hello { .. }
            | Message::Ack { .. }
            | Message::InferredKeys { .. }
            | Message::FinAck { .. } => {}
        }
    }
}

/// Everything a split session produced, beyond the [`SessionResult`] itself.
#[derive(Debug, PartialEq)]
pub struct SplitOutcome {
    /// The server-side session result with the folded
    /// [`LinkDegradationReport`] (client + server + transport tallies).
    pub result: SessionResult,
    /// The credential text that actually crossed the wire in the FinAck
    /// (None when the final handshake never completed).
    pub recovered_over_wire: Option<String>,
    /// Presses streamed back to the client, with client-side arrival times.
    pub key_arrivals: Vec<(InferredKey, SimInstant)>,
    /// Raw transport tallies.
    pub transport: TransportStats,
    /// Whether the client saw the FinAck before the drain deadline.
    pub completed: bool,
}

/// Folds the client, server, and transport tallies into one report.
fn fold_link(
    client: LinkDegradationReport,
    server: LinkDegradationReport,
    transport: TransportStats,
) -> LinkDegradationReport {
    LinkDegradationReport {
        frames_sent: client.frames_sent + server.frames_sent,
        retransmits: client.retransmits + server.retransmits,
        frames_dropped: transport.dropped,
        frames_corrupt: client.frames_corrupt + server.frames_corrupt,
        duplicates_discarded: client.duplicates_discarded + server.duplicates_discarded,
        reorders_observed: client.reorders_observed + server.reorders_observed,
        reconnects: client.reconnects,
        bytes_sent: client.bytes_sent + server.bytes_sent,
        bytes_acked: client.bytes_acked,
    }
}

/// Where a [`SplitDriver`] stands in the session lifecycle.
enum SplitPhase {
    /// Counter sampling still running; each step is one ring generation.
    Streaming,
    /// Sampling is over; each step is one coarse drain tick until the final
    /// handshake lands or the deadline passes.
    Draining {
        /// The drain budget's hard stop.
        deadline: SimInstant,
    },
    /// Outcome already produced; the driver must not be stepped again.
    Done,
}

/// A split session as an incremental state machine: one [`SplitDriver::step`]
/// call runs one *quantum* (a ring generation while sampling, a 5 ms drain
/// tick afterwards) and yields. [`run_split_session`] drives it in a tight
/// loop for the one-session case; the fleet orchestrator steps many drivers
/// interleaved on the same workers via [`SplitSessionTask`].
///
/// The step decomposition is exact: driving a `SplitDriver` to completion
/// produces the same [`SplitOutcome`] the original monolithic loop did,
/// quantum boundaries included — each quantum is one iteration of that
/// loop.
pub struct SplitDriver<'s> {
    service: &'s AttackService,
    config: ExfilConfig,
    transport: SimTransport,
    client: ExfilClient,
    server: ClassifierServer<'s>,
    sampler: Sampler,
    /// `Some` while streaming; consumed by `finish_stream` at the
    /// streaming → draining transition.
    stream: Option<gpu_sc_attack::sampler::SampleStream>,
    ring_tx: gpu_sc_attack::ring::Producer<Sample>,
    ring_rx: gpu_sc_attack::ring::Consumer<Sample>,
    burst: Vec<Sample>,
    phase: SplitPhase,
    _span: spansight::Span,
}

impl<'s> SplitDriver<'s> {
    /// Opens a split session against `sim`'s device over a fresh transport
    /// running `plan`, sampling until `until`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Device`] when the device file refuses to open.
    pub fn new(
        service: &'s AttackService,
        sim: &mut UiSimulation,
        until: SimInstant,
        plan: &LinkPlan,
        config: ExfilConfig,
    ) -> Result<Self, ServiceError> {
        let mut span = spansight::span("wire", "session.split");
        span.sim_range(sim.now().as_nanos(), until.as_nanos());
        let mut transport = SimTransport::new(plan);
        // When the service carries exactly one model, pin it by digest: the
        // server resolves the content address instead of re-running device
        // recognition, and a store mismatch becomes a typed error.
        let digest = match service.store().handles() {
            [only] => only.digest(),
            _ => ModelDigest::ZERO,
        };
        let mut client = ExfilClient::with_model(config, plan.seed, digest);
        let server = ClassifierServer::new(service);
        let mut sampler = Sampler::open(sim.device(), service.config().sampler)?;
        let stream = sampler.start_stream(sim, until);
        client.connect(&mut transport, sim.now());
        // Same SPSC handoff as the in-process driver: the reader loop fills
        // the ring, the exfiltration side drains it in bursts. Sizing the
        // ring at one wire batch means each drain stages exactly one
        // SampleBatch frame. Both ends still pump at every read slot — the
        // retransmit/ack clock needs the fine-grained ticks (its timeouts
        // are shorter than a ring's worth of slots) — but those per-slot
        // pumps carry no staging work; the batcher is fed once per drain.
        let (ring_tx, ring_rx) = gpu_sc_attack::ring::spsc::<Sample>(config.batch_samples);
        let burst = Vec::with_capacity(ring_tx.capacity());
        Ok(SplitDriver {
            service,
            config,
            transport,
            client,
            server,
            sampler,
            stream: Some(stream),
            ring_tx,
            ring_rx,
            burst,
            phase: SplitPhase::Streaming,
            _span: span,
        })
    }

    /// Runs one quantum. `Some` = session finished (success or error),
    /// `None` = more to do; call again. Must not be called after it
    /// returned `Some`.
    pub fn step(&mut self, sim: &mut UiSimulation) -> Option<Result<SplitOutcome, ServiceError>> {
        match self.phase {
            SplitPhase::Streaming => {
                let stream = self.stream.as_mut().expect("streaming phase owns a stream");
                let mut stream_done = false;
                while !self.ring_tx.is_full() {
                    match self.sampler.next_sample(stream, sim) {
                        Some(sample) => {
                            self.ring_tx.push(sample).expect("a non-full SPSC ring accepts a push");
                            self.client.pump(&mut self.transport, sim.now());
                            self.server.pump(&mut self.transport, sim.now());
                        }
                        None => {
                            stream_done = true;
                            break;
                        }
                    }
                }
                self.burst.clear();
                self.ring_rx.drain_into(&mut self.burst);
                self.client.push_samples(&self.burst);
                self.client.pump(&mut self.transport, sim.now());
                self.server.pump(&mut self.transport, sim.now());
                if stream_done {
                    let stream = self.stream.take().expect("streaming phase owns a stream");
                    if let Err(err) = self.sampler.finish_stream(stream) {
                        self.phase = SplitPhase::Done;
                        return Some(Err(ServiceError::Device(err)));
                    }
                    self.client.finish_sampling(&self.sampler.report());
                    // Drain: sampling is over, but frames are still in
                    // flight. Keep pumping on a coarse tick until the final
                    // handshake lands or the budget runs out (the
                    // retransmit/reconnect machinery needs the clock to
                    // advance).
                    self.phase =
                        SplitPhase::Draining { deadline: sim.now() + self.config.drain_timeout };
                }
                None
            }
            SplitPhase::Draining { deadline } => {
                if !self.client.done() && sim.now() < deadline {
                    let next = (sim.now() + SimDuration::from_millis(5)).min(deadline);
                    sim.advance_to(next);
                    self.client.pump(&mut self.transport, sim.now());
                    self.server.pump(&mut self.transport, sim.now());
                    return None;
                }
                self.phase = SplitPhase::Done;
                Some(self.finalise())
            }
            SplitPhase::Done => unreachable!("a finished split driver must not be stepped"),
        }
    }

    /// Assembles the outcome once draining ends (handshake done or budget
    /// exhausted), salvaging the server session if the Fin never arrived.
    fn finalise(&mut self) -> Result<SplitOutcome, ServiceError> {
        let completed = self.client.done();
        if !completed {
            spansight::count("wire.session.drain_timeouts", 1);
        }
        let result = match self.server.result.take() {
            Some(result) => result,
            // The Fin never got through even after the drain budget — the
            // link was effectively one-way-dead. Salvage the session from
            // whatever samples did arrive rather than erroring out.
            None => match self.server.session.take() {
                Some(session) => session.finish(&self.sampler.report()),
                None => match self.server.requested_digest.filter(|d| !d.is_zero()) {
                    Some(digest) => self
                        .service
                        .streaming_session_for(&digest)
                        .and_then(|session| session.finish(&self.sampler.report())),
                    None => self.service.streaming_session().finish(&self.sampler.report()),
                },
            },
        };
        let mut result = result?;
        result.link =
            fold_link(self.client.link_report(), self.server.link_report(), self.transport.stats());
        spansight::count("wire.session.frames_sent", result.link.frames_sent);
        spansight::count("wire.session.retransmits", result.link.retransmits);
        spansight::count("wire.session.reconnects", result.link.reconnects);
        Ok(SplitOutcome {
            result,
            recovered_over_wire: self.client.recovered.clone(),
            key_arrivals: std::mem::take(&mut self.client.key_arrivals),
            transport: self.transport.stats(),
            completed,
        })
    }
}

/// Runs one eavesdropping session split across the wire: the sampler and
/// [`ExfilClient`] on the device side, the [`ClassifierServer`] behind the
/// transport, both pumped in lock-step with the simulation clock.
///
/// Under a fault-free [`LinkPlan`] the returned [`SessionResult`] is
/// identical to [`AttackService::eavesdrop`] on the same seed, except for
/// the populated `link` field. Under a lossy plan the session still
/// completes — retransmits, resequencing, and reconnects absorb the damage
/// and the `link` report says how much there was.
///
/// This is [`SplitDriver`] driven to completion in a tight loop; fleets
/// step many drivers interleaved instead (see [`SplitSessionTask`]).
///
/// # Errors
///
/// Exactly the in-process contract: [`ServiceError::Device`] when sampling
/// never acquired anything, [`ServiceError::UnrecognisedDevice`] /
/// [`ServiceError::LaunchNotDetected`] from the analysis half. Link damage
/// is *never* an error.
pub fn run_split_session(
    service: &AttackService,
    sim: &mut UiSimulation,
    until: SimInstant,
    plan: &LinkPlan,
    config: ExfilConfig,
) -> Result<SplitOutcome, ServiceError> {
    let mut driver = SplitDriver::new(service, sim, until, plan, config)?;
    loop {
        if let Some(outcome) = driver.step(sim) {
            return outcome;
        }
    }
}

/// What one fleet-scheduled split session produced.
#[derive(Debug, PartialEq)]
pub struct SplitSessionOutcome {
    /// Which shard ran the session.
    pub shard: usize,
    /// The split outcome, or why the session failed. Failures are carried
    /// here — a failed session never stalls its shard.
    pub outcome: Result<SplitOutcome, ServiceError>,
    /// Accuracy against the victim simulation's ground truth (`None` when
    /// the session failed).
    pub score: Option<gpu_sc_attack::metrics::SessionScore>,
    /// The true keystrokes, kept so callers can measure per-key latency
    /// after the simulation itself is dropped.
    pub truth: Vec<(SimInstant, char)>,
    /// Quanta the scheduler spent on this session.
    pub quanta: u64,
}

/// A split session as a cooperative fleet task: owns its victim
/// [`UiSimulation`] and steps its [`SplitDriver`] one quantum at a time
/// under [`gpu_sc_attack::fleet::run_sessions`], so hundreds of split
/// sessions (each with its own [`SimTransport`] drawn from its own
/// [`LinkPlan`]) interleave on a bounded worker set. A session degraded by
/// its link is salvaged and reported exactly as in [`run_split_session`];
/// it slows only itself down, never its shard.
pub struct SplitSessionTask<'s> {
    sim: UiSimulation,
    shard: usize,
    driver: Option<SplitDriver<'s>>,
    /// Construction failure, surfaced by the first step.
    failed: Option<ServiceError>,
    quanta: u64,
}

impl<'s> SplitSessionTask<'s> {
    /// Prepares a split session on `shard`'s service over its own fresh
    /// transport running `plan`. Device faults at open time don't panic or
    /// stall — they surface as an error outcome on the first step.
    pub fn new(
        shard: usize,
        service: &'s AttackService,
        mut sim: UiSimulation,
        until: SimInstant,
        plan: &LinkPlan,
        config: ExfilConfig,
    ) -> Self {
        let (driver, failed) = match SplitDriver::new(service, &mut sim, until, plan, config) {
            Ok(driver) => (Some(driver), None),
            Err(err) => (None, Some(err)),
        };
        SplitSessionTask { sim, shard, driver, failed, quanta: 0 }
    }

    fn outcome(&mut self, outcome: Result<SplitOutcome, ServiceError>) -> SplitSessionOutcome {
        self.driver = None;
        let score = outcome.as_ref().ok().map(|o| o.result.score(&self.sim));
        SplitSessionOutcome {
            shard: self.shard,
            outcome,
            score,
            truth: self.sim.truth().keystrokes(),
            quanta: self.quanta,
        }
    }
}

impl gpu_sc_attack::fleet::Session for SplitSessionTask<'_> {
    type Outcome = SplitSessionOutcome;

    fn step(&mut self) -> Option<SplitSessionOutcome> {
        self.quanta += 1;
        if let Some(err) = self.failed.take() {
            return Some(self.outcome(Err(err)));
        }
        let step =
            self.driver.as_mut().expect("an unfinished task owns a driver").step(&mut self.sim);
        step.map(|res| self.outcome(res))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::CounterSet;

    fn sample(ms: u64, base: u64) -> Sample {
        let mut values = [0u64; adreno_sim::counters::NUM_TRACKED];
        for (i, v) in values.iter_mut().enumerate() {
            *v = base + i as u64;
        }
        Sample { at: SimInstant::from_millis(ms), values: CounterSet::from_array(values) }
    }

    #[test]
    fn batch_stage_packs_and_flushes() {
        let mut stage = BatchStage::new(3);
        let mut out = Vec::new();
        for i in 0..7u64 {
            stage.push(sample(i, i * 100), &mut out);
        }
        stage.finish(&mut out);
        let lens: Vec<usize> = out
            .iter()
            .map(|m| match m {
                Message::SampleBatch(b) => b.len(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(lens, vec![3, 3, 1]);
    }

    #[test]
    fn resequencer_restores_order_and_counts() {
        let frame = |seq: u64| Frame::new(seq, Message::Ack { next_expected: seq }.encode());
        let mut stage = ResequenceStage::default();
        let mut out = Vec::new();
        stage.push(frame(1), &mut out); // early: buffered
        assert!(out.is_empty());
        stage.push(frame(0), &mut out); // releases 0 then 1
        assert_eq!(out.len(), 2);
        stage.push(frame(0), &mut out); // duplicate
        assert_eq!(stage.duplicates_discarded, 1);
        assert_eq!(stage.reorders_observed, 1);
        assert_eq!(stage.next_expected(), 2);
    }

    #[test]
    fn client_retransmits_then_reconnects() {
        // A plan whose outage swallows the first transmissions.
        let plan = LinkPlan::new(5);
        let mut transport = SimTransport::new(&plan);
        let config = ExfilConfig {
            retransmit_after: SimDuration::from_millis(10),
            reconnect_after: 2,
            ..ExfilConfig::default()
        };
        let mut client = ExfilClient::new(config, 1);
        for i in 0..config.batch_samples {
            client.push_sample(sample(i as u64, 10));
        }
        let t0 = SimInstant::from_millis(0);
        client.pump(&mut transport, t0);
        // Discard everything the transport carries so no acks ever return,
        // then let the retransmit clock run.
        for step in 1..20u64 {
            let now = t0 + SimDuration::from_millis(step * 15);
            transport.recv(Direction::ToServer, now).clear();
            client.pump(&mut transport, now);
        }
        let link = client.link_report();
        assert!(link.retransmits >= 2, "{link}");
        assert!(link.reconnects >= 1, "silence must trigger a reconnect: {link}");
    }
}
