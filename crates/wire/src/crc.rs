//! CRC-32 (ISO-HDLC polynomial, the zlib/`crc32` flavour) for frame
//! integrity. Table-driven, with the table built at compile time.

/// The reflected ISO-HDLC polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (init `!0`, final xor `!0` — the standard check value
/// of `b"123456789"` is `0xCBF43926`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"hello wire");
        let mut altered = b"hello wire".to_vec();
        altered[3] ^= 0x01;
        assert_ne!(base, crc32(&altered));
        assert_ne!(crc32(b""), crc32(&[0]));
    }
}
