//! LEB128 varints and zigzag mapping.
//!
//! Counter deltas are tiny most of the time (an idle screen changes
//! nothing), so the batch encoding leans entirely on unsigned LEB128 with
//! zigzag for the signed delta-of-delta residuals: one byte for anything in
//! `[-64, 63]`, two up to `[-8192, 8191]`, and so on.

use crate::error::{WireError, WireResult};

/// Appends `v` to `buf` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `buf` at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// [`WireError::Truncated`] when the buffer ends mid-varint;
/// [`WireError::VarintOverflow`] when the encoding runs past 10 bytes or
/// carries bits beyond a `u64`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> WireResult<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintOverflow);
        }
    }
}

/// Zigzag-maps a signed value to unsigned so small magnitudes of either
/// sign encode in few varint bytes.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a zigzagged signed varint.
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    write_u64(buf, zigzag(v));
}

/// Reads a zigzagged signed varint.
///
/// # Errors
///
/// Same as [`read_u64`].
pub fn read_i64(buf: &[u8], pos: &mut usize) -> WireResult<i64> {
    read_u64(buf, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            buf.clear();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_round_trips() {
        let mut buf = Vec::new();
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            buf.clear();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos), Ok(v));
        }
    }

    #[test]
    fn small_magnitudes_are_one_byte() {
        let mut buf = Vec::new();
        write_i64(&mut buf, -64);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_i64(&mut buf, 63);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_and_overlong_are_errors() {
        assert_eq!(read_u64(&[0x80], &mut 0), Err(WireError::Truncated));
        assert_eq!(read_u64(&[], &mut 0), Err(WireError::Truncated));
        let overlong = [0xff; 11];
        assert_eq!(read_u64(&overlong, &mut 0), Err(WireError::VarintOverflow));
        // 10 bytes whose top byte carries bits beyond 2^64.
        let too_big = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert_eq!(read_u64(&too_big, &mut 0), Err(WireError::VarintOverflow));
    }
}
