//! A deterministic, seeded, hostile transport in sim-time.
//!
//! [`LinkPlan`] mirrors [`kgsl::FaultPlan`]'s idiom exactly: seeded
//! per-datagram fault rates plus scheduled link outages expanded eagerly
//! from the seed (via the shared [`kgsl::expand_poisson`] scaffolding), so
//! the same plan against the same send sequence misbehaves identically,
//! bit for bit. [`SimTransport`] is the runtime half: both directions of an
//! unreliable datagram link between the on-device sampler and the offsite
//! classifier.
//!
//! Faults modelled per datagram: loss, duplication, reordering (a datagram
//! is held back and released just after the next send in its direction),
//! truncation (a prefix survives — the frame CRC catches it downstream),
//! and uniform latency jitter. Scheduled outages drop everything sent
//! while the link is down, which is what forces the client's
//! reconnect-and-resume path.

use adreno_sim::time::{SimDuration, SimInstant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible description of how the link misbehaves.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPlan {
    /// Seed for every fault draw and the outage schedule.
    pub seed: u64,
    /// Per-datagram drop probability.
    pub loss: f64,
    /// Per-datagram duplication probability.
    pub duplicate: f64,
    /// Per-datagram probability of being held back behind the next send
    /// (delivered out of order).
    pub reorder: f64,
    /// Per-datagram probability of truncation to a strict prefix.
    pub truncate: f64,
    /// Base one-way latency.
    pub latency: SimDuration,
    /// Uniform extra latency in `[0, jitter)` added per delivery.
    pub jitter: SimDuration,
    /// Mean interarrival of link outages (`None` = never).
    pub outage_mean: Option<SimDuration>,
    /// How long each outage lasts.
    pub outage_len: SimDuration,
    /// Horizon over which outages are generated.
    pub horizon: SimDuration,
}

impl LinkPlan {
    /// A perfectly reliable link: fixed latency, nothing lost, nothing
    /// reordered. Running the split session over it must reproduce the
    /// in-process pipeline byte for byte.
    pub fn new(seed: u64) -> Self {
        LinkPlan {
            seed,
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            truncate: 0.0,
            latency: SimDuration::from_millis(2),
            jitter: SimDuration::ZERO,
            outage_mean: None,
            outage_len: SimDuration::from_millis(400),
            horizon: SimDuration::from_millis(60_000),
        }
    }

    /// Sets the per-datagram loss probability.
    pub fn with_loss(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.loss = rate;
        self
    }

    /// Sets the per-datagram duplication probability.
    pub fn with_duplication(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.duplicate = rate;
        self
    }

    /// Sets the per-datagram reorder probability.
    pub fn with_reorder(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.reorder = rate;
        self
    }

    /// Sets the per-datagram truncation probability.
    pub fn with_truncation(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.truncate = rate;
        self
    }

    /// Sets the base one-way latency and the uniform jitter on top.
    pub fn with_latency(mut self, latency: SimDuration, jitter: SimDuration) -> Self {
        self.latency = latency;
        self.jitter = jitter;
        self
    }

    /// Generates link outages with the given mean interarrival and length.
    pub fn with_outages(mut self, mean: SimDuration, len: SimDuration) -> Self {
        self.outage_mean = Some(mean);
        self.outage_len = len;
        self
    }

    /// Sets the horizon over which outages are generated.
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// A one-knob plan for sweeps: `intensity` in `[0, 1]` scales every
    /// fault rate; at 0 the plan is the perfect link.
    pub fn with_intensity(seed: u64, intensity: f64, horizon: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&intensity));
        let mut plan = LinkPlan::new(seed).with_horizon(horizon);
        if intensity > 0.0 {
            plan.loss = 0.20 * intensity;
            plan.duplicate = 0.06 * intensity;
            plan.reorder = 0.10 * intensity;
            plan.truncate = 0.06 * intensity;
            plan.jitter = SimDuration::from_millis(4).mul_f64(intensity);
            // Roughly two outages of a few hundred ms over the horizon at
            // full intensity.
            plan.outage_mean = Some(horizon.mul_f64(1.0 / (2.0 * intensity)));
            plan.outage_len = SimDuration::from_millis(350).mul_f64(intensity);
        }
        plan
    }
}

/// Which way a datagram travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Sampler → classifier.
    ToServer,
    /// Classifier → sampler.
    ToClient,
}

/// Counts of everything the transport did to the traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// Datagrams handed to the transport.
    pub sent: u64,
    /// Datagrams delivered to a receiver.
    pub delivered: u64,
    /// Datagrams dropped (loss draws plus outages).
    pub dropped: u64,
    /// Of the dropped, those dropped because the link was down.
    pub outage_drops: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Datagrams cut to a strict prefix.
    pub truncated: u64,
    /// Datagrams held back and delivered out of order.
    pub reordered: u64,
}

#[derive(Debug)]
struct InFlight {
    arrive: SimInstant,
    order: u64,
    bytes: Vec<u8>,
}

#[derive(Debug, Default)]
struct Lane {
    /// Sorted by `(arrive, order)`; drained from the front.
    queue: Vec<InFlight>,
    /// A datagram held back by a reorder draw, released just after the
    /// next send on this lane.
    held: Option<Vec<u8>>,
}

impl Lane {
    fn insert(&mut self, flight: InFlight) {
        let at =
            self.queue.partition_point(|q| (q.arrive, q.order) <= (flight.arrive, flight.order));
        self.queue.insert(at, flight);
    }
}

/// The runtime half of a [`LinkPlan`]: a bidirectional unreliable datagram
/// link, advanced purely by the sim-times passed into
/// [`send`](SimTransport::send) and [`recv`](SimTransport::recv).
#[derive(Debug)]
pub struct SimTransport {
    plan: LinkPlan,
    rng: StdRng,
    /// Sorted, non-overlapping `[start, end)` windows when the link is down.
    outages: Vec<(SimInstant, SimInstant)>,
    to_server: Lane,
    to_client: Lane,
    order: u64,
    stats: TransportStats,
}

impl SimTransport {
    /// Expands `plan` into a concrete transport. Deterministic: equal plans
    /// yield equal behaviour against equal call sequences.
    pub fn new(plan: &LinkPlan) -> Self {
        let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x1157_0C0A_57AB_1E00);
        let mut schedule: Vec<(SimInstant, ())> = Vec::new();
        if let Some(mean) = plan.outage_mean {
            kgsl::expand_poisson(&mut rng, &mut schedule, mean, plan.horizon, ());
        }
        schedule.sort_by_key(|(when, ())| when.as_nanos());
        let mut outages: Vec<(SimInstant, SimInstant)> = Vec::new();
        for (start, ()) in schedule {
            let end = start + plan.outage_len;
            match outages.last_mut() {
                // Merge overlapping windows so `is_down` stays a simple scan.
                Some((_, prev_end)) if start <= *prev_end => *prev_end = (*prev_end).max(end),
                _ => outages.push((start, end)),
            }
        }
        SimTransport {
            plan: plan.clone(),
            rng,
            outages,
            to_server: Lane::default(),
            to_client: Lane::default(),
            order: 0,
            stats: TransportStats::default(),
        }
    }

    /// Whether the link is inside a scheduled outage at `now`.
    pub fn is_down(&self, now: SimInstant) -> bool {
        self.outages.iter().any(|&(start, end)| start <= now && now < end)
    }

    /// Scheduled outage windows, for tests and reports.
    pub fn outages(&self) -> &[(SimInstant, SimInstant)] {
        &self.outages
    }

    /// Everything the transport has done so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    fn lane(&mut self, dir: Direction) -> &mut Lane {
        match dir {
            Direction::ToServer => &mut self.to_server,
            Direction::ToClient => &mut self.to_client,
        }
    }

    fn arrival(&mut self, now: SimInstant) -> SimInstant {
        let mut arrive = now + self.plan.latency;
        if self.plan.jitter > SimDuration::ZERO {
            arrive += SimDuration::from_nanos(self.rng.gen_range(0..self.plan.jitter.as_nanos()));
        }
        arrive
    }

    /// Hands one datagram to the link at sim-time `now`.
    pub fn send(&mut self, dir: Direction, now: SimInstant, bytes: Vec<u8>) {
        self.stats.sent += 1;
        if self.is_down(now) {
            self.stats.dropped += 1;
            self.stats.outage_drops += 1;
            return;
        }
        if self.plan.loss > 0.0 && self.rng.gen::<f64>() < self.plan.loss {
            self.stats.dropped += 1;
            return;
        }
        let mut bytes = bytes;
        if self.plan.truncate > 0.0
            && !bytes.is_empty()
            && self.rng.gen::<f64>() < self.plan.truncate
        {
            let keep = self.rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
            self.stats.truncated += 1;
        }
        let copies = if self.plan.duplicate > 0.0 && self.rng.gen::<f64>() < self.plan.duplicate {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let held_back =
            self.plan.reorder > 0.0 && copies == 1 && self.rng.gen::<f64>() < self.plan.reorder;
        if held_back && self.lane(dir).held.is_none() {
            self.stats.reordered += 1;
            self.lane(dir).held = Some(bytes);
            return;
        }
        for _ in 0..copies {
            let arrive = self.arrival(now);
            let order = self.order;
            self.order += 1;
            self.lane(dir).insert(InFlight { arrive, order, bytes: bytes.clone() });
        }
        // Release a previously held datagram just *after* this send, which
        // is what makes it arrive out of order.
        if let Some(late) = self.lane(dir).held.take() {
            let arrive = self.arrival(now) + SimDuration::from_nanos(1);
            let order = self.order;
            self.order += 1;
            self.lane(dir).insert(InFlight { arrive, order, bytes: late });
        }
    }

    /// Removes and returns every datagram due at or before `now` on `dir`,
    /// in arrival order.
    pub fn recv(&mut self, dir: Direction, now: SimInstant) -> Vec<Vec<u8>> {
        let lane = self.lane(dir);
        let due = lane.queue.partition_point(|q| q.arrive <= now);
        let delivered: Vec<Vec<u8>> = lane.queue.drain(..due).map(|q| q.bytes).collect();
        self.stats.delivered += delivered.len() as u64;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimInstant {
        SimInstant::from_millis(v)
    }

    #[test]
    fn perfect_link_delivers_in_order() {
        let mut t = SimTransport::new(&LinkPlan::new(1));
        for i in 0..10u8 {
            t.send(Direction::ToServer, ms(u64::from(i) * 10), vec![i]);
        }
        assert!(t.recv(Direction::ToServer, ms(1)).is_empty(), "nothing before latency");
        let got = t.recv(Direction::ToServer, ms(1_000));
        assert_eq!(got, (0..10u8).map(|i| vec![i]).collect::<Vec<_>>());
        assert_eq!(t.stats().dropped, 0);
        assert_eq!(t.stats().delivered, 10);
    }

    #[test]
    fn same_plan_same_behaviour() {
        let plan = LinkPlan::with_intensity(7, 0.8, SimDuration::from_secs(30));
        let run = |plan: &LinkPlan| {
            let mut t = SimTransport::new(plan);
            let mut log = Vec::new();
            for i in 0..200u64 {
                t.send(Direction::ToServer, ms(i * 5), vec![i as u8; 16]);
                log.extend(t.recv(Direction::ToServer, ms(i * 5)));
            }
            log.extend(t.recv(Direction::ToServer, ms(10_000)));
            (log, t.stats())
        };
        assert_eq!(run(&plan), run(&plan));
    }

    #[test]
    fn lossy_plan_actually_drops_and_reorders() {
        let plan = LinkPlan::new(3)
            .with_loss(0.3)
            .with_reorder(0.2)
            .with_duplication(0.1)
            .with_truncation(0.1)
            .with_latency(SimDuration::from_millis(2), SimDuration::from_millis(3));
        let mut t = SimTransport::new(&plan);
        for i in 0..500u64 {
            t.send(Direction::ToServer, ms(i * 4), vec![7; 32]);
        }
        let delivered = t.recv(Direction::ToServer, ms(100_000));
        let s = t.stats();
        assert!(s.dropped > 50, "loss 0.3 over 500 sends barely fired: {s:?}");
        assert!(s.duplicated > 10, "{s:?}");
        assert!(s.reordered > 20, "{s:?}");
        assert!(s.truncated > 10, "{s:?}");
        assert!(delivered.iter().any(|d| d.len() < 32), "truncated copies must surface");
        assert_eq!(s.delivered, delivered.len() as u64);
    }

    #[test]
    fn outages_drop_everything_while_down() {
        let plan =
            LinkPlan::new(9).with_outages(SimDuration::from_secs(2), SimDuration::from_millis(500));
        let mut t = SimTransport::new(&plan);
        assert!(!t.outages().is_empty(), "outage schedule must be populated");
        let (start, end) = t.outages()[0];
        let down_at = start + (end - start) / 2;
        assert!(t.is_down(down_at));
        t.send(Direction::ToClient, down_at, vec![1]);
        assert_eq!(t.stats().outage_drops, 1);
        assert!(t.recv(Direction::ToClient, down_at + SimDuration::from_secs(10)).is_empty());
    }

    #[test]
    fn zero_intensity_is_the_perfect_link() {
        let plan = LinkPlan::with_intensity(4, 0.0, SimDuration::from_secs(10));
        assert_eq!(plan, LinkPlan::new(4).with_horizon(SimDuration::from_secs(10)));
    }
}
