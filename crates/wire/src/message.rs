//! The versioned message set and its compact binary codec.
//!
//! Client → server: [`Message::Hello`] (session open / reconnect-resume),
//! [`Message::SampleBatch`] (the counter data itself), [`Message::Fin`]
//! (end of sampling, carrying the sampler's degradation report).
//! Server → client: [`Message::Ack`] (cumulative), [`Message::InferredKeys`]
//! (presses streamed back as they commit), [`Message::FinAck`] (the
//! recovered credential).
//!
//! # Batch encoding
//!
//! A sample batch is stored and encoded *columnar*, mirroring the SoA
//! [`Trace`](gpu_sc_attack::trace::Trace): the timestamp column followed by
//! one column per tracked counter, each as `first value` + zigzagged
//! delta-of-delta varints. Counters are cumulative and near-linear in time,
//! and read timestamps sit on a jittered 8 ms grid — second differences of
//! both are tiny, so almost every residual fits in one byte. The `exfil`
//! experiment reports the resulting bytes-per-keystroke.

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use adreno_sim::time::SimInstant;
use gpu_sc_attack::online::InferredKey;
use gpu_sc_attack::registry::ModelDigest;
use gpu_sc_attack::sampler::SamplerReport;
use gpu_sc_attack::trace::Sample;

use crate::error::{WireError, WireResult};
use crate::varint;

/// A batch of counter samples in columnar form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleBatch {
    ats: Vec<u64>,
    cols: [Vec<u64>; NUM_TRACKED],
}

impl SampleBatch {
    /// An empty batch.
    pub fn new() -> Self {
        SampleBatch::default()
    }

    /// Builds a batch from row-form samples.
    pub fn from_samples(samples: &[Sample]) -> Self {
        let mut batch = SampleBatch::new();
        for s in samples {
            batch.push(*s);
        }
        batch
    }

    /// Appends one sample (scattered into the columns).
    pub fn push(&mut self, s: Sample) {
        self.ats.push(s.at.as_nanos());
        for (col, &v) in self.cols.iter_mut().zip(s.values.as_array()) {
            col.push(v);
        }
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.ats.len()
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.ats.is_empty()
    }

    /// Reassembles the row-form samples in order.
    pub fn samples(&self) -> Vec<Sample> {
        (0..self.len())
            .map(|i| {
                let mut values = [0u64; NUM_TRACKED];
                for (v, col) in values.iter_mut().zip(&self.cols) {
                    *v = col[i];
                }
                Sample {
                    at: SimInstant::from_nanos(self.ats[i]),
                    values: CounterSet::from_array(values),
                }
            })
            .collect()
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.len() as u64);
        encode_column(buf, &self.ats);
        for col in &self.cols {
            encode_column(buf, col);
        }
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> WireResult<Self> {
        let count = varint::read_u64(buf, pos)?;
        // Each sample costs at least one byte per column; reject counts the
        // buffer cannot possibly back before allocating anything.
        if count as u128 > (buf.len() - *pos) as u128 {
            return Err(WireError::LengthMismatch);
        }
        let count = count as usize;
        let ats = decode_column(buf, pos, count)?;
        let mut cols: [Vec<u64>; NUM_TRACKED] = Default::default();
        for col in &mut cols {
            *col = decode_column(buf, pos, count)?;
        }
        Ok(SampleBatch { ats, cols })
    }
}

/// One column as `first` + zigzagged delta-of-delta residuals. Wrapping
/// arithmetic throughout: the codec is an exact bijection on any `u64`
/// sequence, monotone or not.
fn encode_column(buf: &mut Vec<u8>, col: &[u64]) {
    let Some(&first) = col.first() else { return };
    varint::write_u64(buf, first);
    let mut prev = first;
    let mut prev_delta = 0i64;
    for &v in &col[1..] {
        let delta = v.wrapping_sub(prev) as i64;
        varint::write_i64(buf, delta.wrapping_sub(prev_delta));
        prev = v;
        prev_delta = delta;
    }
}

fn decode_column(buf: &[u8], pos: &mut usize, count: usize) -> WireResult<Vec<u64>> {
    let mut col = Vec::with_capacity(count);
    if count == 0 {
        return Ok(col);
    }
    let first = varint::read_u64(buf, pos)?;
    col.push(first);
    let mut prev = first;
    let mut prev_delta = 0i64;
    for _ in 1..count {
        let delta = prev_delta.wrapping_add(varint::read_i64(buf, pos)?);
        prev = prev.wrapping_add(delta as u64);
        col.push(prev);
        prev_delta = delta;
    }
    Ok(col)
}

/// Everything that can cross the link, under one version tag (see
/// [`crate::frame::WIRE_VERSION`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Opens a session, or re-opens it after a reconnect.
    Hello {
        /// Random id binding both directions of the conversation.
        session_id: u64,
        /// The lowest client frame not yet acknowledged — where the
        /// retransmit window restarts after a reconnect.
        resume_from: u64,
        /// Content address of the classifier model the sampler was trained
        /// against. The server resolves it in its own registry-backed
        /// store; a non-zero digest it does not hold is a typed error
        /// ([`gpu_sc_attack::service::ServiceError::ModelDigestMismatch`]).
        /// [`ModelDigest::ZERO`] requests legacy device recognition.
        model_digest: ModelDigest,
    },
    /// A batch of counter samples.
    SampleBatch(SampleBatch),
    /// End of sampling; carries the sampler's own degradation report so
    /// the classifier side can assemble the full session result.
    Fin {
        /// Cumulative sampler report at session end.
        report: SamplerReport,
    },
    /// Cumulative acknowledgement: every client frame below
    /// `next_expected` has been applied.
    Ack {
        /// The next client sequence number the server will apply.
        next_expected: u64,
    },
    /// Presses the classifier committed since its last emission.
    InferredKeys {
        /// Newly committed presses, in commit order.
        keys: Vec<InferredKey>,
    },
    /// Final response: the session is finished server-side.
    FinAck {
        /// The recovered credential (empty when inference failed).
        recovered: String,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_SAMPLE_BATCH: u8 = 0x02;
const TAG_FIN: u8 = 0x03;
const TAG_ACK: u8 = 0x04;
const TAG_INFERRED_KEYS: u8 = 0x05;
const TAG_FIN_ACK: u8 = 0x06;

/// The [`SamplerReport`] fields in wire order. One place to keep the codec
/// and the struct in sync.
fn report_fields(r: &SamplerReport) -> [u64; 11] {
    [
        r.attempted,
        r.acquired,
        r.scheduler_drops,
        r.abandoned,
        r.transient_errors,
        r.denied_reads,
        r.revocations_seen,
        r.reservation_losses,
        r.fd_reopens,
        r.reservations_reacquired,
        r.retries_spent,
    ]
}

fn report_from_fields(f: [u64; 11]) -> SamplerReport {
    SamplerReport {
        attempted: f[0],
        acquired: f[1],
        scheduler_drops: f[2],
        abandoned: f[3],
        transient_errors: f[4],
        denied_reads: f[5],
        revocations_seen: f[6],
        reservation_losses: f[7],
        fd_reopens: f[8],
        reservations_reacquired: f[9],
        retries_spent: f[10],
    }
}

fn encode_key(buf: &mut Vec<u8>, key: &InferredKey) {
    varint::write_u64(buf, key.at.as_nanos());
    // decided_at trails at by microseconds-to-milliseconds: a small delta.
    varint::write_i64(buf, key.decided_at.as_nanos().wrapping_sub(key.at.as_nanos()) as i64);
    varint::write_u64(buf, u64::from(u32::from(key.ch)));
    buf.push(u8::from(key.via_split));
}

fn decode_key(buf: &[u8], pos: &mut usize) -> WireResult<InferredKey> {
    let at = varint::read_u64(buf, pos)?;
    let decided_delta = varint::read_i64(buf, pos)?;
    let ch = varint::read_u64(buf, pos)?;
    let ch = u32::try_from(ch)
        .ok()
        .and_then(char::from_u32)
        .ok_or(WireError::Malformed("char code point"))?;
    let via_split = match buf.get(*pos) {
        Some(0) => false,
        Some(1) => true,
        Some(_) => return Err(WireError::Malformed("via_split flag")),
        None => return Err(WireError::Truncated),
    };
    *pos += 1;
    Ok(InferredKey {
        at: SimInstant::from_nanos(at),
        decided_at: SimInstant::from_nanos(at.wrapping_add(decided_delta as u64)),
        ch,
        via_split,
    })
}

impl Message {
    /// Encodes the message into a payload (to be wrapped in a
    /// [`Frame`](crate::frame::Frame)).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::Hello { session_id, resume_from, model_digest } => {
                buf.push(TAG_HELLO);
                varint::write_u64(&mut buf, *session_id);
                varint::write_u64(&mut buf, *resume_from);
                buf.extend_from_slice(model_digest.as_bytes());
            }
            Message::SampleBatch(batch) => {
                buf.push(TAG_SAMPLE_BATCH);
                batch.encode_into(&mut buf);
            }
            Message::Fin { report } => {
                buf.push(TAG_FIN);
                for field in report_fields(report) {
                    varint::write_u64(&mut buf, field);
                }
            }
            Message::Ack { next_expected } => {
                buf.push(TAG_ACK);
                varint::write_u64(&mut buf, *next_expected);
            }
            Message::InferredKeys { keys } => {
                buf.push(TAG_INFERRED_KEYS);
                varint::write_u64(&mut buf, keys.len() as u64);
                for key in keys {
                    encode_key(&mut buf, key);
                }
            }
            Message::FinAck { recovered } => {
                buf.push(TAG_FIN_ACK);
                varint::write_u64(&mut buf, recovered.len() as u64);
                buf.extend_from_slice(recovered.as_bytes());
            }
        }
        buf
    }

    /// Decodes a payload produced by [`Message::encode`]. The whole buffer
    /// must be consumed.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] for every malformation; this function never
    /// panics, whatever the input bytes.
    pub fn decode(buf: &[u8]) -> WireResult<Message> {
        let mut pos = 0;
        let tag = *buf.first().ok_or(WireError::Truncated)?;
        pos += 1;
        let message = match tag {
            TAG_HELLO => {
                let session_id = varint::read_u64(buf, &mut pos)?;
                let resume_from = varint::read_u64(buf, &mut pos)?;
                let end = pos.checked_add(32).ok_or(WireError::Truncated)?;
                if end > buf.len() {
                    return Err(WireError::Truncated);
                }
                let mut digest = [0u8; 32];
                digest.copy_from_slice(&buf[pos..end]);
                pos = end;
                Message::Hello {
                    session_id,
                    resume_from,
                    model_digest: ModelDigest::from_bytes(digest),
                }
            }
            TAG_SAMPLE_BATCH => Message::SampleBatch(SampleBatch::decode_from(buf, &mut pos)?),
            TAG_FIN => {
                let mut fields = [0u64; 11];
                for field in &mut fields {
                    *field = varint::read_u64(buf, &mut pos)?;
                }
                Message::Fin { report: report_from_fields(fields) }
            }
            TAG_ACK => Message::Ack { next_expected: varint::read_u64(buf, &mut pos)? },
            TAG_INFERRED_KEYS => {
                let count = varint::read_u64(buf, &mut pos)?;
                // ≥ 4 bytes per key (three varints + flag).
                if count as u128 * 4 > (buf.len() - pos) as u128 {
                    return Err(WireError::LengthMismatch);
                }
                let mut keys = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    keys.push(decode_key(buf, &mut pos)?);
                }
                Message::InferredKeys { keys }
            }
            TAG_FIN_ACK => {
                let len = varint::read_u64(buf, &mut pos)?;
                if len as u128 > (buf.len() - pos) as u128 {
                    return Err(WireError::LengthMismatch);
                }
                let end = pos + len as usize;
                let recovered = std::str::from_utf8(&buf[pos..end])
                    .map_err(|_| WireError::Malformed("utf-8 text"))?
                    .to_owned();
                pos = end;
                Message::FinAck { recovered }
            }
            other => return Err(WireError::BadTag(other)),
        };
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ms: u64, base: u64) -> Sample {
        let mut values = [0u64; NUM_TRACKED];
        for (i, v) in values.iter_mut().enumerate() {
            *v = base + i as u64 * 17;
        }
        Sample { at: SimInstant::from_millis(at_ms), values: CounterSet::from_array(values) }
    }

    #[test]
    fn batch_round_trips_columnar() {
        let samples = vec![sample(0, 5), sample(8, 5), sample(16, 900), sample(24, 901)];
        let batch = SampleBatch::from_samples(&samples);
        let payload = Message::SampleBatch(batch.clone()).encode();
        match Message::decode(&payload) {
            Ok(Message::SampleBatch(decoded)) => {
                assert_eq!(decoded, batch);
                assert_eq!(decoded.samples(), samples);
            }
            other => panic!("unexpected decode {other:?}"),
        }
    }

    #[test]
    fn steady_grid_costs_about_a_byte_per_column_entry() {
        // 32 samples on a clean 8 ms grid with idle counters: after the
        // batch header every timestamp and value residual is zero → 1 byte.
        let samples: Vec<Sample> = (0..32).map(|i| sample(i * 8, 1000)).collect();
        let payload = Message::SampleBatch(SampleBatch::from_samples(&samples)).encode();
        // Header + 12 columns × (first value + 31 one-byte residuals).
        assert!(
            payload.len() < 12 * 40 + 16,
            "steady-state batch blew up to {} bytes",
            payload.len()
        );
    }

    #[test]
    fn empty_batch_is_valid() {
        let payload = Message::SampleBatch(SampleBatch::new()).encode();
        assert_eq!(Message::decode(&payload), Ok(Message::SampleBatch(SampleBatch::new())));
    }

    #[test]
    fn hello_round_trips_model_digest() {
        let digest = ModelDigest::of(b"some model blob");
        let hello = Message::Hello { session_id: 77, resume_from: 3, model_digest: digest };
        let payload = hello.encode();
        assert_eq!(Message::decode(&payload), Ok(hello));
    }

    #[test]
    fn hello_with_truncated_digest_rejected() {
        let digest = ModelDigest::of(b"some model blob");
        let mut payload =
            Message::Hello { session_id: 77, resume_from: 3, model_digest: digest }.encode();
        payload.truncate(payload.len() - 5);
        assert_eq!(Message::decode(&payload), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Message::Ack { next_expected: 3 }.encode();
        payload.push(0);
        assert_eq!(Message::decode(&payload), Err(WireError::TrailingBytes));
    }

    #[test]
    fn absurd_counts_rejected_before_allocation() {
        // An InferredKeys message claiming u64::MAX keys in 3 bytes.
        let mut payload = vec![TAG_INFERRED_KEYS];
        varint::write_u64(&mut payload, u64::MAX);
        assert_eq!(Message::decode(&payload), Err(WireError::LengthMismatch));
        let mut payload = vec![TAG_SAMPLE_BATCH];
        varint::write_u64(&mut payload, u64::MAX);
        assert_eq!(Message::decode(&payload), Err(WireError::LengthMismatch));
    }
}
