//! The deterministic-parallelism contract: for a fixed seed, every result
//! and every captured report is byte-identical at any worker count.
//!
//! Trial inputs are pre-drawn in sequential draw order and folded back in
//! trial order, so `--jobs 1` and `--jobs 4` must agree exactly — including
//! under an active fault plan, where per-trial fault schedules derive from
//! the per-trial seeds.

use adreno_sim::time::SimDuration;
use bench::experiments::{accuracy, fleet, robustness, Ctx};
use bench::report::capture;
use bench::{eval_credentials, ModelCache, TrialOptions};
use input_bot::corpus::CredentialKind;
use kgsl::FaultPlan;
use minipool::Pool;

/// A small evaluation run at a given worker count.
fn eval_at(jobs: usize, fault_plan: Option<FaultPlan>) -> gpu_sc_attack::metrics::Aggregate {
    eval_at_budget(jobs, fault_plan, None)
}

fn eval_at_budget(
    jobs: usize,
    fault_plan: Option<FaultPlan>,
    retry_budget: Option<u32>,
) -> gpu_sc_attack::metrics::Aggregate {
    let pool = if jobs == 1 { Pool::sequential() } else { Pool::new(jobs) };
    let cache = ModelCache::new();
    let mut opts = TrialOptions::paper_default(0);
    opts.fault_plan = fault_plan;
    if let Some(budget) = retry_budget {
        opts.service.sampler.retry = gpu_sc_attack::sampler::RetryPolicy::with_budget(budget);
    }
    let store = cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    eval_credentials(&pool, &store, &opts, CredentialKind::Username, 10, 8, 0xD37)
}

#[test]
fn eval_credentials_is_identical_at_any_worker_count() {
    let seq = eval_at(1, None);
    let par = eval_at(4, None);
    assert_eq!(seq, par, "jobs=4 must reproduce jobs=1 exactly");
}

#[test]
fn eval_credentials_is_identical_under_faults() {
    // High intensity, so the plan visibly perturbs the run even through
    // the sampler's retry budget.
    let plan = FaultPlan::with_intensity(0xFA, 0.9, SimDuration::from_secs(8));
    let seq = eval_at(1, Some(plan.clone()));
    let par = eval_at(4, Some(plan.clone()));
    assert_eq!(seq, par, "fault schedules must replay identically in parallel");
    // Non-vacuousness: the default retry budget can absorb this plan
    // completely, so pin the perturbation against the fail-stop sampler
    // (budget 0), which cannot.
    assert_ne!(
        eval_at_budget(1, Some(plan), Some(0)),
        eval_at(1, None),
        "fault plan should perturb the fail-stop run"
    );
}

/// Captured experiment reports — what the runner prints — are identical
/// between a sequential and a 4-worker context.
#[test]
fn experiment_reports_are_identical_at_any_worker_count() {
    let run = |jobs: usize| -> String {
        let pool = if jobs == 1 { Pool::sequential() } else { Pool::new(jobs) };
        let ctx = Ctx::with_pool(0.1, pool);
        let ((), text) = capture(|| {
            accuracy::fig11(&ctx);
            robustness::fig21(&ctx);
        });
        text
    };
    let seq = run(1);
    let par = run(4);
    assert!(!seq.is_empty(), "reports should capture, not hit stdout");
    assert_eq!(seq, par, "captured reports must not depend on worker count");
}

/// The fleet orchestration matrix — many concurrent sessions interleaved
/// on the ring run queue, with live fault and link plans — captures the
/// same report at any worker count. Throughput (wall-clock) goes to
/// stderr and telemetry only, so it cannot perturb this.
#[test]
fn fleet_report_is_identical_at_any_worker_count() {
    let run = |jobs: usize| -> String {
        let pool = if jobs == 1 { Pool::sequential() } else { Pool::new(jobs) };
        let ctx = Ctx::with_pool(0.05, pool);
        let ((), text) = capture(|| fleet::fleet(&ctx));
        text
    };
    let seq = run(1);
    let par = run(4);
    assert!(seq.contains("salvaged"), "fleet report should tabulate session outcomes");
    assert_eq!(seq, par, "fleet report must not depend on worker count");
}

/// Telemetry collection (aggregates + trace events) must not leak into the
/// captured reports: with tracing on, `--jobs 1` and `--jobs 4` still agree
/// byte for byte.
#[test]
fn reports_stay_identical_with_telemetry_enabled() {
    spansight::enable_tracing(4096);
    let run = |jobs: usize| -> String {
        let pool = if jobs == 1 { Pool::sequential() } else { Pool::new(jobs) };
        let ctx = Ctx::with_pool(0.1, pool);
        let ((), text) = capture(|| accuracy::fig17(&ctx));
        text
    };
    let seq = run(1);
    let par = run(4);
    assert!(spansight::tracing_enabled());
    assert_eq!(seq, par, "telemetry must stay off the report stream");
}
