//! End-to-end telemetry contract: an instrumented run surfaces spans from
//! every layer of the signal path, the Chrome exporter emits valid trace
//! JSON, and telemetry collection never perturbs deterministic output.
//!
//! All telemetry lands in one process-global registry, so assertions here
//! check *presence* (≥) rather than exact counts — other tests in the same
//! process contribute to the same aggregates.

use bench::experiments::{accuracy, Ctx};
use bench::report::capture;
use minipool::Pool;

/// Runs a small experiment and asserts the snapshot now holds spans from
/// the kgsl, adreno-sim, and core layers plus pipeline counters.
#[test]
fn end_to_end_run_records_spans_from_every_layer() {
    spansight::enable_tracing(4096);
    let track = spansight::register_track("telemetry-test");
    {
        let _track = spansight::enter_track(track);
        let ctx = Ctx::with_pool(0.1, Pool::sequential());
        let ((), _text) = capture(|| accuracy::fig11(&ctx));
    }
    spansight::flush();

    let snap = spansight::snapshot();
    let mine = snap.for_track(track);
    let span_keys: Vec<(&str, &str)> = mine.spans.iter().map(|s| (s.cat, s.name)).collect();
    for expect in [
        ("kgsl", "ioctl.perfcounter_read"),
        ("core", "sampler.sample_until"),
        ("core", "service.eavesdrop"),
    ] {
        assert!(span_keys.contains(&expect), "missing span {expect:?} in {span_keys:?}");
    }
    assert!(mine.counter("kgsl.ioctl.calls") > 0);
    assert!(mine.counter("core.sampler.acquired") > 0);
    // The streaming pipeline interleaves its stages per sample instead of
    // running spanned whole-trace passes; stage activity surfaces as
    // counters.
    assert!(mine.counter("core.trace.deltas") > 0);
    assert!(mine.counter("core.service.sessions") > 0);
    // The render memo cache is process-global, so a sibling test may have
    // warmed it and render_impl (the "adreno"/"render" span) never runs
    // here. The memo counters fire on hits and misses alike.
    assert!(
        mine.counter("adreno.memo.render_hits") + mine.counter("adreno.memo.render_misses") > 0,
        "adreno-sim layer produced no telemetry"
    );
    assert!(
        mine.hists.iter().any(|h| h.name == "core.sampler.slot_retries"),
        "slot-retry histogram missing"
    );
}

/// The Chrome exporter's output parses as JSON and carries the expected
/// trace-event structure for a real instrumented run.
#[test]
fn chrome_export_of_real_run_is_valid_json() {
    spansight::enable_tracing(4096);
    let track = spansight::register_track("telemetry-json-test");
    {
        let _track = spansight::enter_track(track);
        let ctx = Ctx::with_pool(0.1, Pool::sequential());
        let ((), _text) = capture(|| accuracy::fig11(&ctx));
    }
    let (events, _dropped) = spansight::take_events();
    assert!(!events.is_empty(), "tracing was enabled; events expected");

    let json = spansight::chrome::render(&events, &spansight::snapshot().tracks);
    spansight::chrome::validate_json(&json).unwrap_or_else(|at| {
        panic!("invalid JSON at byte {at}: {}", &json[at..(at + 80).min(json.len())])
    });
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""), "complete spans expected in trace");
    assert!(json.contains("\"cat\":\"kgsl\""));
}
