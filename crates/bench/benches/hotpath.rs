//! Micro-benchmarks of the data-oriented hot-path rewrite, pairing each
//! optimised stage with its reference implementation:
//!
//! * nearest-centroid classification — naive full-distance scan vs the
//!   prepared-centroid search with partial-distance early exit;
//! * delta extraction — an AoS walk over materialised samples vs the
//!   columnar batch extractor on the SoA trace;
//! * the sampling read loop — a per-read allocated request vector vs the
//!   sampler's reusable scratch buffer.
//!
//! Every pair is semantically equivalent (pinned by proptests in
//! `crates/core/tests/proptests.rs`); these benches quantify the win.

use adreno_sim::counters::{CounterSet, ALL_TRACKED, NUM_TRACKED};
use adreno_sim::time::SimInstant;
use android_ui::sim::SimConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_sc_attack::offline::{Trainer, TrainerConfig};
use gpu_sc_attack::sampler::{Sampler, SamplerConfig};
use gpu_sc_attack::stage::Stage;
use gpu_sc_attack::trace::{extract_deltas_with_resets, DeltaStage, Sample, Trace};
use gpu_sc_attack::ClassifierModel;
use kgsl::abi::{IoctlRequest, KgslPerfcounterReadGroup, IOCTL_KGSL_PERFCOUNTER_READ};

fn trained_model() -> ClassifierModel {
    let cfg = SimConfig::paper_default(0);
    Trainer::new(TrainerConfig::default()).train(cfg.device, cfg.keyboard, cfg.app)
}

/// Mixed probe workload shaped like a real session: mostly rejects (ambient
/// redraws and noise, the ~79k-reject case the pruning targets) plus some
/// exact centroid replays (accepts).
fn probe_workload(model: &ClassifierModel) -> Vec<CounterSet> {
    let mut probes = Vec::new();
    for (i, c) in model.centroids().iter().enumerate() {
        probes.push(c.values); // accept
        let mut arr = *c.values.as_array();
        for v in arr.iter_mut() {
            *v = *v * 3 / 2 + 1_000 + i as u64;
        }
        probes.push(CounterSet::from_array(arr)); // reject: off in every dim
    }
    probes
}

fn bench_classify_naive_vs_pruned(c: &mut Criterion) {
    let model = trained_model();
    let probes = probe_workload(&model);
    c.bench_function("classify/naive_full_scan", |b| {
        b.iter(|| {
            for v in &probes {
                black_box(model.classify_naive(black_box(v)));
            }
        })
    });
    c.bench_function("classify/pruned_prepared_centroids", |b| {
        b.iter(|| {
            for v in &probes {
                black_box(model.classify(black_box(v)));
            }
        })
    });
}

/// A synthetic 5k-sample monotone trace with idle windows and a couple of
/// counter resets — the shape `extract_deltas` sees in a long session.
fn synthetic_trace() -> (Trace, Vec<Sample>) {
    let mut trace = Trace::with_capacity(5_000);
    let mut acc = [0u64; NUM_TRACKED];
    for i in 0..5_000u64 {
        if i % 1_024 == 1_000 {
            acc = [i; NUM_TRACKED]; // slumber: registers restart
        } else if i % 3 != 0 {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += (i % 97) * (j as u64 + 1);
            }
        } // else: idle window, values unchanged
        trace.push(SimInstant::from_millis(i * 8), CounterSet::from_array(acc));
    }
    let aos: Vec<Sample> = trace.iter().collect();
    (trace, aos)
}

fn bench_extraction_aos_vs_soa(c: &mut Criterion) {
    let (trace, aos) = synthetic_trace();
    c.bench_function("delta_extraction/aos_streaming_stage", |b| {
        b.iter(|| {
            let mut stage = DeltaStage::new();
            let mut out = Vec::new();
            for s in &aos {
                stage.push(*s, &mut out);
            }
            stage.finish(&mut out);
            black_box((out, stage.resets()))
        })
    });
    c.bench_function("delta_extraction/soa_columnar_batch", |b| {
        b.iter(|| black_box(extract_deltas_with_resets(black_box(&trace))))
    });
}

fn bench_read_loop_alloc_vs_scratch(c: &mut Criterion) {
    let sim = android_ui::UiSimulation::new(SimConfig::paper_default(0));
    let mut sampler = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
    let device = std::sync::Arc::clone(sim.device());
    let fd = sampler.fd();
    // The pre-refactor read path: build the request vector on the heap for
    // every read, exactly as `read_once` used to.
    c.bench_function("read_loop/allocating_request_vec", |b| {
        b.iter(|| {
            let mut reads: Vec<KgslPerfcounterReadGroup> = ALL_TRACKED
                .iter()
                .map(|t| {
                    let id = t.id();
                    KgslPerfcounterReadGroup::new(id.group.kgsl_id(), id.countable)
                })
                .collect();
            device
                .ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
                .unwrap();
            let mut out = CounterSet::ZERO;
            for (t, r) in ALL_TRACKED.iter().zip(reads.iter()) {
                out[*t] = r.value;
            }
            black_box(out)
        })
    });
    c.bench_function("read_loop/reused_scratch_buffer", |b| {
        b.iter(|| black_box(sampler.read_once(black_box(&device)).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_classify_naive_vs_pruned,
    bench_extraction_aos_vs_soa,
    bench_read_loop_alloc_vs_scratch
);
criterion_main!(benches);
