//! Micro-benchmarks of the hot-path kernels, pairing each optimised stage
//! with a reference implementation *in the same binary and run*:
//!
//! * nearest-centroid classification — naive full-distance scan, the
//!   PR 5-era scalar pruned scan (retained verbatim below), and the current
//!   pre-whitened `simdlite` kernel scan with the norm-gap prescreen;
//! * batched classification — per-delta `classify` calls vs one row-outer
//!   `classify_batch` pass over the same burst;
//! * delta extraction — the AoS streaming stage, the PR 5-era row-major
//!   batch pass (retained verbatim), and the current regime-adaptive
//!   extractor, on a dense synthetic trace *and* on a paper-regime
//!   idle-dominated trace (5–8 ms sampling vs ~250 ms keystroke spacing);
//! * the sampling read loop — per-read allocated request vector vs the
//!   sampler's reusable scratch buffer.
//!
//! The references are compiled into this bench rather than compared against
//! recorded numbers because the host measurably drifts between runs; only
//! same-run ratios are trustworthy. Optimised/reference pairs are
//! semantically equivalent (pinned by proptests in
//! `crates/core/tests/proptests.rs`; the integer extraction pairs are also
//! asserted bit-equal right here).

use adreno_sim::counters::{CounterSet, ALL_TRACKED, NUM_TRACKED};
use adreno_sim::time::SimInstant;
use android_ui::sim::SimConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_sc_attack::registry::Registry;
use gpu_sc_attack::sampler::{Sampler, SamplerConfig};
use gpu_sc_attack::stage::Stage;
use gpu_sc_attack::trace::{
    extract_deltas_with_resets, extract_deltas_with_resets_scratch, Delta, DeltaStage,
    ExtractScratch, Sample, Trace,
};
use gpu_sc_attack::{BatchScratch, ClassifierModel};
use kgsl::abi::{IoctlRequest, KgslPerfcounterReadGroup, IOCTL_KGSL_PERFCOUNTER_READ};

fn trained_model() -> ClassifierModel {
    let cfg = SimConfig::paper_default(0);
    Registry::default().get_or_train(cfg.device, cfg.keyboard, cfg.app).model().clone()
}

/// Mixed probe workload shaped like the deltas a live session actually
/// feeds the classifier (§5.1): per key, one clean popup frame (accept),
/// one ambient redraw (a field-echo frame from the model's own signature
/// table — the cursor-blink/redraw rejects that dominate idle typing), one
/// merged frame (popup + ambient sharing a vsync window, rejected by the
/// magnitude gate), and one split frame (roughly half a popup caught by a
/// read boundary, rejected on distance).
fn probe_workload(model: &ClassifierModel) -> Vec<CounterSet> {
    let ambients = model.ambient_signatures();
    let mut probes = Vec::new();
    for (i, c) in model.centroids().iter().enumerate() {
        probes.push(c.values); // accept: clean key frame
        let ambient =
            if ambients.is_empty() { *model.app_signature() } else { ambients[i % ambients.len()] };
        probes.push(ambient); // reject: ambient redraw
        let mut merged = *c.values.as_array();
        for (m, a) in merged.iter_mut().zip(ambient.as_array()) {
            *m += a;
        }
        probes.push(CounterSet::from_array(merged)); // reject: merged frame
        let split = c.values.as_array().map(|v| v / 2);
        probes.push(CounterSet::from_array(split)); // reject: split frame
    }
    probes
}

/// The PR 5-era classifier hot path, retained verbatim as the same-run
/// baseline: row-major `f64` centroid copies (not pre-whitened), a scalar
/// `((a - b) * w)²` accumulation with per-element early exit, and the same
/// telemetry wrapper `classify` carried then. Only the kernel generation
/// differs from `ClassifierModel::classify`; the algorithm (nearest
/// centroid within `C_th`, magnitude gate) is the same.
struct Pr5Classifier {
    rows: Vec<f64>,
    weights: [f64; NUM_TRACKED],
    threshold: f64,
    gate_totals: Vec<f64>,
    chars: Vec<char>,
}

impl Pr5Classifier {
    fn from_model(model: &ClassifierModel) -> Self {
        let mut rows = Vec::with_capacity(model.centroids().len() * NUM_TRACKED);
        for c in model.centroids() {
            rows.extend(c.values.as_array().iter().map(|&v| v as f64));
        }
        let gate_totals = model
            .centroids()
            .iter()
            .map(|c| {
                model
                    .centroids()
                    .iter()
                    .find(|o| o.ch == c.ch)
                    .map(|o| o.values.total())
                    .unwrap_or(0) as f64
            })
            .collect();
        Pr5Classifier {
            rows,
            weights: *model.weights(),
            threshold: model.threshold(),
            gate_totals,
            chars: model.centroids().iter().map(|c| c.ch).collect(),
        }
    }

    fn nearest_pruned(&self, v: &CounterSet) -> (usize, f64) {
        let av = v.to_f64();
        let mut best = (0usize, f64::INFINITY);
        let mut best_acc = f64::INFINITY;
        'candidates: for (idx, row) in self.rows.chunks_exact(NUM_TRACKED).enumerate() {
            let mut acc = 0.0;
            for i in 0..NUM_TRACKED {
                let d = (av[i] - row[i]) * self.weights[i];
                acc += d * d;
                if acc >= best_acc {
                    continue 'candidates;
                }
            }
            let d = acc.sqrt();
            if d < best.1 {
                best = (idx, d);
                best_acc = acc;
            }
        }
        best
    }

    fn classify(&self, v: &CounterSet) -> (char, bool) {
        let started = std::time::Instant::now();
        let (idx, distance) = self.nearest_pruned(v);
        let ch = self.chars[idx];
        let accepted = if distance <= self.threshold {
            let centroid_total = self.gate_totals[idx];
            let total = v.total() as f64;
            centroid_total > 0.0
                && (total - centroid_total).abs()
                    <= centroid_total * ClassifierModel::MAGNITUDE_TOLERANCE
        } else {
            false
        };
        spansight::record(
            "core.classify.latency_ns",
            gpu_sc_attack::classify::CLASSIFY_LATENCY_EDGES,
            started.elapsed().as_nanos() as u64,
        );
        spansight::count(
            if accepted { "core.classify.accepted" } else { "core.classify.rejected" },
            1,
        );
        (ch, accepted)
    }
}

fn bench_classify_naive_vs_pruned(c: &mut Criterion) {
    let model = trained_model();
    let probes = probe_workload(&model);
    c.bench_function("classify/naive_full_scan", |b| {
        b.iter(|| {
            for v in &probes {
                black_box(model.classify_naive(black_box(v)));
            }
        })
    });
    let pr5 = Pr5Classifier::from_model(&model);
    c.bench_function("classify/pr5_scalar_pruned_reference", |b| {
        b.iter(|| {
            for v in &probes {
                black_box(pr5.classify(black_box(v)));
            }
        })
    });
    c.bench_function("classify/pruned_prepared_centroids", |b| {
        b.iter(|| {
            for v in &probes {
                black_box(model.classify(black_box(v)));
            }
        })
    });
}

fn bench_classify_batch_vs_per_delta(c: &mut Criterion) {
    let model = trained_model();
    let probes = probe_workload(&model);
    c.bench_function("classify/per_delta_calls", |b| {
        b.iter(|| {
            for v in &probes {
                black_box(model.classify(black_box(v)));
            }
        })
    });
    c.bench_function("classify/batched_burst", |b| {
        let mut scratch = BatchScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            model.classify_batch(black_box(&probes), &mut scratch, &mut out);
            black_box(out.len())
        })
    });
}

/// A synthetic 5k-sample monotone trace with idle windows and a couple of
/// counter resets — ~⅔ of windows busy, the worst case for extraction.
fn synthetic_trace() -> (Trace, Vec<Sample>) {
    let mut trace = Trace::with_capacity(5_000);
    let mut acc = [0u64; NUM_TRACKED];
    for i in 0..5_000u64 {
        if i % 1_024 == 1_000 {
            acc = [i; NUM_TRACKED]; // slumber: registers restart
        } else if i % 3 != 0 {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += (i % 97) * (j as u64 + 1);
            }
        } // else: idle window, values unchanged
        trace.push(SimInstant::from_millis(i * 8), CounterSet::from_array(acc));
    }
    let aos: Vec<Sample> = trace.iter().collect();
    (trace, aos)
}

/// The paper-regime trace: 8 ms sampling against ~250 ms keystroke spacing
/// means ~3 % of windows change ("the PC values remain unchanged if the
/// screen display does not change", §3.4), with occasional slumber resets.
fn paper_regime_trace() -> Trace {
    let mut trace = Trace::with_capacity(5_000);
    let mut acc = [0u64; NUM_TRACKED];
    for i in 0..5_000u64 {
        if i % 1_024 == 1_000 {
            acc = [i; NUM_TRACKED]; // slumber reset
        } else if i % 31 == 7 {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += (i % 97) * (j as u64 + 1);
            }
        }
        trace.push(SimInstant::from_millis(i * 8), CounterSet::from_array(acc));
    }
    trace
}

/// The PR 5-era batch extractor, retained verbatim as the same-run
/// baseline: one row-major pass, per-column backward check, emit-if-nonzero.
fn pr5_extract(trace: &Trace) -> (Vec<Delta>, usize) {
    let n = trace.len();
    let mut out = Vec::new();
    let mut resets = 0usize;
    'windows: for i in 1..n {
        let mut values = [0u64; NUM_TRACKED];
        for (v, col) in values.iter_mut().zip(trace.columns()) {
            let (prev, cur) = (col[i - 1], col[i]);
            if cur < prev {
                resets += 1;
                continue 'windows;
            }
            *v = cur - prev;
        }
        if values.iter().any(|&v| v != 0) {
            out.push(Delta { at: trace.at(i), values: CounterSet::from_array(values) });
        }
    }
    (out, resets)
}

fn bench_extraction_aos_vs_soa(c: &mut Criterion) {
    let (trace, aos) = synthetic_trace();
    c.bench_function("delta_extraction/aos_streaming_stage", |b| {
        b.iter(|| {
            let mut stage = DeltaStage::new();
            let mut out = Vec::new();
            for s in &aos {
                stage.push(*s, &mut out);
            }
            stage.finish(&mut out);
            black_box((out, stage.resets()))
        })
    });
    c.bench_function("delta_extraction/pr5_rowwise_reference", |b| {
        b.iter(|| black_box(pr5_extract(black_box(&trace))))
    });
    c.bench_function("delta_extraction/soa_columnar_batch", |b| {
        let mut scratch = ExtractScratch::default();
        b.iter(|| black_box(extract_deltas_with_resets_scratch(black_box(&trace), &mut scratch)))
    });
    assert_eq!(pr5_extract(&trace), extract_deltas_with_resets(&trace));
}

fn bench_extraction_paper_regime(c: &mut Criterion) {
    let trace = paper_regime_trace();
    c.bench_function("delta_extraction/paper_regime_pr5_reference", |b| {
        b.iter(|| black_box(pr5_extract(black_box(&trace))))
    });
    c.bench_function("delta_extraction/paper_regime_adaptive", |b| {
        let mut scratch = ExtractScratch::default();
        b.iter(|| black_box(extract_deltas_with_resets_scratch(black_box(&trace), &mut scratch)))
    });
    assert_eq!(pr5_extract(&trace), extract_deltas_with_resets(&trace));
}

fn bench_read_loop_alloc_vs_scratch(c: &mut Criterion) {
    let sim = android_ui::UiSimulation::new(SimConfig::paper_default(0));
    let mut sampler = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
    let device = std::sync::Arc::clone(sim.device());
    let fd = sampler.fd();
    // The pre-refactor read path: build the request vector on the heap for
    // every read, exactly as `read_once` used to.
    c.bench_function("read_loop/allocating_request_vec", |b| {
        b.iter(|| {
            let mut reads: Vec<KgslPerfcounterReadGroup> = ALL_TRACKED
                .iter()
                .map(|t| {
                    let id = t.id();
                    KgslPerfcounterReadGroup::new(id.group.kgsl_id(), id.countable)
                })
                .collect();
            device
                .ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
                .unwrap();
            let mut out = CounterSet::ZERO;
            for (t, r) in ALL_TRACKED.iter().zip(reads.iter()) {
                out[*t] = r.value;
            }
            black_box(out)
        })
    });
    c.bench_function("read_loop/reused_scratch_buffer", |b| {
        b.iter(|| black_box(sampler.read_once(black_box(&device)).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_classify_naive_vs_pruned,
    bench_classify_batch_vs_per_delta,
    bench_extraction_aos_vs_soa,
    bench_extraction_paper_regime,
    bench_read_loop_alloc_vs_scratch
);
criterion_main!(benches);
