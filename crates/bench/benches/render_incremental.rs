//! Prices the incremental frame-delta renderer against the full pipeline,
//! in the same binary and run (the host drifts between runs; only same-run
//! ratios are trustworthy):
//!
//! * **cold** — first frame of a stream with every process-global cache
//!   reset: the incremental path pays fingerprinting and diff bookkeeping
//!   on top of the full render, its overhead ceiling;
//! * **dirty one layer** — a translucent animation layer (the PNC-style
//!   login decoration) changes every frame while the keyboard holds: masks
//!   and clean layers are reused and only the animated layer recomputes,
//!   the per-frame shape animated login pages actually submit;
//! * **identical** — the frame repeats unchanged, the dominant vsync case:
//!   the previous-frame shortcut answers after one fingerprint pass.
//!
//! The incremental/uncached pairs are asserted bit-equal right here before
//! timing (and pinned at scale by the frame-sequence proptests in
//! `crates/adreno-sim/tests/incremental_proptests.rs`).

use adreno_sim::geom::{Rect, Segment};
use adreno_sim::incremental::FrameRenderer;
use adreno_sim::model::{GpuModel, GpuParams};
use adreno_sim::pipeline::render_uncached;
use adreno_sim::scene::DrawList;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const W: i32 = 1080;
const H: i32 = 920;

/// A keyboard-like frame: opaque background, echo field, three key rows
/// with glyphs, and a held key popup — the static backdrop of a session.
fn keyboard_frame() -> DrawList {
    let mut dl = DrawList::new(W, H);
    dl.layer("bg").quad(Rect::from_xywh(0, 0, W, H), true);
    let field = dl.layer("field");
    field.quad(Rect::from_xywh(16, 16, W - 32, 56), true);
    for i in 0..8 {
        field.glyph('*', Rect::from_xywh(24 + 30 * i, 24, 24, 40), 4);
    }
    for row in 0..3 {
        let keys = dl.layer("keys");
        for i in 0..10 {
            let x = i * 108 + row * 18;
            let y = H - 300 + row * 96;
            keys.quad(Rect::from_xywh(x, y, 100, 88), true);
            keys.glyph(
                (b'a' + ((row * 10 + i) % 26) as u8) as char,
                Rect::from_xywh(x + 24, y + 14, 52, 62),
                4,
            );
        }
    }
    dl.layer("popup").quad(Rect::from_xywh(360, H - 420, 96, 116), true);
    dl.layer("popup-glyph").glyph('f', Rect::from_xywh(366, H - 414, 84, 104), 8);
    dl
}

/// The keyboard frame plus a translucent animated stroke layer at `phase`.
/// Phases are effectively never-repeating (~82k combinations against a
/// 4096-entry whole-list cache that clears on overflow), so every frame is
/// novel at whole-frame granularity while only this one layer is dirty.
fn animated_frame(phase: u32) -> DrawList {
    let mut dl = keyboard_frame();
    let band =
        Rect::from_xywh(40, 140, 200 + (phase % 640) as i32, 240 + ((phase / 640) % 128) as i32);
    let anim = dl.layer("login-animation");
    anim.quad(band, false);
    for s in 0..6 {
        let y = (phase % 161) as f32 * 0.05 + s as f32 * 1.3;
        anim.stroke(Segment { x0: 0.1, y0: y % 8.0, x1: 7.9, y1: (y + 2.7) % 8.0 }, band, 4);
    }
    dl
}

fn assert_equivalent(dl: &DrawList, params: &GpuParams) {
    let mut r = FrameRenderer::new();
    assert_eq!(*r.render(dl, params), render_uncached(dl, params));
}

fn bench_render_incremental(c: &mut Criterion) {
    let params = GpuModel::Adreno650.params();
    assert_equivalent(&keyboard_frame(), &params);
    for phase in [0, 1, 999_999] {
        assert_equivalent(&animated_frame(phase), &params);
    }

    // Cold: a fresh renderer and freshly-reset caches every iteration. The
    // incremental path's overhead ceiling vs the plain pipeline.
    let cold = keyboard_frame();
    c.bench_function("render_incremental/cold_uncached_reference", |b| {
        b.iter(|| black_box(render_uncached(black_box(&cold), &params)))
    });
    c.bench_function("render_incremental/cold_incremental", |b| {
        b.iter(|| {
            adreno_sim::reset_render_caches();
            let mut r = FrameRenderer::new();
            black_box(r.render(black_box(&cold), &params))
        })
    });

    // Dirty one layer: the animation layer changes per frame, nothing else.
    c.bench_function("render_incremental/dirty_layer_uncached_reference", |b| {
        let mut n = 0u32;
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(render_uncached(black_box(&animated_frame(n)), &params))
        })
    });
    c.bench_function("render_incremental/dirty_layer_incremental", |b| {
        let mut r = FrameRenderer::new();
        let _ = r.render(&animated_frame(0), &params); // warm baseline
        let mut n = 2_000_000u32;
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(r.render(black_box(&animated_frame(n)), &params))
        })
    });

    // Identical: the steady vsync case. The reference still renders; the
    // incremental renderer answers after one fingerprint pass.
    let held = animated_frame(7);
    c.bench_function("render_incremental/identical_uncached_reference", |b| {
        b.iter(|| black_box(render_uncached(black_box(&held), &params)))
    });
    c.bench_function("render_incremental/identical_incremental", |b| {
        let mut r = FrameRenderer::new();
        let _ = r.render(&held, &params);
        b.iter(|| black_box(r.render(black_box(&held), &params)))
    });
}

criterion_group!(benches, bench_render_incremental);
criterion_main!(benches);
