//! Criterion micro-benchmarks of the attack's hot paths.
//!
//! The paper's timeliness claim (Fig 25) is that a key press is inferred in
//! well under 0.1 ms; these benches pin the cost of each stage.

use adreno_sim::geom::Rect;
use adreno_sim::model::GpuModel;
use adreno_sim::pipeline::{render, render_uncached};
use adreno_sim::scene::DrawList;
use adreno_sim::SimInstant;
use android_ui::compositor::KeyboardWindow;
use android_ui::sim::SimConfig;
use android_ui::KeyboardKind;
use bench::{eval_credentials, ModelCache, TrialOptions};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_sc_attack::online::{infer_stream, OnlineConfig};
use gpu_sc_attack::registry::Registry;
use gpu_sc_attack::trace::Delta;
use gpu_sc_attack::ClassifierModel;
use input_bot::corpus::CredentialKind;
use minipool::Pool;

fn trained_model() -> ClassifierModel {
    let cfg = SimConfig::paper_default(0);
    Registry::default().get_or_train(cfg.device, cfg.keyboard, cfg.app).model().clone()
}

fn bench_classify(c: &mut Criterion) {
    let model = trained_model();
    let probe = model.centroids()[17].values;
    c.bench_function("classify_one_delta", |b| b.iter(|| model.classify(black_box(&probe))));
}

fn bench_algorithm1(c: &mut Criterion) {
    let model = trained_model();
    // A realistic minute of deltas: ~200 changes.
    let deltas: Vec<Delta> = model
        .centroids()
        .iter()
        .cycle()
        .take(200)
        .enumerate()
        .map(|(i, kc)| Delta {
            at: SimInstant::from_millis(100 + 300 * i as u64),
            values: kc.values,
        })
        .collect();
    c.bench_function("algorithm1_200_changes", |b| {
        b.iter(|| infer_stream(black_box(&model), black_box(&deltas), OnlineConfig::default()))
    });
}

fn bench_render_keyboard_frame(c: &mut Criterion) {
    let cfg = SimConfig::paper_default(0);
    let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg.device, true);
    kw.show_popup('w');
    let dl = kw.draw();
    let params = GpuModel::Adreno650.params();
    c.bench_function("render_keyboard_popup_frame", |b| b.iter(|| render(black_box(&dl), &params)));
}

fn bench_render_fullscreen(c: &mut Criterion) {
    let mut dl = DrawList::new(1080, 2376);
    dl.layer("bg").quad(Rect::from_xywh(0, 0, 1080, 2376), true);
    for i in 0..30 {
        dl.layer("content").quad(Rect::from_xywh(40, 100 + i * 70, 1000, 56), true);
    }
    let params = GpuModel::Adreno650.params();
    c.bench_function("render_fullscreen_app_frame", |b| b.iter(|| render(black_box(&dl), &params)));
}

fn bench_model_serde(c: &mut Criterion) {
    let model = trained_model();
    c.bench_function("model_to_bytes", |b| b.iter(|| black_box(&model).to_bytes()));
    let bytes = model.to_bytes();
    c.bench_function("model_from_bytes", |b| {
        b.iter(|| ClassifierModel::from_bytes(black_box(bytes.clone())).unwrap())
    });
}

fn bench_ioctl_read(c: &mut Criterion) {
    use gpu_sc_attack::sampler::{Sampler, SamplerConfig};
    let sim = android_ui::UiSimulation::new(SimConfig::paper_default(0));
    let mut sampler = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
    let device = std::sync::Arc::clone(sim.device());
    c.bench_function("ioctl_blockread_11_counters", |b| {
        b.iter(|| sampler.read_once(black_box(&device)).unwrap())
    });
}

fn bench_render_memoized(c: &mut Criterion) {
    let cfg = SimConfig::paper_default(0);
    let mut kw = KeyboardWindow::new(KeyboardKind::Gboard, &cfg.device, true);
    kw.show_popup('w');
    let dl = kw.draw();
    let params = GpuModel::Adreno650.params();
    // The same frame through the raw pipeline vs through the memo layer
    // once it is warm — the steady-state cost of a repeated popup frame.
    c.bench_function("render_popup_frame_uncached", |b| {
        b.iter(|| render_uncached(black_box(&dl), &params))
    });
    adreno_sim::reset_render_caches();
    black_box(adreno_sim::render_cached(&dl, &params));
    c.bench_function("render_popup_frame_memoized", |b| {
        b.iter(|| adreno_sim::render_cached(black_box(&dl), &params))
    });
}

fn bench_streaming_vs_batch_driver(c: &mut Criterion) {
    use adreno_sim::time::SimDuration;
    use gpu_sc_attack::service::{AttackService, ServiceConfig};
    use input_bot::script::Typist;
    use input_bot::timing::VOLUNTEERS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // One long credential session (30 keys ≈ 10 s of sim time), eavesdropped
    // by the streaming driver (per-sample stage pushes, no materialised
    // trace) vs the batch driver (sample everything, then whole-trace
    // passes). Both produce identical SessionResults; the bench pins the
    // driver overhead delta. Each iteration re-runs the full session —
    // building the sim is part of both loops, so the comparison stays fair.
    let cache = ModelCache::new();
    let opts = TrialOptions::paper_default(0);
    let store = cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    let service = AttackService::new(store, ServiceConfig::default());
    let run = |streaming: bool| {
        let mut sim = android_ui::UiSimulation::new(SimConfig { seed: 77, ..opts.sim.clone() });
        let mut rng = StdRng::seed_from_u64(77);
        let mut typist = Typist::new(VOLUNTEERS[0]);
        let plan = typist.type_text(
            "correct-horse-battery-staple-9",
            SimInstant::from_millis(900),
            &mut rng,
        );
        let end = plan.end + SimDuration::from_millis(800);
        sim.queue_all(plan.events);
        if streaming {
            service.eavesdrop(&mut sim, end).unwrap()
        } else {
            service.eavesdrop_batch(&mut sim, end).unwrap()
        }
    };
    c.bench_function("eavesdrop_30key_session_streaming", |b| b.iter(|| black_box(run(true))));
    c.bench_function("eavesdrop_30key_session_batch", |b| b.iter(|| black_box(run(false))));
}

fn eval_fig17_style(pool: &Pool) -> f64 {
    let cache = ModelCache::new();
    let opts = TrialOptions::paper_default(0);
    let store = cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    eval_credentials(pool, &store, &opts, CredentialKind::Username, 10, 8, 1_710).key_accuracy()
}

fn bench_eval_parallelism(c: &mut Criterion) {
    // An 8-trial fig17-style evaluation, sequential vs fanned out. On a
    // multi-core host the parallel variant approaches jobs× faster; the
    // two must (and do) produce identical aggregates.
    let seq = Pool::sequential();
    c.bench_function("eval_8_credentials_seq", |b| b.iter(|| black_box(eval_fig17_style(&seq))));
    let par = Pool::new(4);
    c.bench_function("eval_8_credentials_jobs4", |b| b.iter(|| black_box(eval_fig17_style(&par))));
}

criterion_group!(
    benches,
    bench_classify,
    bench_algorithm1,
    bench_render_keyboard_frame,
    bench_render_fullscreen,
    bench_render_memoized,
    bench_eval_parallelism,
    bench_model_serde,
    bench_ioctl_read,
    bench_streaming_vs_batch_driver
);
criterion_main!(benches);
