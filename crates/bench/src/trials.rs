//! Trial runners: one victim session, end to end, scored.

use std::sync::Arc;

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::sim::{SimConfig, UiSimulation};
use android_ui::{DeviceConfig, KeyboardKind, TargetApp};
use gpu_sc_attack::metrics::Aggregate;
use gpu_sc_attack::offline::ModelStore;
use gpu_sc_attack::registry::{ModelHandle, Registry};
use gpu_sc_attack::service::{AttackService, ServiceConfig, ServiceError, SessionResult};
use gpu_sc_attack::{ClassifierModel, SessionScore};
use input_bot::corpus::{generate, CredentialKind};
use input_bot::script::Typist;
use input_bot::timing::{SpeedClass, VolunteerModel, VOLUNTEERS};
use minipool::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bench-side view of the trained-model pool: a thin shim over the
/// content-addressed [`Registry`] (training takes seconds per
/// configuration, so every experiment in a process shares one).
///
/// Thread-safe: concurrent lookups of the same configuration train it
/// exactly once — the registry's per-key cell blocks the other callers —
/// and every hit returns a shared `Arc`, never a model copy.
#[derive(Debug, Default)]
pub struct ModelCache {
    registry: Arc<Registry>,
}

impl ModelCache {
    /// A cache over a fresh private registry.
    pub fn new() -> Self {
        ModelCache::default()
    }

    /// A cache over an existing (shared) registry.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        ModelCache { registry }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Returns (training on miss) the registry handle for a configuration.
    pub fn handle(
        &self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
    ) -> ModelHandle {
        spansight::count("bench.model_cache.lookups", 1);
        self.registry.get_or_train(device, keyboard, app)
    }

    /// Returns (training on miss) the model for a configuration.
    pub fn model(
        &self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
    ) -> Arc<ClassifierModel> {
        self.handle(device, keyboard, app).model_arc()
    }

    /// Seeds the cache with an already-trained model, so lookups of this
    /// configuration share it instead of training. A no-op if the
    /// configuration is already trained here; identical models
    /// content-dedup onto one registry entry.
    pub fn adopt(
        &self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
        model: Arc<ClassifierModel>,
    ) {
        spansight::count("bench.model_cache.adoptions", 1);
        self.registry.insert_model_at((device, keyboard, app), model, 0);
    }

    /// A one-model store for a configuration, sharing the registry's
    /// handle (and therefore its encoded blob and decoded model).
    pub fn store(
        &self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
    ) -> ModelStore {
        let mut store = ModelStore::new();
        store.add_handle(self.handle(device, keyboard, app));
        store
    }

    /// Number of configurations trained so far.
    pub fn len(&self) -> usize {
        self.registry.stats().keys
    }

    /// Whether nothing has been trained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-trial options.
#[derive(Debug, Clone)]
pub struct TrialOptions {
    pub sim: SimConfig,
    pub service: ServiceConfig,
    /// The volunteer whose timing drives the typing.
    pub volunteer: VolunteerModel,
    /// Optional speed-class constraint (§7.2).
    pub speed: Option<SpeedClass>,
    /// Optional device fault plan, installed before the attack starts (the
    /// robustness sweeps in `experiments::faults`).
    pub fault_plan: Option<kgsl::FaultPlan>,
}

impl TrialOptions {
    /// Paper-default options with a given seed.
    pub fn paper_default(seed: u64) -> Self {
        TrialOptions {
            sim: SimConfig::paper_default(seed),
            service: ServiceConfig::default(),
            volunteer: VOLUNTEERS[1],
            speed: None,
            fault_plan: None,
        }
    }
}

/// Runs one credential-typing session through the full attack and scores
/// it. `text` is typed starting at t = 900 ms.
///
/// # Errors
///
/// Propagates attack-service errors (mitigations, unrecognised device).
pub fn run_credential_trial(
    store: &ModelStore,
    opts: &TrialOptions,
    text: &str,
    seed: u64,
) -> Result<(SessionScore, SessionResult), ServiceError> {
    let _span = spansight::span("bench", "trial");
    let mut sim = UiSimulation::new(SimConfig { seed, ..opts.sim.clone() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7157);
    let mut typist = match opts.speed {
        Some(class) => Typist::with_speed(opts.volunteer, class),
        None => Typist::new(opts.volunteer),
    };
    let plan = typist.type_text(text, SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    if let Some(faults) = &opts.fault_plan {
        sim.device().install_fault_plan(faults);
    }

    let service = AttackService::new(store.clone(), opts.service.clone());
    let result = service.eavesdrop(&mut sim, end)?;
    let score = result.score(&sim);
    Ok((score, result))
}

/// Evaluates `trials` random credentials of length `len` under `opts`,
/// aggregating the paper's accuracy metrics. Volunteer models rotate across
/// trials; trials fan out across `pool`'s workers.
///
/// Deterministic at any worker count: every trial's text and seed are drawn
/// up front from the sequential RNG (in the exact order the sequential loop
/// drew them), each trial consumes only its own seed, and scores are folded
/// in trial order.
pub fn eval_credentials(
    pool: &Pool,
    store: &ModelStore,
    opts: &TrialOptions,
    kind: CredentialKind,
    len: usize,
    trials: usize,
    seed: u64,
) -> Aggregate {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<(String, VolunteerModel, u64)> = (0..trials)
        .map(|t| {
            let text = generate(&mut rng, kind, len);
            (text, VOLUNTEERS[t % VOLUNTEERS.len()], rng.gen::<u64>())
        })
        .collect();
    let scores = pool.par_map(inputs, |_, (text, volunteer, trial_seed)| {
        let mut o = opts.clone();
        o.volunteer = volunteer;
        score_or_miss(store, &o, &text, trial_seed)
    });
    let mut agg = Aggregate::default();
    for score in &scores {
        agg.add(score);
    }
    agg
}

/// Runs one trial and scores it; a failed session recovers nothing (all
/// keys missed).
pub fn score_or_miss(
    store: &ModelStore,
    opts: &TrialOptions,
    text: &str,
    seed: u64,
) -> SessionScore {
    match run_credential_trial(store, opts, text, seed) {
        Ok((score, _)) => score,
        Err(_) => SessionScore {
            correct_keys: 0,
            total_keys: text.chars().count(),
            spurious_keys: 0,
            text_exact: false,
            edit_distance: text.chars().count(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_trains_once() {
        let cache = ModelCache::new();
        let cfg = SimConfig::paper_default(0);
        let a = cache.model(cfg.device, cfg.keyboard, cfg.app);
        let b = cache.model(cfg.device, cfg.keyboard, cfg.app);
        assert!(Arc::ptr_eq(&a, &b), "hits share one trained model");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_lookups_share_one_model() {
        let cache = ModelCache::new();
        let cfg = SimConfig::paper_default(0);
        let models = Pool::new(4)
            .par_map(vec![(); 4], |_, ()| cache.model(cfg.device, cfg.keyboard, cfg.app));
        assert_eq!(cache.len(), 1, "no double training under contention");
        for m in &models {
            assert!(Arc::ptr_eq(m, &models[0]));
        }
    }

    #[test]
    fn trial_round_trips() {
        let cache = ModelCache::new();
        let opts = TrialOptions::paper_default(5);
        let store = cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
        let (score, result) = run_credential_trial(&store, &opts, "abcd", 11).unwrap();
        assert_eq!(score.total_keys, 4);
        assert!(score.correct_keys >= 3, "near-clean conditions: {score:?}");
        assert!(!result.recovered_text.is_empty());
    }
}
