//! Trial runners: one victim session, end to end, scored.

use std::collections::HashMap;

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::sim::{SimConfig, UiSimulation};
use android_ui::{DeviceConfig, KeyboardKind, TargetApp};
use gpu_sc_attack::metrics::Aggregate;
use gpu_sc_attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_sc_attack::service::{AttackService, ServiceConfig, ServiceError, SessionResult};
use gpu_sc_attack::SessionScore;
use input_bot::corpus::{generate, CredentialKind};
use input_bot::script::Typist;
use input_bot::timing::{SpeedClass, VolunteerModel, VOLUNTEERS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Caches trained models across experiments in one process (training takes
/// seconds per configuration).
#[derive(Debug, Default)]
pub struct ModelCache {
    trained: HashMap<(DeviceConfig, KeyboardKind, TargetApp), gpu_sc_attack::ClassifierModel>,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        ModelCache::default()
    }

    /// Returns (training on miss) the model for a configuration.
    pub fn model(
        &mut self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
    ) -> gpu_sc_attack::ClassifierModel {
        self.trained
            .entry((device, keyboard, app))
            .or_insert_with(|| Trainer::new(TrainerConfig::default()).train(device, keyboard, app))
            .clone()
    }

    /// A one-model store for a configuration.
    pub fn store(
        &mut self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
    ) -> ModelStore {
        let mut store = ModelStore::new();
        store.add(self.model(device, keyboard, app));
        store
    }
}

/// Per-trial options.
#[derive(Debug, Clone)]
pub struct TrialOptions {
    pub sim: SimConfig,
    pub service: ServiceConfig,
    /// The volunteer whose timing drives the typing.
    pub volunteer: VolunteerModel,
    /// Optional speed-class constraint (§7.2).
    pub speed: Option<SpeedClass>,
    /// Optional device fault plan, installed before the attack starts (the
    /// robustness sweeps in `experiments::faults`).
    pub fault_plan: Option<kgsl::FaultPlan>,
}

impl TrialOptions {
    /// Paper-default options with a given seed.
    pub fn paper_default(seed: u64) -> Self {
        TrialOptions {
            sim: SimConfig::paper_default(seed),
            service: ServiceConfig::default(),
            volunteer: VOLUNTEERS[1],
            speed: None,
            fault_plan: None,
        }
    }
}

/// Runs one credential-typing session through the full attack and scores
/// it. `text` is typed starting at t = 900 ms.
///
/// # Errors
///
/// Propagates attack-service errors (mitigations, unrecognised device).
pub fn run_credential_trial(
    store: &ModelStore,
    opts: &TrialOptions,
    text: &str,
    seed: u64,
) -> Result<(SessionScore, SessionResult), ServiceError> {
    let mut sim = UiSimulation::new(SimConfig { seed, ..opts.sim.clone() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7157);
    let mut typist = match opts.speed {
        Some(class) => Typist::with_speed(opts.volunteer, class),
        None => Typist::new(opts.volunteer),
    };
    let plan = typist.type_text(text, SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    if let Some(faults) = &opts.fault_plan {
        sim.device().install_fault_plan(faults);
    }

    let service = AttackService::new(store.clone(), opts.service.clone());
    let result = service.eavesdrop(&mut sim, end)?;
    let score = result.score(&sim);
    Ok((score, result))
}

/// Evaluates `trials` random credentials of length `len` under `opts`,
/// aggregating the paper's accuracy metrics. Volunteer models rotate across
/// trials.
pub fn eval_credentials(
    store: &ModelStore,
    opts: &TrialOptions,
    kind: CredentialKind,
    len: usize,
    trials: usize,
    seed: u64,
) -> Aggregate {
    let mut agg = Aggregate::default();
    let mut rng = StdRng::seed_from_u64(seed);
    for t in 0..trials {
        let text = generate(&mut rng, kind, len);
        let mut o = opts.clone();
        o.volunteer = VOLUNTEERS[t % VOLUNTEERS.len()];
        let trial_seed = rng.gen::<u64>();
        match run_credential_trial(store, &o, &text, trial_seed) {
            Ok((score, _)) => agg.add(&score),
            Err(_) => {
                // A failed session recovers nothing: all keys missed.
                agg.add(&SessionScore {
                    correct_keys: 0,
                    total_keys: text.chars().count(),
                    spurious_keys: 0,
                    text_exact: false,
                    edit_distance: text.chars().count(),
                });
            }
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_trains_once() {
        let mut cache = ModelCache::new();
        let cfg = SimConfig::paper_default(0);
        let a = cache.model(cfg.device, cfg.keyboard, cfg.app);
        let b = cache.model(cfg.device, cfg.keyboard, cfg.app);
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_eq!(cache.trained.len(), 1);
    }

    #[test]
    fn trial_round_trips() {
        let mut cache = ModelCache::new();
        let opts = TrialOptions::paper_default(5);
        let store = cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
        let (score, result) = run_credential_trial(&store, &opts, "abcd", 11).unwrap();
        assert_eq!(score.total_keys, 4);
        assert!(score.correct_keys >= 3, "near-clean conditions: {score:?}");
        assert!(!result.recovered_text.is_empty());
    }
}
