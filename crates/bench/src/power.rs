//! The battery-overhead model of Fig 26.
//!
//! The attack's energy cost is dominated by the periodic `ioctl` reads
//! (CPU wakeups) plus a small classification cost per observed change. The
//! paper measures at most ~4 % extra battery after two hours, with the
//! ranking LG V30 > Pixel 2 > OnePlus 7 Pro > OnePlus 8 Pro (smaller
//! batteries and older SoCs pay more).

use android_ui::PhoneModel;

/// Battery capacity in milliamp-hours.
pub fn battery_mah(phone: PhoneModel) -> f64 {
    match phone {
        PhoneModel::LgV30Plus => 3_300.0,
        PhoneModel::GooglePixel2 => 2_700.0,
        PhoneModel::OnePlus7Pro => 4_000.0,
        PhoneModel::OnePlus8Pro => 4_510.0,
        PhoneModel::OnePlus9 => 4_500.0,
        PhoneModel::GalaxyS21 => 4_000.0,
    }
}

/// Energy per counter read (ioctl + wakeup), in millijoules: older SoCs
/// pay more per wakeup.
pub fn energy_per_read_mj(phone: PhoneModel) -> f64 {
    match phone {
        PhoneModel::LgV30Plus => 1.30,
        PhoneModel::GooglePixel2 => 1.05,
        PhoneModel::OnePlus7Pro => 0.85,
        PhoneModel::OnePlus8Pro => 0.62,
        PhoneModel::OnePlus9 => 0.58,
        PhoneModel::GalaxyS21 => 0.60,
    }
}

/// Extra battery drain of the attack, in percent of a full charge, after
/// running for `minutes` with reads every `interval_ms`.
///
/// A mild superlinear term models the thermal feedback visible in Fig 26
/// (sustained polling keeps the SoC out of deep idle).
///
/// # Examples
///
/// ```
/// use android_ui::PhoneModel;
/// use bench::power::extra_battery_percent;
///
/// let p = extra_battery_percent(PhoneModel::OnePlus8Pro, 8, 120.0);
/// assert!(p < 4.0, "the paper reports at most ~4% after 2h, got {p}");
/// ```
pub fn extra_battery_percent(phone: PhoneModel, interval_ms: u64, minutes: f64) -> f64 {
    assert!(interval_ms > 0, "interval must be positive");
    let reads_per_s = 1_000.0 / interval_ms as f64;
    let joules = reads_per_s * minutes * 60.0 * energy_per_read_mj(phone) / 1_000.0;
    let capacity_j = battery_mah(phone) / 1_000.0 * 3.7 * 3_600.0;
    let linear = joules / capacity_j * 100.0;
    // Thermal creep: +12% of the linear term per hour of sustained polling.
    linear * (1.0 + 0.12 * (minutes / 60.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use android_ui::screen::ALL_PHONES;

    #[test]
    fn two_hours_stays_under_paper_ceiling() {
        for phone in ALL_PHONES {
            let p = extra_battery_percent(phone, 8, 120.0);
            assert!(p > 0.5 && p <= 4.5, "{phone}: {p}% out of Fig 26 range");
        }
    }

    #[test]
    fn ranking_matches_fig26() {
        let p = |m| extra_battery_percent(m, 8, 120.0);
        assert!(p(PhoneModel::LgV30Plus) > p(PhoneModel::GooglePixel2));
        assert!(p(PhoneModel::GooglePixel2) > p(PhoneModel::OnePlus7Pro));
        assert!(p(PhoneModel::OnePlus7Pro) > p(PhoneModel::OnePlus8Pro));
    }

    #[test]
    fn monotone_in_time_and_rate() {
        let a = extra_battery_percent(PhoneModel::OnePlus8Pro, 8, 30.0);
        let b = extra_battery_percent(PhoneModel::OnePlus8Pro, 8, 120.0);
        assert!(b > a);
        let fast = extra_battery_percent(PhoneModel::OnePlus8Pro, 4, 60.0);
        let slow = extra_battery_percent(PhoneModel::OnePlus8Pro, 12, 60.0);
        assert!(fast > slow);
    }
}
