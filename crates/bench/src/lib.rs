//! Shared infrastructure for the experiment harness and Criterion benches.
//!
//! Everything the `experiments` binary needs to regenerate the paper's
//! tables and figures: trial runners, model caching, the battery model of
//! Fig 26 and small ASCII reporting helpers.

pub mod experiments;
pub mod power;
pub mod report;
pub mod trials;

pub use trials::{eval_credentials, run_credential_trial, ModelCache, TrialOptions};
