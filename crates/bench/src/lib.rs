//! Shared infrastructure for the experiment harness and Criterion benches.
//!
//! Everything the `experiments` binary needs to regenerate the paper's
//! tables and figures:
//!
//! * [`trials`] — end-to-end trial runners ([`run_credential_trial`],
//!   [`eval_credentials`]) and the cross-experiment [`ModelCache`];
//! * [`experiments`] — one module per paper table/figure plus the
//!   beyond-the-paper extensions and ablations;
//! * [`power`] — the Fig 26 battery model;
//! * [`report`] — ASCII tables/plots routed through a thread-local sink so
//!   parallel experiment fan-out can capture its output (the stdout
//!   byte-identity contract of `tests/determinism.rs`).
//!
//! Trial runners are instrumented with `spansight` spans/counters; see
//! ARCHITECTURE.md for the observability layer and EXPERIMENTS.md for how
//! to read the exported aggregates and Chrome traces.
//!
//! ## Running one trial
//!
//! ```no_run
//! use bench::{run_credential_trial, ModelCache, TrialOptions};
//!
//! let cache = ModelCache::new();                      // trains on first use
//! let opts = TrialOptions::paper_default(5);
//! let store = cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
//! let (score, result) = run_credential_trial(&store, &opts, "hunter2", 11).unwrap();
//! assert_eq!(score.total_keys, 7);
//! println!("recovered: {:?}", result.recovered_text);
//! ```

pub mod experiments;
pub mod power;
pub mod report;
pub mod trials;

pub use trials::{eval_credentials, run_credential_trial, ModelCache, TrialOptions};
