//! Adaptability experiments: Fig 24 (devices, resolutions, phones, OS
//! versions) and the §7.6 model-size accounting.

use android_ui::screen::{AndroidVersion, Resolution, ALL_PHONES};
use android_ui::{DeviceConfig, PhoneModel};
use gpu_sc_attack::offline::ModelStore;
use gpu_sc_attack::registry::{encode_model, Quantization};
use input_bot::corpus::CredentialKind;

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::{eval_credentials, TrialOptions};

fn eval_device(ctx: &Ctx, device: DeviceConfig, trials: usize, seed: u64) -> (f64, f64) {
    let mut opts = TrialOptions::paper_default(0);
    opts.sim.device = device;
    let store = ctx.cache.store(device, opts.sim.keyboard, opts.sim.app);
    let agg =
        eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 10, trials, seed);
    (agg.text_accuracy(), agg.key_accuracy())
}

/// Fig 24: the attack adapts across GPU models, resolutions, phone models
/// and Android versions because each configuration carries its own trained
/// model.
pub fn fig24(ctx: &Ctx) {
    report::section("Fig 24", "adaptability of the attack");
    let trials = ctx.trials(12);

    outln!("(a) GPU models");
    for phone in [
        PhoneModel::LgV30Plus,   // Adreno 540
        PhoneModel::OnePlus7Pro, // Adreno 640
        PhoneModel::OnePlus8Pro, // Adreno 650
        PhoneModel::OnePlus9,    // Adreno 660
    ] {
        let device = DeviceConfig::for_phone(phone);
        let (text, key) = eval_device(ctx, device, trials, 24);
        report::pct_row(
            &format!("  {}", phone.gpu().name()),
            &[("text".into(), text), ("key".into(), key)],
        );
    }

    outln!("(b) screen resolutions (OnePlus 8 Pro)");
    for resolution in [Resolution::Fhd, Resolution::Qhd] {
        let device = DeviceConfig { resolution, ..DeviceConfig::oneplus8pro() };
        let (text, key) = eval_device(ctx, device, trials, 24);
        report::pct_row(&format!("  {resolution}"), &[("text".into(), text), ("key".into(), key)]);
    }

    outln!("(c) phone models sharing a GPU");
    for phone in ALL_PHONES {
        let device = DeviceConfig::for_phone(phone);
        let (text, key) = eval_device(ctx, device, trials, 24);
        report::pct_row(
            &format!("  {} ({})", phone.name(), phone.gpu().name()),
            &[("text".into(), text), ("key".into(), key)],
        );
    }

    outln!("(d) Android OS versions (OnePlus 8 Pro hardware)");
    for android in
        [AndroidVersion::V8_1, AndroidVersion::V9, AndroidVersion::V10, AndroidVersion::V11]
    {
        let device = DeviceConfig { android, ..DeviceConfig::oneplus8pro() };
        let (text, key) = eval_device(ctx, device, trials, 24);
        report::pct_row(
            &format!("  Android {android}"),
            &[("text".into(), text), ("key".into(), key)],
        );
    }
}

/// §7.6: model wire size and the projected size of a fully-stocked
/// attacking app.
pub fn modelsize(ctx: &Ctx) {
    report::section("§7.6", "classifier model sizes");
    let opts = TrialOptions::paper_default(0);
    let model = ctx.cache.model(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    let one = model.to_bytes().len();
    report::kv("one model (GPCM wire)", format!("{:.2} kB (paper: 3.59 kB)", one as f64 / 1024.0));
    let mut i16_size = one;
    for q in Quantization::ALL {
        let blob = encode_model(&model, q);
        if q == Quantization::I16 {
            i16_size = blob.len();
        }
        report::kv(
            &format!("one model (GPMR registry, {})", q.name()),
            format!("{:.2} kB", blob.len() as f64 / 1024.0),
        );
    }

    // A store covering a few real configurations, served straight from the
    // registry's encoded blobs.
    let mut store = ModelStore::new();
    for phone in [PhoneModel::OnePlus8Pro, PhoneModel::OnePlus9] {
        for kb in [android_ui::KeyboardKind::Gboard, android_ui::KeyboardKind::Swift] {
            store.add_handle(ctx.cache.handle(DeviceConfig::for_phone(phone), kb, opts.sim.app));
        }
    }
    report::kv(
        "store with 4 configurations",
        format!("{:.2} kB", store.total_wire_bytes() as f64 / 1024.0),
    );
    let projected = one * 3_000;
    report::kv(
        "projected 3,000-model app payload",
        format!("{:.2} MB (paper: ≤13.40 MB)", projected as f64 / (1024.0 * 1024.0)),
    );
    report::kv(
        "projected 3,000-model payload (i16 registry tier)",
        format!("{:.2} MB", (i16_size * 3_000) as f64 / (1024.0 * 1024.0)),
    );
}
