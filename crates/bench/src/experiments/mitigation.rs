//! Mitigation experiments: Fig 29 (login-screen animation), §9.1 (popup
//! disabling), §9.2 (access control) and §9.3 (OS-level obfuscation).

use adreno_sim::time::SimDuration;
use android_ui::TargetApp;
use input_bot::corpus::CredentialKind;
use kgsl::{AccessPolicy, ObfuscationConfig, SelinuxDomain};

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::{eval_credentials, TrialOptions};

/// Fig 29: the PNC login screen's decorative animation acts as accidental
/// obfuscation, collapsing accuracy (paper: 30.2%).
pub fn fig29(ctx: &Ctx) {
    report::section("Fig 29", "login-screen animation as accidental obfuscation (PNC)");
    let trials = ctx.trials(15);
    // Key centroids depend on the keyboard window only, so the attacker's
    // model comes from a clean training app and is reused against PNC —
    // training on an animated login screen would be hopeless anyway.
    let base = TrialOptions::paper_default(0);
    let store = ctx.cache.store(base.sim.device, base.sim.keyboard, base.sim.app);
    for app in [TargetApp::Chase, TargetApp::Pnc] {
        let mut opts = base.clone();
        opts.sim.app = app;
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 10, trials, 29);
        report::pct_row(
            app.name(),
            &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
        );
    }
    outln!("(paper: PNC reduces eavesdropping accuracy to 30.2%)");
}

/// §9: the mitigation matrix — what each defence does to the attack.
pub fn mitigation(ctx: &Ctx) {
    report::section("§9", "mitigation matrix");
    let base = TrialOptions::paper_default(0);
    let store = ctx.cache.store(base.sim.device, base.sim.keyboard, base.sim.app);
    let trials = ctx.trials(12);

    // Stock (vulnerable) configuration.
    let agg = eval_credentials(&ctx.pool, &store, &base, CredentialKind::Username, 10, trials, 9);
    report::pct_row(
        "stock (no mitigation)",
        &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
    );

    // §9.1: disable key-press popups. The popup channel dies, but the §5.3
    // length channel (echo ±2) survives — the paper's warning.
    {
        let mut opts = base.clone();
        opts.sim.popups_enabled = false;
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 10, trials, 9);
        report::pct_row(
            "§9.1 popups disabled",
            &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
        );
        // Demonstrate the residual leak: the attacker still recovers the
        // input length by tracking echo ±2 directly (no popups needed).
        let model = ctx.cache.model(base.sim.device, base.sim.keyboard, base.sim.app);
        let mut sim = android_ui::UiSimulation::new(android_ui::SimConfig {
            seed: 91,
            popups_enabled: false,
            system_noise_hz: 0.0,
            ..base.sim.clone()
        });
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(91);
        let mut typist = input_bot::script::Typist::new(input_bot::timing::VOLUNTEERS[2]);
        let plan =
            typist.type_text("secretpass", adreno_sim::SimInstant::from_millis(900), &mut rng);
        let end = plan.end + SimDuration::from_millis(500);
        sim.queue_all(plan.events);
        let mut sampler =
            gpu_sc_attack::Sampler::open(sim.device(), gpu_sc_attack::SamplerConfig::default_8ms())
                .expect("stock policy");
        let trace = sampler.sample_until(&mut sim, end).expect("stock policy");
        let mut detector = gpu_sc_attack::correction::CorrectionDetector::new(
            model.ambient_signatures().to_vec(),
            gpu_sc_attack::correction::CorrectionConfig::default(),
        );
        for d in gpu_sc_attack::extract_deltas(&trace) {
            detector.observe(&d);
        }
        let adds = detector
            .events()
            .iter()
            .filter(|e| matches!(e, gpu_sc_attack::correction::CorrectionEvent::CharAdded(_)))
            .count();
        report::kv(
            "  residual leak: input length via echo ±2",
            format!("{adds} additions observed for 10 characters typed"),
        );
    }

    // §9.2: access control. DenyAll and fine-grained RBAC both starve the
    // sampler — the service reports a device error / empty trace.
    for (name, policy) in [
        ("§9.2 DenyAll", AccessPolicy::DenyAll),
        ("§9.2 RBAC (profiler only)", AccessPolicy::role_based([SelinuxDomain::GpuProfiler])),
    ] {
        let mut opts = base.clone();
        opts.sim = android_ui::SimConfig { ..opts.sim };
        // Policy applies at the device; run trials manually.
        let mut correct = 0usize;
        let mut total = 0usize;
        for i in 0..trials {
            let text = "hunter2pass";
            let mut sim = android_ui::UiSimulation::new(android_ui::SimConfig {
                seed: 92 + i as u64,
                ..opts.sim.clone()
            });
            sim.device().set_policy(policy.clone());
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(92 + i as u64);
            let mut typist = input_bot::script::Typist::new(input_bot::timing::VOLUNTEERS[0]);
            let plan = typist.type_text(text, adreno_sim::SimInstant::from_millis(900), &mut rng);
            let end = plan.end + SimDuration::from_millis(500);
            sim.queue_all(plan.events);
            let service = gpu_sc_attack::AttackService::new(store.clone(), Default::default());
            total += text.len();
            if let Ok(result) = service.eavesdrop(&mut sim, end) {
                correct +=
                    result.recovered_text.chars().zip(text.chars()).filter(|(a, b)| a == b).count();
            }
        }
        report::pct_row(name, &[("key".into(), correct as f64 / total.max(1) as f64)]);
    }

    // §9.3: OS-level decoy workloads, swept over injection rate. The open
    // question the paper poses: accuracy falls with rate, but so does the
    // GPU-time overhead budget.
    outln!("§9.3 obfuscation sweep (decoy injections/s vs accuracy vs GPU overhead)");
    for rate in [0.0, 5.0, 20.0, 60.0] {
        let mut opts = base.clone();
        opts.sim.obfuscation =
            if rate > 0.0 { Some(ObfuscationConfig::popup_sized(rate)) } else { None };
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 10, trials, 93);
        // Overhead: decoy cycles per second relative to a 60 Hz frame budget.
        let decoy_cycles = 24_000.0 * rate;
        let budget = opts.sim.device.gpu().params().clock_mhz as f64 * 1e6;
        outln!(
            "  rate={rate:>5.0}/s  text={:>5.1}%  key={:>5.1}%  gpu-overhead={:.2}%",
            agg.text_accuracy() * 100.0,
            agg.key_accuracy() * 100.0,
            decoy_cycles / budget * 100.0
        );
    }
}
