//! Practical-use experiments (§8): Fig 27 event traces and Fig 28
//! per-volunteer accuracy with app switches and corrections.

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::sim::{SimConfig, UiSimulation};
use android_ui::{TruthKind, UiEvent};
use gpu_sc_attack::metrics::per_char_tallies;
use gpu_sc_attack::service::{AttackService, ServiceConfig};
use input_bot::corpus::{generate, CredentialKind};
use input_bot::script::{practical_session, SessionConfig, Typist};
use input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::TrialOptions;

fn session_sim(seed: u64, volunteer: usize) -> (UiSimulation, SimInstant) {
    let cfg = SimConfig::paper_default(seed);
    let mut sim = UiSimulation::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut typist = Typist::new(VOLUNTEERS[volunteer]);
    let text = generate(&mut rng, CredentialKind::Username, 12);
    let scfg = SessionConfig::default();
    let plan = practical_session(&mut typist, &text, SimInstant::from_millis(900), &scfg, &mut rng);
    let end = plan.end + SimDuration::from_millis(1_000);
    // Ambient notifications during the session.
    let mut t = SimInstant::from_millis(2_500);
    while t < end {
        if rng.gen::<f64>() < 0.4 {
            sim.queue(android_ui::TimedEvent::new(t, UiEvent::Notification));
        }
        t += SimDuration::from_millis(4_000);
    }
    sim.queue_all(plan.events);
    (sim, end)
}

/// Fig 27: the user-behaviour event traces of the practical sessions.
pub fn fig27(_ctx: &Ctx) {
    report::section("Fig 27", "user behaviour events during practical sessions");
    outln!(
        "legend: k=key press  x=backspace  <=switch away  >=switch back  n=notification  s=shade"
    );
    for v in 0..VOLUNTEERS.len() {
        let (mut sim, end) = session_sim(2_700 + v as u64, v);
        sim.advance_to(end);
        let mut line = String::new();
        for e in sim.truth().events() {
            let c = match e.kind {
                TruthKind::Commit(_) => 'k',
                TruthKind::Backspace => 'x',
                TruthKind::SwitchAway => '<',
                TruthKind::SwitchBack => '>',
                TruthKind::Notification => 'n',
                TruthKind::ShadeView => 's',
                TruthKind::PageChange | TruthKind::SystemNoise | TruthKind::AppLaunch => continue,
            };
            line.push(c);
        }
        outln!("Volunteer {}: {}", v + 1, line);
    }
}

/// Fig 28: trace and character accuracy in practical usage, per volunteer.
pub fn fig28(ctx: &Ctx) {
    report::section("Fig 28", "accuracy in practical usage (switches + corrections)");
    let opts = TrialOptions::paper_default(0);
    let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    let runs = ctx.trials(12);
    // Sessions are self-seeded from (volunteer, run), so the whole
    // volunteer × run grid fans out at once and folds back per volunteer.
    let grid: Vec<(usize, usize)> =
        (0..VOLUNTEERS.len()).flat_map(|v| (0..runs).map(move |r| (v, r))).collect();
    let outcomes = ctx.pool.par_map(grid, |_, (v, r)| {
        let (mut sim, end) = session_sim(0x2800 + (v * 131 + r) as u64, v);
        let service = AttackService::new(store.clone(), ServiceConfig::default());
        let result = service.eavesdrop(&mut sim, end).ok()?;
        let exact = result.recovered_text == sim.truth().final_text();
        let (ok, tot) =
            per_char_tallies(&sim.truth().keystrokes(), &result.keys_before_corrections)
                .into_iter()
                .fold((0usize, 0usize), |(a, b), (_, (ok, tot))| (a + ok, b + tot));
        Some((v, exact, ok, tot))
    });
    let mut total_trace = 0.0;
    let mut char_ok = 0usize;
    let mut char_tot = 0usize;
    let mut per_v = vec![(0usize, 0usize, 0usize); VOLUNTEERS.len()];
    for (v, exact, ok, tot) in outcomes.into_iter().flatten() {
        per_v[v].0 += exact as usize;
        per_v[v].1 += ok;
        per_v[v].2 += tot;
    }
    for (v, (exact, v_ok, v_tot)) in per_v.into_iter().enumerate() {
        let trace_acc = exact as f64 / runs as f64;
        let char_acc = if v_tot > 0 { v_ok as f64 / v_tot as f64 } else { 0.0 };
        total_trace += trace_acc;
        char_ok += v_ok;
        char_tot += v_tot;
        report::pct_row(
            &format!("Volunteer {}", v + 1),
            &[("trace".into(), trace_acc), ("char".into(), char_acc)],
        );
    }
    report::kv(
        "averages",
        format!(
            "trace={:.1}% (paper: 78.0%), char={:.1}% (paper: 97.1%)",
            total_trace / VOLUNTEERS.len() as f64 * 100.0,
            char_ok as f64 / char_tot.max(1) as f64 * 100.0
        ),
    );
}
