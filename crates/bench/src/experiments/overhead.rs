//! Overhead experiments: Fig 25 (inference latency) and Fig 26 (battery).

use std::time::Instant;

use android_ui::screen::ALL_PHONES;
use android_ui::PhoneModel;
use gpu_sc_attack::online::{OnlineConfig, OnlineInference};
use gpu_sc_attack::trace::Delta;

use crate::experiments::Ctx;
use crate::power::extra_battery_percent;
use crate::report;
use crate::trials::TrialOptions;
use crate::{out, outln};

/// Fig 25: wall-clock time to infer one key press. The paper reports >95 %
/// of presses inferred within 0.1 ms; our nearest-centroid step is far
/// below that even with the full Algorithm 1 state machine around it.
pub fn fig25(ctx: &Ctx) {
    report::section("Fig 25", "computing time needed for eavesdropping");
    let opts = TrialOptions::paper_default(0);
    let model = ctx.cache.model(opts.sim.device, opts.sim.keyboard, opts.sim.app);

    // One delta per centroid, replayed far apart in simulated time so every
    // process() call runs the full direct-classification path.
    let deltas: Vec<Delta> = model
        .centroids()
        .iter()
        .enumerate()
        .map(|(i, c)| Delta {
            at: adreno_sim::SimInstant::from_millis(200 + 300 * i as u64),
            values: c.values,
        })
        .collect();

    let presses = ctx.trials(3_300);
    let mut times_us: Vec<f64> = Vec::with_capacity(presses);
    let mut engine = OnlineInference::new(&model, OnlineConfig::default());
    let mut i = 0usize;
    let mut virtual_ms = 0u64;
    while times_us.len() < presses {
        let mut d = deltas[i % deltas.len()];
        // Keep timestamps increasing across replays.
        d.at = adreno_sim::SimInstant::from_millis(virtual_ms + 200);
        virtual_ms += 300;
        let start = Instant::now();
        engine.process(d);
        times_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        i += 1;
    }
    times_us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = |q: f64| times_us[((times_us.len() - 1) as f64 * q) as usize];
    let under_100us = times_us.iter().filter(|t| **t < 100.0).count();
    let buckets: Vec<(String, usize)> = (0..8)
        .map(|b| {
            let lo = b as f64 * 12.5;
            let hi = lo + 12.5;
            (
                format!("{lo:>5.1}-{hi:<5.1}us"),
                times_us.iter().filter(|t| **t >= lo && **t < hi).count(),
            )
        })
        .collect();
    report::histogram(&buckets);
    report::kv("median / p95 / p99", format!("{:.2} / {:.2} / {:.2} us", p(0.5), p(0.95), p(0.99)));
    report::kv(
        "presses inferred within 0.1ms",
        format!("{:.1}% (paper: >95%)", under_100us as f64 / times_us.len() as f64 * 100.0),
    );
    report::kv("inferred keys (sanity)", engine.inferred().len());
}

/// Fig 26: extra battery consumption over two hours of continuous
/// eavesdropping, per device.
pub fn fig26(_ctx: &Ctx) {
    report::section("Fig 26", "power consumption for inferring user inputs");
    let devices = [
        PhoneModel::LgV30Plus,
        PhoneModel::GooglePixel2,
        PhoneModel::OnePlus7Pro,
        PhoneModel::OnePlus8Pro,
    ];
    out!("{:<18}", "minutes");
    for m in [30, 60, 90, 120] {
        out!("{m:>9}");
    }
    outln!();
    for phone in devices {
        out!("{:<18}", phone.name());
        for minutes in [30.0, 60.0, 90.0, 120.0] {
            out!("{:>8.2}%", extra_battery_percent(phone, 8, minutes));
        }
        outln!();
    }
    let worst = ALL_PHONES
        .into_iter()
        .map(|p| extra_battery_percent(p, 8, 120.0))
        .fold(f64::NEG_INFINITY, f64::max);
    report::kv("worst device after 2h", format!("{worst:.2}% (paper: ≤4%)"));
}
