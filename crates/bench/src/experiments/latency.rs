//! Per-keystroke press-to-inference latency (§5.1 timeliness trade-off).
//!
//! The paper frames full-trace inference as "eavesdropping can only be done
//! after the user input finishes". The streaming pipeline stamps every
//! accepted press with the simulated time the pipeline *committed* to it
//! ([`InferredKey::decided_at`]), so the trade-off becomes measurable: how
//! long after the victim's finger touched the key did the attacker know the
//! character? Greedy Algorithm 1 decides on the change that carries the
//! press; the lookahead variant holds each change until the next one
//! arrives, buying its split-pairing accuracy with exactly that wait.

use adreno_sim::time::SimDuration;
use adreno_sim::SimInstant;
use android_ui::sim::{SimConfig, UiSimulation};
use gpu_sc_attack::metrics::MATCH_WINDOW;
use gpu_sc_attack::offline::ModelStore;
use gpu_sc_attack::service::AttackService;
use gpu_sc_attack::InferredKey;
use input_bot::corpus::{generate, CredentialKind};
use input_bot::script::Typist;
use input_bot::timing::{VolunteerModel, VOLUNTEERS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::Ctx;
use crate::report;
use crate::trials::TrialOptions;

const CREDENTIAL_LEN: usize = 10;

/// Histogram bucket edges, in milliseconds of simulated time. Also the
/// edges of the `bench.latency.press_to_inference_ms` telemetry histogram
/// in `BENCH_experiments.json`.
const LATENCY_EDGES_MS: &[u64] = &[10, 20, 40, 80, 160, 320, 640];

/// Per-press latencies of one session: for every true press matched to an
/// inferred key, `decided_at - <true press time>` in milliseconds.
fn session_latencies(
    truth_presses: &[(SimInstant, char)],
    inferred: &[InferredKey],
) -> (Vec<u64>, usize) {
    // Greedy time-ordered alignment, same rule as metrics::score_session —
    // latency is only meaningful for presses the attack actually got right.
    let mut used = vec![false; inferred.len()];
    let mut latencies = Vec::new();
    for &(t, c) in truth_presses {
        let hit = inferred.iter().enumerate().find(|(i, k)| {
            !used[*i]
                && k.ch == c
                && k.at.saturating_since(t) <= MATCH_WINDOW
                && t.saturating_since(k.at) <= MATCH_WINDOW
        });
        if let Some((i, k)) = hit {
            used[i] = true;
            latencies.push(k.decided_at.saturating_since(t).as_nanos() / 1_000_000);
        }
    }
    (latencies, truth_presses.len())
}

/// Runs one credential session and returns its matched-press latencies —
/// [`crate::trials::run_credential_trial`] would drop the simulation (and
/// with it the ground-truth press times) before we can diff against them.
fn latency_trial(
    store: &ModelStore,
    opts: &TrialOptions,
    text: &str,
    seed: u64,
) -> Option<(Vec<u64>, usize)> {
    let _span = spansight::span("bench", "trial");
    let mut sim = UiSimulation::new(SimConfig { seed, ..opts.sim.clone() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7157);
    let mut typist = Typist::new(opts.volunteer);
    let plan = typist.type_text(text, SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);

    let service = AttackService::new(store.clone(), opts.service.clone());
    let result = service.eavesdrop(&mut sim, end).ok()?;
    // Pre-correction keys: a press later removed by a detected backspace
    // was still inferred (and its latency paid) when it happened.
    Some(session_latencies(&sim.truth().keystrokes(), &result.keys_before_corrections))
}

/// One pipeline configuration's aggregated latencies.
struct ConfigRow {
    label: &'static str,
    latencies: Vec<u64>,
    presses: usize,
}

/// Runs `trials` sessions under `full_trace` and aggregates press-to-
/// inference latencies. Inputs are pre-drawn in sequential order and
/// results fold in trial order, so the row is identical at any worker
/// count.
fn run_config(
    ctx: &Ctx,
    store: &ModelStore,
    label: &'static str,
    full_trace: bool,
    trials: usize,
    seed: u64,
) -> ConfigRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<(String, VolunteerModel, u64)> = (0..trials)
        .map(|t| {
            let text = generate(&mut rng, CredentialKind::Password, CREDENTIAL_LEN);
            (text, VOLUNTEERS[t % VOLUNTEERS.len()], rng.gen::<u64>())
        })
        .collect();
    let outcomes = ctx.pool.par_map(inputs, |_, (text, volunteer, trial_seed)| {
        let mut opts = TrialOptions::paper_default(0);
        opts.volunteer = volunteer;
        opts.service.full_trace = full_trace;
        latency_trial(store, &opts, &text, trial_seed)
    });
    let mut row = ConfigRow { label, latencies: Vec::new(), presses: 0 };
    for outcome in outcomes.into_iter().flatten() {
        let (latencies, presses) = outcome;
        for &ms in &latencies {
            spansight::record("bench.latency.press_to_inference_ms", LATENCY_EDGES_MS, ms);
        }
        row.latencies.extend(latencies);
        row.presses += presses;
    }
    row.latencies.sort_unstable();
    row
}

/// The `latency` experiment: press-to-inference latency distribution of the
/// greedy (decide-on-arrival) pipeline against the one-change-lookahead
/// variant behind `full_trace`.
pub fn latency(ctx: &Ctx) {
    report::section("latency", "press-to-inference latency (§5.1 timeliness trade-off)");
    let base = TrialOptions::paper_default(0);
    let store = ctx.cache.store(base.sim.device, base.sim.keyboard, base.sim.app);
    let trials = ctx.trials(12);

    for (label, full_trace) in [("greedy", false), ("lookahead", true)] {
        let row = run_config(ctx, &store, label, full_trace, trials, 0x1A7E);
        report::kv(
            format!("-- {} --", row.label).as_str(),
            format!("{} matched presses of {}", row.latencies.len(), row.presses),
        );
        if row.latencies.is_empty() {
            continue;
        }
        let buckets: Vec<(String, usize)> = LATENCY_EDGES_MS
            .iter()
            .enumerate()
            .map(|(i, &hi)| {
                let lo = if i == 0 { 0 } else { LATENCY_EDGES_MS[i - 1] };
                let n = row.latencies.iter().filter(|&&ms| ms >= lo && ms < hi).count();
                (format!("{lo:>4}-{hi:<4}ms"), n)
            })
            .chain(std::iter::once((
                format!("{:>4}+ms   ", LATENCY_EDGES_MS[LATENCY_EDGES_MS.len() - 1]),
                row.latencies
                    .iter()
                    .filter(|&&ms| ms >= LATENCY_EDGES_MS[LATENCY_EDGES_MS.len() - 1])
                    .count(),
            )))
            .collect();
        report::histogram(&buckets);
        let p = |q: f64| row.latencies[((row.latencies.len() - 1) as f64 * q) as usize];
        report::kv(
            "median / p95 / max",
            format!("{} / {} / {} ms", p(0.5), p(0.95), row.latencies[row.latencies.len() - 1]),
        );
    }
    report::kv(
        "expected",
        "greedy decides within a read interval or two; lookahead pays the wait for the next change",
    );
}
