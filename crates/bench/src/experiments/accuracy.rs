//! Headline accuracy experiments: Figs 11, 17, 18, 19 and 20.

use std::collections::HashMap;

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::apps::FIG19_APPS;
use android_ui::keyboard::ALL_KEYBOARDS;
use android_ui::sim::{SimConfig, UiSimulation};
use gpu_sc_attack::metrics::{per_char_tallies, Aggregate};
use gpu_sc_attack::service::{AttackService, ServiceConfig};
use input_bot::corpus::CredentialKind;
use input_bot::script::Typist;
use input_bot::timing::{VolunteerModel, VOLUNTEERS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::{eval_credentials, run_credential_trial, TrialOptions};

/// Draws the per-trial `(text, volunteer, seed)` plan the sequential loop
/// would have produced, so parallel trials consume identical inputs.
fn trial_plan(
    root_seed: u64,
    kind: CredentialKind,
    len: usize,
    trials: usize,
) -> Vec<(String, VolunteerModel, u64)> {
    let mut rng = StdRng::seed_from_u64(root_seed);
    (0..trials)
        .map(|t| {
            let text = input_bot::corpus::generate(&mut rng, kind, len);
            (text, VOLUNTEERS[t % VOLUNTEERS.len()], rng.gen::<u64>())
        })
        .collect()
}

/// Fig 11 companion (§5.1): the duplication / split / noise census over
/// many key presses (the paper found 633 / 316 / 21 in 3,485 presses).
pub fn fig11(ctx: &Ctx) {
    report::section("Fig 11 / §5.1", "system-factor census over many key presses");
    let opts = TrialOptions::paper_default(0);
    let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    let plan = trial_plan(11, CredentialKind::Username, 12, ctx.trials(40));
    let tallies = ctx.pool.par_map(plan, |_, (text, volunteer, seed)| {
        let mut o = opts.clone();
        o.volunteer = volunteer;
        run_credential_trial(&store, &o, &text, seed).ok().map(|(_, result)| {
            (
                text.chars().count(),
                result.stats.duplications_suppressed,
                result.stats.splits_recovered,
                result.stats.noise,
            )
        })
    });
    let (mut presses, mut dup, mut split, mut noise) = (0usize, 0usize, 0usize, 0usize);
    for (p, d, s, n) in tallies.into_iter().flatten() {
        presses += p;
        dup += d;
        split += s;
        noise += n;
    }
    report::kv("key presses emulated", presses);
    report::kv(
        "duplications suppressed",
        format!("{dup} ({:.1}%)", dup as f64 / presses as f64 * 100.0),
    );
    report::kv(
        "splits recombined",
        format!("{split} ({:.1}%)", split as f64 / presses as f64 * 100.0),
    );
    report::kv("noise changes rejected", noise);
    outln!("(paper: 633 dup / 316 split / 21 noise in 3,485 presses ≈ 18% / 9% / 0.6%)");
}

/// Fig 17: text and per-key accuracy vs credential length on Chase.
pub fn fig17(ctx: &Ctx) {
    report::section("Fig 17", "accuracy of inferring text inputs (Chase, lengths 8-16)");
    let opts = TrialOptions::paper_default(0);
    let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    let per_len = ctx.trials(25);
    let mut all = Aggregate::default();
    outln!("{:<8} {:>10} {:>10} {:>12}", "length", "text acc", "key acc", "errors/text");
    for len in 8..=16usize {
        let agg = eval_credentials(
            &ctx.pool,
            &store,
            &opts,
            CredentialKind::Username,
            len,
            per_len,
            1_700 + len as u64,
        );
        outln!(
            "{:<8} {:>9.1}% {:>9.1}% {:>12.2}",
            len,
            agg.text_accuracy() * 100.0,
            agg.key_accuracy() * 100.0,
            agg.mean_errors()
        );
        all.merge(&agg);
    }
    report::kv(
        "average text accuracy",
        format!("{:.1}% (paper: 81.3%)", all.text_accuracy() * 100.0),
    );
    report::kv(
        "average key accuracy",
        format!("{:.1}% (paper: 98.3%)", all.key_accuracy() * 100.0),
    );

    outln!();
    outln!("Fig 17(c): accuracy per character group");
    for (name, kind) in [
        ("lower", CredentialKind::LowerOnly),
        ("upper", CredentialKind::UpperOnly),
        ("number", CredentialKind::NumberOnly),
        ("symbol", CredentialKind::SymbolOnly),
    ] {
        let agg = eval_credentials(
            &ctx.pool,
            &store,
            &opts,
            kind,
            10,
            ctx.trials(15),
            0xC0 + name.len() as u64,
        );
        report::pct_row(
            &format!("  {name}"),
            &[("key".into(), agg.key_accuracy()), ("text".into(), agg.text_accuracy())],
        );
    }
}

/// Fig 18: inference accuracy over every individual key.
pub fn fig18(ctx: &Ctx) {
    report::section("Fig 18", "inference accuracy over individual key presses");
    let opts = TrialOptions::paper_default(0);
    let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    let plan = trial_plan(18, CredentialKind::Password, 12, ctx.trials(90));
    let per_trial = ctx.pool.par_map(plan, |_, (text, volunteer, seed)| {
        let mut o = opts.clone();
        o.volunteer = volunteer;
        let mut sim = UiSimulation::new(SimConfig { seed, ..o.sim.clone() });
        let mut trng = StdRng::seed_from_u64(seed ^ 0x7157);
        let mut typist = Typist::new(o.volunteer);
        let plan = typist.type_text(&text, SimInstant::from_millis(900), &mut trng);
        let end = plan.end + SimDuration::from_millis(800);
        sim.queue_all(plan.events);
        let service = AttackService::new(store.clone(), ServiceConfig::default());
        service.eavesdrop(&mut sim, end).ok().map(|result| {
            per_char_tallies(&sim.truth().keystrokes(), &result.keys_before_corrections)
        })
    });
    let mut tallies: HashMap<char, (usize, usize)> = HashMap::new();
    for per_char in per_trial.into_iter().flatten() {
        for (c, (ok, tot)) in per_char {
            let e = tallies.entry(c).or_insert((0, 0));
            e.0 += ok;
            e.1 += tot;
        }
    }
    let mut rows: Vec<(char, f64, usize)> = tallies
        .into_iter()
        .filter(|(_, (_, tot))| *tot > 0)
        .map(|(c, (ok, tot))| (c, ok as f64 / tot as f64, tot))
        .collect();
    // Tie-break on the character so equal accuracies order identically in
    // every run and process (HashMap iteration order is not stable).
    rows.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    outln!("(worst 12 keys first — the paper's errors concentrate on ';' and '\\'')");
    for (c, acc, tot) in rows.iter().take(12) {
        report::bar(&format!("{c:?} (n={tot})"), *acc, 1.0);
    }
    let overall: f64 = {
        let (ok, tot) = rows
            .iter()
            .fold((0.0, 0usize), |(a, b), (_, acc, tot)| (a + acc * *tot as f64, b + tot));
        ok / tot as f64
    };
    report::kv("overall per-key accuracy", format!("{:.1}%", overall * 100.0));
    let perfect = rows.iter().filter(|(_, acc, _)| *acc >= 0.999).count();
    report::kv("keys at 100%", format!("{perfect}/{}", rows.len()));
}

/// Fig 19: accuracy per target application (apps and Chrome pages).
pub fn fig19(ctx: &Ctx) {
    report::section("Fig 19", "inference accuracy on different target apps");
    let per_app = ctx.trials(25);
    for app in FIG19_APPS {
        let mut opts = TrialOptions::paper_default(0);
        opts.sim.app = app;
        let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, app);
        // Paired design: identical credentials and typing across apps, so
        // differences reflect the apps' screen geometry, not sampling.
        let agg = eval_credentials(
            &ctx.pool,
            &store,
            &opts,
            CredentialKind::Username,
            10,
            per_app,
            1_900,
        );
        report::pct_row(
            app.name(),
            &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
        );
    }
}

/// Fig 20: accuracy per on-screen keyboard.
pub fn fig20(ctx: &Ctx) {
    report::section("Fig 20", "inference accuracy on different keyboards");
    let per_kb = ctx.trials(25);
    let mut accs = Vec::new();
    for kb in ALL_KEYBOARDS {
        let mut opts = TrialOptions::paper_default(0);
        opts.sim.keyboard = kb;
        let store = ctx.cache.store(opts.sim.device, kb, opts.sim.app);
        // Paired design: identical credentials and typing across keyboards.
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 10, per_kb, 2_000);
        accs.push(agg.text_accuracy());
        report::pct_row(
            kb.name(),
            &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
        );
    }
    let spread = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - accs.iter().cloned().fold(f64::INFINITY, f64::min);
    report::kv(
        "text-accuracy spread across keyboards",
        format!("{:.1}pp (paper: <5pp)", spread * 100.0),
    );
}
