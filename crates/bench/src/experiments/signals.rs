//! Signal-level demonstrations: Figs 3, 5, 6, 13, 14 and 16.

use adreno_sim::counters::TrackedCounter;
use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::keyboard::Key;
use android_ui::sim::{SimConfig, UiSimulation};
use android_ui::{TimedEvent, UiEvent};
use gpu_sc_attack::sampler::{Sampler, SamplerConfig};
use gpu_sc_attack::trace::extract_deltas;
use input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::Ctx;
use crate::outln;
use crate::report;

fn quiet_sim(seed: u64) -> UiSimulation {
    UiSimulation::new(SimConfig { system_noise_hz: 0.0, ..SimConfig::paper_default(seed) })
}

fn sample(sim: &mut UiSimulation, until_ms: u64) -> Vec<gpu_sc_attack::Delta> {
    let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).expect("stock policy");
    let trace = s.sample_until(sim, SimInstant::from_millis(until_ms)).expect("stock policy");
    extract_deltas(&trace)
}

/// Fig 3: one key press produces exactly three counter changes — popup
/// appear, text echo, popup hide.
pub fn fig3(_ctx: &Ctx) {
    report::section("Fig 3", "a key press results in 3 GPU PC value changes");
    let mut sim = quiet_sim(1);
    sim.advance_to(SimInstant::from_millis(440));
    sim.tap_key(SimInstant::from_millis(700), Key::Char('g'), SimDuration::from_millis(110));
    let deltas: Vec<_> = sample(&mut sim, 1_480)
        .into_iter()
        .filter(|d| d.at > SimInstant::from_millis(450))
        .collect();
    let labels = ["popup appears (press down)", "text echo (key release)", "popup disappears"];
    let mut shown = 0;
    for d in &deltas {
        // Skip the 1000ms cursor blink for the printout clarity.
        let on_blink = d.at.as_nanos() % 500_000_000 < 30_000_000;
        if on_blink && shown > 0 {
            report::kv(&format!("  t={} (cursor blink)", d.at), d.magnitude());
            continue;
        }
        if shown < 3 {
            report::kv(&format!("  t={} {}", d.at, labels[shown]), d.magnitude());
            shown += 1;
        }
    }
    report::kv("changes attributable to the press", shown);
}

/// Fig 5: per-key uniqueness plus the duplication / split / noise factors,
/// shown on `PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ`.
pub fn fig5(_ctx: &Ctx) {
    report::section("Fig 5", "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ variations for 'w','w','n'");
    // Seed chosen so the second 'w' rolls the duplicated animation frame.
    let mut sim = quiet_sim(3);
    sim.advance_to(SimInstant::from_millis(420));
    let mut t = SimInstant::from_millis(700);
    for c in ['w', 'w', 'n'] {
        sim.tap_key(t, Key::Char(c), SimDuration::from_millis(100));
        t += SimDuration::from_millis(700);
    }
    for d in sample(&mut sim, 2_900) {
        if d.at <= SimInstant::from_millis(450) {
            continue;
        }
        let v = d.values[TrackedCounter::LrzVisiblePrimAfterLrz];
        if v > 0 {
            report::bar(&format!("t={}", d.at), v as f64, 400.0);
        }
    }
    outln!("(identical bars ~16ms apart = duplication; large bars = app echo/blink)");
}

/// Fig 6: the per-key scatter in counter space — one LRZ and one RAS
/// counter, every lowercase key.
pub fn fig6(ctx: &Ctx) {
    report::section("Fig 6", "per-key popup deltas: LRZ_FULL_8X8 vs RAS_SUPERTILE_ACTIVE_CYCLES");
    let cfg = SimConfig::paper_default(0);
    let model = ctx.cache.model(cfg.device, cfg.keyboard, cfg.app);
    outln!("{:<5} {:>14} {:>14}", "key", "LRZ full 8x8", "RAS cycles");
    for c in model.centroids().iter().filter(|c| c.ch.is_ascii_lowercase()) {
        outln!(
            "{:<5} {:>14} {:>14}",
            format!("{:?}", c.ch),
            c.values[TrackedCounter::LrzFull8x8Tiles],
            c.values[TrackedCounter::RasSupertileActiveCycles]
        );
    }
    let mut uniq: Vec<(u64, u64)> = model
        .centroids()
        .iter()
        .map(|c| {
            (
                c.values[TrackedCounter::LrzFull8x8Tiles],
                c.values[TrackedCounter::RasSupertileActiveCycles],
            )
        })
        .collect();
    uniq.sort_unstable();
    uniq.dedup();
    report::kv("distinct (LRZ, RAS) pairs", format!("{}/{}", uniq.len(), model.centroids().len()));
}

/// Fig 13: app switching produces fierce counter bursts with <50 ms
/// spacing.
pub fn fig13(_ctx: &Ctx) {
    report::section("Fig 13", "PC value changes across an app switch");
    let mut sim = quiet_sim(5);
    sim.advance_to(SimInstant::from_millis(420));
    sim.tap_key(SimInstant::from_millis(600), Key::Char('a'), SimDuration::from_millis(90));
    sim.queue(TimedEvent::new(SimInstant::from_millis(1_200), UiEvent::SwitchAway));
    sim.queue(TimedEvent::new(SimInstant::from_millis(1_700), UiEvent::OtherAppActivity));
    sim.queue(TimedEvent::new(SimInstant::from_millis(2_300), UiEvent::SwitchBack));
    sim.tap_key(SimInstant::from_millis(3_000), Key::Char('b'), SimDuration::from_millis(90));
    let deltas = sample(&mut sim, 3_600);
    let mut burst_gaps = Vec::new();
    let mut prev_big: Option<SimInstant> = None;
    for d in &deltas {
        if d.at <= SimInstant::from_millis(450) {
            continue;
        }
        let big = d.magnitude() > 800_000;
        if big {
            if let Some(p) = prev_big {
                burst_gaps.push((d.at - p).as_millis());
            }
            prev_big = Some(d.at);
        } else {
            prev_big = None;
        }
        report::bar(
            &format!("t={}{}", d.at, if big { " *" } else { "" }),
            d.magnitude() as f64,
            3_000_000.0,
        );
    }
    let within_50 = burst_gaps.iter().filter(|g| **g < 50).count();
    report::kv("burst inter-change gaps <50ms", format!("{within_50}/{}", burst_gaps.len()));
}

/// Fig 14: visible prims move ±2 per character; cursor blinks sit on the
/// 0.5 s grid.
pub fn fig14(_ctx: &Ctx) {
    report::section("Fig 14", "echo deltas: 3 letters typed, then 2 deleted");
    let mut sim = quiet_sim(7);
    sim.advance_to(SimInstant::from_millis(420));
    let mut t = SimInstant::from_millis(650);
    for c in ['a', 'b', 'c'] {
        sim.tap_key(t, Key::Char(c), SimDuration::from_millis(90));
        t += SimDuration::from_millis(650);
    }
    for _ in 0..2 {
        sim.tap_key(t, Key::Backspace, SimDuration::from_millis(90));
        t += SimDuration::from_millis(650);
    }
    let app_pixels = {
        let cfg = SimConfig::paper_default(0);
        let screen = android_ui::LoginScreen::new(cfg.app, &cfg.device);
        adreno_sim::pipeline::render(&screen.draw(0, true, 0.0), &cfg.device.gpu().params()).totals
            [TrackedCounter::LrzVisiblePixelAfterLrz]
    };
    let mut prev: Option<u64> = None;
    for d in sample(&mut sim, 4_400) {
        if d.at <= SimInstant::from_millis(450) {
            continue;
        }
        let px = d.values[TrackedCounter::LrzVisiblePixelAfterLrz];
        // Echo-like: app-window-sized pixel footprint.
        if (px as f64) > app_pixels as f64 * 0.7 {
            let v = d.values[TrackedCounter::LrzVisiblePrimAfterLrz];
            let dv = prev.map(|p| v as i64 - p as i64);
            let on_blink = d.at.as_nanos() % 500_000_000 < 30_000_000;
            let tag = match (dv, on_blink) {
                (None, _) => "baseline".to_owned(),
                (Some(x), true) => format!("{x:+} cursor blink"),
                (Some(x), false) if x > 0 => format!("{x:+} input"),
                (Some(x), false) if x < 0 => format!("{x:+} deletion"),
                (Some(x), _) => format!("{x:+}"),
            };
            outln!("t={:<12} visible_prims={v:<6} {tag}", d.at.to_string());
            prev = Some(v);
        }
    }
}

/// Fig 16: durations and intervals of the five volunteers.
pub fn fig16(_ctx: &Ctx) {
    report::section("Fig 16", "key-press durations and intervals per volunteer");
    let mut rng = StdRng::seed_from_u64(16);
    outln!("{:<12} {:>18} {:>18}", "volunteer", "duration mean±std", "interval mean±std");
    for v in VOLUNTEERS {
        let n = 250;
        let durs: Vec<f64> = (0..n).map(|_| v.sample_duration(&mut rng).as_secs_f64()).collect();
        let ints: Vec<f64> = (0..n).map(|_| v.sample_interval(&mut rng).as_secs_f64()).collect();
        let stat = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let s = (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt();
            (m, s)
        };
        let (dm, ds) = stat(&durs);
        let (im, is) = stat(&ints);
        outln!(
            "{:<12} {:>10.3}±{:.3}s {:>10.3}±{:.3}s",
            format!("Volunteer {}", v.id),
            dm,
            ds,
            im,
            is
        );
    }
}
