//! Table 2: the coarse GPU-workload baseline is ineffective for
//! keystrokes.

use baseline::harness::{table2_cell, Protocol, TABLE2_ALGOS};
use baseline::scenes::TABLE2_SCENES;

use crate::experiments::Ctx;
use crate::report;
use crate::{out, outln};

/// Regenerates Table 2.
pub fn table2(ctx: &Ctx) {
    report::section("Table 2", "eavesdropping accuracy of the coarse-counter baseline");
    let reps = ctx.trials(10).min(10);
    let protocol = Protocol { train_reps: reps, test_reps: reps, seed: 2 };
    out!("{:<16}", "");
    for scene in TABLE2_SCENES {
        out!("{:>16}", scene.name());
    }
    outln!();
    // Every cell is independent: fan the algo × scene grid out and print
    // the table from the collected accuracies.
    let grid: Vec<_> = TABLE2_ALGOS
        .iter()
        .flat_map(|algo| TABLE2_SCENES.iter().map(move |scene| (*algo, *scene)))
        .collect();
    let cells = ctx.pool.par_map(grid, |_, (algo, scene)| table2_cell(scene, algo, protocol));
    let mut max = 0.0f64;
    for (a, algo) in TABLE2_ALGOS.iter().enumerate() {
        out!("{:<16}", algo.name());
        for (s, _) in TABLE2_SCENES.iter().enumerate() {
            let acc = cells[a * TABLE2_SCENES.len() + s];
            max = max.max(acc);
            out!("{:>15.1}%", acc * 100.0);
        }
        outln!();
    }
    report::kv("maximum cell", format!("{:.1}% (paper: all <14.2%)", max * 100.0));
}
