//! Table 2: the coarse GPU-workload baseline is ineffective for
//! keystrokes.

use baseline::harness::{table2_cell, Protocol, TABLE2_ALGOS};
use baseline::scenes::TABLE2_SCENES;

use crate::experiments::Ctx;
use crate::report;

/// Regenerates Table 2.
pub fn table2(ctx: &mut Ctx) {
    report::section("Table 2", "eavesdropping accuracy of the coarse-counter baseline");
    let reps = ctx.trials(10).min(10);
    let protocol = Protocol { train_reps: reps, test_reps: reps, seed: 2 };
    print!("{:<16}", "");
    for scene in TABLE2_SCENES {
        print!("{:>16}", scene.name());
    }
    println!();
    let mut max = 0.0f64;
    for algo in TABLE2_ALGOS {
        print!("{:<16}", algo.name());
        for scene in TABLE2_SCENES {
            let acc = table2_cell(scene, algo, protocol);
            max = max.max(acc);
            print!("{:>15.1}%", acc * 100.0);
        }
        println!();
    }
    report::kv("maximum cell", format!("{:.1}% (paper: all <14.2%)", max * 100.0));
}
