//! Robustness experiments: Figs 21 (input speed), 22 (CPU/GPU load) and
//! 23 (sampling interval × refresh rate).

use adreno_sim::time::SimDuration;
use android_ui::RefreshRate;
use gpu_sc_attack::sampler::SamplerConfig;
use input_bot::corpus::CredentialKind;
use input_bot::timing::SpeedClass;

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::{eval_credentials, TrialOptions};

/// Fig 21: the impact of typing speed. Per-key accuracy stays flat; text
/// accuracy falls for slow typists because long sessions accumulate more
/// system-noise insertions (§7.2).
pub fn fig21(ctx: &Ctx) {
    report::section("Fig 21", "impact of user input speed");
    let base = TrialOptions::paper_default(0);
    let store = ctx.cache.store(base.sim.device, base.sim.keyboard, base.sim.app);
    let per_class = ctx.trials(20);
    for class in [SpeedClass::Slow, SpeedClass::Medium, SpeedClass::Fast] {
        let mut opts = base.clone();
        opts.speed = Some(class);
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 12, per_class, 21);
        outln!(
            "{:<8} text={:>5.1}%  key={:>5.1}%  errors/text={:.2}",
            class.name(),
            agg.text_accuracy() * 100.0,
            agg.key_accuracy() * 100.0,
            agg.mean_errors()
        );
    }
    outln!("(paper: slow ≈60% text accuracy at unchanged per-key accuracy, errors <1.3)");

    outln!();
    outln!("Fig 21(c): per character group at each speed");
    for class in [SpeedClass::Fast, SpeedClass::Medium, SpeedClass::Slow] {
        let mut row = Vec::new();
        for (name, kind) in [
            ("lower", CredentialKind::LowerOnly),
            ("upper", CredentialKind::UpperOnly),
            ("number", CredentialKind::NumberOnly),
            ("symbol", CredentialKind::SymbolOnly),
        ] {
            let mut opts = base.clone();
            opts.speed = Some(class);
            let agg = eval_credentials(&ctx.pool, &store, &opts, kind, 10, ctx.trials(8), 0x21C);
            row.push((name.to_owned(), agg.key_accuracy()));
        }
        report::pct_row(class.name(), &row);
    }
}

/// Fig 22: the impact of concurrent CPU and GPU workloads.
pub fn fig22(ctx: &Ctx) {
    report::section("Fig 22", "impact of CPU and GPU workloads");
    let base = TrialOptions::paper_default(0);
    let store = ctx.cache.store(base.sim.device, base.sim.keyboard, base.sim.app);
    let per_point = ctx.trials(15);

    outln!("(a) CPU utilisation sweep");
    for load in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut opts = base.clone();
        opts.sim.cpu_load = load;
        opts.service.sampler = SamplerConfig { cpu_load: load, ..SamplerConfig::default_8ms() };
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 10, per_point, 22);
        report::pct_row(
            &format!("  cpu={:>3.0}%", load * 100.0),
            &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
        );
    }

    outln!("(b) GPU utilisation sweep");
    for load in [0.0, 0.25, 0.5, 0.75] {
        let mut opts = base.clone();
        opts.sim.gpu_load = load;
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 10, per_point, 22);
        report::pct_row(
            &format!("  gpu={:>3.0}%", load * 100.0),
            &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
        );
    }
    outln!("(paper: negligible up to 50% CPU / 25% GPU, ~60% text accuracy at 75%)");
}

/// Fig 23: sampling interval vs refresh rate.
pub fn fig23(ctx: &Ctx) {
    report::section("Fig 23", "accuracy with different counter-reading intervals");
    let per_point = ctx.trials(15);
    for refresh in [RefreshRate::Hz60, RefreshRate::Hz120] {
        for interval_ms in [4u64, 8, 12] {
            let mut opts = TrialOptions::paper_default(0);
            opts.sim.device.refresh = refresh;
            opts.service.sampler = SamplerConfig {
                interval: SimDuration::from_millis(interval_ms),
                ..SamplerConfig::default_8ms()
            };
            let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
            let agg = eval_credentials(
                &ctx.pool,
                &store,
                &opts,
                CredentialKind::Username,
                10,
                per_point,
                23,
            );
            report::pct_row(
                &format!("{refresh} / {interval_ms}ms"),
                &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
            );
        }
    }
    outln!("(paper: text accuracy drops ~20pp at 12ms; 120Hz needs ≤4ms)");
}
