//! Split exfiltration over the wire: the `wire` crate's resilience budget.
//!
//! Not a paper figure — the paper runs sampler and classifier in one
//! process. This experiment prices the realistic deployment where the
//! counter stream crosses a lossy network to an offsite classifier:
//!
//! 1. **Wire cost** — payload bytes per typed keystroke under a fault-free
//!    link (the delta-of-delta batch codec's compression floor), after
//!    asserting the split session reproduces the in-process pipeline
//!    byte for byte.
//! 2. **Wire latency** — press-to-inference latency as seen *at the
//!    client*, i.e. including batching delay and the transport round trip,
//!    against the in-process `decided_at` baseline the `latency` experiment
//!    measures.
//! 3. **Loss sweep** — accuracy as a function of datagram loss rate. The
//!    retransmit/resequence/reconnect machinery should hold accuracy flat
//!    while retransmissions (the price paid) climb.
//!
//! Telemetry lands in `BENCH_experiments.json` as
//! `bench.exfil.payload_bytes_per_key`,
//! `bench.exfil.press_to_inference_wire_ms`, and
//! `bench.exfil.worst_loss_key_acc_pct`.

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::sim::{SimConfig, UiSimulation};
use gpu_sc_attack::metrics::{Aggregate, MATCH_WINDOW};
use gpu_sc_attack::offline::ModelStore;
use gpu_sc_attack::service::{AttackService, ServiceError, SessionResult};
use gpu_sc_attack::{InferredKey, SessionScore};
use input_bot::corpus::{generate, CredentialKind};
use input_bot::script::Typist;
use input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wire::{run_split_session, ExfilConfig, LinkPlan, SplitOutcome};

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::TrialOptions;

const CREDENTIAL_LEN: usize = 10;

/// Sessions comfortably fit this horizon; outages scheduled by intensity
/// plans can land anywhere inside one.
const HORIZON: SimDuration = SimDuration::from_secs(8);

/// Histogram edges (ms) for the over-the-wire press-to-inference latency —
/// same grid as the in-process `latency` experiment so the two are directly
/// comparable in `BENCH_experiments.json`.
const WIRE_LATENCY_EDGES_MS: &[u64] = &[10, 20, 40, 80, 160, 320, 640];

/// Ground-truth press instants for wire-latency matching.
type PressTruth = Vec<(SimInstant, char)>;

/// Runs one credential session split across `plan`, returning the outcome
/// plus the ground-truth press times (for wire-latency matching).
///
/// The victim side is seeded exactly like
/// [`crate::trials::run_credential_trial`], so an in-process run with the
/// same `(text, seed)` observes the identical victim.
fn split_trial(
    store: &ModelStore,
    opts: &TrialOptions,
    text: &str,
    seed: u64,
    plan: &LinkPlan,
) -> Result<(SessionScore, SplitOutcome, PressTruth), ServiceError> {
    let _span = spansight::span("bench", "trial");
    let mut sim = UiSimulation::new(SimConfig { seed, ..opts.sim.clone() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7157);
    let mut typist = Typist::new(opts.volunteer);
    let typed = typist.type_text(text, SimInstant::from_millis(900), &mut rng);
    let end = typed.end + SimDuration::from_millis(800);
    sim.queue_all(typed.events);

    let service = AttackService::new(store.clone(), opts.service.clone());
    let outcome = run_split_session(&service, &mut sim, end, plan, ExfilConfig::default())?;
    let score = outcome.result.score(&sim);
    let truth = sim.truth().keystrokes();
    Ok((score, outcome, truth))
}

/// The same session, in-process (the equivalence baseline).
fn inproc_trial(
    store: &ModelStore,
    opts: &TrialOptions,
    text: &str,
    seed: u64,
) -> Result<SessionResult, ServiceError> {
    let _span = spansight::span("bench", "trial");
    let mut sim = UiSimulation::new(SimConfig { seed, ..opts.sim.clone() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7157);
    let mut typist = Typist::new(opts.volunteer);
    let typed = typist.type_text(text, SimInstant::from_millis(900), &mut rng);
    let end = typed.end + SimDuration::from_millis(800);
    sim.queue_all(typed.events);
    AttackService::new(store.clone(), opts.service.clone()).eavesdrop(&mut sim, end)
}

/// Press-to-client-arrival latencies: every true press matched (same greedy
/// rule as `metrics::score_session`) against the keys the server streamed
/// back, measured to their client-side arrival instant.
fn wire_latencies(
    truth: &[(SimInstant, char)],
    arrivals: &[(InferredKey, SimInstant)],
) -> Vec<u64> {
    let mut used = vec![false; arrivals.len()];
    let mut out = Vec::new();
    for &(t, c) in truth {
        let hit = arrivals.iter().enumerate().find(|(i, (k, _))| {
            !used[*i]
                && k.ch == c
                && k.at.saturating_since(t) <= MATCH_WINDOW
                && t.saturating_since(k.at) <= MATCH_WINDOW
        });
        if let Some((i, (_, arrived))) = hit {
            used[i] = true;
            out.push(arrived.saturating_since(t).as_nanos() / 1_000_000);
        }
    }
    out
}

/// One loss-rate row of the sweep, folded in trial order.
#[derive(Debug, Default)]
struct LossCell {
    agg: Aggregate,
    completed: usize,
    failed: usize,
    retransmits: u64,
    reconnects: u64,
    bytes_sent: u64,
    finacks: usize,
}

/// Runs `trials` split sessions at one loss rate; deterministic at any
/// worker count (inputs pre-drawn sequentially, folded in trial order).
fn loss_cell(
    ctx: &Ctx,
    store: &ModelStore,
    base: &TrialOptions,
    loss: f64,
    trials: usize,
    seed: u64,
) -> LossCell {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<(String, u64, usize)> = (0..trials)
        .map(|t| (generate(&mut rng, CredentialKind::Password, CREDENTIAL_LEN), rng.gen(), t))
        .collect();
    let outcomes = ctx.pool.par_map(inputs, |_, (text, trial_seed, t)| {
        let mut opts = base.clone();
        opts.volunteer = VOLUNTEERS[t % VOLUNTEERS.len()];
        let plan = LinkPlan::new(trial_seed ^ 0x11E7)
            .with_loss(loss)
            .with_reorder(loss / 2.0)
            .with_duplication(loss / 4.0)
            .with_horizon(HORIZON);
        let truth_len = text.chars().count();
        match split_trial(store, &opts, &text, trial_seed, &plan) {
            Ok((score, outcome, _)) => Ok((score, outcome)),
            Err(e) => Err((truth_len, e)),
        }
    });
    let mut cell = LossCell::default();
    for outcome in outcomes {
        match outcome {
            Ok((score, outcome)) => {
                cell.completed += 1;
                cell.retransmits += outcome.result.link.retransmits;
                cell.reconnects += outcome.result.link.reconnects;
                cell.bytes_sent += outcome.result.link.bytes_sent;
                cell.finacks += usize::from(outcome.completed);
                cell.agg.add(&score);
            }
            Err((lost_keys, _)) => {
                cell.failed += 1;
                cell.agg.add(&SessionScore {
                    correct_keys: 0,
                    total_keys: lost_keys,
                    spurious_keys: 0,
                    text_exact: false,
                    edit_distance: lost_keys,
                });
            }
        }
    }
    cell
}

/// The `exfil` experiment: wire cost, wire latency, and the loss sweep.
pub fn exfil(ctx: &Ctx) {
    report::section("exfil", "split sampler/classifier over a lossy wire");
    let base = TrialOptions::paper_default(0);
    let store = ctx.cache.store(base.sim.device, base.sim.keyboard, base.sim.app);
    let text =
        generate(&mut StdRng::seed_from_u64(0xE8F1), CredentialKind::Password, CREDENTIAL_LEN);

    // 1. Fault-free link: the split session must reproduce the in-process
    // pipeline exactly (the `link` report being the only difference).
    let clean = LinkPlan::new(0xC1EA).with_horizon(HORIZON);
    let (_, outcome, truth) =
        split_trial(&store, &base, &text, 0xE8F1, &clean).expect("fault-free split session");
    let inproc = inproc_trial(&store, &base, &text, 0xE8F1).expect("in-process baseline");
    let mut delinked = outcome.result.clone();
    delinked.link = Default::default();
    assert_eq!(delinked, inproc, "fault-free split must equal the in-process pipeline");
    assert!(outcome.result.link.is_clean(), "fault-free link report: {}", outcome.result.link);
    assert_eq!(
        outcome.recovered_over_wire.as_deref(),
        Some(inproc.recovered_text.as_str()),
        "the FinAck must carry the recovered credential"
    );
    report::kv("fault-free split == in-process", format!("ok ({:?})", inproc.recovered_text));

    // Wire cost: acked payload bytes per typed keystroke (the batch codec's
    // compression floor), plus total wire bytes including framing and acks.
    let keys = text.chars().count() as u64;
    let bytes_per_key = outcome.result.link.bytes_acked as f64 / keys as f64;
    report::kv(
        "payload bytes per keystroke",
        format!(
            "{bytes_per_key:.0} ({} payload bytes, {} on the wire, {} keystrokes)",
            outcome.result.link.bytes_acked, outcome.result.link.bytes_sent, keys
        ),
    );
    spansight::count("bench.exfil.payload_bytes_per_key", bytes_per_key.round() as u64);

    // 2. Wire latency: press → key streamed back to the client. Includes
    // batching (up to one 32-sample batch, ~256 ms) and the round trip.
    let mut lat = wire_latencies(&truth, outcome.key_arrivals.as_slice());
    lat.sort_unstable();
    for &ms in &lat {
        spansight::record("bench.exfil.press_to_inference_wire_ms", WIRE_LATENCY_EDGES_MS, ms);
    }
    if lat.is_empty() {
        report::kv("press-to-inference over wire", "no matched presses");
    } else {
        let p = |q: f64| lat[((lat.len() - 1) as f64 * q) as usize];
        report::kv(
            "press-to-inference over wire",
            format!(
                "median {} / p95 {} / max {} ms over {} matched presses",
                p(0.5),
                p(0.95),
                lat[lat.len() - 1],
                lat.len()
            ),
        );
    }

    // 3. Loss sweep: accuracy should hold as loss climbs; retransmits and
    // reconnects are what it costs.
    let per_cell = ctx.trials(6);
    outln!();
    outln!(
        "{:<7} {:>12} {:>12} {:>8} {:>10} {:>10} {:>9} {:>7}",
        "loss",
        "text-acc",
        "key-acc",
        "finack",
        "retx/s",
        "reconn/s",
        "KB/s(tx)",
        "failed"
    );
    let mut worst_key_acc = f64::INFINITY;
    for &loss in &[0.0, 0.1, 0.25, 0.5] {
        let cell = loss_cell(ctx, &store, &base, loss, per_cell, 0xE8F11);
        let sessions = (cell.completed + cell.failed).max(1) as f64;
        outln!(
            "{:<7.2} {:>11.1}% {:>11.1}% {:>5}/{:<2} {:>10.1} {:>10.2} {:>9.1} {:>4}/{:<2}",
            loss,
            cell.agg.text_accuracy() * 100.0,
            cell.agg.key_accuracy() * 100.0,
            cell.finacks,
            per_cell,
            cell.retransmits as f64 / sessions,
            cell.reconnects as f64 / sessions,
            cell.bytes_sent as f64 / sessions / 1024.0,
            cell.failed,
            per_cell,
        );
        worst_key_acc = worst_key_acc.min(cell.agg.key_accuracy());
    }
    spansight::count("bench.exfil.worst_loss_key_acc_pct", (worst_key_acc * 100.0).round() as u64);
    outln!("(expected: key accuracy holds across the sweep — the reliability layer absorbs");
    outln!(" loss into retransmissions; only the wire-byte and latency cost should climb)");
}
