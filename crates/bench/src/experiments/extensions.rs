//! Extension experiments beyond the paper's figures.
//!
//! * `guessing` — quantifies §7.1's remark that "single errors in inference
//!   could be addressed with a small number of guesses": fraction of
//!   credentials recovered within G guesses using ranked candidates.
//! * `defense-tuning` — attacks §9.3's open question head on: how many
//!   decoy injections per second does the OS need to push the attack below
//!   a target accuracy, and what does that cost in GPU time?

use gpu_sc_attack::metrics::guesses_needed;
use input_bot::corpus::{generate, CredentialKind};
use input_bot::timing::{VolunteerModel, VOLUNTEERS};
use kgsl::ObfuscationConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::{eval_credentials, run_credential_trial, TrialOptions};

/// Accuracy-within-G-guesses over random credentials.
pub fn guessing(ctx: &Ctx) {
    report::section("Extension", "credentials recovered within G guesses (§7.1)");
    let opts = TrialOptions::paper_default(0);
    let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    let trials = ctx.trials(60);
    let budgets: [u128; 4] = [1, 5, 25, 100];
    let mut rng = StdRng::seed_from_u64(0x63E5);
    let plan: Vec<(String, VolunteerModel, u64)> = (0..trials)
        .map(|t| {
            let text = generate(&mut rng, CredentialKind::Username, 12);
            (text, VOLUNTEERS[t % VOLUNTEERS.len()], rng.gen())
        })
        .collect();
    let outcomes = ctx.pool.par_map(plan, |_, (text, volunteer, seed)| {
        let mut o = opts.clone();
        o.volunteer = volunteer;
        let (_, result) = run_credential_trial(&store, &o, &text, seed).ok()?;
        let truth = text; // no corrections in these sessions
                          // Misses/insertions fall outside ranked-candidate guessing, but a
                          // single-edit repair sweep (~|Σ|·(len+1) ≈ 1k guesses for the
                          // Fig 18 charset) still recovers them.
        let one_edit = gpu_sc_attack::metrics::edit_distance(&result.recovered_text, &truth) <= 1;
        Some((guesses_needed(&truth, &result.candidates), one_edit))
    });
    let mut within = [0usize; 4];
    let mut one_edit = 0usize;
    let mut total = 0usize;
    for (guesses, repaired) in outcomes.into_iter().flatten() {
        total += 1;
        if let Some(g) = guesses {
            for (i, b) in budgets.iter().enumerate() {
                if g <= *b {
                    within[i] += 1;
                }
            }
        }
        if repaired {
            one_edit += 1;
        }
    }
    for (i, b) in budgets.iter().enumerate() {
        report::pct_row(
            &format!("G = {b:>6} (candidate ranks)"),
            &[("recovered".into(), within[i] as f64 / total.max(1) as f64)],
        );
    }
    report::pct_row(
        "single-edit repair (~1k)",
        &[("recovered".into(), one_edit as f64 / total.max(1) as f64)],
    );
    outln!("(errors here are mostly missed/extra presses, so edit repair dominates rank guessing)");
}

/// Quantifies the echo-corroboration insertion filter: slow typists suffer
/// most from noise insertions (§7.2's stated cause of the slow-typing
/// degradation), so the comparison runs at slow speed and with elevated
/// ambient noise.
pub fn ablate_corroboration(ctx: &Ctx) {
    report::section("Ablation", "echo corroboration (insertion filter, beyond the paper)");
    let trials = ctx.trials(20);
    for (name, corroborate) in [("paper pipeline", false), ("with echo corroboration", true)] {
        let mut opts = TrialOptions::paper_default(0);
        opts.sim.system_noise_hz = 0.2; // noisy environment
        opts.speed = Some(input_bot::timing::SpeedClass::Slow);
        opts.service.echo_corroboration = corroborate;
        let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 12, trials, 0xEC0);
        outln!(
            "{name:<26} text={:>5.1}%  key={:>5.1}%  errors/text={:.2}",
            agg.text_accuracy() * 100.0,
            agg.key_accuracy() * 100.0,
            agg.mean_errors()
        );
    }
    outln!("(negative result: fewer phantom keys but occasional real presses dropped on mislabeled echoes — kept off by default)");
}

/// Finds the cheapest §9.3 decoy rate that pushes per-key accuracy below a
/// target, by bisection over the injection rate.
pub fn defense_tuning(ctx: &Ctx) {
    report::section("Extension", "tuning the §9.3 obfuscation defence");
    let base = TrialOptions::paper_default(0);
    let store = ctx.cache.store(base.sim.device, base.sim.keyboard, base.sim.app);
    let trials = ctx.trials(10);

    let measure = |rate: f64| -> f64 {
        let mut o = base.clone();
        o.sim.obfuscation =
            if rate > 0.0 { Some(ObfuscationConfig::popup_sized(rate)) } else { None };
        eval_credentials(&ctx.pool, &store, &o, CredentialKind::Username, 10, trials, 0xDEF)
            .key_accuracy()
    };

    let target = 0.5; // push the attacker below coin-flip-per-key territory
    let (mut lo, mut hi) = (0.0f64, 160.0f64);
    let hi_acc = measure(hi);
    report::kv("target per-key accuracy", format!("{:.0}%", target * 100.0));
    if hi_acc > target {
        report::kv("result", format!("even {hi} decoys/s leaves {:.0}% accuracy", hi_acc * 100.0));
        return;
    }
    for _ in 0..6 {
        let mid = (lo + hi) / 2.0;
        let acc = measure(mid);
        outln!("  rate={mid:>6.1}/s  key accuracy={:.1}%", acc * 100.0);
        if acc > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Decoys cost ~24k cycles each; express the found rate as GPU-time
    // overhead on the paper's main device.
    let clock = base.sim.device.gpu().params().clock_mhz as f64 * 1e6;
    report::kv(
        "cheapest sufficient rate",
        format!("≈{hi:.0} decoys/s ({:.3}% GPU time)", 24_000.0 * hi / clock * 100.0),
    );
    outln!("(the paper calls sizing this workload an open question — this is the knee)");
}
