//! Ablations of the design choices DESIGN.md §4 calls out.

use adreno_sim::counters::{CounterGroup, ALL_TRACKED, NUM_TRACKED};
use gpu_sc_attack::offline::{ModelStore, TrainerConfig};
use input_bot::corpus::CredentialKind;

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::{eval_credentials, TrialOptions};

/// Greedy (online) vs full-trace (offline) Algorithm 1 — §5.1's
/// accuracy/timeliness trade-off, measured where splits are common
/// (12 ms sampling).
pub fn ablate_greedy(ctx: &Ctx) {
    report::section("Ablation", "greedy vs full-trace Algorithm 1");
    let trials = ctx.trials(20);
    for (name, full) in [("greedy (online)", false), ("full-trace (offline)", true)] {
        let mut opts = TrialOptions::paper_default(0);
        opts.service.sampler.interval = adreno_sim::SimDuration::from_millis(12);
        opts.service.full_trace = full;
        let store = ctx.cache.store(opts.sim.device, opts.sim.keyboard, opts.sim.app);
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 12, trials, 0xAB1);
        report::pct_row(
            name,
            &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
        );
    }
}

/// Counter-subset ablation: why the attack uses all three groups.
pub fn ablate_counters(ctx: &Ctx) {
    report::section("Ablation", "counter subsets (LRZ / RAS / VPC / all)");
    let trials = ctx.trials(15);
    let opts = TrialOptions::paper_default(0);
    // A private registry: `train_with` registers its model under the fleet
    // key, and shadowing the process-shared registry's paper-default key
    // with a masked-counter model would leak into whichever experiments
    // resolve that key later.
    let ablations = gpu_sc_attack::registry::Registry::default();
    let subsets: [(&str, Option<CounterGroup>); 4] = [
        ("all 11 counters", None),
        ("LRZ only", Some(CounterGroup::Lrz)),
        ("RAS only", Some(CounterGroup::Ras)),
        ("VPC only", Some(CounterGroup::Vpc)),
    ];
    for (name, group) in subsets {
        let mask = group.map(|g| {
            let mut m = [false; NUM_TRACKED];
            for c in ALL_TRACKED {
                m[c.index()] = c.id().group == g;
            }
            m
        });
        let handle = ablations.train_with(
            TrainerConfig { counter_mask: mask, ..TrainerConfig::default() },
            opts.sim.device,
            opts.sim.keyboard,
            opts.sim.app,
        );
        let mut store = ModelStore::new();
        store.add_handle(handle);
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 12, trials, 0xAB2);
        report::pct_row(
            name,
            &[("text".into(), agg.text_accuracy()), ("key".into(), agg.key_accuracy())],
        );
    }
}

/// Threshold sweep: C_th balances noise rejection against split tolerance.
pub fn ablate_threshold(ctx: &Ctx) {
    report::section("Ablation", "acceptance threshold C_th sweep");
    let trials = ctx.trials(15);
    let opts = TrialOptions::paper_default(0);
    let trained = ctx.cache.model(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    for factor in [0.25, 0.5, 1.0, 2.0, 8.0, 64.0] {
        let model = trained.with_threshold(trained.threshold() * factor);
        let mut store = ModelStore::new();
        store.add(model);
        // More ambient noise makes the FP side of the trade-off visible.
        let mut o = opts.clone();
        o.sim.system_noise_hz = 0.4;
        let agg =
            eval_credentials(&ctx.pool, &store, &o, CredentialKind::Username, 12, trials, 0xAB3);
        outln!(
            "C_th x{factor:<5} text={:>5.1}%  key={:>5.1}%  spurious/session={:.2}",
            agg.text_accuracy() * 100.0,
            agg.key_accuracy() * 100.0,
            agg.spurious_keys as f64 / agg.sessions.max(1) as f64
        );
    }
}
