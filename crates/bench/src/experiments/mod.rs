//! The experiment implementations behind the `experiments` binary — one
//! function per table/figure of the paper (see DESIGN.md §3 for the index).

pub mod ablate;
pub mod accuracy;
pub mod adapt;
pub mod extensions;
pub mod faults;
pub mod mitigation;
pub mod overhead;
pub mod practical;
pub mod robustness;
pub mod signals;
pub mod table2;

use crate::trials::ModelCache;

/// Shared experiment context: the model cache plus a trial-count scale
/// (1.0 = quick defaults, larger = closer to paper-scale runs).
#[derive(Debug)]
pub struct Ctx {
    pub cache: ModelCache,
    pub scale: f64,
}

impl Ctx {
    /// Creates a context with the given trial scale.
    pub fn new(scale: f64) -> Self {
        Ctx { cache: ModelCache::new(), scale }
    }

    /// Scales a default trial count, keeping at least 4 trials.
    pub fn trials(&self, default: usize) -> usize {
        ((default as f64 * self.scale).round() as usize).max(4)
    }
}
