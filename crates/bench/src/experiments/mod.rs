//! The experiment implementations behind the `experiments` binary — one
//! function per table/figure of the paper (see DESIGN.md §3 for the index).

pub mod ablate;
pub mod accuracy;
pub mod adapt;
pub mod exfil;
pub mod extensions;
pub mod faults;
pub mod fleet;
pub mod latency;
pub mod mitigation;
pub mod overhead;
pub mod practical;
pub mod registry;
pub mod robustness;
pub mod signals;
pub mod table2;

use std::sync::Arc;

use gpu_sc_attack::registry::Registry;
use minipool::Pool;

use crate::trials::ModelCache;

/// Shared experiment context: the process-wide model registry (and the
/// [`ModelCache`] shim over it), a trial-count scale (1.0 = quick
/// defaults, larger = closer to paper-scale runs) and the worker pool
/// trials fan out on.
///
/// `Ctx` is shared by reference across concurrently-running experiments,
/// so everything in it is thread-safe; the seeded trial plan keeps results
/// byte-identical at any worker count.
#[derive(Debug)]
pub struct Ctx {
    pub registry: Arc<Registry>,
    pub cache: ModelCache,
    pub scale: f64,
    pub pool: Pool,
}

impl Ctx {
    /// Creates a sequential context with the given trial scale.
    pub fn new(scale: f64) -> Self {
        Ctx::with_pool(scale, Pool::sequential())
    }

    /// Creates a context fanning trials out on `pool`.
    pub fn with_pool(scale: f64, pool: Pool) -> Self {
        let registry = Arc::new(Registry::default());
        let cache = ModelCache::with_registry(Arc::clone(&registry));
        Ctx { registry, cache, scale, pool }
    }

    /// Scales a default trial count, keeping at least 4 trials.
    pub fn trials(&self, default: usize) -> usize {
        ((default as f64 * self.scale).round() as usize).max(4)
    }
}
