//! The `registry` experiment: the content-addressed model registry under
//! app-store-scale load.
//!
//! Three parts, all deterministic at any `--jobs`:
//!
//! 1. **Quantization tiers** — GPMR bytes/model at f64/f32/i16 and the
//!    end-to-end accuracy of serving the *quantized decode* of each tier
//!    against the f64 baseline (the §7.6 size/accuracy trade-off the
//!    registry's quantization knob exposes).
//! 2. **Fleet simulation** — a 10k-configuration fleet (scaled by
//!    `--scale`) bulk-loaded as pre-encoded i16 blobs into a registry
//!    capped at 60% of the fleet's total bytes, then driven with a skewed
//!    recency-weighted access pattern: hit/miss (retrain) rates, eviction
//!    counts, and content-dedup hits from configurations sharing one
//!    model.
//! 3. **Online adaptation** — EMA centroid folds on the shared process
//!    registry, demonstrating digest lineage (`parent_of` chains).
//!
//! The fleet phase runs sequentially on the experiment's own thread, so
//! its stdout is byte-identical at any worker count by construction.

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use android_ui::keyboard::ALL_KEYBOARDS;
use android_ui::screen::ALL_PHONES;
use android_ui::{AndroidVersion, DeviceConfig, RefreshRate, Resolution, TargetApp};
use bytes::Bytes;
use gpu_sc_attack::offline::ModelStore;
use gpu_sc_attack::registry::{encode_model, ModelKey, Quantization, Registry, RegistryConfig};
use gpu_sc_attack::{ClassifierModel, KeyCentroid};
use input_bot::corpus::CredentialKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::{eval_credentials, TrialOptions};

/// All 13 target apps (Fig 19's nine plus the Table 2 baseline scenes).
const ALL_APPS: [TargetApp; 13] = [
    TargetApp::Chase,
    TargetApp::Amex,
    TargetApp::Fidelity,
    TargetApp::Schwab,
    TargetApp::MyFico,
    TargetApp::Experian,
    TargetApp::ChromeChase,
    TargetApp::ChromeSchwab,
    TargetApp::ChromeExperian,
    TargetApp::Pnc,
    TargetApp::Gedit,
    TargetApp::GmailWeb,
    TargetApp::DropboxClient,
];

/// The `i`-th fleet configuration under the mixed-radix enumeration of the
/// full (phone × android × resolution × refresh × keyboard × app) space —
/// 14,976 combinations, a pure function of `i`.
fn config_of(i: usize) -> ModelKey {
    let app = ALL_APPS[i % ALL_APPS.len()];
    let keyboard = ALL_KEYBOARDS[(i / 13) % ALL_KEYBOARDS.len()];
    let refresh = [RefreshRate::Hz60, RefreshRate::Hz120][(i / 78) % 2];
    let resolution = [Resolution::Fhd, Resolution::Qhd][(i / 156) % 2];
    let android =
        [AndroidVersion::V8_1, AndroidVersion::V9, AndroidVersion::V10, AndroidVersion::V11]
            [(i / 312) % 4];
    let phone = ALL_PHONES[(i / 1248) % ALL_PHONES.len()];
    (DeviceConfig { phone, android, resolution, refresh }, keyboard, app)
}

/// A deterministic per-configuration variant of the base model: centroid
/// values perturbed by a small arithmetic hash of (config, centroid, slot),
/// standing in for per-device training noise without per-config training
/// cost. The acceptance threshold additionally gets a per-config nudge —
/// thresholds are encoded as exact `f64` bits at every quantization tier,
/// so each variant's canonical blob (and hence its digest) is guaranteed
/// distinct even where i16 quantization rounds the centroid perturbation
/// away. Configurations at multiples of [`DEDUP_EVERY`] reuse the base
/// model unperturbed, so their blobs content-dedup in the registry.
fn variant_model(base: &ClassifierModel, i: usize) -> ClassifierModel {
    let centroids: Vec<KeyCentroid> = base
        .centroids()
        .iter()
        .enumerate()
        .map(|(j, c)| {
            let mut values = [0u64; NUM_TRACKED];
            for (k, (slot, &v)) in values.iter_mut().zip(c.values.as_array().iter()).enumerate() {
                *slot = v + ((i * 31 + j * 7 + k * 3) % 23) as u64;
            }
            KeyCentroid { ch: c.ch, values: CounterSet::from_array(values) }
        })
        .collect();
    base.with_centroids(centroids).with_threshold(base.threshold() + i as f64 * 1e-9)
}

/// Every `DEDUP_EVERY`-th configuration ships the identical base model.
const DEDUP_EVERY: usize = 97;

/// Budget the fleet registry at this fraction of the fleet's total bytes,
/// forcing eviction pressure on the cold tail.
const BUDGET_PCT: usize = 60;

/// §7.6 + fleet-scale: quantized serialization and the byte-budgeted
/// content-addressed registry.
pub fn registry(ctx: &Ctx) {
    report::section("registry", "content-addressed model registry under fleet load");
    let opts = TrialOptions::paper_default(0);
    let base = ctx.cache.model(opts.sim.device, opts.sim.keyboard, opts.sim.app);

    // (1) bytes/model and serving accuracy per quantization tier. Serving
    // accuracy is measured on the *quantized decode* — what a registry
    // configured at that tier would hand a classifier that only has the
    // blob (handles trained in-process keep the exact model and are
    // unaffected).
    outln!("(1) quantization tiers: bytes/model and quantized-decode accuracy");
    let trials = ctx.trials(8);
    let mut f64_key_acc = None;
    for q in Quantization::ALL {
        let blob = encode_model(&base, q);
        let counter = match q {
            Quantization::F64 => "bench.registry.bytes_per_model_f64",
            Quantization::F32 => "bench.registry.bytes_per_model_f32",
            Quantization::I16 => "bench.registry.bytes_per_model_i16",
        };
        spansight::count(counter, blob.len() as u64);
        let decoded = gpu_sc_attack::registry::decode_model(blob.clone())
            .expect("our own encoder's blob decodes");
        let mut store = ModelStore::new();
        store.add(decoded);
        let agg =
            eval_credentials(&ctx.pool, &store, &opts, CredentialKind::Username, 10, trials, 0x9E6);
        let key_acc = agg.key_accuracy();
        let f64_acc = *f64_key_acc.get_or_insert(key_acc);
        outln!(
            "  {:>3}: {:>5} bytes/model  key accuracy {:>5.1}%  (delta vs f64 {:+.1} pp)",
            q.name(),
            blob.len(),
            key_acc * 100.0,
            (key_acc - f64_acc) * 100.0
        );
    }

    // (2) the fleet: bulk-load pre-encoded i16 blobs for a 10k-config
    // fleet into a registry capped below the fleet's working set, then
    // drive a recency-skewed access pattern against it.
    let n = ((10_000.0 * ctx.scale).round() as usize).clamp(1_000, 14_976);
    let blobs: Vec<(ModelKey, Bytes)> = (0..n)
        .map(|i| {
            let key = config_of(i);
            let model =
                if i % DEDUP_EVERY == 0 { base.as_ref().clone() } else { variant_model(&base, i) };
            (key, encode_model(&model, Quantization::I16))
        })
        .collect();
    let fleet_bytes: usize = blobs.iter().map(|(_, b)| b.len()).sum();
    let budget = fleet_bytes * BUDGET_PCT / 100;
    let fleet = Registry::new(RegistryConfig {
        quantization: Quantization::I16,
        byte_budget: Some(budget),
        ..RegistryConfig::default()
    });

    outln!("(2) fleet: {n} configurations, {BUDGET_PCT}% byte budget");
    report::kv("fleet total / budget", format!("{:.2} MB / {:.2} MB", mb(fleet_bytes), mb(budget)));
    for (tick, (key, blob)) in blobs.iter().enumerate() {
        fleet
            .insert_encoded_at(*key, blob.clone(), tick as u64)
            .expect("our own encoder's blob loads");
    }
    let loaded = fleet.stats();
    report::kv(
        "after bulk load",
        format!(
            "{} models live ({:.2} MB), {} evicted, {} dedup hits",
            loaded.models,
            mb(loaded.total_bytes),
            loaded.evictions,
            loaded.dedup_hits
        ),
    );

    // Recency-skewed accesses: cubing a uniform draw concentrates ~88% of
    // lookups on the most recently loaded half of the fleet, the half the
    // LRU kept. A miss means the key's model was evicted — the fleet
    // "retrains" it (re-inserts the blob) at the current tick.
    let accesses = 3 * n;
    let mut rng = StdRng::seed_from_u64(0x9E6157);
    let mut hits = 0usize;
    let mut retrains = 0usize;
    for t in 0..accesses {
        let u: f64 = rng.gen();
        let idx = n - 1 - ((u * u * u * (n as f64)) as usize).min(n - 1);
        let (key, blob) = &blobs[idx];
        let tick = (n + t) as u64;
        if fleet.lookup_at(key, tick).is_some() {
            hits += 1;
        } else {
            retrains += 1;
            fleet.insert_encoded_at(*key, blob.clone(), tick).expect("re-insert");
        }
    }
    let stats = fleet.stats();
    report::kv(
        "accesses",
        format!(
            "{accesses} total: {hits} hits ({:.1}%), {retrains} retrains ({:.1}%)",
            hits as f64 / accesses as f64 * 100.0,
            retrains as f64 / accesses as f64 * 100.0
        ),
    );
    report::kv(
        "steady state",
        format!(
            "{} models live ({:.2} MB of {:.2} MB), {} keys mapped, {} evictions total",
            stats.models,
            mb(stats.total_bytes),
            mb(budget),
            stats.keys,
            stats.evictions
        ),
    );
    spansight::count("bench.registry.fleet_configs", n as u64);
    spansight::count("bench.registry.fleet_hits", hits as u64);
    spansight::count("bench.registry.fleet_retrains", retrains as u64);
    spansight::count("bench.registry.fleet_evictions", stats.evictions);
    spansight::count("bench.registry.dedup_hits", stats.dedup_hits);
    spansight::count("bench.registry.fleet_live_models", stats.models as u64);
    spansight::count("bench.registry.fleet_live_bytes", stats.total_bytes as u64);

    // (3) online adaptation with lineage. A private registry: adaptation
    // remaps the key to the adapted child, and mutating the process-shared
    // registry's paper-default key would leak adapted centroids into
    // whichever experiments happen to run later — a determinism hazard at
    // `--jobs > 1`.
    outln!("(3) online adaptation: EMA centroid folds with digest lineage");
    let lineage = Registry::default();
    let root = lineage.get_or_train(opts.sim.device, opts.sim.keyboard, opts.sim.app);
    let sample = base.centroids()[0];
    let bumped = |by: u64| {
        let mut values = [0u64; NUM_TRACKED];
        for (slot, &v) in values.iter_mut().zip(sample.values.as_array().iter()) {
            *slot = v + by;
        }
        (sample.ch, CounterSet::from_array(values))
    };
    let gen1 = lineage.adapt_at(&root.digest(), &[bumped(400)], 1).expect("root is registered");
    let gen2 = lineage.adapt_at(&gen1.digest(), &[bumped(800)], 2).expect("gen1 is registered");
    let mut depth = 0;
    let mut cursor = gen2.digest();
    while let Some(parent) = lineage.parent_of(&cursor) {
        depth += 1;
        cursor = parent;
    }
    report::kv(
        "lineage",
        format!(
            "{} -> {} -> {} (depth {} back to root {})",
            root.digest().short(),
            gen1.digest().short(),
            gen2.digest().short(),
            depth,
            cursor.short()
        ),
    );
    assert_eq!(cursor, root.digest(), "lineage chain ends at the trained root");
    spansight::count("bench.registry.adaptations", 2);
    report::kv(
        "expected",
        "f32 matches f64 at ~56% of the bytes; i16 roughly halves them again \
         but pays a visible accuracy cost (quantized rows land outside C_th); \
         high hit rate under recency skew despite the 40% capacity shortfall; \
         dedup collapses identical fleet models; adaptation yields a walkable \
         digest lineage",
    );
}

/// Bytes → binary megabytes.
fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
