//! Fault-injection robustness sweep: accuracy under a faulty `/dev/kgsl-3d0`
//! as a function of fault intensity and the sampler's retry budget.
//!
//! Not a paper figure — the paper measured on real hardware where the driver
//! misbehaves for free. The sweep answers the engineering question the
//! resilient sampler exists for: how much fault pressure does the attack
//! absorb before accuracy collapses, and how much of that absorption is the
//! retry budget's doing (budget 0 = the original fail-stop sampler)?

use adreno_sim::time::SimDuration;
use gpu_sc_attack::metrics::Aggregate;
use gpu_sc_attack::offline::ModelStore;
use gpu_sc_attack::sampler::RetryPolicy;
use input_bot::corpus::{generate, CredentialKind};
use input_bot::timing::VOLUNTEERS;
use kgsl::FaultPlan;
use minipool::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::Ctx;
use crate::outln;
use crate::report;
use crate::trials::{run_credential_trial, TrialOptions};

/// Every session in the sweep fits comfortably inside this horizon (10-key
/// credentials finish well before 8 s), so scheduled fault events can land
/// anywhere in a session.
const HORIZON: SimDuration = SimDuration::from_secs(8);

const CREDENTIAL_LEN: usize = 10;

/// Accuracy plus the degradation telemetry averaged over completed sessions.
#[derive(Debug, Default)]
struct SweepCell {
    agg: Aggregate,
    completed: usize,
    failed: usize,
    faults_seen: u64,
    retries_spent: u64,
    coverage_sum: f64,
}

impl SweepCell {
    fn mean_coverage(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.coverage_sum / self.completed as f64
    }

    fn mean_faults(&self) -> f64 {
        let sessions = self.completed + self.failed;
        if sessions == 0 {
            return 0.0;
        }
        self.faults_seen as f64 / sessions as f64
    }
}

/// Runs `trials` credential sessions under a per-trial fault plan of the
/// given intensity and the given retry budget, fanned out on `pool`. Texts
/// and seeds are pre-drawn in sequential order; per-trial results fold into
/// the cell in trial order, so the cell is identical at any worker count.
fn sweep_cell(
    pool: &Pool,
    store: &ModelStore,
    base: &TrialOptions,
    intensity: f64,
    budget: u32,
    trials: usize,
    seed: u64,
) -> SweepCell {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan: Vec<(String, u64, usize)> = (0..trials)
        .map(|t| (generate(&mut rng, CredentialKind::Username, CREDENTIAL_LEN), rng.gen(), t))
        .collect();
    let outcomes = pool.par_map(plan, |_, (text, trial_seed, t)| {
        let mut opts = base.clone();
        opts.volunteer = VOLUNTEERS[t % VOLUNTEERS.len()];
        opts.service.sampler.retry = RetryPolicy::with_budget(budget);
        opts.fault_plan = Some(FaultPlan::with_intensity(trial_seed ^ 0xFA, intensity, HORIZON));
        match run_credential_trial(store, &opts, &text, trial_seed) {
            Ok(sr) => Ok(sr),
            Err(e) => Err((text.chars().count(), e)),
        }
    });
    let mut cell = SweepCell::default();
    for outcome in outcomes {
        match outcome {
            Ok((score, result)) => {
                cell.agg.add(&score);
                cell.completed += 1;
                cell.faults_seen += result.degradation.faults_seen;
                cell.retries_spent += result.degradation.retries_spent;
                cell.coverage_sum += result.degradation.coverage;
            }
            Err((lost_keys, _)) => {
                // The service acquired nothing (or could not recognise the
                // device through the noise): every key of this text is lost.
                cell.failed += 1;
                cell.agg.add(&gpu_sc_attack::SessionScore {
                    correct_keys: 0,
                    total_keys: lost_keys,
                    spurious_keys: 0,
                    text_exact: false,
                    edit_distance: lost_keys,
                });
            }
        }
    }
    cell
}

/// The fault-intensity × retry-budget sweep, prefixed by the two sanity
/// checks the fault layer guarantees: a null plan reproduces the fault-free
/// baseline bit for bit, and the same fault seed reproduces the same
/// degraded session.
pub fn faults(ctx: &Ctx) {
    report::section("faults", "fault injection: intensity × retry budget");
    let base = TrialOptions::paper_default(0);
    let store = ctx.cache.store(base.sim.device, base.sim.keyboard, base.sim.app);

    // Sanity 1: a plan with zero rates and no scheduled events must not
    // perturb the attack at all.
    let text =
        generate(&mut StdRng::seed_from_u64(0xBA5E), CredentialKind::Username, CREDENTIAL_LEN);
    let (clean_score, clean) =
        run_credential_trial(&store, &base, &text, 0xBA5E).expect("fault-free baseline");
    let mut nulled = base.clone();
    nulled.fault_plan = Some(FaultPlan::new(7));
    let (null_score, null) =
        run_credential_trial(&store, &nulled, &text, 0xBA5E).expect("null plan");
    assert_eq!(null.recovered_text, clean.recovered_text, "null plan must be invisible");
    assert_eq!(null_score, clean_score);
    report::kv(
        "null plan == baseline",
        format!(
            "ok (recovered {:?}, clean={})",
            clean.recovered_text,
            clean.degradation.is_clean()
        ),
    );

    // Sanity 2: replaying one faulty session with the same fault seed gives
    // the same text and the same degradation report.
    let mut faulty = base.clone();
    faulty.fault_plan = Some(FaultPlan::with_intensity(21, 0.4, HORIZON));
    let (_, a) = run_credential_trial(&store, &faulty, &text, 0xBA5E).expect("faulty run a");
    let (_, b) = run_credential_trial(&store, &faulty, &text, 0xBA5E).expect("faulty run b");
    assert_eq!(a.recovered_text, b.recovered_text, "fault schedule must be deterministic");
    assert_eq!(a.degradation, b.degradation);
    report::kv(
        "same fault seed replays",
        format!(
            "ok ({} faults, coverage {:.1}%)",
            a.degradation.faults_seen,
            a.degradation.coverage * 100.0
        ),
    );

    // Sanity 3: truncated reads (a prefix of the read block filled, then
    // EINTR) surface as transient faults the retry layer absorbs — the
    // session still completes and still recovers text.
    let mut trunc = base.clone();
    trunc.fault_plan = Some(FaultPlan::new(33).with_truncated_reads(0.2));
    let (_, t) = run_credential_trial(&store, &trunc, &text, 0xBA5E).expect("truncated-read run");
    assert!(t.degradation.faults_seen > 0, "a 20% truncation rate must register as faults");
    assert!(!t.recovered_text.is_empty(), "truncated reads must degrade, not kill, the session");
    report::kv(
        "truncated reads absorbed",
        format!(
            "ok ({} faults, {} retries, coverage {:.1}%, recovered {:?})",
            t.degradation.faults_seen,
            t.degradation.retries_spent,
            t.degradation.coverage * 100.0,
            t.recovered_text
        ),
    );

    // The sweep. Budget 0 is the fail-stop sampler this PR replaced; 8 is
    // the default; 2 sits in between.
    let per_cell = ctx.trials(8);
    outln!();
    outln!(
        "{:<11} {:>7} {:>12} {:>12} {:>10} {:>9} {:>7}",
        "intensity",
        "budget",
        "text-acc",
        "key-acc",
        "coverage",
        "faults/s",
        "failed"
    );
    for &intensity in &[0.0, 0.1, 0.25, 0.5, 0.75] {
        for &budget in &[0u32, 2, 8] {
            let cell = sweep_cell(&ctx.pool, &store, &base, intensity, budget, per_cell, 0xFA017);
            outln!(
                "{:<11.2} {:>7} {:>11.1}% {:>11.1}% {:>9.1}% {:>9.1} {:>4}/{:<2}",
                intensity,
                budget,
                cell.agg.text_accuracy() * 100.0,
                cell.agg.key_accuracy() * 100.0,
                cell.mean_coverage() * 100.0,
                cell.mean_faults(),
                cell.failed,
                per_cell,
            );
        }
    }
    outln!("(expected: budget 8 holds key accuracy far above budget 0 as intensity grows;");
    outln!(" intensity 0.00 rows match the fault-free accuracy experiments exactly)");
}
