//! Fleet-scale orchestration: thousands of concurrent eavesdropping
//! sessions multiplexed over a bounded worker set.
//!
//! The paper's deployment story is app-store scale — many victim phones,
//! each running the tiny sampler, all feeding classification capacity
//! somewhere else. This experiment runs that shape end to end on the
//! `core::fleet` orchestrator: sessions are cooperative tasks stepped one
//! quantum at a time over `minipool`'s ring run queue, shards are
//! independent `AttackService`s sharing one hub-trained registry handle
//! (one blob, one decoded model), every third session is split over its
//! own lossy wire link, and a rotating mix of device-fault intensities keeps degraded
//! sessions in the schedule without letting them stall anyone else.
//!
//! Reported per (shards × sessions) row, all in deterministic sim time
//! (byte-identical at any `--jobs`): completion/salvage/failure counts,
//! key accuracy by degradation band, p50/p95/p99 press-to-inference
//! latency, and scheduler pressure (quanta, sampler stalls). Wall-clock
//! throughput (sessions/s, keys/s) goes to stderr and to the
//! `bench.fleet.*` telemetry counters in `BENCH_experiments.json`.

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::sim::{SimConfig, UiSimulation};
use gpu_sc_attack::fleet::{run_sessions, FleetConfig, FleetSession, Session};
use gpu_sc_attack::metrics::MATCH_WINDOW;
use gpu_sc_attack::offline::ModelStore;
use gpu_sc_attack::service::AttackService;
use gpu_sc_attack::InferredKey;
use input_bot::corpus::{generate, CredentialKind};
use input_bot::script::Typist;
use input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wire::{ExfilConfig, LinkPlan, SplitSessionTask};

use crate::experiments::Ctx;
use crate::report;
use crate::trials::{ModelCache, TrialOptions};

/// Credential length per session — short enough that thousand-session rows
/// stay affordable, long enough to score accuracy meaningfully.
const CREDENTIAL_LEN: usize = 6;

/// Histogram edges (ms of sim time) shared with the telemetry histogram
/// `bench.fleet.press_to_inference_ms`.
const LATENCY_EDGES_MS: &[u64] = &[10, 20, 40, 80, 160, 320, 640];

/// Device-fault intensity cycle for local (in-process) sessions.
const FAULT_MIX: &[f64] = &[0.0, 0.3, 0.0, 0.6, 0.0, 0.9];

/// Link intensity cycle for split (over-the-wire) sessions.
const LINK_MIX: &[f64] = &[0.0, 0.4, 0.8];

/// Every `SPLIT_EVERY`-th session runs split over its own wire link.
const SPLIT_EVERY: usize = 3;

/// A fleet task: an in-process session or a split-over-the-wire one.
/// Boxed: each owns a whole `UiSimulation`, and tasks move through the
/// scheduler's ring.
enum Task<'s> {
    Local(Box<FleetSession<'s>>),
    Split(Box<SplitSessionTask<'s>>),
}

/// What one fleet session contributed to the row, reduced from either
/// outcome shape as soon as the session finishes (on the worker).
struct Done {
    /// Degradation-band label ("clean", "faults 0.6", "link 0.8", …).
    band: &'static str,
    completed: bool,
    /// Split session whose final handshake never landed but whose samples
    /// were salvaged server-side.
    salvaged: bool,
    failed: bool,
    correct_keys: usize,
    total_keys: usize,
    recovered_keys: usize,
    /// Press-to-inference latencies (ms, sim time) of matched presses.
    latencies_ms: Vec<u64>,
    quanta: u64,
    sampler_stalls: u64,
}

impl Session for Task<'_> {
    type Outcome = Done;

    fn step(&mut self) -> Option<Done> {
        match self {
            Task::Local(s) => s.step().map(reduce_local),
            Task::Split(s) => s.step().map(reduce_split),
        }
    }
}

/// The degradation band a session index lands in (a pure function of the
/// index, so labels never depend on scheduling).
fn band_of(index: usize) -> &'static str {
    if index % SPLIT_EVERY == SPLIT_EVERY - 1 {
        match LINK_MIX[(index / SPLIT_EVERY) % LINK_MIX.len()] {
            0.0 => "link 0.0",
            0.4 => "link 0.4",
            _ => "link 0.8",
        }
    } else {
        // Non-split indices take the fault cycle in their arrival order.
        match FAULT_MIX[local_ordinal(index) % FAULT_MIX.len()] {
            0.0 => "clean",
            0.3 => "faults 0.3",
            0.6 => "faults 0.6",
            _ => "faults 0.9",
        }
    }
}

/// How many non-split sessions precede `index` — the position of a local
/// session within the fault cycle.
fn local_ordinal(index: usize) -> usize {
    index - index / SPLIT_EVERY
}

/// Greedy time-ordered alignment of inferred presses against the truth
/// (same rule as `metrics::score_session`), yielding per-press latency:
/// decision (or wire-arrival) time minus true press time.
fn press_latencies(
    truth: &[(SimInstant, char)],
    inferred: impl Iterator<Item = (InferredKey, SimInstant)>,
) -> Vec<u64> {
    let timed: Vec<(InferredKey, SimInstant)> = inferred.collect();
    let mut used = vec![false; timed.len()];
    let mut latencies = Vec::new();
    for &(t, c) in truth {
        let hit = timed.iter().enumerate().find(|(i, (k, _))| {
            !used[*i]
                && k.ch == c
                && k.at.saturating_since(t) <= MATCH_WINDOW
                && t.saturating_since(k.at) <= MATCH_WINDOW
        });
        if let Some((i, (_, decided))) = hit {
            used[i] = true;
            latencies.push(decided.saturating_since(t).as_nanos() / 1_000_000);
        }
    }
    latencies
}

/// Reduces a local session's outcome. The band is a placeholder here —
/// it's a pure function of the global session index, which the outcome
/// doesn't carry, so [`run_row`] stamps the real one on afterwards.
fn reduce_local(out: gpu_sc_attack::fleet::SessionOutcome) -> Done {
    let band = "?";
    match out.result {
        Ok(result) => Done {
            band,
            completed: true,
            salvaged: false,
            failed: false,
            correct_keys: out.score.map_or(0, |s| s.correct_keys),
            total_keys: out.truth.len(),
            recovered_keys: result.keys.len(),
            latencies_ms: press_latencies(
                &out.truth,
                result.keys_before_corrections.iter().map(|k| (*k, k.decided_at)),
            ),
            quanta: out.stats.quanta,
            sampler_stalls: out.stats.sampler_stalls,
        },
        Err(_) => Done {
            band,
            completed: false,
            salvaged: false,
            failed: true,
            correct_keys: 0,
            total_keys: out.truth.len(),
            recovered_keys: 0,
            latencies_ms: Vec::new(),
            quanta: out.stats.quanta,
            sampler_stalls: out.stats.sampler_stalls,
        },
    }
}

/// Reduces a split session's outcome; band stamped by [`run_row`] as for
/// [`reduce_local`].
fn reduce_split(out: wire::SplitSessionOutcome) -> Done {
    match out.outcome {
        Ok(split) => Done {
            band: "?",
            completed: split.completed,
            salvaged: !split.completed,
            failed: false,
            correct_keys: out.score.map_or(0, |s| s.correct_keys),
            total_keys: out.truth.len(),
            recovered_keys: split.result.keys.len(),
            latencies_ms: press_latencies(&out.truth, split.key_arrivals.into_iter()),
            quanta: out.quanta,
            sampler_stalls: 0,
        },
        Err(_) => Done {
            band: "?",
            completed: false,
            salvaged: false,
            failed: true,
            correct_keys: 0,
            total_keys: out.truth.len(),
            recovered_keys: 0,
            latencies_ms: Vec::new(),
            quanta: out.quanta,
            sampler_stalls: 0,
        },
    }
}

/// Builds and runs one (shards × sessions) row, returning the per-session
/// reductions in session order.
fn run_row(ctx: &Ctx, hub: &ModelCache, shards: usize, sessions: usize, seed: u64) -> Vec<Done> {
    let base = TrialOptions::paper_default(0);

    // Hub/clients split: the hub's registry trains the configuration once;
    // every shard builds its own service (its own ModelStore) from the same
    // registry handle — one encoded blob, one decoded model, shared by all.
    let handle = hub.handle(base.sim.device, base.sim.keyboard, base.sim.app);
    let services: Vec<AttackService> = (0..shards)
        .map(|_| {
            let mut store = ModelStore::new();
            store.add_handle(handle.clone());
            AttackService::new(store, base.service.clone())
        })
        .collect();

    // Pre-draw every session's input from the sequential RNG, in index
    // order — the determinism idiom every experiment uses.
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<(String, usize, u64)> = (0..sessions)
        .map(|i| {
            let text = generate(&mut rng, CredentialKind::Password, CREDENTIAL_LEN);
            (text, i % VOLUNTEERS.len(), rng.gen::<u64>())
        })
        .collect();

    let fleet_config = FleetConfig { shards, ..FleetConfig::default() };
    let tasks: Vec<(Task<'_>, &'static str)> = inputs
        .into_iter()
        .enumerate()
        .map(|(i, (text, volunteer, session_seed))| {
            let shard = i % shards;
            let mut sim = UiSimulation::new(SimConfig { seed: session_seed, ..base.sim.clone() });
            let mut trial_rng = StdRng::seed_from_u64(session_seed ^ 0x7157);
            let mut typist = Typist::new(VOLUNTEERS[volunteer]);
            let plan = typist.type_text(&text, SimInstant::from_millis(900), &mut trial_rng);
            let end = plan.end + SimDuration::from_millis(800);
            sim.queue_all(plan.events);
            let band = band_of(i);
            let task = if i % SPLIT_EVERY == SPLIT_EVERY - 1 {
                let intensity = LINK_MIX[(i / SPLIT_EVERY) % LINK_MIX.len()];
                let link = if intensity > 0.0 {
                    LinkPlan::with_intensity(session_seed, intensity, SimDuration::from_secs(8))
                } else {
                    LinkPlan::new(session_seed)
                };
                Task::Split(Box::new(SplitSessionTask::new(
                    shard,
                    &services[shard],
                    sim,
                    end,
                    &link,
                    ExfilConfig::default(),
                )))
            } else {
                let intensity = FAULT_MIX[local_ordinal(i) % FAULT_MIX.len()];
                if intensity > 0.0 {
                    sim.device().install_fault_plan(&kgsl::FaultPlan::with_intensity(
                        session_seed ^ 0xFA,
                        intensity,
                        SimDuration::from_secs(8),
                    ));
                }
                Task::Local(Box::new(FleetSession::new(
                    shard,
                    &services[shard],
                    sim,
                    end,
                    &fleet_config,
                )))
            };
            (task, band)
        })
        .collect();

    let (tasks, bands): (Vec<Task<'_>>, Vec<&'static str>) = tasks.into_iter().unzip();
    let mut done = run_sessions(&ctx.pool, tasks);
    // The reducers can't see the global session index; stamp the authoritative
    // band (a pure function of the index) on afterwards.
    for (d, band) in done.iter_mut().zip(bands) {
        d.band = band;
    }
    done
}

/// Percentile of a sorted slice (nearest-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

/// The `fleet` experiment: the session-orchestration matrix over shard
/// counts and fleet sizes with mixed fault/link degradation.
pub fn fleet(ctx: &Ctx) {
    report::section("fleet", "fleet-scale session orchestration (shards × sessions)");
    let small = ctx.trials(100);
    let large = ((1000.0 * ctx.scale).round() as usize).max(small);
    let rows: Vec<(usize, usize)> =
        vec![(1, small), (2, small), (4, small), (2, large), (4, large)];

    for (shards, sessions) in rows {
        let started = std::time::Instant::now();
        let done = run_row(ctx, &ctx.cache, shards, sessions, 0xF1EE7 ^ (shards as u64) << 32);
        let elapsed = started.elapsed().as_secs_f64();

        let completed = done.iter().filter(|d| d.completed).count();
        let salvaged = done.iter().filter(|d| d.salvaged).count();
        let failed = done.iter().filter(|d| d.failed).count();
        let keys: usize = done.iter().map(|d| d.recovered_keys).sum();
        let quanta: u64 = done.iter().map(|d| d.quanta).sum();
        let stalls: u64 = done.iter().map(|d| d.sampler_stalls).sum();

        report::kv(
            format!("-- {shards} shard(s) x {sessions} sessions --").as_str(),
            format!("{completed} completed, {salvaged} salvaged, {failed} failed"),
        );
        report::kv(
            "keys recovered / scheduler quanta / sampler stalls",
            format!("{keys} / {quanta} / {stalls}"),
        );

        // Accuracy by degradation band, in fixed band order.
        for band in
            ["clean", "faults 0.3", "faults 0.6", "faults 0.9", "link 0.0", "link 0.4", "link 0.8"]
        {
            let (correct, total) = done
                .iter()
                .filter(|d| d.band == band)
                .fold((0usize, 0usize), |(c, t), d| (c + d.correct_keys, t + d.total_keys));
            if total > 0 {
                report::bar(
                    format!("key accuracy {band:<10}").as_str(),
                    correct as f64 / total as f64 * 100.0,
                    100.0,
                );
            }
        }

        let mut latencies: Vec<u64> =
            done.iter().flat_map(|d| d.latencies_ms.iter().copied()).collect();
        for &ms in &latencies {
            spansight::record("bench.fleet.press_to_inference_ms", LATENCY_EDGES_MS, ms);
        }
        latencies.sort_unstable();
        if !latencies.is_empty() {
            report::kv(
                "press-to-inference p50 / p95 / p99",
                format!(
                    "{} / {} / {} ms ({} matched presses)",
                    percentile(&latencies, 0.5),
                    percentile(&latencies, 0.95),
                    percentile(&latencies, 0.99),
                    latencies.len()
                ),
            );
        }

        // Wall-clock throughput: real time, so stderr + telemetry only —
        // stdout stays byte-identical across machines and --jobs.
        let sessions_per_sec = sessions as f64 / elapsed.max(1e-9);
        let keys_per_sec = keys as f64 / elapsed.max(1e-9);
        eprintln!(
            "[fleet] {shards} shard(s) x {sessions}: {elapsed:.2}s wall, \
             {sessions_per_sec:.0} sessions/s, {keys_per_sec:.0} keys/s"
        );
        spansight::count("bench.fleet.sessions_completed", completed as u64);
        spansight::count("bench.fleet.keys_recovered", keys as u64);
        spansight::count("bench.fleet.sessions_per_sec", sessions_per_sec as u64);
        spansight::count("bench.fleet.keys_per_sec", keys_per_sec as u64);
    }
    report::kv(
        "expected",
        "accuracy holds on clean/low bands, degrades gracefully at 0.9 faults and 0.8 link; \
         no row stalls on its degraded sessions",
    );
}
