//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- fig17 fig18
//! cargo run --release -p bench --bin experiments -- --scale 4 fig17   # closer to paper scale
//! cargo run --release -p bench --bin experiments -- --jobs 4 all      # 4 workers
//! ```
//!
//! `--jobs N` sets the worker count for both trial fan-out inside an
//! experiment and experiment-level fan-out when several are selected
//! (default: available parallelism; `--jobs 1` runs everything inline).
//! Output is byte-identical at every worker count: trial inputs are
//! pre-drawn in sequential order and each experiment's report is captured
//! and printed in selection order. Per-experiment wall-clock timings and
//! pipeline telemetry aggregates land in `BENCH_experiments.json`.
//!
//! Observability: every run collects `spansight` spans/counters/histograms
//! across the whole signal path (kgsl ioctls, adreno-sim renders, the
//! attack pipeline stages). Summary tables go to **stderr** — stdout stays
//! byte-identical to a telemetry-free run — and `--trace-out FILE`
//! additionally records a Chrome trace-event JSON loadable in
//! `chrome://tracing` or Perfetto. See the "Observability" section of
//! EXPERIMENTS.md.
//!
//! See DESIGN.md §3 for the experiment ↔ module index and EXPERIMENTS.md
//! for recorded paper-vs-measured results.

use std::io::Write as _;

use bench::experiments::{self, Ctx};
use bench::report;
use minipool::Pool;

type Runner = fn(&Ctx);

const EXPERIMENTS: &[(&str, &str, Runner)] = &[
    ("fig3", "three counter changes per key press", experiments::signals::fig3),
    ("fig5", "per-key PC variations + dup/split", experiments::signals::fig5),
    ("fig6", "per-key delta scatter", experiments::signals::fig6),
    ("fig11", "dup/split/noise census", experiments::accuracy::fig11),
    ("fig13", "app-switch bursts", experiments::signals::fig13),
    ("fig14", "echo ±2 length tracking", experiments::signals::fig14),
    ("fig16", "volunteer typing timing", experiments::signals::fig16),
    ("fig17", "accuracy vs credential length", experiments::accuracy::fig17),
    ("fig18", "per-key accuracy", experiments::accuracy::fig18),
    ("table2", "coarse-counter baseline", experiments::table2::table2),
    ("fig19", "accuracy per target app", experiments::accuracy::fig19),
    ("fig20", "accuracy per keyboard", experiments::accuracy::fig20),
    ("fig21", "impact of typing speed", experiments::robustness::fig21),
    ("fig22", "impact of CPU/GPU load", experiments::robustness::fig22),
    ("fig23", "impact of sampling interval", experiments::robustness::fig23),
    ("fig24", "adaptability matrix", experiments::adapt::fig24),
    ("fig25", "inference latency histogram", experiments::overhead::fig25),
    ("fig26", "battery overhead", experiments::overhead::fig26),
    ("fig27", "practical session event traces", experiments::practical::fig27),
    ("fig28", "practical accuracy", experiments::practical::fig28),
    ("fig29", "PNC animation obfuscation", experiments::mitigation::fig29),
    ("mitigation", "§9 mitigation matrix", experiments::mitigation::mitigation),
    ("modelsize", "§7.6 model sizes", experiments::adapt::modelsize),
    ("guessing", "recovery within G guesses (§7.1 extension)", experiments::extensions::guessing),
    (
        "defense-tuning",
        "cheapest sufficient §9.3 decoy rate",
        experiments::extensions::defense_tuning,
    ),
    ("ablate-greedy", "greedy vs full-trace Algorithm 1", experiments::ablate::ablate_greedy),
    (
        "ablate-corroboration",
        "echo-corroboration insertion filter",
        experiments::extensions::ablate_corroboration,
    ),
    ("ablate-counters", "counter-subset ablation", experiments::ablate::ablate_counters),
    ("ablate-threshold", "C_th sweep", experiments::ablate::ablate_threshold),
    ("faults", "fault intensity × retry budget sweep", experiments::faults::faults),
    ("latency", "press-to-inference latency, greedy vs lookahead", experiments::latency::latency),
    ("exfil", "split sampler/classifier over a lossy wire", experiments::exfil::exfil),
    ("fleet", "fleet-scale session orchestration matrix", experiments::fleet::fleet),
    (
        "registry",
        "content-addressed model registry: quantization, byte budget, lineage",
        experiments::registry::registry,
    ),
];

/// Where per-experiment wall-clock timings are recorded.
const BENCH_OUT: &str = "BENCH_experiments.json";

/// Trace-event buffer capacity when `--trace-out` is given. At the default
/// scale the full suite emits a few million kgsl ioctl spans; the buffer
/// keeps the first ~500k events and counts the rest as dropped.
const TRACE_CAPACITY: usize = 500_000;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--scale N] [--jobs N] [--trace-out FILE] <name>... | all | list"
    );
    eprintln!("experiments:");
    for (name, what, _) in EXPERIMENTS {
        eprintln!("  {name:<18} {what}");
    }
    std::process::exit(2)
}

/// Pulls `--flag <value>` out of `args`; exits via `usage` on a malformed
/// value or a missing operand.
fn take_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        usage();
    }
    let value = args[pos + 1].parse().unwrap_or_else(|_| usage());
    args.drain(pos..=pos + 1);
    Some(value)
}

/// Writes the timing + telemetry record. JSON is assembled by hand — the
/// only strings involved are experiment names from the static table and
/// telemetry identifiers (`kgsl.ioctl.calls`, …), which need no escaping.
fn write_bench_json(
    jobs: usize,
    scale: f64,
    total_s: f64,
    rows: &[(&str, f64)],
    snap: &spansight::Snapshot,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"total_seconds\": {total_s:.3},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, (name, secs)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!("    {{\"name\": \"{name}\", \"seconds\": {secs:.3}}}{comma}\n"));
    }
    out.push_str("  ],\n");
    push_telemetry_json(&mut out, rows, snap);
    out.push_str("}\n");
    std::fs::File::create(BENCH_OUT)?.write_all(out.as_bytes())
}

/// Appends the `"telemetry"` object: suite-wide span/counter/histogram
/// aggregates plus per-experiment per-stage span timings.
fn push_telemetry_json(out: &mut String, rows: &[(&str, f64)], snap: &spansight::Snapshot) {
    let totals = snap.totals();
    out.push_str("  \"telemetry\": {\n");

    out.push_str("    \"spans\": [\n");
    for (i, s) in totals.spans.iter().enumerate() {
        let comma = if i + 1 == totals.spans.len() { "" } else { "," };
        out.push_str(&format!(
            "      {{\"cat\": \"{}\", \"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \
             \"mean_ns\": {}, \"max_ns\": {}}}{comma}\n",
            s.cat,
            s.name,
            s.agg.count,
            s.agg.total_ns,
            s.agg.mean_ns(),
            s.agg.max_ns
        ));
    }
    out.push_str("    ],\n");

    out.push_str("    \"counters\": [\n");
    for (i, c) in totals.counters.iter().enumerate() {
        let comma = if i + 1 == totals.counters.len() { "" } else { "," };
        out.push_str(&format!(
            "      {{\"name\": \"{}\", \"value\": {}}}{comma}\n",
            c.name, c.value
        ));
    }
    out.push_str("    ],\n");

    out.push_str("    \"histograms\": [\n");
    for (i, h) in totals.hists.iter().enumerate() {
        let comma = if i + 1 == totals.hists.len() { "" } else { "," };
        let edges: Vec<String> = h.hist.edges.iter().map(u64::to_string).collect();
        let counts: Vec<String> = h.hist.counts.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "      {{\"name\": \"{}\", \"edges\": [{}], \"counts\": [{}]}}{comma}\n",
            h.name,
            edges.join(", "),
            counts.join(", ")
        ));
    }
    out.push_str("    ],\n");

    out.push_str("    \"per_experiment\": [\n");
    for (i, (name, _)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let track = snap
            .tracks
            .iter()
            .position(|t| t == name)
            .map(|p| p as u32 + 1)
            .unwrap_or(spansight::UNTRACKED);
        let mine = snap.for_track(track);
        out.push_str(&format!("      {{\"name\": \"{name}\", \"stages\": ["));
        for (j, s) in mine.spans.iter().enumerate() {
            let comma = if j + 1 == mine.spans.len() { "" } else { ", " };
            out.push_str(&format!(
                "{{\"cat\": \"{}\", \"name\": \"{}\", \"count\": {}, \"total_ns\": {}}}{comma}",
                s.cat, s.name, s.agg.count, s.agg.total_ns
            ));
        }
        out.push_str(&format!("]}}{comma}\n"));
    }
    out.push_str("    ]\n");
    out.push_str("  }\n");
}

/// Prints one experiment's telemetry table (its registered track's slice of
/// the global snapshot) to stderr, under a `[name telemetry]` header.
fn print_track_table(name: &str, track: u32) {
    spansight::flush();
    let table = spansight::table::render(&spansight::snapshot().for_track(track));
    if !table.is_empty() {
        eprintln!("[{name} telemetry]");
        eprint!("{table}");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_flag::<f64>(&mut args, "--scale").unwrap_or(1.0);
    let jobs =
        take_flag::<usize>(&mut args, "--jobs").unwrap_or_else(Pool::available_parallelism).max(1);
    let trace_out = take_flag::<String>(&mut args, "--trace-out");
    if trace_out.is_some() {
        spansight::enable_tracing(TRACE_CAPACITY);
    }
    if args.is_empty() {
        usage();
    }
    if args[0] == "list" {
        for (name, what, _) in EXPERIMENTS {
            println!("{name:<18} {what}");
        }
        return;
    }

    let selected: Vec<&(&str, &str, Runner)> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS.iter().find(|(n, _, _)| n == a).unwrap_or_else(|| {
                    eprintln!("unknown experiment: {a}");
                    usage()
                })
            })
            .collect()
    };

    // Register every selected experiment's telemetry track up front on the
    // main thread so track ids are deterministic (selection order), not a
    // function of worker scheduling.
    let tracks: Vec<u32> =
        selected.iter().map(|(name, _, _)| spansight::register_track(name)).collect();

    let ctx = Ctx::with_pool(scale, Pool::new(jobs));
    let started = std::time::Instant::now();
    let timings: Vec<(&str, f64)> = if jobs == 1 || selected.len() == 1 {
        // Inline: reports stream straight to stdout as they are produced.
        selected
            .iter()
            .zip(&tracks)
            .map(|((name, _, run), &track)| {
                let t = std::time::Instant::now();
                {
                    let _track = spansight::enter_track(track);
                    let _span = spansight::span("bench", name);
                    run(&ctx);
                }
                let secs = t.elapsed().as_secs_f64();
                eprintln!("[{name} done in {secs:.1}s]");
                print_track_table(name, track);
                (*name, secs)
            })
            .collect()
    } else {
        // Fan the experiments themselves out too. Each worker captures its
        // experiment's report; the main thread prints the captured reports
        // in selection order, so stdout is byte-identical to a sequential
        // run at any worker count.
        let inputs: Vec<_> = selected.iter().zip(tracks.iter().copied()).collect();
        let runs = ctx.pool.par_map(inputs, |_, ((name, _, run), track)| {
            let t = std::time::Instant::now();
            let _track = spansight::enter_track(track);
            let _span = spansight::span("bench", name);
            let ((), text) = report::capture(|| run(&ctx));
            let secs = t.elapsed().as_secs_f64();
            eprintln!("[{name} done in {secs:.1}s]");
            (*name, track, secs, text)
        });
        runs.into_iter()
            .map(|(name, track, secs, text)| {
                print!("{text}");
                print_track_table(name, track);
                (name, secs)
            })
            .collect()
    };
    let total_s = started.elapsed().as_secs_f64();
    eprintln!("[total {total_s:.1}s, scale {scale}, jobs {jobs}]");

    spansight::flush();
    let snap = spansight::snapshot();
    let totals_table = spansight::table::render(&snap.totals());
    if !totals_table.is_empty() {
        eprintln!("[suite telemetry]");
        eprint!("{totals_table}");
    }
    if let Err(e) = write_bench_json(jobs, scale, total_s, &timings, &snap) {
        eprintln!("warning: could not write {BENCH_OUT}: {e}");
    }
    if let Some(path) = trace_out {
        let (events, dropped) = spansight::take_events();
        let json = spansight::chrome::render(&events, &snap.tracks);
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
            Ok(()) => {
                eprintln!("[trace: {} events to {path}, {dropped} dropped]", events.len());
            }
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}
