//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- fig17 fig18
//! cargo run --release -p bench --bin experiments -- --scale 4 fig17   # closer to paper scale
//! cargo run --release -p bench --bin experiments -- --jobs 4 all      # 4 workers
//! ```
//!
//! `--jobs N` sets the worker count for both trial fan-out inside an
//! experiment and experiment-level fan-out when several are selected
//! (default: available parallelism; `--jobs 1` runs everything inline).
//! Output is byte-identical at every worker count: trial inputs are
//! pre-drawn in sequential order and each experiment's report is captured
//! and printed in selection order. Per-experiment wall-clock timings land
//! in `BENCH_experiments.json`.
//!
//! See DESIGN.md §3 for the experiment ↔ module index and EXPERIMENTS.md
//! for recorded paper-vs-measured results.

use std::io::Write as _;

use bench::experiments::{self, Ctx};
use bench::report;
use minipool::Pool;

type Runner = fn(&Ctx);

const EXPERIMENTS: &[(&str, &str, Runner)] = &[
    ("fig3", "three counter changes per key press", experiments::signals::fig3),
    ("fig5", "per-key PC variations + dup/split", experiments::signals::fig5),
    ("fig6", "per-key delta scatter", experiments::signals::fig6),
    ("fig11", "dup/split/noise census", experiments::accuracy::fig11),
    ("fig13", "app-switch bursts", experiments::signals::fig13),
    ("fig14", "echo ±2 length tracking", experiments::signals::fig14),
    ("fig16", "volunteer typing timing", experiments::signals::fig16),
    ("fig17", "accuracy vs credential length", experiments::accuracy::fig17),
    ("fig18", "per-key accuracy", experiments::accuracy::fig18),
    ("table2", "coarse-counter baseline", experiments::table2::table2),
    ("fig19", "accuracy per target app", experiments::accuracy::fig19),
    ("fig20", "accuracy per keyboard", experiments::accuracy::fig20),
    ("fig21", "impact of typing speed", experiments::robustness::fig21),
    ("fig22", "impact of CPU/GPU load", experiments::robustness::fig22),
    ("fig23", "impact of sampling interval", experiments::robustness::fig23),
    ("fig24", "adaptability matrix", experiments::adapt::fig24),
    ("fig25", "inference latency histogram", experiments::overhead::fig25),
    ("fig26", "battery overhead", experiments::overhead::fig26),
    ("fig27", "practical session event traces", experiments::practical::fig27),
    ("fig28", "practical accuracy", experiments::practical::fig28),
    ("fig29", "PNC animation obfuscation", experiments::mitigation::fig29),
    ("mitigation", "§9 mitigation matrix", experiments::mitigation::mitigation),
    ("modelsize", "§7.6 model sizes", experiments::adapt::modelsize),
    ("guessing", "recovery within G guesses (§7.1 extension)", experiments::extensions::guessing),
    (
        "defense-tuning",
        "cheapest sufficient §9.3 decoy rate",
        experiments::extensions::defense_tuning,
    ),
    ("ablate-greedy", "greedy vs full-trace Algorithm 1", experiments::ablate::ablate_greedy),
    (
        "ablate-corroboration",
        "echo-corroboration insertion filter",
        experiments::extensions::ablate_corroboration,
    ),
    ("ablate-counters", "counter-subset ablation", experiments::ablate::ablate_counters),
    ("ablate-threshold", "C_th sweep", experiments::ablate::ablate_threshold),
    ("faults", "fault intensity × retry budget sweep", experiments::faults::faults),
];

/// Where per-experiment wall-clock timings are recorded.
const BENCH_OUT: &str = "BENCH_experiments.json";

fn usage() -> ! {
    eprintln!("usage: experiments [--scale N] [--jobs N] <name>... | all | list");
    eprintln!("experiments:");
    for (name, what, _) in EXPERIMENTS {
        eprintln!("  {name:<18} {what}");
    }
    std::process::exit(2)
}

/// Pulls `--flag <value>` out of `args`; exits via `usage` on a malformed
/// value or a missing operand.
fn take_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        usage();
    }
    let value = args[pos + 1].parse().unwrap_or_else(|_| usage());
    args.drain(pos..=pos + 1);
    Some(value)
}

/// Writes the timing record. JSON is assembled by hand — the only strings
/// involved are the experiment names from the static table, which need no
/// escaping.
fn write_bench_json(
    jobs: usize,
    scale: f64,
    total_s: f64,
    rows: &[(&str, f64)],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"total_seconds\": {total_s:.3},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, (name, secs)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!("    {{\"name\": \"{name}\", \"seconds\": {secs:.3}}}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    std::fs::File::create(BENCH_OUT)?.write_all(out.as_bytes())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_flag::<f64>(&mut args, "--scale").unwrap_or(1.0);
    let jobs =
        take_flag::<usize>(&mut args, "--jobs").unwrap_or_else(Pool::available_parallelism).max(1);
    if args.is_empty() {
        usage();
    }
    if args[0] == "list" {
        for (name, what, _) in EXPERIMENTS {
            println!("{name:<18} {what}");
        }
        return;
    }

    let selected: Vec<&(&str, &str, Runner)> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS.iter().find(|(n, _, _)| n == a).unwrap_or_else(|| {
                    eprintln!("unknown experiment: {a}");
                    usage()
                })
            })
            .collect()
    };

    let ctx = Ctx::with_pool(scale, Pool::new(jobs));
    let started = std::time::Instant::now();
    let timings: Vec<(&str, f64)> = if jobs == 1 || selected.len() == 1 {
        // Inline: reports stream straight to stdout as they are produced.
        selected
            .iter()
            .map(|(name, _, run)| {
                let t = std::time::Instant::now();
                run(&ctx);
                let secs = t.elapsed().as_secs_f64();
                eprintln!("[{name} done in {secs:.1}s]");
                (*name, secs)
            })
            .collect()
    } else {
        // Fan the experiments themselves out too. Each worker captures its
        // experiment's report; the main thread prints the captured reports
        // in selection order, so stdout is byte-identical to a sequential
        // run at any worker count.
        let runs = ctx.pool.par_map(selected, |_, (name, _, run)| {
            let t = std::time::Instant::now();
            let ((), text) = report::capture(|| run(&ctx));
            let secs = t.elapsed().as_secs_f64();
            eprintln!("[{name} done in {secs:.1}s]");
            (*name, secs, text)
        });
        runs.into_iter()
            .map(|(name, secs, text)| {
                print!("{text}");
                (name, secs)
            })
            .collect()
    };
    let total_s = started.elapsed().as_secs_f64();
    eprintln!("[total {total_s:.1}s, scale {scale}, jobs {jobs}]");
    if let Err(e) = write_bench_json(jobs, scale, total_s, &timings) {
        eprintln!("warning: could not write {BENCH_OUT}: {e}");
    }
}
