//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- fig17 fig18
//! cargo run --release -p bench --bin experiments -- --scale 4 fig17   # closer to paper scale
//! ```
//!
//! See DESIGN.md §3 for the experiment ↔ module index and EXPERIMENTS.md
//! for recorded paper-vs-measured results.

use bench::experiments::{self, Ctx};

type Runner = fn(&mut Ctx);

const EXPERIMENTS: &[(&str, &str, Runner)] = &[
    ("fig3", "three counter changes per key press", experiments::signals::fig3),
    ("fig5", "per-key PC variations + dup/split", experiments::signals::fig5),
    ("fig6", "per-key delta scatter", experiments::signals::fig6),
    ("fig11", "dup/split/noise census", experiments::accuracy::fig11),
    ("fig13", "app-switch bursts", experiments::signals::fig13),
    ("fig14", "echo ±2 length tracking", experiments::signals::fig14),
    ("fig16", "volunteer typing timing", experiments::signals::fig16),
    ("fig17", "accuracy vs credential length", experiments::accuracy::fig17),
    ("fig18", "per-key accuracy", experiments::accuracy::fig18),
    ("table2", "coarse-counter baseline", experiments::table2::table2),
    ("fig19", "accuracy per target app", experiments::accuracy::fig19),
    ("fig20", "accuracy per keyboard", experiments::accuracy::fig20),
    ("fig21", "impact of typing speed", experiments::robustness::fig21),
    ("fig22", "impact of CPU/GPU load", experiments::robustness::fig22),
    ("fig23", "impact of sampling interval", experiments::robustness::fig23),
    ("fig24", "adaptability matrix", experiments::adapt::fig24),
    ("fig25", "inference latency histogram", experiments::overhead::fig25),
    ("fig26", "battery overhead", experiments::overhead::fig26),
    ("fig27", "practical session event traces", experiments::practical::fig27),
    ("fig28", "practical accuracy", experiments::practical::fig28),
    ("fig29", "PNC animation obfuscation", experiments::mitigation::fig29),
    ("mitigation", "§9 mitigation matrix", experiments::mitigation::mitigation),
    ("modelsize", "§7.6 model sizes", experiments::adapt::modelsize),
    ("guessing", "recovery within G guesses (§7.1 extension)", experiments::extensions::guessing),
    (
        "defense-tuning",
        "cheapest sufficient §9.3 decoy rate",
        experiments::extensions::defense_tuning,
    ),
    ("ablate-greedy", "greedy vs full-trace Algorithm 1", experiments::ablate::ablate_greedy),
    (
        "ablate-corroboration",
        "echo-corroboration insertion filter",
        experiments::extensions::ablate_corroboration,
    ),
    ("ablate-counters", "counter-subset ablation", experiments::ablate::ablate_counters),
    ("ablate-threshold", "C_th sweep", experiments::ablate::ablate_threshold),
    ("faults", "fault intensity × retry budget sweep", experiments::faults::faults),
];

fn usage() -> ! {
    eprintln!("usage: experiments [--scale N] <name>... | all | list");
    eprintln!("experiments:");
    for (name, what, _) in EXPERIMENTS {
        eprintln!("  {name:<18} {what}");
    }
    std::process::exit(2)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if pos + 1 >= args.len() {
            usage();
        }
        scale = args[pos + 1].parse().unwrap_or_else(|_| usage());
        args.drain(pos..=pos + 1);
    }
    if args.is_empty() {
        usage();
    }
    if args[0] == "list" {
        for (name, what, _) in EXPERIMENTS {
            println!("{name:<18} {what}");
        }
        return;
    }

    let selected: Vec<&(&str, &str, Runner)> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS.iter().find(|(n, _, _)| n == a).unwrap_or_else(|| {
                    eprintln!("unknown experiment: {a}");
                    usage()
                })
            })
            .collect()
    };

    let mut ctx = Ctx::new(scale);
    let started = std::time::Instant::now();
    for (name, _, run) in selected {
        let t = std::time::Instant::now();
        run(&mut ctx);
        eprintln!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
    eprintln!("[total {:.1}s, scale {scale}]", started.elapsed().as_secs_f64());
}
