//! Minimal ASCII reporting helpers so every experiment prints paper-style
//! rows/series that are easy to diff against EXPERIMENTS.md.
//!
//! All output funnels through a thread-local sink: by default it goes
//! straight to stdout, but [`capture`] redirects the current thread's
//! output into a string. The experiment runner uses that to execute
//! experiments concurrently and still print their reports in selection
//! order — worker threads capture, the main thread prints.

use std::cell::RefCell;
use std::fmt::Display;

thread_local! {
    /// Stack of capture buffers for this thread; empty means stdout.
    static SINK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Writes formatted text to this thread's current sink. Prefer the
/// [`out!`](crate::out) / [`outln!`](crate::outln) macros.
#[doc(hidden)]
pub fn emit(args: std::fmt::Arguments<'_>) {
    SINK.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last_mut() {
            Some(buf) => {
                use std::fmt::Write;
                buf.write_fmt(args).expect("writing to a String cannot fail");
            }
            None => {
                use std::io::Write;
                std::io::stdout().write_fmt(args).expect("stdout write failed");
            }
        }
    });
}

/// Runs `f` with this thread's report output redirected into a string;
/// returns `f`'s result and everything it printed. Nests.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, String) {
    SINK.with(|s| s.borrow_mut().push(String::new()));
    let result = f();
    let buf = SINK.with(|s| s.borrow_mut().pop().expect("pushed above"));
    (result, buf)
}

/// Like `print!`, but honouring the report sink of the current thread.
#[macro_export]
macro_rules! out {
    ($($arg:tt)*) => { $crate::report::emit(std::format_args!($($arg)*)) };
}

/// Like `println!`, but honouring the report sink of the current thread.
#[macro_export]
macro_rules! outln {
    () => { $crate::report::emit(std::format_args!("\n")) };
    ($($arg:tt)*) => {
        $crate::report::emit(std::format_args!("{}\n", std::format_args!($($arg)*)))
    };
}

/// Prints a section header for one experiment.
pub fn section(id: &str, title: &str) {
    outln!();
    outln!("=== {id}: {title} ===");
}

/// Prints a labelled percentage row.
pub fn pct_row(label: &str, values: &[(String, f64)]) {
    out!("{label:<26}");
    for (name, v) in values {
        out!("  {name}={:.1}%", v * 100.0);
    }
    outln!();
}

/// Prints a key/value line.
pub fn kv(label: &str, value: impl Display) {
    outln!("{label:<34} {value}");
}

/// Renders a crude horizontal bar for quick visual comparison.
pub fn bar(label: &str, value: f64, max: f64) {
    let width = 40.0;
    let n = if max > 0.0 { ((value / max) * width).round() as usize } else { 0 };
    outln!("{label:<26} {:<41} {value:.3}", "#".repeat(n.min(41)));
}

/// Renders an ASCII histogram from bucket counts.
pub fn histogram(buckets: &[(String, usize)]) {
    let max = buckets.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (label, count) in buckets {
        let n = (*count as f64 / max as f64 * 40.0).round() as usize;
        outln!("{label:<18} {:<41} {count}", "#".repeat(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_not_panic_on_edge_cases() {
        section("TEST", "smoke");
        pct_row("row", &[("a".into(), 0.5)]);
        kv("key", 42);
        bar("zero-max", 1.0, 0.0);
        bar("clamped", 10.0, 1.0);
        histogram(&[("b0".into(), 0), ("b1".into(), 3)]);
        histogram(&[]);
    }

    #[test]
    fn capture_redirects_and_nests() {
        let ((), outer) = capture(|| {
            crate::outln!("before");
            let ((), inner) = capture(|| kv("k", "v"));
            assert_eq!(inner, format!("{:<34} v\n", "k"));
            crate::out!("after");
        });
        assert_eq!(outer, "before\nafter");
    }

    #[test]
    fn capture_returns_value() {
        let (n, text) = capture(|| {
            crate::outln!("x");
            7
        });
        assert_eq!(n, 7);
        assert_eq!(text, "x\n");
    }
}
