//! Minimal ASCII reporting helpers so every experiment prints paper-style
//! rows/series that are easy to diff against EXPERIMENTS.md.

use std::fmt::Display;

/// Prints a section header for one experiment.
pub fn section(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

/// Prints a labelled percentage row.
pub fn pct_row(label: &str, values: &[(String, f64)]) {
    print!("{label:<26}");
    for (name, v) in values {
        print!("  {name}={:.1}%", v * 100.0);
    }
    println!();
}

/// Prints a key/value line.
pub fn kv(label: &str, value: impl Display) {
    println!("{label:<34} {value}");
}

/// Renders a crude horizontal bar for quick visual comparison.
pub fn bar(label: &str, value: f64, max: f64) {
    let width = 40.0;
    let n = if max > 0.0 { ((value / max) * width).round() as usize } else { 0 };
    println!("{label:<26} {:<41} {value:.3}", "#".repeat(n.min(41)));
}

/// Renders an ASCII histogram from bucket counts.
pub fn histogram(buckets: &[(String, usize)]) {
    let max = buckets.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (label, count) in buckets {
        let n = (*count as f64 / max as f64 * 40.0).round() as usize;
        println!("{label:<18} {:<41} {count}", "#".repeat(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_not_panic_on_edge_cases() {
        section("TEST", "smoke");
        pct_row("row", &[("a".into(), 0.5)]);
        kv("key", 42);
        bar("zero-max", 1.0, 0.0);
        bar("clamped", 10.0, 1.0);
        histogram(&[("b0".into(), 0), ("b1".into(), 3)]);
        histogram(&[]);
    }
}
