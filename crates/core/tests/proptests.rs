//! Property-based tests of the attack's invariants.

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::{AndroidVersion, KeyboardKind, PhoneModel, RefreshRate, Resolution, TargetApp};
use gpu_sc_attack::classify::{
    BatchScratch, Classification, ClassifierModel, KeyCentroid, ModelMeta,
};
use gpu_sc_attack::metrics::edit_distance;
use gpu_sc_attack::online::{infer_full_trace, infer_stream, OnlineConfig};
use gpu_sc_attack::sampler::SamplerReport;
use gpu_sc_attack::service::{AttackService, ServiceConfig};
use gpu_sc_attack::trace::{extract_deltas, extract_deltas_with_resets, Delta, Trace};
use gpu_sc_attack::ModelStore;
use proptest::prelude::*;

fn meta() -> ModelMeta {
    ModelMeta {
        phone: PhoneModel::OnePlus8Pro,
        android: AndroidVersion::V11,
        resolution: Resolution::Fhd,
        refresh: RefreshRate::Hz60,
        keyboard: KeyboardKind::Gboard,
        app: TargetApp::Chase,
    }
}

fn arb_set(max: u64) -> impl Strategy<Value = CounterSet> {
    prop::collection::vec(0..max, NUM_TRACKED)
        .prop_map(|v| CounterSet::from_array(v.try_into().unwrap()))
}

/// An arbitrary well-formed model: distinct chars, positive threshold.
fn arb_model() -> impl Strategy<Value = ClassifierModel> {
    (
        prop::collection::btree_map(
            prop::char::range('a', 'z'),
            arb_set(2_000_000).prop_filter("nonzero centroid", |s| s.total() > 0),
            1..12,
        ),
        0.1f64..200.0,
        arb_set(1_000_000),
        arb_set(60_000),
        prop::collection::vec(arb_set(60_000), 0..6),
        arb_set(3_000_000),
        1u64..2_000_000,
    )
        .prop_map(|(centroids, threshold, kb, app, sigs, launch, switch)| {
            let centroids: Vec<KeyCentroid> =
                centroids.into_iter().map(|(ch, values)| KeyCentroid { ch, values }).collect();
            ClassifierModel::new(
                meta(),
                centroids,
                [1.0; NUM_TRACKED],
                threshold,
                kb,
                app,
                sigs,
                launch,
                switch,
            )
        })
}

fn arb_deltas() -> impl Strategy<Value = Vec<Delta>> {
    prop::collection::vec((0u64..20_000u64, arb_set(500_000)), 0..40).prop_map(|mut v| {
        v.sort_by_key(|(ms, _)| *ms);
        v.into_iter()
            .map(|(ms, values)| Delta { at: SimInstant::from_millis(ms), values })
            .collect()
    })
}

/// One counter-activity window of a generated session.
#[derive(Debug, Clone)]
enum SessionStep {
    /// Arbitrary system activity (may look like an app switch, an ambient
    /// echo, or nothing of interest).
    Noise(CounterSet),
    /// An exact keyboard-redraw fingerprint — recognition commits here.
    KeyboardRedraw,
    /// An exact replay of training centroid `i` (a key press).
    Press(usize),
    /// An exact cold-launch burst of the target app.
    Launch,
}

/// A generated session: steps with the gap (ms) since the previous sample.
fn arb_session() -> impl Strategy<Value = Vec<(SessionStep, u64)>> {
    prop::collection::vec(
        (
            prop_oneof![
                arb_set(400_000).prop_map(SessionStep::Noise),
                Just(SessionStep::KeyboardRedraw),
                (0usize..16).prop_map(SessionStep::Press),
                Just(SessionStep::Launch),
            ],
            1u64..300,
        ),
        0..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_serialisation_round_trips(model in arb_model()) {
        let bytes = model.to_bytes();
        let back = ClassifierModel::from_bytes(bytes).unwrap();
        prop_assert_eq!(back.meta(), model.meta());
        prop_assert_eq!(back.centroids(), model.centroids());
        prop_assert_eq!(back.kb_signature(), model.kb_signature());
        prop_assert_eq!(back.app_signature(), model.app_signature());
        prop_assert_eq!(back.ambient_signatures(), model.ambient_signatures());
        prop_assert_eq!(back.launch_signature(), model.launch_signature());
        prop_assert_eq!(back.switch_threshold(), model.switch_threshold());
        prop_assert!((back.threshold() - model.threshold()).abs() / model.threshold() < 1e-5);
    }

    #[test]
    fn store_serialisation_round_trips(models in prop::collection::vec(arb_model(), 0..4)) {
        let mut store = ModelStore::new();
        for m in models {
            store.add(m);
        }
        let back = ModelStore::from_bytes(store.to_bytes()).unwrap();
        // Thresholds round-trip through f32, so compare the canonical wire
        // form rather than the in-memory f64 values.
        prop_assert_eq!(back.to_bytes(), store.to_bytes());
        prop_assert_eq!(back.len(), store.len());
    }

    #[test]
    fn truncated_models_never_panic(model in arb_model(), cut in 0usize..200) {
        let bytes = model.to_bytes();
        let cut = cut.min(bytes.len());
        let truncated = bytes.slice(0..bytes.len() - cut);
        // Any outcome is fine except a panic; full-length must decode.
        let result = ClassifierModel::from_bytes(truncated);
        if cut == 0 {
            prop_assert!(result.is_ok());
        }
    }

    #[test]
    fn exact_centroids_always_classify_correctly(model in arb_model()) {
        for c in model.centroids() {
            // An exact replay of the training delta must classify as that
            // key (degenerate equal-distance centroids may tie).
            let got = model.classify(&c.values).key();
            prop_assert!(got.is_some(), "exact centroid must be accepted");
            let (_, dist) = model.nearest(&c.values);
            prop_assert_eq!(dist, 0.0);
        }
    }

    #[test]
    fn algorithm1_output_is_bounded_and_ordered(
        model in arb_model(),
        deltas in arb_deltas(),
    ) {
        for full in [false, true] {
            let (keys, noise, stats) = if full {
                infer_full_trace(&model, &deltas, OnlineConfig::default())
            } else {
                infer_stream(&model, &deltas, OnlineConfig::default())
            };
            // Every input change is accounted for at most once.
            prop_assert!(keys.len() + noise.len() <= deltas.len());
            prop_assert_eq!(stats.direct + stats.peeled + stats.splits_recovered, keys.len());
            // Inferred presses are time-ordered and spaced by T_l.
            for w in keys.windows(2) {
                prop_assert!(w[0].at <= w[1].at);
                prop_assert!(
                    (w[1].at - w[0].at) >= SimDuration::from_millis(75),
                    "accepted presses must respect the duplication window"
                );
            }
            for w in noise.windows(2) {
                prop_assert!(w[0].at <= w[1].at);
            }
        }
    }

    #[test]
    fn streaming_pipeline_matches_batch_passes(
        model in arb_model(),
        session in arb_session(),
        full_trace in any::<bool>(),
        require_launch in any::<bool>(),
    ) {
        // The tentpole invariant of the stage refactor: driving the stages
        // one sample at a time (process_trace_streaming) must produce the
        // same SessionResult — or the same error — as the whole-trace batch
        // passes (process_trace), for any trace, in both inference modes,
        // with launch gating on or off.
        let kb = *model.kb_signature();
        let launch = *model.launch_signature();
        let presses: Vec<CounterSet> =
            model.centroids().iter().map(|c| c.values).collect();
        let mut store = ModelStore::new();
        store.add(model);

        let mut trace = Trace::new();
        let mut acc = CounterSet::ZERO;
        let mut at = 0u64;
        trace.push(SimInstant::from_millis(at), acc);
        for (step, gap) in session {
            at += gap;
            acc += match step {
                SessionStep::Noise(v) => v,
                SessionStep::KeyboardRedraw => kb,
                SessionStep::Press(i) => presses[i % presses.len()],
                SessionStep::Launch => launch,
            };
            trace.push(SimInstant::from_millis(at), acc);
        }

        let config = ServiceConfig { full_trace, require_launch, ..ServiceConfig::default() };
        let service = AttackService::new(store, config);
        let report = SamplerReport::default();
        let batch = service.process_trace(&trace, &report);
        prop_assert_eq!(service.process_trace_streaming(&trace, &report), batch.clone());
        // Burst pushes (the ring-drain shape of the live driver) must be
        // indistinguishable from per-sample pushes, whatever the burst
        // boundaries.
        let samples: Vec<_> = trace.iter().collect();
        for chunk in [3usize, 64] {
            let mut session = service.streaming_session();
            for c in samples.chunks(chunk) {
                session.push_samples(c);
            }
            prop_assert_eq!(session.finish(&report), batch.clone());
        }
    }

    #[test]
    fn edit_distance_is_a_metric(
        a in "[a-z0-9]{0,12}",
        b in "[a-z0-9]{0,12}",
        c in "[a-z0-9]{0,12}",
    ) {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert_eq!(edit_distance(&a, &a), 0);
        let ab = edit_distance(&a, &b);
        let bc = edit_distance(&b, &c);
        let ac = edit_distance(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle inequality");
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(ab >= la.abs_diff(lb));
        prop_assert!(ab <= la.max(lb));
    }

    #[test]
    fn deltas_reconstruct_trace_totals(
        values in prop::collection::vec(arb_set(10_000), 2..20),
        start in 0u64..1_000,
    ) {
        // Build a monotone trace by accumulating arbitrary increments.
        let mut trace = Trace::new();
        let mut acc = CounterSet::ZERO;
        for (i, v) in values.iter().enumerate() {
            acc += *v;
            trace.push(SimInstant::from_millis(start + i as u64 * 8), acc);
        }
        let deltas = extract_deltas(&trace);
        let sum = deltas.iter().fold(CounterSet::ZERO, |s, d| s + d.values);
        let first = trace.sample(0).values;
        let last = trace.sample(trace.len() - 1).values;
        prop_assert_eq!(sum + first, last, "deltas must sum to the end-to-end change");
    }

    #[test]
    fn counter_resets_reanchor_without_fabricating_deltas(
        segments in prop::collection::vec(
            prop::collection::vec(arb_set(10_000), 1..8),
            1..6,
        ),
    ) {
        // Each segment models one GPU power-up span: a first read right after
        // the registers restarted (all zeros), then monotone accumulation.
        // Every increment gets +1 on one counter so each span's final value
        // is nonzero — making every span boundary a *detectable* backward
        // jump for the extractor.
        let mut trace = Trace::new();
        let mut at = 0u64;
        let mut expected_total = CounterSet::ZERO;
        for increments in &segments {
            let mut acc = CounterSet::ZERO;
            trace.push(SimInstant::from_millis(at), acc);
            at += 8;
            for v in increments {
                let mut bump = *v;
                bump[adreno_sim::counters::TrackedCounter::Ras8x4Tiles] += 1;
                acc += bump;
                trace.push(SimInstant::from_millis(at), acc);
                at += 8;
            }
            expected_total += acc;
        }

        let (deltas, resets) = extract_deltas_with_resets(&trace);
        // Exactly the span boundaries are reported as resets...
        prop_assert_eq!(resets, segments.len() - 1);
        // ...and the surviving deltas are exactly the within-span activity:
        // nothing from a reset window leaks through, nothing real is lost.
        let sum = deltas.iter().fold(CounterSet::ZERO, |s, d| s + d.values);
        prop_assert_eq!(sum, expected_total, "re-anchoring must keep all within-span activity");
        for d in &deltas {
            prop_assert!(!d.values.is_zero(), "idle windows are never emitted");
        }
        // The plain extractor is the same function minus the reset count.
        prop_assert_eq!(extract_deltas(&trace), deltas);
    }

    #[test]
    fn pruned_classification_matches_naive(
        model in arb_model(),
        probes in prop::collection::vec(arb_set(2_500_000), 1..40),
    ) {
        // The hot-path invariant of the prepared-centroid rewrite: the
        // pruned nearest-centroid search (early exit on the running squared
        // sum) must return the exact same Classification as the naive
        // full-distance scan — same accept/reject, same `nearest` char and
        // bit-identical `distance`, including on rejects.
        for v in &probes {
            let naive = model.classify_naive(v);
            let pruned = model.classify(v);
            prop_assert_eq!(pruned, naive);
            let (nn_ch, nn_d) = model.nearest_naive(v);
            let (pr_ch, pr_d) = model.nearest(v);
            prop_assert_eq!(pr_ch, nn_ch);
            prop_assert_eq!(pr_d.to_bits(), nn_d.to_bits(), "distance must be bit-identical");
        }
    }

    #[test]
    fn simd_kernels_match_scalar_reference_bitwise(
        a in prop::collection::vec(0u64..3_000_000, 0..24),
        b in prop::collection::vec(0u64..3_000_000, 0..24),
        w in prop::collection::vec(1u64..64, 0..24),
    ) {
        // The vendored kernels promise an exact summation order (lane j
        // accumulates elements j, j+4, …; reduction tree (l0+l1)+(l2+l3)).
        // Pin them, bit for bit, against a plain scalar spelling of that
        // order — for every length, including ragged tails — and pin the
        // pruned variant's completion to the full kernel.
        let n = a.len().min(b.len()).min(w.len());
        let a: Vec<f64> = a[..n].iter().map(|&v| v as f64).collect();
        let b: Vec<f64> = b[..n].iter().map(|&v| v as f64).collect();
        let w: Vec<f64> = w[..n].iter().map(|&v| 1.0 / v as f64).collect();

        let mut lanes = [0.0f64; simdlite::LANES];
        for i in 0..n {
            let d = (a[i] - b[i]) * w[i];
            lanes[i % simdlite::LANES] += d * d;
        }
        let reference = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);

        let full = simdlite::weighted_sq_dist(&a, &b, &w);
        prop_assert_eq!(full.to_bits(), reference.to_bits(), "chunked ≡ scalar, len {}", n);
        let completed = simdlite::weighted_sq_dist_pruned(&a, &b, &w, f64::INFINITY)
            .expect("infinite cutoff never prunes");
        prop_assert_eq!(completed.to_bits(), full.to_bits(), "pruned completion ≡ full scan");
        // Pruning decisions are consistent with the full sum: at or above
        // the cutoff the scan aborts, below it the scan completes exactly.
        prop_assert_eq!(simdlite::weighted_sq_dist_pruned(&a, &b, &w, full), None);
        prop_assert_eq!(
            simdlite::weighted_sq_dist_pruned(&a, &b, &w, full + 1.0).map(f64::to_bits),
            Some(full.to_bits())
        );
    }

    #[test]
    fn batch_classification_matches_per_delta(
        model in arb_model(),
        probes in prop::collection::vec(arb_set(2_500_000), 0..40),
    ) {
        // The batched entry point must be a pure amortisation: one
        // row-outer traversal per burst, but per probe the same candidate
        // order, the same pruning cutoff, and therefore the same
        // Classification — bit-identical distances included.
        let dist_bits = |c: &Classification| match c {
            Classification::Key { distance, .. } => distance.to_bits(),
            Classification::Rejected { distance, .. } => distance.to_bits(),
        };
        let mut scratch = BatchScratch::default();
        let mut batched = Vec::new();
        model.classify_batch(&probes, &mut scratch, &mut batched);
        prop_assert_eq!(batched.len(), probes.len());
        for (v, got) in probes.iter().zip(&batched) {
            let single = model.classify(v);
            prop_assert_eq!(dist_bits(got), dist_bits(&single), "distance must be bit-identical");
            prop_assert_eq!(*got, single);
        }
        // Scratch reuse across bursts must not leak state between calls.
        let mut again = Vec::new();
        model.classify_batch(&probes, &mut scratch, &mut again);
        prop_assert_eq!(again, batched);
    }

    #[test]
    fn burst_inference_matches_per_change_pushes(
        model in arb_model(),
        deltas in arb_deltas(),
        chunk in 1usize..9,
        lookahead in any::<bool>(),
    ) {
        // Feeding Algorithm 1 whole bursts (the streaming driver's ring
        // drains) must replay the per-change push sequence exactly: same
        // events in the same order, same stats, for any burst boundaries,
        // in both greedy and lookahead modes.
        use gpu_sc_attack::online::InferStage;
        use gpu_sc_attack::stage::Stage;
        let mk = || if lookahead {
            InferStage::lookahead(&model, OnlineConfig::default())
        } else {
            InferStage::greedy(&model, OnlineConfig::default())
        };

        let mut single = mk();
        let mut single_out = Vec::new();
        for d in &deltas {
            single.push(*d, &mut single_out);
        }
        single.finish(&mut single_out);

        let mut burst = mk();
        let mut burst_out = Vec::new();
        for c in deltas.chunks(chunk) {
            burst.push_burst(c, &mut burst_out);
        }
        burst.finish(&mut burst_out);

        prop_assert_eq!(burst_out, single_out);
        prop_assert_eq!(burst.stats(), single.stats());
    }

    #[test]
    fn soa_trace_matches_aos_reference(
        values in prop::collection::vec(arb_set(50_000), 0..40),
        start in 0u64..1_000,
    ) {
        // The columnar Trace must behave exactly like the old
        // array-of-samples form: same per-index views, same iteration
        // order, and batch delta extraction identical to pushing every
        // sample through the streaming DeltaStage (the AoS reference
        // implementation).
        use gpu_sc_attack::stage::Stage;
        use gpu_sc_attack::trace::{DeltaStage, Sample};

        // Non-monotone accumulation: flip between adding and resetting so
        // reset windows are exercised too.
        let mut aos: Vec<Sample> = Vec::with_capacity(values.len());
        let mut acc = CounterSet::ZERO;
        for (i, v) in values.iter().enumerate() {
            if i % 7 == 3 {
                acc = *v; // register reset: restart from an arbitrary point
            } else {
                acc += *v;
            }
            aos.push(Sample { at: SimInstant::from_millis(start + i as u64 * 8), values: acc });
        }
        let trace: Trace = aos.iter().copied().collect();

        prop_assert_eq!(trace.len(), aos.len());
        prop_assert_eq!(trace.is_empty(), aos.is_empty());
        for (i, s) in aos.iter().enumerate() {
            prop_assert_eq!(trace.at(i), s.at);
            prop_assert_eq!(trace.sample(i), *s);
        }
        let iterated: Vec<Sample> = trace.iter().collect();
        prop_assert_eq!(&iterated, &aos);
        let ts: Vec<_> = aos.iter().map(|s| s.at).collect();
        prop_assert_eq!(trace.timestamps(), &ts[..]);
        for c in adreno_sim::counters::ALL_TRACKED {
            let col: Vec<u64> = aos.iter().map(|s| s.values[c]).collect();
            prop_assert_eq!(trace.column(c), &col[..]);
        }

        // Columnar batch extraction ≡ streaming AoS extraction.
        let mut stage = DeltaStage::new();
        let mut streamed = Vec::new();
        for s in &aos {
            stage.push(*s, &mut streamed);
        }
        stage.finish(&mut streamed);
        let (batch, resets) = extract_deltas_with_resets(&trace);
        prop_assert_eq!(batch, streamed);
        prop_assert_eq!(resets, stage.resets());
    }
}
