//! Property-based coverage of the GPMR registry codec: the `f64` tier
//! round-trips bit-exactly, the quantized tiers stay inside their
//! documented error bounds, decode→re-encode is idempotent at every tier
//! (so content digests are stable), and truncated blobs never panic.

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use android_ui::keyboard::ALL_KEYBOARDS;
use android_ui::screen::ALL_PHONES;
use android_ui::{AndroidVersion, RefreshRate, Resolution, TargetApp};
use gpu_sc_attack::classify::{ClassifierModel, KeyCentroid, ModelMeta};
use gpu_sc_attack::registry::{decode_model, encode_model, ModelDigest, Quantization};
use proptest::prelude::*;

/// An arbitrary trained-for configuration: every enum code path in the
/// GPMR header gets exercised.
fn arb_meta() -> impl Strategy<Value = ModelMeta> {
    (0usize..6, 0usize..4, 0usize..2, 0usize..2, 0usize..6, 0usize..13).prop_map(
        |(phone, android, resolution, refresh, keyboard, app)| ModelMeta {
            phone: ALL_PHONES[phone],
            android: [
                AndroidVersion::V8_1,
                AndroidVersion::V9,
                AndroidVersion::V10,
                AndroidVersion::V11,
            ][android],
            resolution: [Resolution::Fhd, Resolution::Qhd][resolution],
            refresh: [RefreshRate::Hz60, RefreshRate::Hz120][refresh],
            keyboard: ALL_KEYBOARDS[keyboard],
            app: [
                TargetApp::Chase,
                TargetApp::Amex,
                TargetApp::Fidelity,
                TargetApp::Schwab,
                TargetApp::MyFico,
                TargetApp::Experian,
                TargetApp::ChromeChase,
                TargetApp::ChromeSchwab,
                TargetApp::ChromeExperian,
                TargetApp::Pnc,
                TargetApp::Gedit,
                TargetApp::GmailWeb,
                TargetApp::DropboxClient,
            ][app],
        },
    )
}

fn arb_set(max: u64) -> impl Strategy<Value = CounterSet> {
    prop::collection::vec(0..max, NUM_TRACKED)
        .prop_map(|v| CounterSet::from_array(v.try_into().unwrap()))
}

/// An arbitrary well-formed model (the shape `proptests.rs` uses), with
/// non-trivial whitening weights — the codec must keep those exact at
/// every quantization tier.
fn arb_model() -> impl Strategy<Value = ClassifierModel> {
    (
        (arb_meta(), prop::collection::vec(1u64..64, NUM_TRACKED)),
        prop::collection::btree_map(
            prop::char::range('a', 'z'),
            arb_set(2_000_000).prop_filter("nonzero centroid", |s| s.total() > 0),
            1..12,
        ),
        0.1f64..200.0,
        arb_set(1_000_000),
        arb_set(60_000),
        prop::collection::vec(arb_set(60_000), 0..6),
        arb_set(3_000_000),
        1u64..2_000_000,
    )
        .prop_map(|((meta, weights), centroids, threshold, kb, app, sigs, launch, switch)| {
            let centroids: Vec<KeyCentroid> =
                centroids.into_iter().map(|(ch, values)| KeyCentroid { ch, values }).collect();
            let weights: [f64; NUM_TRACKED] =
                weights.iter().map(|&w| 1.0 / w as f64).collect::<Vec<_>>().try_into().unwrap();
            ClassifierModel::new(meta, centroids, weights, threshold, kb, app, sigs, launch, switch)
        })
}

/// Everything the codec promises to keep exact at *any* tier.
fn assert_exact_parts(back: &ClassifierModel, model: &ClassifierModel) {
    assert_eq!(back.meta(), model.meta());
    assert_eq!(back.weights(), model.weights());
    assert_eq!(back.threshold().to_bits(), model.threshold().to_bits());
    assert_eq!(back.kb_signature(), model.kb_signature());
    assert_eq!(back.app_signature(), model.app_signature());
    assert_eq!(back.ambient_signatures(), model.ambient_signatures());
    assert_eq!(back.launch_signature(), model.launch_signature());
    assert_eq!(back.switch_threshold(), model.switch_threshold());
    assert_eq!(back.centroids().len(), model.centroids().len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `f64` tier is the identity: every field — centroid values
    /// included — survives bit-exactly.
    #[test]
    fn f64_round_trip_is_bit_exact(model in arb_model()) {
        let blob = encode_model(&model, Quantization::F64);
        let back = decode_model(blob).unwrap();
        assert_exact_parts(&back, &model);
        prop_assert_eq!(back.centroids(), model.centroids());
    }

    /// The `f32` tier honours its documented bound: per centroid value `v`,
    /// `|dec − v| ≤ v / 2²³ + 1`.
    #[test]
    fn f32_round_trip_is_within_documented_bound(model in arb_model()) {
        let back = decode_model(encode_model(&model, Quantization::F32)).unwrap();
        assert_exact_parts(&back, &model);
        for (b, m) in back.centroids().iter().zip(model.centroids()) {
            prop_assert_eq!(b.ch, m.ch);
            for (&dec, &v) in b.values.as_array().iter().zip(m.values.as_array()) {
                let bound = v as f64 / f64::from(1u32 << 23) + 1.0;
                prop_assert!(
                    dec.abs_diff(v) as f64 <= bound,
                    "f32 tier: |{dec} − {v}| exceeds {bound}"
                );
            }
        }
    }

    /// The `i16` tier honours its documented bound: lossless when the row
    /// maximum `m ≤ 32767`, else `|dec − v| ≤ m / (2·32767) + 1`.
    #[test]
    fn i16_round_trip_is_within_documented_bound(model in arb_model()) {
        let back = decode_model(encode_model(&model, Quantization::I16)).unwrap();
        assert_exact_parts(&back, &model);
        for (b, m) in back.centroids().iter().zip(model.centroids()) {
            prop_assert_eq!(b.ch, m.ch);
            let row_max = m.values.as_array().iter().copied().max().unwrap_or(0);
            let bound = if row_max <= 32767 {
                0.0
            } else {
                row_max as f64 / (2.0 * 32767.0) + 1.0
            };
            for (&dec, &v) in b.values.as_array().iter().zip(m.values.as_array()) {
                prop_assert!(
                    dec.abs_diff(v) as f64 <= bound,
                    "i16 tier: |{dec} − {v}| exceeds {bound} (row max {row_max})"
                );
            }
        }
    }

    /// Decode→re-encode is idempotent at every tier, so the content digest
    /// is stable: re-serving a decoded model keeps its address.
    #[test]
    fn digest_is_stable_across_reencode(model in arb_model()) {
        for q in Quantization::ALL {
            let blob = encode_model(&model, q);
            let digest = ModelDigest::of(&blob);
            let back = decode_model(blob.clone()).unwrap();
            let again = encode_model(&back, q);
            prop_assert_eq!(&again, &blob, "{} re-encode changed bytes", q.name());
            prop_assert_eq!(ModelDigest::of(&again), digest);
        }
    }

    /// Distinct canonical encodings get distinct addresses; identical
    /// models always agree (determinism of the encoder + hash).
    #[test]
    fn digest_is_deterministic_per_tier(model in arb_model()) {
        for q in Quantization::ALL {
            let a = ModelDigest::of(&encode_model(&model, q));
            let b = ModelDigest::of(&encode_model(&model, q));
            prop_assert_eq!(a, b);
            prop_assert!(!a.is_zero());
        }
    }

    /// Truncated GPMR blobs never panic: every cut is `Ok` only at full
    /// length, a typed error everywhere else.
    #[test]
    fn truncated_blobs_never_panic(model in arb_model(), cut in 0usize..200) {
        for q in Quantization::ALL {
            let blob = encode_model(&model, q);
            let cut = cut.min(blob.len());
            let result = decode_model(blob.slice(0..blob.len() - cut));
            if cut == 0 {
                prop_assert!(result.is_ok());
            }
        }
    }
}
