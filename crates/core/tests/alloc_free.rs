//! Proves the steady-state sampling loop is allocation-free.
//!
//! The hot loop of the attack — jitter, advance, block-read ioctl, sample
//! assembly — runs ~113k times per session, so a single heap allocation per
//! slot costs real throughput. The sampler's scratch read buffer and the
//! columnar trace's pre-reserved columns are supposed to eliminate them all;
//! this test pins that with a counting global allocator.
//!
//! Methodology: the measured window must avoid *incidental* allocation
//! sources that are not part of the per-slot loop — telemetry flushes (the
//! thread-local buffer aggregates 4096 events before flushing) and lazy
//! simulation state. So the test warms the sampler up first, flushes
//! telemetry, and then measures a short burst of slots well under the flush
//! threshold.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::sim::SimConfig;
use android_ui::UiSimulation;
use gpu_sc_attack::sampler::{Sampler, SamplerConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_sampling_does_not_allocate() {
    // A quiet victim: no system noise, session starts in another app so the
    // only scheduled activity is the cursor blink. The measured slots then
    // exercise exactly the per-slot loop: jitter, advance, ioctl, push.
    let mut sim = UiSimulation::new(SimConfig {
        system_noise_hz: 0.0,
        start_in_other: true,
        ..SimConfig::paper_default(7)
    });
    let mut sampler = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();

    // Warm-up: drives lazy initialisation everywhere (thread-local telemetry
    // buffers, simulation caches, the first render).
    let mut stream = sampler.start_stream(&sim, SimInstant::from_millis(400));
    while sampler.next_sample(&mut stream, &mut sim).is_some() {}
    sampler.finish_stream(stream).unwrap();

    // Flush telemetry so the measured window cannot hit the 4096-event
    // buffer flush (an intentional, amortised allocation site).
    spansight::flush();

    // Measure ~200 steady-state slots, collected into a pre-reserved trace
    // exactly as `sample_until` does it.
    let until = sim.now() + SimDuration::from_millis(1_600);
    let mut stream = sampler.start_stream(&sim, until);
    let mut trace = gpu_sc_attack::trace::Trace::with_capacity(256);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while let Some(s) = sampler.next_sample(&mut stream, &mut sim) {
        trace.push(s.at, s.values);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    sampler.finish_stream(stream).unwrap();

    assert!(trace.len() >= 150, "expected ~200 slots, got {}", trace.len());
    assert_eq!(
        after - before,
        0,
        "steady-state sampling must not heap-allocate (got {} allocations over {} slots)",
        after - before,
        trace.len()
    );
}
