//! The per-configuration classification model (§5.1, Fig 12).
//!
//! A [`ClassifierModel`] holds one centroid per key — the counter delta of
//! that key's popup frame on one `(phone, OS, resolution, refresh rate,
//! keyboard)` configuration — plus the acceptance threshold `C_th`, chosen
//! offline to eliminate false positives, and the auxiliary signatures the
//! detectors of §5.2/§5.3 need.
//!
//! Distances are computed in a *whitened* space (each counter scaled by the
//! inverse inter-centroid spread), so small-but-informative counters such as
//! primitive counts are not drowned out by pixel counts.

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use android_ui::{
    AndroidVersion, DeviceConfig, KeyboardKind, PhoneModel, RefreshRate, Resolution, TargetApp,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// One key's trained centroid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyCentroid {
    /// The key this centroid was trained on.
    pub ch: char,
    /// Mean per-press counter deltas across the training presses.
    pub values: CounterSet,
}

/// Identifies the configuration a model was trained for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelMeta {
    /// Phone the training traces came from.
    pub phone: PhoneModel,
    /// Android version of the training device.
    pub android: AndroidVersion,
    /// Screen resolution (affects tile counts).
    pub resolution: Resolution,
    /// Display refresh rate (affects frame cadence).
    pub refresh: RefreshRate,
    /// Keyboard app the victim types on.
    pub keyboard: KeyboardKind,
    /// Target app whose text field receives the input.
    pub app: TargetApp,
}

impl ModelMeta {
    /// The device configuration part of the metadata.
    pub fn device_config(&self) -> DeviceConfig {
        DeviceConfig {
            phone: self.phone,
            android: self.android,
            resolution: self.resolution,
            refresh: self.refresh,
        }
    }
}

impl fmt::Display for ModelMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / Android {} / {} / {} / {} / {}",
            self.phone.name(),
            self.android.name(),
            self.resolution.name(),
            self.refresh,
            self.keyboard,
            self.app
        )
    }
}

/// Bucket edges of the per-call classification-latency histogram
/// (`core.classify.latency_ns`): 1 µs, 10 µs, 0.1 ms (the paper's Fig 25
/// bound), 1 ms, overflow.
pub const CLASSIFY_LATENCY_EDGES: &[u64] = &[1_000, 10_000, 100_000, 1_000_000];

/// Result of classifying one counter delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Classification {
    /// Accepted as the key press of `ch` (weighted distance below `C_th`).
    Key {
        /// The inferred key.
        ch: char,
        /// Weighted distance to that key's centroid.
        distance: f64,
    },
    /// Rejected: not close enough to any centroid.
    Rejected {
        /// The closest centroid's key.
        nearest: char,
        /// Weighted distance to that nearest centroid (≥ `C_th`).
        distance: f64,
    },
}

impl Classification {
    /// The accepted character, if any.
    pub fn key(&self) -> Option<char> {
        match self {
            Classification::Key { ch, .. } => Some(*ch),
            Classification::Rejected { .. } => None,
        }
    }
}

/// Hot-path lookup data derived from the centroids at construction time.
/// Never serialised — [`ClassifierModel::from_bytes`] rebuilds it.
#[derive(Debug, Clone, PartialEq)]
struct PreparedCentroids {
    /// One fixed-length *pre-whitened* `f64` row per centroid
    /// (`value * weight`, the whitening applied once at build time), so the
    /// scan loop streams one contiguous row per candidate and its inner
    /// body is pure subtract-square-accumulate — no per-element weight
    /// multiply, no `u64` re-conversion. The fixed row length keeps every
    /// kernel call on the compile-time-sized `simdlite::*_fixed` path
    /// (fully unrolled, no bounds checks).
    rows: Vec<[f64; NUM_TRACKED]>,
    /// Per centroid, the total magnitude the §5.1 gate compares against:
    /// that of the *first* centroid sharing the key, exactly what the
    /// previous by-key linear scan found.
    gate_totals: Vec<f64>,
    /// Centroid indices sorted by whitened norm (ties by index): the
    /// best-first visit order of the outward scan. A probe's nearest
    /// centroid tends to sit nearby in norm, so scanning outward from the
    /// probe's own norm finds a tight `best_acc` almost immediately — and
    /// because the norm-gap lower bound only grows with the gap, the first
    /// candidate a direction *excludes* ends that entire direction.
    order: Vec<u32>,
    /// `norms[order[k]]` — the norms in visit order, one contiguous array
    /// for the outward scan's binary search and gap tests.
    sorted_norms: Vec<f64>,
}

impl PreparedCentroids {
    fn build(centroids: &[KeyCentroid], weights: &[f64; NUM_TRACKED]) -> Self {
        let rows: Vec<[f64; NUM_TRACKED]> =
            centroids.iter().map(|c| whiten(&c.values, weights)).collect();
        let norms: Vec<f64> = rows.iter().map(|r| simdlite::sq_norm_fixed(r).sqrt()).collect();
        let gate_totals = centroids
            .iter()
            .map(|c| {
                centroids.iter().find(|o| o.ch == c.ch).map(|o| o.values.total()).unwrap_or(0)
                    as f64
            })
            .collect();
        let mut order: Vec<u32> = (0..rows.len() as u32).collect();
        order.sort_by(|&a, &b| norms[a as usize].total_cmp(&norms[b as usize]).then(a.cmp(&b)));
        let sorted_norms = order.iter().map(|&i| norms[i as usize]).collect();
        PreparedCentroids { rows, gate_totals, order, sorted_norms }
    }
}

/// Upper bound on the *relative* floating-point error of a computed norm
/// `fl(sqrt(Σ v_i²))`: the chain is ~13 roundings at `2⁻⁵³` each, bounded
/// here by a generous `2⁻⁴⁵`.
const NORM_REL_ERR: f64 = 1.0 / (1u64 << 45) as f64;

/// Whether the norm gap between probe and candidate *provably* excludes the
/// candidate: returns `true` only when the candidate's computed squared
/// distance is guaranteed to come out `>= best_acc`. The ordered scan
/// passes its tie-guarded cutoff (`best · TIE_GUARD`) as `best_acc`, so an
/// excluded candidate cannot even tie the incumbent in rounded `sqrt`
/// space, and skipping it cannot change which centroid is selected.
///
/// Soundness: with `g` the computed norm gap and `t = (an + bn)·2⁻⁴⁵` an
/// upper bound on its absolute error (the true gap lies in `g ± t`), the
/// reverse triangle inequality gives
/// `dist² ≥ gap_true² ≥ (|g| - t)² ≥ g² - 2|g|t - t²` — and the computed
/// squared distance itself only adds relative error far below the slack in
/// `t`'s margin (`2⁻⁴⁵` vs the true `~13·2⁻⁵³`) and one extra `t²`. So when
/// `g² - 2|g|t - 2t² ≥ best_acc`, the kernel's completed sum could not beat
/// `best_acc` either. A probe bitwise-equal to a centroid computes the
/// *same* norm (identical input, deterministic chain), gap exactly `0.0`,
/// and is never skipped.
#[inline]
fn norm_gap_excludes(an: f64, bn: f64, best_acc: f64) -> bool {
    let g = (an - bn).abs();
    let t = (an + bn) * NORM_REL_ERR;
    g * g - 2.0 * g * t - 2.0 * t * t >= best_acc
}

/// Tie guard for the out-of-order scan's pruning cutoff.
///
/// The ordered scan resolves equal *distances* to the lowest centroid
/// index, which is what the in-index-order scans get for free from their
/// strict `<` update. But two different squared sums within ~4 ulp of each
/// other can round to the *same* `sqrt`, so pruning at exactly the best
/// squared sum could drop a candidate that ties in distance while holding a
/// smaller index. Pruning at `best_acc * TIE_GUARD` instead is safe in both
/// directions:
///
/// * any `acc` whose rounded `sqrt` equals the best distance satisfies
///   `acc <= best_acc * (1 + 2⁻⁵⁰)` (the sqrt-preimage of one `f64` spans a
///   relative range ≲ 4·2⁻⁵³), so no potential tie is ever pruned;
/// * any `acc` above the guard has `sqrt(acc)/sqrt(best_acc) ≥ 1 + 2⁻⁵¹`,
///   more than an ulp apart, so its rounded distance is strictly larger and
///   it could not have won anyway.
const TIE_GUARD: f64 = 1.0 + 1.0 / (1u64 << 50) as f64;

/// Maps a counter vector into the whitened `f64` space the classifier
/// measures distances in: `out[i] = (v[i] as f64) * w[i]`.
///
/// Every distance in this module subtracts two vectors whitened by this
/// exact expression and squares the difference — `aw[i] - bw[i]`, not
/// `(a[i] - b[i]) * w[i]`. The two forms differ in their rounding, so the
/// choice is part of the bit-exactness contract: prepared rows, per-call
/// probes and the naive oracle's operands all go through this one function,
/// which is what keeps the pruned scan, the batched scan and
/// [`ClassifierModel::distance`] bit-identical to each other.
#[inline]
fn whiten(v: &CounterSet, w: &[f64; NUM_TRACKED]) -> [f64; NUM_TRACKED] {
    let mut out = v.to_f64();
    for (o, wi) in out.iter_mut().zip(w) {
        *o *= wi;
    }
    out
}

/// Per-probe state of one batched nearest-centroid search.
#[derive(Debug, Clone, Copy)]
struct ProbeState {
    /// The probe whitened into the kernel's `f64` domain, once per burst.
    av: [f64; NUM_TRACKED],
    /// `‖av‖`, the outward scan's starting point and prescreen operand.
    an: f64,
    best_idx: usize,
    best_d: f64,
}

/// Reusable per-burst search state for [`ClassifierModel::classify_batch`].
/// Callers on the streaming hot path keep one of these alive across bursts
/// so batched classification never allocates in steady state (the backing
/// `Vec` grows to the largest burst seen, then stays).
#[derive(Debug, Default)]
pub struct BatchScratch {
    states: Vec<ProbeState>,
}

/// A trained classification model for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierModel {
    meta: ModelMeta,
    centroids: Vec<KeyCentroid>,
    prepared: PreparedCentroids,
    /// Per-counter whitening weights (1 / inter-centroid spread).
    weights: [f64; NUM_TRACKED],
    /// Acceptance threshold in whitened distance.
    threshold: f64,
    /// Base keyboard redraw delta (a popup-hide frame): the configuration's
    /// fingerprint, used for device recognition (§3.2).
    kb_signature: CounterSet,
    /// Field-region redraw with empty text and the cursor visible: the
    /// baseline echo delta, anchor for the §5.3 correction detector.
    app_signature: CounterSet,
    /// Exact field-redraw signatures for every input length the attacker
    /// anticipates, alternating cursor-off/cursor-on per length. Rendered
    /// offline — text cells straddle supertile boundaries, so the
    /// signatures are *not* an affine function of the length and must be
    /// precomputed rather than extrapolated.
    field_signatures: Vec<CounterSet>,
    /// The target app's cold-launch burst (login screen + keyboard + status
    /// bar rendering together): the §3.2 trigger the monitoring service
    /// waits for.
    launch_signature: CounterSet,
    /// Delta magnitude above which a change is app-switch-sized (§5.2).
    switch_threshold: u64,
}

impl ClassifierModel {
    /// Assembles a model from trained parts. Normally produced by
    /// [`crate::offline::Trainer`].
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty or `threshold` is not positive.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        meta: ModelMeta,
        centroids: Vec<KeyCentroid>,
        weights: [f64; NUM_TRACKED],
        threshold: f64,
        kb_signature: CounterSet,
        app_signature: CounterSet,
        field_signatures: Vec<CounterSet>,
        launch_signature: CounterSet,
        switch_threshold: u64,
    ) -> Self {
        assert!(!centroids.is_empty(), "a model needs at least one key centroid");
        assert!(threshold > 0.0, "C_th must be positive");
        let prepared = PreparedCentroids::build(&centroids, &weights);
        ClassifierModel {
            meta,
            centroids,
            prepared,
            weights,
            threshold,
            kb_signature,
            app_signature,
            field_signatures,
            launch_signature,
            switch_threshold,
        }
    }

    /// The configuration this model was trained for.
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }

    /// The trained key centroids.
    pub fn centroids(&self) -> &[KeyCentroid] {
        &self.centroids
    }

    /// The acceptance threshold `C_th`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The whitening weights.
    pub fn weights(&self) -> &[f64; NUM_TRACKED] {
        &self.weights
    }

    /// The keyboard base-redraw fingerprint.
    pub fn kb_signature(&self) -> &CounterSet {
        &self.kb_signature
    }

    /// The app echo-frame anchor (field redraw, empty text, cursor on).
    pub fn app_signature(&self) -> &CounterSet {
        &self.app_signature
    }

    /// The target app's cold-launch render burst.
    pub fn launch_signature(&self) -> &CounterSet {
        &self.launch_signature
    }

    /// The ambient redraw signatures an attacker can expect to find summed
    /// into a read window: field redraws at every anticipated input length,
    /// with and without the cursor. Algorithm 1's peeling step subtracts
    /// these from otherwise-unclassifiable changes (a popup frame and a
    /// cursor blink can share a vsync and therefore a read window).
    pub fn ambient_signatures(&self) -> &[CounterSet] {
        &self.field_signatures
    }

    /// The app-switch burst magnitude threshold.
    pub fn switch_threshold(&self) -> u64 {
        self.switch_threshold
    }

    /// Returns a copy of the model with a different acceptance threshold
    /// (used by the threshold-sweep ablation).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn with_threshold(&self, threshold: f64) -> ClassifierModel {
        assert!(threshold > 0.0, "C_th must be positive");
        ClassifierModel { threshold, ..self.clone() }
    }

    /// Returns a copy of the model with replacement key centroids, rebuilding
    /// the prepared hot-path data. Used by the registry's online-adaptation
    /// fold, which nudges centroids toward a corrected session's observations.
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty.
    pub fn with_centroids(&self, centroids: Vec<KeyCentroid>) -> ClassifierModel {
        assert!(!centroids.is_empty(), "a model needs at least one key centroid");
        let prepared = PreparedCentroids::build(&centroids, &self.weights);
        ClassifierModel { centroids, prepared, ..self.clone() }
    }

    /// Weighted (whitened) Euclidean distance between two counter vectors.
    ///
    /// Both vectors are mapped through `whiten` and the squared distance
    /// is computed with the `simdlite` chunked kernel. Every distance in
    /// this module — here, the pruned scan, the batched scan, `nearest_k` —
    /// whitens with the same expression and sums with the same kernel lane
    /// order, which is what makes the pruned/batched paths *bit-identical*
    /// to the naive references rather than merely close.
    pub fn distance(&self, a: &CounterSet, b: &CounterSet) -> f64 {
        simdlite::sq_dist_fixed(&whiten(a, &self.weights), &whiten(b, &self.weights)).sqrt()
    }

    /// The `k` nearest centroids to `v`, closest first, with whitened
    /// distances. Rank 0 is what [`ClassifierModel::classify`] would pick;
    /// the rest are the alternatives a guessing attacker tries (§7.1:
    /// "single errors in inference could be addressed with a small number
    /// of guesses").
    ///
    /// `k` is tiny ([`crate::online::CANDIDATES_PER_KEY`] = 8) against tens
    /// of centroids, so this keeps a bounded sorted buffer of the best `k`
    /// seen — one insertion into a ≤ `k`-element `Vec` per surviving
    /// candidate — instead of materialising and fully sorting all centroids
    /// per call. Ties break deterministically to the earliest centroid
    /// (distances are never NaN: they are square roots of non-negative
    /// sums), matching what the previous stable full sort produced.
    pub fn nearest_k(&self, v: &CounterSet, k: usize) -> Vec<(char, f64)> {
        let k = k.min(self.centroids.len());
        let av = whiten(v, &self.weights);
        let mut top: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        for (idx, row) in self.prepared.rows.iter().enumerate() {
            let d = simdlite::sq_dist_fixed(&av, row).sqrt();
            // Insertion point after every entry at or below `d`: equal
            // distances keep centroid order (earlier centroid first).
            let pos = top.partition_point(|&(td, _)| td <= d);
            if pos < k {
                top.insert(pos, (d, idx));
                top.truncate(k);
            }
        }
        top.into_iter().map(|(d, idx)| (self.centroids[idx].ch, d)).collect()
    }

    /// The nearest centroid to `v` and its whitened distance.
    pub fn nearest(&self, v: &CounterSet) -> (char, f64) {
        let (idx, d) = self.nearest_pruned(v);
        (self.centroids[idx].ch, d)
    }

    /// Nearest-centroid search, best-first by norm.
    fn nearest_pruned(&self, v: &CounterSet) -> (usize, f64) {
        let av = whiten(v, &self.weights);
        let an = simdlite::sq_norm_fixed(&av).sqrt();
        self.nearest_ordered(&av, an)
    }

    /// The shared nearest-centroid kernel scan (per-delta and batched paths
    /// both land here). Three pruning layers compound:
    ///
    /// * **Best-first order.** Candidates are visited outward from the
    ///   probe's own whitened norm (binary search into `sorted_norms`, then
    ///   a two-cursor walk that always takes the side with the smaller norm
    ///   gap). The true nearest centroid is usually among the first few
    ///   visited, so `best_acc` collapses almost immediately.
    /// * **Directional cutoff.** `(‖a‖-‖b‖)² ≤ ‖a-b‖²`, so a candidate
    ///   whose norm gap already rules it out ([`norm_gap_excludes`], with
    ///   the documented rounding margins) is skipped — and since the gap
    ///   only grows moving away from the probe's norm while the bound is
    ///   monotone in the gap (it fires only once `g` clears `(1+√3)t`, past
    ///   which it increases with `g`), the *first* excluded candidate on a
    ///   side retires that whole direction. An accept probe typically costs
    ///   one kernel call plus two gap tests.
    /// * **Chunked partial-distance exit.** [`simdlite::sq_dist_pruned_fixed`]
    ///   aborts a surviving candidate at the first 4-lane chunk boundary
    ///   where its running sum reaches the cutoff.
    ///
    /// Equivalence with the in-index-order naive scan: that scan's strict
    /// `d < best` update keeps the lowest-indexed centroid among those
    /// tying at the minimal rounded distance. Visiting out of order, the
    /// update here breaks equal distances by index explicitly, and both the
    /// kernel cutoff and the prescreen use `best_acc * TIE_GUARD` so a
    /// candidate that could still *tie* in `sqrt`-space is never pruned.
    /// Completed sums come from the same kernel in the same lane order, so
    /// the selected centroid and reported distance stay bit-identical to
    /// [`ClassifierModel::nearest_naive`].
    fn nearest_ordered(&self, av: &[f64; NUM_TRACKED], an: f64) -> (usize, f64) {
        let p = &self.prepared;
        let n = p.order.len();
        let mut best_idx = 0usize;
        let mut best_d = f64::INFINITY;
        let mut cutoff = f64::INFINITY;
        // Rows below `an` live at [0, lo), rows at/above it at [hi, n);
        // retiring a direction empties its interval.
        let mut hi = p.sorted_norms.partition_point(|&x| x < an);
        let mut lo = hi;
        loop {
            let take_lo = if lo > 0 && hi < n {
                an - p.sorted_norms[lo - 1] <= p.sorted_norms[hi] - an
            } else if lo > 0 {
                true
            } else if hi < n {
                false
            } else {
                break;
            };
            let k = if take_lo { lo - 1 } else { hi };
            if norm_gap_excludes(an, p.sorted_norms[k], cutoff) {
                if take_lo {
                    lo = 0;
                } else {
                    hi = n;
                }
                continue;
            }
            if take_lo {
                lo -= 1;
            } else {
                hi += 1;
            }
            let idx = p.order[k] as usize;
            if let Some(acc) = simdlite::sq_dist_pruned_fixed(av, &p.rows[idx], cutoff) {
                let d = acc.sqrt();
                if d < best_d || (d == best_d && idx < best_idx) {
                    best_idx = idx;
                    best_d = d;
                    cutoff = acc * TIE_GUARD;
                }
            }
        }
        (best_idx, best_d)
    }

    /// Reference nearest-centroid scan without pruning: computes the full
    /// whitened distance to every centroid via [`ClassifierModel::distance`].
    /// Semantically identical to [`ClassifierModel::nearest`]; kept as the
    /// oracle for the equivalence proptest and the `hotpath` benchmark.
    pub fn nearest_naive(&self, v: &CounterSet) -> (char, f64) {
        let mut best = (self.centroids[0].ch, f64::INFINITY);
        for c in &self.centroids {
            let d = self.distance(v, &c.values);
            if d < best.1 {
                best = (c.ch, d);
            }
        }
        best
    }

    /// Relative tolerance of the magnitude gate: a candidate's total
    /// counter activity must be within this fraction of the matched
    /// centroid's total. Two failure modes motivate the gate:
    ///
    /// * the whitened metric deliberately down-weights the base-redraw
    ///   dimensions (they carry no per-key information), so without the
    ///   gate the *sum of two unrelated base redraws* — e.g. a popup-hide
    ///   frame plus a page-switch frame — could recombine into a phantom
    ///   key press;
    /// * a *split* read that caught most (e.g. 7/8) of a popup frame can
    ///   land near a neighbouring key's centroid; gating on magnitude sends
    ///   it to split recombination instead, which then reconstructs the
    ///   exact frame.
    ///
    /// True key deltas match their centroid totals almost exactly, so 8 %
    /// is generous for signal while excluding both failure modes.
    pub const MAGNITUDE_TOLERANCE: f64 = 0.08;

    /// Classifies a delta: nearest centroid, accepted iff within `C_th`
    /// (the `SearchMinDist` + threshold test of Algorithm 1) *and* of
    /// key-frame-sized total magnitude.
    pub fn classify(&self, v: &CounterSet) -> Classification {
        let started = std::time::Instant::now();
        let out = self.classify_inner(v);
        // Fig 25's headline claim is <0.1 ms per inference; the 100 µs edge
        // of this histogram checks it on every call of every experiment.
        spansight::record(
            "core.classify.latency_ns",
            CLASSIFY_LATENCY_EDGES,
            started.elapsed().as_nanos() as u64,
        );
        match out {
            Classification::Key { .. } => spansight::count("core.classify.accepted", 1),
            Classification::Rejected { .. } => spansight::count("core.classify.rejected", 1),
        }
        out
    }

    fn classify_inner(&self, v: &CounterSet) -> Classification {
        let (idx, distance) = self.nearest_pruned(v);
        self.gate(idx, distance, v)
    }

    /// The acceptance decision after the nearest-centroid search: within
    /// `C_th` *and* of key-frame-sized total magnitude. Shared by the
    /// per-delta and batched paths so both gate identically.
    fn gate(&self, idx: usize, distance: f64, v: &CounterSet) -> Classification {
        let ch = self.centroids[idx].ch;
        if distance <= self.threshold {
            let centroid_total = self.prepared.gate_totals[idx];
            let total = v.total() as f64;
            if centroid_total > 0.0
                && (total - centroid_total).abs() <= centroid_total * Self::MAGNITUDE_TOLERANCE
            {
                return Classification::Key { ch, distance };
            }
            return Classification::Rejected { nearest: ch, distance };
        }
        Classification::Rejected { nearest: ch, distance }
    }

    /// Classifies a burst of deltas in one pass, appending one
    /// [`Classification`] per probe (in order) to `out`.
    ///
    /// Equivalent to calling [`ClassifierModel::classify`] on each probe —
    /// every probe runs the same `nearest_ordered` scan,
    /// so every result (including reported distances) is bit-identical; a
    /// proptest pins that. The win is structural: probe conversion
    /// (whiten + norm) happens in one data-parallel pass over the burst,
    /// the scans then run back-to-back against cache-warm prepared rows,
    /// and the per-call overhead (telemetry, timestamping, dispatch) is
    /// paid once per burst instead of once per delta.
    ///
    /// `scratch` carries the per-probe search state between calls so the
    /// steady-state streaming path does not allocate.
    pub fn classify_batch(
        &self,
        probes: &[CounterSet],
        scratch: &mut BatchScratch,
        out: &mut Vec<Classification>,
    ) {
        if probes.is_empty() {
            return;
        }
        let started = std::time::Instant::now();
        scratch.states.clear();
        scratch.states.extend(probes.iter().map(|p| {
            let av = whiten(p, &self.weights);
            ProbeState {
                av,
                an: simdlite::sq_norm_fixed(&av).sqrt(),
                best_idx: 0,
                best_d: f64::INFINITY,
            }
        }));
        for st in scratch.states.iter_mut() {
            let (idx, d) = self.nearest_ordered(&st.av, st.an);
            st.best_idx = idx;
            st.best_d = d;
        }
        // One histogram entry per probe at the amortised per-inference cost,
        // so the latency histogram's population matches the per-delta path
        // (Fig 25's claim is per inference, and the batch is one inference
        // pass over `probes.len()` deltas).
        let per_probe_ns = started.elapsed().as_nanos() as u64 / probes.len() as u64;
        for (st, probe) in scratch.states.iter().zip(probes) {
            let c = self.gate(st.best_idx, st.best_d, probe);
            spansight::record("core.classify.latency_ns", CLASSIFY_LATENCY_EDGES, per_probe_ns);
            match c {
                Classification::Key { .. } => spansight::count("core.classify.accepted", 1),
                Classification::Rejected { .. } => spansight::count("core.classify.rejected", 1),
            }
            out.push(c);
        }
    }

    /// Reference classification built on [`ClassifierModel::nearest_naive`]
    /// and the original by-key magnitude-gate scan, with no telemetry.
    /// The equivalence proptest pins [`ClassifierModel::classify`] to this.
    pub fn classify_naive(&self, v: &CounterSet) -> Classification {
        let (ch, distance) = self.nearest_naive(v);
        if distance <= self.threshold {
            let centroid_total =
                self.centroids.iter().find(|c| c.ch == ch).map(|c| c.values.total()).unwrap_or(0)
                    as f64;
            let total = v.total() as f64;
            if centroid_total > 0.0
                && (total - centroid_total).abs() <= centroid_total * Self::MAGNITUDE_TOLERANCE
            {
                return Classification::Key { ch, distance };
            }
            return Classification::Rejected { nearest: ch, distance };
        }
        Classification::Rejected { nearest: ch, distance }
    }

    /// Serialises the model to the compact on-device wire format (the paper
    /// reports ≈3.59 kB per model, §7.6).
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64 + self.centroids.len() * (4 + NUM_TRACKED * 4));
        b.put_slice(b"GPCM");
        b.put_u8(2); // version
        b.put_u8(phone_code(self.meta.phone));
        b.put_u8(android_code(self.meta.android));
        b.put_u8(resolution_code(self.meta.resolution));
        b.put_u8(refresh_code(self.meta.refresh));
        b.put_u8(keyboard_code(self.meta.keyboard));
        b.put_u8(app_code(self.meta.app));
        b.put_u8(0); // pad
        b.put_f32(self.threshold as f32);
        for w in self.weights {
            b.put_f32(w as f32);
        }
        for v in self.kb_signature.as_array() {
            b.put_u32((*v).min(u32::MAX as u64) as u32);
        }
        for v in self.app_signature.as_array() {
            b.put_u32((*v).min(u32::MAX as u64) as u32);
        }
        b.put_u8(self.field_signatures.len() as u8);
        for sig in &self.field_signatures {
            for v in sig.as_array() {
                b.put_u32((*v).min(u32::MAX as u64) as u32);
            }
        }
        for v in self.launch_signature.as_array() {
            b.put_u32((*v).min(u32::MAX as u64) as u32);
        }
        b.put_u32(self.switch_threshold.min(u32::MAX as u64) as u32);
        b.put_u16(self.centroids.len() as u16);
        for c in &self.centroids {
            b.put_u32(c.ch as u32);
            for v in c.values.as_array() {
                b.put_u32((*v).min(u32::MAX as u64) as u32);
            }
        }
        b.freeze()
    }

    /// Deserialises a model from [`ClassifierModel::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for truncated or corrupt input.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, ModelDecodeError> {
        use ModelDecodeError::*;
        if data.remaining() < 12 {
            return Err(Truncated);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != b"GPCM" {
            return Err(BadMagic);
        }
        let version = data.get_u8();
        if version != 2 {
            return Err(BadVersion(version));
        }
        let meta = ModelMeta {
            phone: phone_from(data.get_u8()).ok_or(BadField("phone"))?,
            android: android_from(data.get_u8()).ok_or(BadField("android"))?,
            resolution: resolution_from(data.get_u8()).ok_or(BadField("resolution"))?,
            refresh: refresh_from(data.get_u8()).ok_or(BadField("refresh"))?,
            keyboard: keyboard_from(data.get_u8()).ok_or(BadField("keyboard"))?,
            app: app_from(data.get_u8()).ok_or(BadField("app"))?,
        };
        let need = 1 + 4 + NUM_TRACKED * 4 + NUM_TRACKED * 4 * 2 + 1 + 4 + 2;
        if data.remaining() < need {
            return Err(Truncated);
        }
        let _pad = data.get_u8();
        let threshold = data.get_f32() as f64;
        let mut weights = [0.0; NUM_TRACKED];
        for w in &mut weights {
            *w = data.get_f32() as f64;
        }
        let read_set = |data: &mut Bytes| {
            let mut a = [0u64; NUM_TRACKED];
            for v in &mut a {
                *v = data.get_u32() as u64;
            }
            CounterSet::from_array(a)
        };
        let kb_signature = read_set(&mut data);
        let app_signature = read_set(&mut data);
        let n_sigs = data.get_u8() as usize;
        if data.remaining() < n_sigs * NUM_TRACKED * 4 + 4 + 2 {
            return Err(Truncated);
        }
        let mut field_signatures = Vec::with_capacity(n_sigs);
        for _ in 0..n_sigs {
            field_signatures.push(read_set(&mut data));
        }
        if data.remaining() < NUM_TRACKED * 4 + 4 + 2 {
            return Err(Truncated);
        }
        let launch_signature = read_set(&mut data);
        let switch_threshold = data.get_u32() as u64;
        let n = data.get_u16() as usize;
        if data.remaining() < n * (4 + NUM_TRACKED * 4) {
            return Err(Truncated);
        }
        let mut centroids = Vec::with_capacity(n);
        for _ in 0..n {
            let ch = char::from_u32(data.get_u32()).ok_or(BadField("char"))?;
            let values = read_set(&mut data);
            centroids.push(KeyCentroid { ch, values });
        }
        if centroids.is_empty() || threshold <= 0.0 || threshold.is_nan() {
            return Err(BadField("body"));
        }
        // Route through `new` so the prepared hot-path data is rebuilt; the
        // checks above guarantee its panics cannot fire on decoded input.
        Ok(ClassifierModel::new(
            meta,
            centroids,
            weights,
            threshold,
            kb_signature,
            app_signature,
            field_signatures,
            launch_signature,
            switch_threshold,
        ))
    }
}

/// Errors from [`ClassifierModel::from_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelDecodeError {
    /// The byte slice ended before the encoded model did.
    Truncated,
    /// The leading magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// A field decoded to an out-of-range value.
    BadField(&'static str),
}

impl fmt::Display for ModelDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelDecodeError::Truncated => write!(f, "model bytes truncated"),
            ModelDecodeError::BadMagic => write!(f, "not a GPCM model"),
            ModelDecodeError::BadVersion(v) => write!(f, "unsupported model version {v}"),
            ModelDecodeError::BadField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for ModelDecodeError {}

macro_rules! enum_codes {
    ($to:ident, $from:ident, $ty:ty, [$(($variant:path, $code:expr)),+ $(,)?]) => {
        // `pub(crate)`: the registry's GPMR codec shares these byte codes so
        // GPCM and GPMR agree on every enum's encoding.
        pub(crate) fn $to(v: $ty) -> u8 {
            match v {
                $($variant => $code),+
            }
        }
        pub(crate) fn $from(code: u8) -> Option<$ty> {
            match code {
                $($code => Some($variant)),+,
                _ => None,
            }
        }
    };
}

enum_codes!(
    phone_code,
    phone_from,
    PhoneModel,
    [
        (PhoneModel::LgV30Plus, 0),
        (PhoneModel::GooglePixel2, 1),
        (PhoneModel::OnePlus7Pro, 2),
        (PhoneModel::OnePlus8Pro, 3),
        (PhoneModel::OnePlus9, 4),
        (PhoneModel::GalaxyS21, 5),
    ]
);
enum_codes!(
    android_code,
    android_from,
    AndroidVersion,
    [
        (AndroidVersion::V8_1, 0),
        (AndroidVersion::V9, 1),
        (AndroidVersion::V10, 2),
        (AndroidVersion::V11, 3),
    ]
);
enum_codes!(
    resolution_code,
    resolution_from,
    Resolution,
    [(Resolution::Fhd, 0), (Resolution::Qhd, 1),]
);
enum_codes!(
    refresh_code,
    refresh_from,
    RefreshRate,
    [(RefreshRate::Hz60, 0), (RefreshRate::Hz120, 1),]
);
enum_codes!(
    keyboard_code,
    keyboard_from,
    KeyboardKind,
    [
        (KeyboardKind::Gboard, 0),
        (KeyboardKind::Swift, 1),
        (KeyboardKind::Sogou, 2),
        (KeyboardKind::GooglePinyin, 3),
        (KeyboardKind::Go, 4),
        (KeyboardKind::Grammarly, 5),
    ]
);
enum_codes!(
    app_code,
    app_from,
    TargetApp,
    [
        (TargetApp::Chase, 0),
        (TargetApp::Amex, 1),
        (TargetApp::Fidelity, 2),
        (TargetApp::Schwab, 3),
        (TargetApp::MyFico, 4),
        (TargetApp::Experian, 5),
        (TargetApp::ChromeChase, 6),
        (TargetApp::ChromeSchwab, 7),
        (TargetApp::ChromeExperian, 8),
        (TargetApp::Pnc, 9),
        (TargetApp::Gedit, 10),
        (TargetApp::GmailWeb, 11),
        (TargetApp::DropboxClient, 12),
    ]
);

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::TrackedCounter;

    fn meta() -> ModelMeta {
        ModelMeta {
            phone: PhoneModel::OnePlus8Pro,
            android: AndroidVersion::V11,
            resolution: Resolution::Fhd,
            refresh: RefreshRate::Hz60,
            keyboard: KeyboardKind::Gboard,
            app: TargetApp::Chase,
        }
    }

    fn set(base: u64, prims: u64) -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[TrackedCounter::Ras8x4Tiles] = base;
        c[TrackedCounter::VpcPcPrimitives] = prims;
        c
    }

    fn model() -> ClassifierModel {
        let centroids = vec![
            KeyCentroid { ch: 'a', values: set(1000, 150) },
            KeyCentroid { ch: 'b', values: set(1040, 160) },
            KeyCentroid { ch: 'c', values: set(980, 170) },
        ];
        let mut weights = [1.0; NUM_TRACKED];
        weights[TrackedCounter::VpcPcPrimitives.index()] = 2.0;
        ClassifierModel::new(
            meta(),
            centroids,
            weights,
            25.0,
            set(900, 140),
            set(5000, 40),
            vec![set(20, 2), set(24, 4)],
            set(9000, 300),
            50_000,
        )
    }

    #[test]
    fn exact_centroid_classifies() {
        let m = model();
        assert_eq!(m.classify(&set(1040, 160)).key(), Some('b'));
    }

    #[test]
    fn near_centroid_within_threshold_classifies() {
        let m = model();
        assert_eq!(m.classify(&set(1005, 151)).key(), Some('a'));
    }

    #[test]
    fn far_vectors_are_rejected_with_nearest_reported() {
        let m = model();
        match m.classify(&set(5000, 40)) {
            Classification::Rejected { nearest, distance } => {
                assert_eq!(nearest, 'b');
                assert!(distance > 25.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn nearest_k_ranks_by_distance() {
        let m = model();
        let ranked = m.nearest_k(&set(1000, 150), 3);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].0, 'a');
        assert_eq!(ranked[0].1, 0.0);
        assert!(ranked[0].1 <= ranked[1].1 && ranked[1].1 <= ranked[2].1);
        // Truncation works.
        assert_eq!(m.nearest_k(&set(1000, 150), 2).len(), 2);
        assert_eq!(m.nearest_k(&set(1000, 150), 99).len(), 3, "capped at centroid count");
    }

    #[test]
    fn weights_change_the_metric() {
        let m = model();
        // 10 apart in prims (weight 2) is "further" than 15 apart in tiles.
        let d_prims = m.distance(&set(1000, 150), &set(1000, 160));
        let d_tiles = m.distance(&set(1000, 150), &set(1015, 150));
        assert!(d_prims > d_tiles);
    }

    #[test]
    fn serialisation_round_trips() {
        let m = model();
        let bytes = m.to_bytes();
        let back = ClassifierModel::from_bytes(bytes).unwrap();
        assert_eq!(back.meta(), m.meta());
        assert_eq!(back.centroids(), m.centroids());
        assert_eq!(back.switch_threshold(), m.switch_threshold());
        assert!((back.threshold() - m.threshold()).abs() < 1e-6);
        assert_eq!(back.kb_signature(), m.kb_signature());
    }

    #[test]
    fn wire_size_matches_paper_scale() {
        // A full 80-key model must be in the ~3.6 kB ballpark (§7.6).
        let centroids: Vec<KeyCentroid> = adreno_sim::font::FIG18_CHARSET
            .chars()
            .map(|ch| KeyCentroid { ch, values: set(1000 + ch as u64, 150) })
            .collect();
        let m = ClassifierModel::new(
            meta(),
            centroids,
            [1.0; NUM_TRACKED],
            25.0,
            set(900, 140),
            set(5000, 40),
            vec![set(20, 2), set(24, 4)],
            set(9000, 300),
            50_000,
        );
        let size = m.to_bytes().len();
        assert!(
            (3_000..=4_500).contains(&size),
            "model wire size {size} B should be ≈3.6 kB like the paper's \
             (field signatures add ~2 kB on top for trained models)"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            ClassifierModel::from_bytes(Bytes::from_static(b"nope")),
            Err(ModelDecodeError::Truncated)
        );
        assert_eq!(
            ClassifierModel::from_bytes(Bytes::from_static(b"XXXX\x01aaaaaaaaaaaaaaaaaaaa")),
            Err(ModelDecodeError::BadMagic)
        );
        let mut good = model().to_bytes().to_vec();
        good.truncate(good.len() - 3);
        assert_eq!(
            ClassifierModel::from_bytes(Bytes::from(good)),
            Err(ModelDecodeError::Truncated)
        );
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_model_rejected() {
        let _ = ClassifierModel::new(
            meta(),
            vec![],
            [1.0; NUM_TRACKED],
            25.0,
            CounterSet::ZERO,
            CounterSet::ZERO,
            vec![],
            CounterSet::ZERO,
            1,
        );
    }
}
