//! Fleet-scale session orchestration: many concurrent eavesdropping
//! sessions multiplexed over a bounded worker set.
//!
//! The paper's threat model is app-store scale — a tiny sampler shipped to
//! millions of phones, each feeding a classifier — so the interesting unit
//! is not one session but a *fleet* of them in flight at once. This module
//! supplies the orchestration layer:
//!
//! * [`Session`] — a cooperative task: one `step` runs one *quantum* of a
//!   session (a bounded burst of sampling plus a bounded burst of
//!   classification) and yields. [`minipool::Pool::par_drive`] requeues
//!   yielded sessions FIFO on a ring-shaped run queue, so quanta of
//!   different sessions interleave on the same workers and one degraded
//!   session can pin at most one worker while every other session keeps
//!   flowing.
//! * [`FleetSession`] — the in-process implementation: it owns its victim
//!   [`UiSimulation`] and drives [`Sampler::next_sample`] into a
//!   [`StreamingSession`] through the same lock-free [`crate::ring`] SPSC
//!   that [`AttackService::eavesdrop`] uses, with backpressure: when the
//!   classifier side falls behind, the ring fills, the sampler yields
//!   instead of buffering, and sampler memory stays bounded at the ring
//!   capacity (counted in [`SessionStats::sampler_stalls`]).
//! * [`Fleet`] — shard bookkeeping: each shard is one [`AttackService`]
//!   (its own `ModelStore`, typically sharing trained `ClassifierModel`s
//!   by `Arc` — the hub/clients split), and sessions are assigned
//!   round-robin.
//!
//! Sessions are fully independent (each owns its simulation and its SPSC
//! ring), so outcomes are byte-identical at any worker count; the `fleet`
//! experiment in `crates/bench` pins that at 1000+ sessions.
//!
//! Degraded sessions never stall a shard: a `FaultPlan` installed on a
//! session's device degrades *that session's* coverage (or fails it with a
//! [`ServiceError`] carried in its [`SessionOutcome`]), while the FIFO ring
//! keeps stepping everyone else. The wire layer adds a split-session task
//! on the same [`Session`] trait for remote fleets over lossy links.

use adreno_sim::time::SimInstant;
use android_ui::UiSimulation;
use minipool::Pool;

use crate::metrics::SessionScore;
use crate::ring::{Consumer, Producer};
use crate::sampler::{SampleStream, Sampler};
use crate::service::{AttackService, ServiceError, SessionResult, StreamingSession};
use crate::trace::Sample;

/// A cooperative fleet task.
///
/// `step` runs one quantum and returns `Some(outcome)` when the session is
/// finished, `None` to yield. The scheduler ([`run_sessions`]) requeues
/// yielded sessions FIFO, so with `k` live sessions each is stepped again
/// within `k` dequeues regardless of how long any single session takes —
/// the starvation-freedom property the fleet leans on. A task is never
/// stepped again after it returns `Some`.
pub trait Session {
    /// What a finished session yields.
    type Outcome;

    /// Runs one quantum. `Some` = finished, `None` = yield and requeue.
    fn step(&mut self) -> Option<Self::Outcome>;
}

/// Drives every session to completion over the pool's cooperative ring
/// run queue, returning outcomes in session order.
///
/// Sessions must be independent of each other (each [`FleetSession`] owns
/// its simulation, sampler, and ring), which makes the outcome vector
/// byte-identical at any `Pool` worker count.
pub fn run_sessions<S>(pool: &Pool, sessions: Vec<S>) -> Vec<S::Outcome>
where
    S: Session + Send,
    S::Outcome: Send,
{
    spansight::count("core.fleet.sessions", sessions.len() as u64);
    pool.par_drive(sessions, |_, s| s.step())
}

/// Tuning knobs for [`FleetSession`] quanta and backpressure.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of shards ([`AttackService`] instances) sessions are
    /// assigned to round-robin. Purely bookkeeping for [`Fleet`]; a
    /// hand-built session carries its own shard id.
    pub shards: usize,
    /// Capacity of the per-session SPSC ring between sampling and
    /// classification — the backpressure bound: the sampler can never run
    /// more than this many samples ahead of the classifier.
    pub ring_capacity: usize,
    /// Upper bound on samples acquired per quantum (the sampling burst).
    pub sample_quantum: usize,
    /// Upper bound on samples drained and classified per quantum. Setting
    /// this below `sample_quantum` models a classifier slower than the
    /// sampler; the ring then fills and sampling stalls instead of
    /// buffering unboundedly.
    pub classify_quantum: usize,
}

impl Default for FleetConfig {
    /// One shard; ring and both quanta sized to the same 64-slot burst the
    /// single-session driver uses (`SAMPLE_RING_CAPACITY`), so a lone
    /// fleet session does the same work per visit as
    /// [`AttackService::eavesdrop`] does per ring generation.
    fn default() -> Self {
        FleetConfig { shards: 1, ring_capacity: 64, sample_quantum: 64, classify_quantum: 64 }
    }
}

/// Per-session scheduler statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Quanta the scheduler spent on this session (steps taken).
    pub quanta: u64,
    /// Times the sampling burst hit a full ring and yielded early — each
    /// one is backpressure doing its job.
    pub sampler_stalls: u64,
    /// Most samples ever resident in the ring; never exceeds the ring
    /// capacity by construction.
    pub max_ring_occupancy: u64,
}

/// What one fleet session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Which shard ran the session.
    pub shard: usize,
    /// The session result, or why it failed. Failures are carried here —
    /// a failed session never stalls its shard.
    pub result: Result<SessionResult, ServiceError>,
    /// Accuracy against the victim simulation's ground truth (`None` when
    /// the session failed).
    pub score: Option<SessionScore>,
    /// The true keystrokes, kept so callers can measure per-key latency
    /// after the simulation itself is dropped.
    pub truth: Vec<(SimInstant, char)>,
    /// Scheduler statistics for this session.
    pub stats: SessionStats,
}

/// The live half of a [`FleetSession`] that exists only until the session
/// finishes or fails.
enum State<'s> {
    /// Session construction failed (e.g. the device refused to open); the
    /// error is surfaced by the first `step`.
    Failed(ServiceError),
    /// Sampling and/or classification still in flight. Boxed so the
    /// per-quantum state swap moves one pointer, not ~2 KB of sampler.
    Running(Box<Live<'s>>),
    /// Outcome already produced; `step` must not be called again.
    Finished,
}

/// The in-flight sampler/stream/pipeline trio of a running session.
struct Live<'s> {
    sampler: Sampler,
    stream: SampleStream,
    session: StreamingSession<'s>,
    /// The sample stream has ended; only draining remains.
    sampling_done: bool,
}

/// One in-process eavesdropping session as a cooperative fleet task.
///
/// Owns its victim [`UiSimulation`] end to end. Each [`Session::step`]
/// runs one quantum: acquire up to [`FleetConfig::sample_quantum`] samples
/// into the SPSC ring (stopping early — a *stall* — if the ring fills),
/// then drain up to [`FleetConfig::classify_quantum`] of them into the
/// [`StreamingSession`] stage pipeline. The outcome is identical to
/// running [`AttackService::eavesdrop`] on the same seeded simulation;
/// only the interleaving with other sessions differs.
///
/// Because the session owns its simulation — and the simulation owns its
/// GPU — each session also carries its own set of incremental frame
/// renderers ([`adreno_sim::incremental::RendererSet`]): per-session frame
/// diffing is isolated state, so session results stay bit-identical at any
/// `--jobs` level. [`FleetSession::incremental_stats`] exposes the reuse
/// counters.
pub struct FleetSession<'s> {
    sim: UiSimulation,
    shard: usize,
    sample_quantum: usize,
    classify_quantum: usize,
    ring_tx: Producer<Sample>,
    ring_rx: Consumer<Sample>,
    /// Samples currently in the ring (`pushed - popped`); the ring itself
    /// deliberately has no shared length counter.
    ring_occupancy: u64,
    burst: Vec<Sample>,
    stats: SessionStats,
    state: State<'s>,
}

impl<'s> FleetSession<'s> {
    /// Prepares a session on `shard`'s service, eavesdropping `sim` until
    /// `until`. Device faults at open time don't panic or stall — they
    /// surface as a [`ServiceError::Device`] outcome on the first step.
    pub fn new(
        shard: usize,
        service: &'s AttackService,
        sim: UiSimulation,
        until: SimInstant,
        config: &FleetConfig,
    ) -> Self {
        let (ring_tx, ring_rx) = crate::ring::spsc::<Sample>(config.ring_capacity);
        let state = match Sampler::open(sim.device(), service.config().sampler) {
            Ok(mut sampler) => {
                let stream = sampler.start_stream(&sim, until);
                State::Running(Box::new(Live {
                    sampler,
                    stream,
                    session: service.streaming_session(),
                    sampling_done: false,
                }))
            }
            Err(err) => State::Failed(ServiceError::Device(err)),
        };
        FleetSession {
            sim,
            shard,
            sample_quantum: config.sample_quantum.max(1),
            classify_quantum: config.classify_quantum.max(1),
            ring_tx,
            ring_rx,
            ring_occupancy: 0,
            burst: Vec::with_capacity(config.classify_quantum.max(1)),
            stats: SessionStats::default(),
            state: State::Finished, // replaced below
        }
        .with_state(state)
    }

    fn with_state(mut self, state: State<'s>) -> Self {
        self.state = state;
        self
    }

    /// Reuse counters of this session's incremental frame renderers.
    pub fn incremental_stats(&self) -> adreno_sim::incremental::IncrementalStats {
        self.sim.incremental_stats()
    }

    /// Wraps up: score and ground truth are extracted *before* the
    /// simulation is dropped, so the outcome is self-contained.
    fn outcome(&mut self, result: Result<SessionResult, ServiceError>) -> SessionOutcome {
        spansight::count("core.fleet.quanta", self.stats.quanta);
        spansight::count("core.fleet.sampler_stalls", self.stats.sampler_stalls);
        let score = result.as_ref().ok().map(|r| r.score(&self.sim));
        SessionOutcome {
            shard: self.shard,
            result,
            score,
            truth: self.sim.truth().keystrokes(),
            stats: self.stats,
        }
    }
}

impl Session for FleetSession<'_> {
    type Outcome = SessionOutcome;

    fn step(&mut self) -> Option<SessionOutcome> {
        self.stats.quanta += 1;
        match std::mem::replace(&mut self.state, State::Finished) {
            State::Failed(err) => Some(self.outcome(Err(err))),
            State::Running(mut live) => {
                // Sampling burst: up to `sample_quantum` reads, stopping
                // early when the ring fills (backpressure) or the stream
                // ends.
                if !live.sampling_done {
                    for _ in 0..self.sample_quantum {
                        if self.ring_tx.is_full() {
                            self.stats.sampler_stalls += 1;
                            break;
                        }
                        match live.sampler.next_sample(&mut live.stream, &mut self.sim) {
                            Some(sample) => {
                                self.ring_tx
                                    .push(sample)
                                    .expect("a non-full SPSC ring accepts a push");
                                self.ring_occupancy += 1;
                                self.stats.max_ring_occupancy =
                                    self.stats.max_ring_occupancy.max(self.ring_occupancy);
                            }
                            None => {
                                live.sampling_done = true;
                                break;
                            }
                        }
                    }
                }
                // Classification burst: drain up to `classify_quantum`
                // ring slots and push them through the stage pipeline as
                // one batch.
                self.burst.clear();
                while self.burst.len() < self.classify_quantum {
                    match self.ring_rx.pop() {
                        Some(s) => {
                            self.ring_occupancy -= 1;
                            self.burst.push(s);
                        }
                        None => break,
                    }
                }
                live.session.push_samples(&self.burst);

                if live.sampling_done && self.ring_rx.is_empty() {
                    let Live { mut sampler, stream, session, .. } = *live;
                    let result = match sampler.finish_stream(stream) {
                        Ok(()) => session.finish(&sampler.report()),
                        Err(err) => Err(ServiceError::Device(err)),
                    };
                    return Some(self.outcome(result));
                }
                self.state = State::Running(live);
                None
            }
            State::Finished => unreachable!("a finished fleet session must not be stepped"),
        }
    }
}

/// Shard bookkeeping for an all-in-process fleet: sessions assigned
/// round-robin over per-shard [`AttackService`]s, then driven to
/// completion by [`run_sessions`].
pub struct Fleet<'s> {
    shards: Vec<&'s AttackService>,
    config: FleetConfig,
    sessions: Vec<FleetSession<'s>>,
}

impl<'s> Fleet<'s> {
    /// Creates a fleet over one service per shard. Each service carries a
    /// shard's own [`crate::offline::ModelStore`]; sharing one registry
    /// handle between the shards — one encoded blob, one decoded model —
    /// is the caller's choice (see `ModelStore::add_handle` and
    /// [`crate::registry::Registry`]).
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty.
    pub fn new(shards: Vec<&'s AttackService>, config: FleetConfig) -> Self {
        assert!(!shards.is_empty(), "a fleet needs at least one shard");
        Fleet { shards, config, sessions: Vec::new() }
    }

    /// The shard index the `n`-th enrolled session lands on.
    pub fn shard_for(&self, index: usize) -> usize {
        index % self.shards.len()
    }

    /// Enrolls a victim simulation as the next session (round-robin shard
    /// assignment) and returns its shard index.
    pub fn enroll(&mut self, sim: UiSimulation, until: SimInstant) -> usize {
        let shard = self.shard_for(self.sessions.len());
        self.sessions.push(FleetSession::new(shard, self.shards[shard], sim, until, &self.config));
        shard
    }

    /// Number of sessions enrolled so far.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are enrolled.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Drives every enrolled session to completion on `pool`, returning
    /// outcomes in enrollment order.
    pub fn run(self, pool: &Pool) -> Vec<SessionOutcome> {
        run_sessions(pool, self.sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::ModelStore;
    use crate::service::ServiceConfig;
    use android_ui::SimConfig;

    fn empty_service() -> AttackService {
        AttackService::new(ModelStore::new(), ServiceConfig::default())
    }

    /// Backpressure: with a classifier draining one sample per quantum
    /// against a 64-per-quantum sampler, the ring must fill, the sampler
    /// must stall, and resident samples must stay bounded at the ring
    /// capacity — the sampler cannot buffer ahead of a slow classifier.
    #[test]
    fn slow_classifier_bounds_sampler_memory() {
        let service = empty_service();
        let config =
            FleetConfig { shards: 1, ring_capacity: 8, sample_quantum: 64, classify_quantum: 1 };
        let sim = UiSimulation::new(SimConfig::paper_default(11));
        let mut session =
            FleetSession::new(0, &service, sim, SimInstant::from_millis(2_000), &config);
        let outcome = loop {
            if let Some(out) = session.step() {
                break out;
            }
        };
        // No model in the store: the session fails cleanly, but sampling
        // and scheduling still ran in full.
        assert_eq!(outcome.result, Err(ServiceError::UnrecognisedDevice));
        let ring_slots = 8u64; // capacity 8 is already a power of two
        assert!(
            outcome.stats.max_ring_occupancy <= ring_slots,
            "ring occupancy {} exceeded the backpressure bound {}",
            outcome.stats.max_ring_occupancy,
            ring_slots
        );
        assert!(
            outcome.stats.sampler_stalls > 0,
            "a 64:1 sampler:classifier ratio must hit the full ring"
        );
        assert!(outcome.stats.quanta > 1, "the session must have yielded at least once");
    }

    /// A session whose device refuses to open yields a Device error
    /// outcome on its first step instead of panicking or hanging.
    #[test]
    fn failed_open_surfaces_as_outcome() {
        let service = empty_service();
        let sim = UiSimulation::new(SimConfig::paper_default(12));
        sim.device().set_policy(kgsl::AccessPolicy::DenyAll);
        let mut session = FleetSession::new(
            3,
            &service,
            sim,
            SimInstant::from_millis(500),
            &FleetConfig::default(),
        );
        let outcome = session.step().expect("a failed session finishes on its first step");
        assert_eq!(outcome.shard, 3);
        assert_eq!(outcome.result, Err(ServiceError::Device(kgsl::Errno::Eacces)));
        assert!(outcome.score.is_none());
    }

    /// Round-robin shard assignment covers every shard.
    #[test]
    fn fleet_assigns_shards_round_robin() {
        let a = empty_service();
        let b = empty_service();
        let mut fleet = Fleet::new(vec![&a, &b], FleetConfig { shards: 2, ..Default::default() });
        assert!(fleet.is_empty());
        let shards: Vec<usize> = (0..5)
            .map(|i| {
                fleet.enroll(
                    UiSimulation::new(SimConfig::paper_default(20 + i)),
                    SimInstant::from_millis(300),
                )
            })
            .collect();
        assert_eq!(shards, vec![0, 1, 0, 1, 0]);
        assert_eq!(fleet.len(), 5);
        let outcomes = fleet.run(&Pool::new(2));
        assert_eq!(outcomes.len(), 5);
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(out.shard, i % 2);
        }
    }

    /// Outcomes are identical at any worker count: the scheduler may
    /// interleave differently, but each session owns its world.
    #[test]
    fn outcomes_identical_across_worker_counts() {
        let run = |jobs: usize| -> Vec<SessionOutcome> {
            let service = empty_service();
            let config =
                FleetConfig { ring_capacity: 4, classify_quantum: 2, ..Default::default() };
            let sessions: Vec<FleetSession<'_>> = (0..6)
                .map(|i| {
                    FleetSession::new(
                        i % 2,
                        &service,
                        UiSimulation::new(SimConfig::paper_default(40 + i as u64)),
                        SimInstant::from_millis(400),
                        &config,
                    )
                })
                .collect();
            run_sessions(&Pool::new(jobs), sessions)
        };
        let seq = run(1);
        assert_eq!(seq, run(4));
    }
}
