//! Target-application launch detection (§3.2).
//!
//! The paper's monitoring process uses procfs side channels to detect the
//! launch of a target application before it starts reading GPU counters.
//! This reproduction detects launches from the GPU counters themselves: a
//! cold launch renders the login screen, the on-screen keyboard and the
//! status bar together, and that burst's counter delta is as much a
//! fingerprint as any popup — it is rendered by the same deterministic
//! pipeline the rest of the attack relies on.

use adreno_sim::counters::CounterSet;
use adreno_sim::time::SimInstant;

use crate::stage::Stage;
use crate::trace::Delta;

/// Detects the target app's cold-launch burst in a change stream.
#[derive(Debug, Clone)]
pub struct LaunchDetector {
    signature: CounterSet,
    /// Maximum relative L1 distance for a match.
    tolerance: f64,
}

impl LaunchDetector {
    /// Creates a detector for a trained launch signature (see
    /// [`crate::ClassifierModel::launch_signature`]).
    pub fn new(signature: CounterSet) -> Self {
        LaunchDetector { signature, tolerance: 0.05 }
    }

    /// Whether one change matches the launch burst.
    pub fn matches(&self, delta: &Delta) -> bool {
        let sig_norm = self.signature.total().max(1) as f64;
        let mut l1 = 0.0;
        for (a, b) in delta.values.as_array().iter().zip(self.signature.as_array()) {
            l1 += (*a as f64 - *b as f64).abs();
        }
        l1 / sig_norm <= self.tolerance
    }

    /// The first launch in a change stream, if any.
    pub fn detect(&self, deltas: &[Delta]) -> Option<SimInstant> {
        deltas.iter().find(|d| self.matches(d)).map(|d| d.at)
    }
}

/// Streaming launch gating (§3.2) as a [`Stage`].
///
/// An **armed** gate swallows every change until one matches the trained
/// cold-launch burst, drops the matching change itself, and passes
/// everything after it — exactly the batch driver's
/// `detect` + `filter(d.at > launch_at)`. An **open** gate (launch gating
/// disabled) passes everything through untouched.
#[derive(Debug, Clone)]
pub struct LaunchGate {
    detector: Option<LaunchDetector>,
    launch_at: Option<SimInstant>,
}

impl LaunchGate {
    /// A gate that waits for `signature`'s cold-launch burst before passing
    /// anything downstream.
    pub fn armed(signature: CounterSet) -> Self {
        LaunchGate { detector: Some(LaunchDetector::new(signature)), launch_at: None }
    }

    /// A pass-through gate for sessions that do not gate on launch.
    pub fn open() -> Self {
        LaunchGate { detector: None, launch_at: None }
    }

    /// When the launch burst was observed (`None` while still waiting, and
    /// always `None` for an open gate).
    pub fn launch_at(&self) -> Option<SimInstant> {
        self.launch_at
    }
}

impl Stage for LaunchGate {
    type In = Delta;
    type Out = Delta;

    fn push(&mut self, input: Delta, out: &mut Vec<Delta>) {
        match (&self.detector, self.launch_at) {
            (None, _) => out.push(input),
            (Some(_), Some(at)) => {
                if input.at > at {
                    out.push(input);
                }
            }
            (Some(det), None) => {
                if det.matches(&input) {
                    self.launch_at = Some(input.at);
                }
            }
        }
    }

    fn finish(&mut self, _out: &mut Vec<Delta>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::TrackedCounter;

    fn sig() -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[TrackedCounter::LrzVisiblePixelAfterLrz] = 200_000;
        c[TrackedCounter::Ras8x4Tiles] = 90_000;
        c[TrackedCounter::VpcPcPrimitives] = 400;
        c
    }

    fn delta(ms: u64, values: CounterSet) -> Delta {
        Delta { at: SimInstant::from_millis(ms), values }
    }

    #[test]
    fn exact_burst_matches() {
        let det = LaunchDetector::new(sig());
        assert!(det.matches(&delta(10, sig())));
        assert_eq!(
            det.detect(&[delta(5, CounterSet::ZERO), delta(10, sig())]),
            Some(SimInstant::from_millis(10))
        );
    }

    #[test]
    fn near_burst_within_tolerance_matches() {
        let det = LaunchDetector::new(sig());
        let mut near = sig();
        near[TrackedCounter::LrzVisiblePixelAfterLrz] += 2_000; // <5% of total
        assert!(det.matches(&delta(10, near)));
    }

    #[test]
    fn unrelated_changes_do_not_match() {
        let det = LaunchDetector::new(sig());
        let mut half = sig();
        half[TrackedCounter::LrzVisiblePixelAfterLrz] /= 2;
        assert!(!det.matches(&delta(10, half)));
        assert!(det.detect(&[delta(1, CounterSet::ZERO), delta(2, half)]).is_none());
    }
}
