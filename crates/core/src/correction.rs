//! Input-correction detection (§5.3, Fig 14).
//!
//! Backspace shows no popup, so deletions are invisible to the popup
//! classifier. But the app window's echo redraw encodes the *input length*:
//! `PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ` moves by exactly +2 when a character
//! is committed and −2 when one is deleted (each text cell is one quad =
//! two primitives). The cursor toggling also moves the counter by ±2, but
//! cursor blinks follow a fixed 0.5 s period, so they are recognised by
//! their timestamps.

use std::collections::VecDeque;

use adreno_sim::counters::{CounterSet, TrackedCounter};
use adreno_sim::time::{SimDuration, SimInstant};

use crate::online::{InferEvent, InferredKey};
use crate::stage::Stage;
use crate::trace::Delta;

/// What an app-window echo change meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionEvent {
    /// A character was committed (echo +2).
    CharAdded(SimInstant),
    /// A character was deleted with backspace (echo −2 off the blink grid).
    CharDeleted(SimInstant),
    /// A cursor blink (±2 on the 0.5 s grid).
    CursorBlink(SimInstant),
}

/// Configuration of the correction detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectionConfig {
    /// The cursor blink period (fixed 0.5 s on Android).
    pub blink_period: SimDuration,
    /// Tolerance around the blink grid. Rendering latency puts a blink's
    /// observable change up to ~vsync+read-interval after the tick.
    pub blink_tolerance: SimDuration,
    /// Relative tolerance when matching a change against the app-window
    /// echo signature on the large counters.
    pub echo_match_frac: f64,
}

impl Default for CorrectionConfig {
    fn default() -> Self {
        CorrectionConfig {
            blink_period: SimDuration::from_millis(500),
            blink_tolerance: SimDuration::from_millis(40),
            echo_match_frac: 0.02,
        }
    }
}

/// Streaming correction detector over the changes the popup classifier
/// rejected as "noise".
#[derive(Debug)]
pub struct CorrectionDetector {
    config: CorrectionConfig,
    /// The trained field-redraw signatures (all lengths, cursor on/off).
    signatures: Vec<CounterSet>,
    last_visible_prims: Option<i64>,
    /// Estimated cursor visibility (restored to `true` by every text
    /// change; toggled by blinks).
    cursor_on: bool,
    /// The blink timer restarts on every text change, so the grid is
    /// anchored at the last add/delete echo rather than at absolute time.
    blink_anchor: Option<SimInstant>,
    /// An on-grid −2 echo awaiting disambiguation: a blink turning the
    /// cursor off and a backspace that happens to land on the blink grid
    /// look identical *now*, but they predict different successor values,
    /// so the very next echo resolves it (see `resolve_pending`).
    pending: Option<PendingMinus2>,
    events: Vec<CorrectionEvent>,
}

/// State snapshot around an ambiguous on-grid −2 event.
#[derive(Debug, Clone, Copy)]
struct PendingMinus2 {
    at: SimInstant,
    /// The absolute prim value the ambiguous echo showed.
    v: i64,
    /// The blink anchor in force before the ambiguous event.
    prior_anchor: Option<SimInstant>,
}

impl CorrectionDetector {
    /// Creates a detector over a model's field-redraw signatures (see
    /// [`crate::ClassifierModel::ambient_signatures`]).
    pub fn new(signatures: Vec<CounterSet>, config: CorrectionConfig) -> Self {
        CorrectionDetector {
            config,
            signatures,
            last_visible_prims: None,
            cursor_on: true,
            blink_anchor: None,
            pending: None,
            events: Vec::new(),
        }
    }

    /// Re-anchors the blink grid at `at`. The service calls this when the
    /// app-switch detector sees the victim return to the target app:
    /// Android restarts the cursor-blink timer on refocus, so the old
    /// anchor would misread the first blink after the switch as an input
    /// correction.
    pub fn reanchor(&mut self, at: SimInstant) {
        // A refocus means any pending ambiguity will never get its
        // follow-up; resolve it conservatively as a blink.
        self.resolve_pending_as_blink();
        self.blink_anchor = Some(at);
        self.cursor_on = true;
    }

    fn resolve_pending_as_blink(&mut self) {
        if let Some(p) = self.pending.take() {
            self.cursor_on = false;
            self.last_visible_prims = Some(p.v);
            self.blink_anchor = p.prior_anchor;
            self.events.push(CorrectionEvent::CursorBlink(p.at));
        }
    }

    /// Whether `values` matches one of the trained field-redraw signatures
    /// within the configured tolerance. Matching against the exact
    /// signature list (rather than a single loose envelope) keeps toasts
    /// and split popup fragments of coincidentally similar size from being
    /// mistaken for echoes.
    pub fn is_echo_like(&self, values: &CounterSet) -> bool {
        self.signatures.iter().any(|sig| {
            let close = |c: TrackedCounter| {
                let s = sig[c] as f64;
                let v = values[c] as f64;
                s > 0.0 && (v - s).abs() <= s * self.config.echo_match_frac
            };
            close(TrackedCounter::LrzVisiblePixelAfterLrz)
                && close(TrackedCounter::Ras8x4Tiles)
                && values[TrackedCounter::LrzVisiblePrimAfterLrz]
                    == sig[TrackedCounter::LrzVisiblePrimAfterLrz]
        })
    }

    fn on_blink_grid(&self, at: SimInstant) -> bool {
        let Some(anchor) = self.blink_anchor else {
            // No activity anchor yet: fall back to the absolute grid.
            let phase = at.as_nanos() % self.config.blink_period.as_nanos();
            return phase <= self.config.blink_tolerance.as_nanos();
        };
        let since = at.saturating_since(anchor).as_nanos();
        let period = self.config.blink_period.as_nanos();
        if since < period / 2 {
            return false; // too soon after a text change to be a blink
        }
        let phase = since % period;
        let tol = self.config.blink_tolerance.as_nanos();
        phase <= tol || phase >= period - tol
    }

    /// Observes one rejected change; records an event when it is an echo.
    ///
    /// An echo's visible-prim value encodes `2 (field) + 2·len + 2·cursor`.
    /// Cursor blinks move it by exactly ±2 on the 0.5 s grid; a text change
    /// restores the cursor and shifts the length — which reads as +2/−2
    /// when the cursor was already on, or +4/±0 when a blink had just
    /// hidden it. Decoding `(len, cursor)` explicitly disambiguates all of
    /// these.
    pub fn observe(&mut self, delta: &Delta) -> Option<CorrectionEvent> {
        if !self.is_echo_like(&delta.values) {
            return None;
        }
        let v = delta.values[TrackedCounter::LrzVisiblePrimAfterLrz] as i64;
        let at = delta.at;
        let Some(prev) = self.last_visible_prims else {
            // First echo seen: establishes the baseline and the blink
            // anchor. When it decodes to exactly one character with the
            // cursor shown, it *is* the first commit's echo and counts as a
            // text change; longer baselines mean sampling started
            // mid-input, where the preceding history is unknowable.
            self.last_visible_prims = Some(v);
            self.cursor_on = true;
            self.blink_anchor = Some(at);
            if v == 6 {
                let event = CorrectionEvent::CharAdded(at);
                self.events.push(event);
                return Some(event);
            }
            return None;
        };
        if self.pending.is_some() {
            self.resolve_pending(at, v);
            // `resolve_pending` installed the disambiguated state and
            // already classified this event against it.
            return self.events.last().copied();
        }
        // On-grid −2 is ambiguous (blink-off vs backspace on the grid) —
        // but only while the cursor is visible; a hidden cursor cannot turn
        // off again. Defer until the next echo reveals which it was.
        if self.on_blink_grid(at) && v - prev == -2 && self.cursor_on {
            self.pending = Some(PendingMinus2 { at, v, prior_anchor: self.blink_anchor });
            return None;
        }
        self.classify_event(at, v)
    }

    /// Classifies an unambiguous echo against the current state.
    fn classify_event(&mut self, at: SimInstant, v: i64) -> Option<CorrectionEvent> {
        let prev = self.last_visible_prims.expect("baseline established");
        // Cursor blink: exactly ±2 on the restart-anchored grid, and only
        // in the direction the cursor can actually toggle — an on-grid +2
        // while the cursor is already visible is a *commit* whose echo
        // happens to land on the grid, not a blink.
        let blink_direction_ok = if v > prev { !self.cursor_on } else { self.cursor_on };
        if self.on_blink_grid(at) && (v - prev).abs() == 2 && blink_direction_ok {
            self.cursor_on = v > prev;
            self.last_visible_prims = Some(v);
            let event = CorrectionEvent::CursorBlink(at);
            self.events.push(event);
            return Some(event);
        }
        // Text change: the cursor ends up visible and the blink timer
        // restarts; decode the length shift.
        let len_old = (prev - 2 - if self.cursor_on { 2 } else { 0 }) / 2;
        let len_new = (v - 4) / 2;
        self.cursor_on = true;
        self.last_visible_prims = Some(v);
        self.blink_anchor = Some(at);
        let event = match len_new - len_old {
            1 => CorrectionEvent::CharAdded(at),
            -1 => CorrectionEvent::CharDeleted(at),
            // 0: cursor restored without a length change (field tap); bigger
            // jumps mean echoes were lost — resync without guessing.
            _ => return None,
        };
        self.events.push(event);
        Some(event)
    }

    /// Disambiguates a pending on-grid −2 using its successor echo.
    ///
    /// * If the pending event was a **blink-off**, the cursor is now off and
    ///   the old blink anchor still rules: the successor is either the +2
    ///   blink-on at the next tick, or a text change that reads +4/+2.
    /// * If it was a **deletion**, the cursor is on, the blink timer
    ///   restarted at the deletion: the successor is either a −2 blink-off
    ///   one period later, or a text change that reads +2/0 relative to it.
    ///
    /// Each interpretation predicts different successor arithmetic, so
    /// scoring both against the observed value picks the right one (ties
    /// fall back to the blink reading, which never fabricates deletions).
    fn resolve_pending(&mut self, at: SimInstant, v: i64) {
        let p = self.pending.take().expect("caller checked");
        let score = |cursor_after: bool, anchor_after: Option<SimInstant>| -> i32 {
            // Blink successor?
            let expected_blink = p.v + if cursor_after { -2 } else { 2 };
            let on_grid = match anchor_after {
                Some(a) => {
                    let since = at.saturating_since(a).as_nanos();
                    let period = self.config.blink_period.as_nanos();
                    since >= period / 2 && {
                        let phase = since % period;
                        let tol = self.config.blink_tolerance.as_nanos();
                        phase <= tol || phase >= period - tol
                    }
                }
                None => false,
            };
            if on_grid && v == expected_blink {
                return 2;
            }
            // Text-change successor? A ±1 length step and a cursor-restoring
            // tap (length unchanged) are *equally* consistent readings — a
            // pending blink-off whose successor taps the field must not lose
            // to a fabricated delete-then-add pair just because ±1 sounded
            // more eventful. Deletions are declared only when the successor
            // confirms the restarted timer or contradicts the blink reading.
            let len_after_pending = (p.v - 2 - if cursor_after { 2 } else { 0 }) / 2;
            let len_new = (v - 4) / 2;
            match (len_new - len_after_pending).abs() {
                0 | 1 => 1,
                _ => -1,
            }
        };
        // Blink interpretation: cursor off, anchor unchanged.
        let blink_score = score(false, p.prior_anchor);
        // Deletion interpretation: cursor on, timer restarted at the event.
        let delete_score = score(true, Some(p.at));

        if delete_score > blink_score {
            self.events.push(CorrectionEvent::CharDeleted(p.at));
            self.cursor_on = true;
            self.blink_anchor = Some(p.at);
        } else {
            self.events.push(CorrectionEvent::CursorBlink(p.at));
            self.cursor_on = false;
            self.blink_anchor = p.prior_anchor;
        }
        self.last_visible_prims = Some(p.v);
        self.classify_event(at, v);
    }

    /// Flushes any pending ambiguity at end of stream (conservatively as a
    /// blink — never fabricate a deletion).
    pub fn flush(&mut self) {
        self.resolve_pending_as_blink();
    }

    /// All events recorded so far.
    pub fn events(&self) -> &[CorrectionEvent] {
        &self.events
    }

    /// The deletions detected, in time order.
    pub fn deletions(&self) -> Vec<SimInstant> {
        self.events
            .iter()
            .filter_map(|e| match e {
                CorrectionEvent::CharDeleted(t) => Some(*t),
                _ => None,
            })
            .collect()
    }
}

/// The assembled output of the correction stage: the per-session key lists
/// after §5.3 correction handling.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectedKeys {
    /// Surviving presses (deleted/uncorroborated ones removed).
    pub keys: Vec<InferredKey>,
    /// Ranked alternatives per surviving press, aligned with `keys`.
    pub candidates: Vec<Vec<char>>,
    /// Every accepted press, including the ones corrections removed.
    pub keys_before_corrections: Vec<InferredKey>,
    /// Every echo-stream event recorded.
    pub corrections: Vec<CorrectionEvent>,
}

/// Terminal [`Stage`] of the pipeline (§5.3): tracks corrections over the
/// inference stream's noise events, accumulates accepted presses, and — at
/// end of stream — applies detected deletions (and, optionally, echo
/// corroboration) to produce the final key lists.
///
/// Return-to-target markers enter through
/// [`CorrectionStage::push_return`]: each queued return re-anchors the
/// blink grid just before the first noise change at or after it, exactly
/// reproducing the batch driver's returns/noise interleave. Returns still
/// queued when the stream ends never re-anchor (there is no later echo they
/// could disambiguate).
#[derive(Debug)]
pub struct CorrectionStage {
    detector: CorrectionDetector,
    echo_corroboration: bool,
    returns: VecDeque<SimInstant>,
    keys: Vec<InferredKey>,
    candidates: Vec<Vec<char>>,
    events_drained: usize,
}

impl CorrectionStage {
    /// A fresh stage over a model's field-redraw signatures.
    pub fn new(
        signatures: Vec<CounterSet>,
        config: CorrectionConfig,
        echo_corroboration: bool,
    ) -> Self {
        CorrectionStage {
            detector: CorrectionDetector::new(signatures, config),
            echo_corroboration,
            returns: VecDeque::new(),
            keys: Vec::new(),
            candidates: Vec::new(),
            events_drained: 0,
        }
    }

    /// Queues a detected return to the target app; the blink grid
    /// re-anchors there before the next noise change at or after it.
    pub fn push_return(&mut self, at: SimInstant) {
        self.returns.push_back(at);
    }

    fn observe_noise(&mut self, delta: &Delta) {
        while self.returns.front().is_some_and(|t| *t <= delta.at) {
            let t = self.returns.pop_front().expect("peeked");
            spansight::count("core.service.reanchors", 1);
            self.detector.reanchor(t);
        }
        self.detector.observe(delta);
    }

    fn drain_events(&mut self, out: &mut Vec<CorrectionEvent>) {
        let events = self.detector.events();
        out.extend_from_slice(&events[self.events_drained..]);
        self.events_drained = events.len();
    }

    /// Consumes the stage after [`Stage::finish`], applying deletions and
    /// optional echo corroboration to the accumulated presses.
    pub fn into_corrected(mut self) -> CorrectedKeys {
        // Idempotent with a prior `finish`; direct callers may skip it.
        self.detector.flush();
        let corrections = self.detector.events().to_vec();

        // Apply deletions: each deletion removes the latest not-yet-deleted
        // inferred key before it.
        let keys_before_corrections = self.keys.clone();
        let mut alive: Vec<(InferredKey, Vec<char>, bool)> =
            self.keys.into_iter().zip(self.candidates).map(|(k, c)| (k, c, true)).collect();
        for del_at in self.detector.deletions() {
            if let Some(slot) = alive.iter_mut().rev().find(|(k, _, alive)| *alive && k.at < del_at)
            {
                slot.2 = false;
            }
        }
        let mut keys = Vec::with_capacity(alive.len());
        let mut candidates = Vec::with_capacity(alive.len());
        for (k, c, a) in alive {
            if a {
                keys.push(k);
                candidates.push(c);
            }
        }

        // Optional insertion filter: every surviving press must have a
        // corroborating echo (a CharAdded event shortly after it). Each
        // echo vouches for at most one press.
        if self.echo_corroboration {
            let window = SimDuration::from_millis(500);
            let mut corroborated = vec![false; keys.len()];
            // Bind each echo to the *latest* press preceding it: a phantom
            // press must not steal the echo of the real press that followed
            // it.
            for e in &corrections {
                let CorrectionEvent::CharAdded(t) = e else { continue };
                if let Some(i) = keys
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(i, k)| {
                        !corroborated[*i] && k.at < *t && t.saturating_since(k.at) <= window
                    })
                    .map(|(i, _)| i)
                {
                    corroborated[i] = true;
                }
            }
            let mut kept_keys = Vec::with_capacity(keys.len());
            let mut kept_cands = Vec::with_capacity(candidates.len());
            for ((k, c), ok) in keys.into_iter().zip(candidates).zip(corroborated) {
                if ok {
                    kept_keys.push(k);
                    kept_cands.push(c);
                }
            }
            keys = kept_keys;
            candidates = kept_cands;
        }

        CorrectedKeys { keys, candidates, keys_before_corrections, corrections }
    }
}

impl Stage for CorrectionStage {
    type In = InferEvent;
    type Out = CorrectionEvent;

    fn push(&mut self, input: InferEvent, out: &mut Vec<CorrectionEvent>) {
        match input {
            InferEvent::Key { key, candidates } => {
                self.keys.push(key);
                self.candidates.push(candidates);
            }
            InferEvent::Noise(d) => {
                self.observe_noise(&d);
                self.drain_events(out);
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<CorrectionEvent>) {
        // Returns with no later noise never re-anchor (batch parity).
        self.returns.clear();
        self.detector.flush();
        self.drain_events(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[TrackedCounter::LrzVisiblePixelAfterLrz] = 100_000;
        c[TrackedCounter::Ras8x4Tiles] = 50_000;
        c[TrackedCounter::LrzVisiblePrimAfterLrz] = 40;
        c
    }

    /// Field signatures for prim counts 36..=60 (covering the test echoes).
    fn sigs() -> Vec<CounterSet> {
        (36..=60)
            .step_by(2)
            .map(|p| {
                let mut c = sig();
                c[TrackedCounter::LrzVisiblePrimAfterLrz] = p;
                c
            })
            .collect()
    }

    fn echo(ms: u64, prims: u64) -> Delta {
        let mut values = sig();
        values[TrackedCounter::LrzVisiblePrimAfterLrz] = prims;
        Delta { at: SimInstant::from_millis(ms), values }
    }

    fn popup(ms: u64) -> Delta {
        let mut values = CounterSet::ZERO;
        values[TrackedCounter::LrzVisiblePixelAfterLrz] = 20_000;
        values[TrackedCounter::Ras8x4Tiles] = 9_000;
        Delta { at: SimInstant::from_millis(ms), values }
    }

    #[test]
    fn ignores_non_echo_changes() {
        let mut det = CorrectionDetector::new(sigs(), CorrectionConfig::default());
        assert_eq!(det.observe(&popup(123)), None);
        assert!(det.events().is_empty());
    }

    #[test]
    fn detects_additions_and_deletions_off_grid() {
        let mut det = CorrectionDetector::new(sigs(), CorrectionConfig::default());
        assert_eq!(det.observe(&echo(130, 40)), None, "first echo is the baseline");
        // Fig 14: 3 letters in, 2 deleted — all off the 0.5 s blink grid.
        assert_eq!(
            det.observe(&echo(330, 42)),
            Some(CorrectionEvent::CharAdded(SimInstant::from_millis(330)))
        );
        assert_eq!(
            det.observe(&echo(630, 44)),
            Some(CorrectionEvent::CharAdded(SimInstant::from_millis(630)))
        );
        assert_eq!(
            det.observe(&echo(890, 46)),
            Some(CorrectionEvent::CharAdded(SimInstant::from_millis(890)))
        );
        assert_eq!(
            det.observe(&echo(1_230, 44)),
            Some(CorrectionEvent::CharDeleted(SimInstant::from_millis(1_230)))
        );
        assert_eq!(
            det.observe(&echo(1_430, 42)),
            Some(CorrectionEvent::CharDeleted(SimInstant::from_millis(1_430)))
        );
        assert_eq!(det.deletions().len(), 2);
    }

    #[test]
    fn blink_grid_changes_are_cursor_blinks() {
        // The blink timer restarts at each text change, so blinks land at
        // anchor + k·500 ms (± tolerance for render/read latency). An
        // on-grid −2 is ambiguous and resolves at the next echo.
        let mut det = CorrectionDetector::new(sigs(), CorrectionConfig::default());
        det.observe(&echo(130, 42)); // baseline → anchor at 130 ms
        assert_eq!(det.observe(&echo(640, 40)), None, "on-grid −2 defers");
        assert_eq!(
            det.observe(&echo(1_148, 42)),
            Some(CorrectionEvent::CursorBlink(SimInstant::from_millis(1_148)))
        );
        assert_eq!(
            det.events(),
            &[
                CorrectionEvent::CursorBlink(SimInstant::from_millis(640)),
                CorrectionEvent::CursorBlink(SimInstant::from_millis(1_148)),
            ]
        );
        assert!(det.deletions().is_empty());
    }

    #[test]
    fn deletion_on_the_blink_grid_is_resolved_by_its_successor() {
        // A backspace landing exactly on the grid looks like a blink-off —
        // until the *restarted* timer fires a −2 one period after it, which
        // a genuine blink-off could never do (its successor is +2).
        let mut det = CorrectionDetector::new(sigs(), CorrectionConfig::default());
        det.observe(&echo(130, 42));
        assert_eq!(det.observe(&echo(630, 40)), None, "ambiguous: deferred");
        det.observe(&echo(1_133, 38));
        assert_eq!(
            det.events(),
            &[
                CorrectionEvent::CharDeleted(SimInstant::from_millis(630)),
                CorrectionEvent::CursorBlink(SimInstant::from_millis(1_133)),
            ]
        );
        assert_eq!(det.deletions(), vec![SimInstant::from_millis(630)]);
    }

    #[test]
    fn unresolvable_pending_flushes_as_blink() {
        // With no successor, the conservative reading (blink) wins — the
        // detector never fabricates a deletion from silence.
        let mut det = CorrectionDetector::new(sigs(), CorrectionConfig::default());
        det.observe(&echo(130, 42));
        assert_eq!(det.observe(&echo(2_135, 40)), None);
        det.flush();
        assert_eq!(det.events(), &[CorrectionEvent::CursorBlink(SimInstant::from_millis(2_135))]);
        assert!(det.deletions().is_empty());
    }

    #[test]
    fn change_too_soon_after_activity_is_not_a_blink() {
        // Less than half a period after a commit, a −2 must be a deletion:
        // the restarted blink timer cannot have fired yet.
        let mut det = CorrectionDetector::new(sigs(), CorrectionConfig::default());
        det.observe(&echo(130, 40));
        assert_eq!(
            det.observe(&echo(330, 42)),
            Some(CorrectionEvent::CharAdded(SimInstant::from_millis(330)))
        );
        assert_eq!(
            det.observe(&echo(530, 40)),
            Some(CorrectionEvent::CharDeleted(SimInstant::from_millis(530)))
        );
    }

    #[test]
    fn echo_match_respects_tolerance() {
        let det = CorrectionDetector::new(sigs(), CorrectionConfig::default());
        let mut near = sig();
        near[TrackedCounter::LrzVisiblePixelAfterLrz] = 101_000; // +1%
        assert!(det.is_echo_like(&near));
        let mut far = sig();
        far[TrackedCounter::LrzVisiblePixelAfterLrz] = 115_000; // +15%
        assert!(!det.is_echo_like(&far), "echo matching is exact-signature, not a loose envelope");
        let mut wrong_prims = sig();
        wrong_prims[TrackedCounter::LrzVisiblePrimAfterLrz] = 41; // odd, not a field value
        assert!(!det.is_echo_like(&wrong_prims));
    }
}
