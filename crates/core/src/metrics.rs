//! Scoring inferred key presses against ground truth.
//!
//! The paper reports two accuracies: **individual key press accuracy** (the
//! fraction of true presses whose character was correctly inferred,
//! Fig 17b/18) and **text input accuracy** (the fraction of credential
//! inputs recovered exactly, Fig 17a).

use adreno_sim::time::{SimDuration, SimInstant};

use crate::online::InferredKey;

/// Matching window when aligning an inferred press to a true press: popup
/// rendering (≤ one frame) plus one read interval.
pub const MATCH_WINDOW: SimDuration = SimDuration::from_millis(60);

/// Score of one eavesdropped session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionScore {
    /// True key presses correctly inferred (right char, right time).
    pub correct_keys: usize,
    /// Total true key presses.
    pub total_keys: usize,
    /// Inferred presses with no matching true press (insertions).
    pub spurious_keys: usize,
    /// Whether the recovered final text matches exactly.
    pub text_exact: bool,
    /// Edit distance between recovered and true final text.
    pub edit_distance: usize,
}

impl SessionScore {
    /// Individual key-press accuracy for this session.
    pub fn key_accuracy(&self) -> f64 {
        if self.total_keys == 0 {
            return 1.0;
        }
        self.correct_keys as f64 / self.total_keys as f64
    }
}

/// Greedily aligns inferred presses to true presses within
/// [`MATCH_WINDOW`], in time order, and scores the session.
pub fn score_session(
    truth_presses: &[(SimInstant, char)],
    truth_text: &str,
    inferred: &[InferredKey],
    recovered_text: &str,
) -> SessionScore {
    let mut used = vec![false; inferred.len()];
    let mut correct = 0usize;
    for &(t, c) in truth_presses {
        let hit = inferred
            .iter()
            .enumerate()
            .find(|(i, k)| !used[*i] && k.ch == c && within(k.at, t, MATCH_WINDOW));
        if let Some((i, _)) = hit {
            used[i] = true;
            correct += 1;
        }
    }
    let spurious = used.iter().filter(|u| !**u).count();
    SessionScore {
        correct_keys: correct,
        total_keys: truth_presses.len(),
        spurious_keys: spurious,
        text_exact: recovered_text == truth_text,
        edit_distance: edit_distance(recovered_text, truth_text),
    }
}

/// Per-character `(correct, total)` tallies across a session — the data
/// behind Fig 17(c)/18/21(c).
pub fn per_char_tallies(
    truth_presses: &[(SimInstant, char)],
    inferred: &[InferredKey],
) -> std::collections::HashMap<char, (usize, usize)> {
    let mut used = vec![false; inferred.len()];
    let mut tallies: std::collections::HashMap<char, (usize, usize)> =
        std::collections::HashMap::new();
    for &(t, c) in truth_presses {
        let e = tallies.entry(c).or_insert((0, 0));
        e.1 += 1;
        let hit = inferred
            .iter()
            .enumerate()
            .find(|(i, k)| !used[*i] && k.ch == c && within(k.at, t, MATCH_WINDOW));
        if let Some((i, _)) = hit {
            used[i] = true;
            e.0 += 1;
        }
    }
    tallies
}

fn within(a: SimInstant, b: SimInstant, window: SimDuration) -> bool {
    a.saturating_since(b) <= window && b.saturating_since(a) <= window
}

/// The number of guesses an attacker needs to hit `truth` given ranked
/// per-position candidate lists, trying combinations in best-first order.
///
/// The attacker enumerates candidate texts in order of the product of
/// per-position ranks (rank 1 = top candidate), so the guess count for the
/// correct text is exactly that product. Returns `None` when some true
/// character is absent from its position's candidates or the lengths
/// disagree (insertions/deletions cannot be guessed away by this scheme).
///
/// # Examples
///
/// ```
/// use gpu_sc_attack::metrics::guesses_needed;
///
/// let candidates = vec![vec!['a', 'x'], vec!['y', 'b']];
/// assert_eq!(guesses_needed("ab", &candidates), Some(2));
/// assert_eq!(guesses_needed("az", &candidates), None); // 'z' not offered
/// ```
pub fn guesses_needed(truth: &str, candidates: &[Vec<char>]) -> Option<u128> {
    let truth: Vec<char> = truth.chars().collect();
    if truth.len() != candidates.len() {
        return None;
    }
    let mut product: u128 = 1;
    for (c, cands) in truth.iter().zip(candidates) {
        let rank = cands.iter().position(|x| x == c)? as u128 + 1;
        product = product.saturating_mul(rank);
    }
    Some(product)
}

/// Levenshtein edit distance between two strings (by chars).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Aggregates many session scores into the quantities the paper's figures
/// plot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Aggregate {
    /// Sessions folded in.
    pub sessions: usize,
    /// Sessions whose recovered text matched the typed text exactly.
    pub exact_texts: usize,
    /// Typed keys recovered in order, summed over sessions.
    pub correct_keys: usize,
    /// Keys typed, summed over sessions.
    pub total_keys: usize,
    /// Edit distance between typed and recovered text, summed.
    pub total_edit_distance: usize,
    /// Inferred keys that matched nothing typed, summed.
    pub spurious_keys: usize,
}

impl Aggregate {
    /// Folds one session in.
    pub fn add(&mut self, s: &SessionScore) {
        self.sessions += 1;
        self.exact_texts += usize::from(s.text_exact);
        self.correct_keys += s.correct_keys;
        self.total_keys += s.total_keys;
        self.total_edit_distance += s.edit_distance;
        self.spurious_keys += s.spurious_keys;
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &Aggregate) {
        self.sessions += other.sessions;
        self.exact_texts += other.exact_texts;
        self.correct_keys += other.correct_keys;
        self.total_keys += other.total_keys;
        self.total_edit_distance += other.total_edit_distance;
        self.spurious_keys += other.spurious_keys;
    }

    /// Fraction of sessions whose text was recovered exactly (Fig 17a).
    pub fn text_accuracy(&self) -> f64 {
        if self.sessions == 0 {
            return 1.0;
        }
        self.exact_texts as f64 / self.sessions as f64
    }

    /// Individual key-press accuracy (Fig 17b's companion metric).
    pub fn key_accuracy(&self) -> f64 {
        if self.total_keys == 0 {
            return 1.0;
        }
        self.correct_keys as f64 / self.total_keys as f64
    }

    /// Mean number of wrong characters per text (Fig 17b / 21b).
    pub fn mean_errors(&self) -> f64 {
        if self.sessions == 0 {
            return 0.0;
        }
        self.total_edit_distance as f64 / self.sessions as f64
    }
}

impl Extend<SessionScore> for Aggregate {
    fn extend<T: IntoIterator<Item = SessionScore>>(&mut self, iter: T) {
        for s in iter {
            self.add(&s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ms: u64, ch: char) -> InferredKey {
        InferredKey {
            at: SimInstant::from_millis(ms),
            decided_at: SimInstant::from_millis(ms),
            ch,
            via_split: false,
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", "ab"), 1);
        assert_eq!(edit_distance("abc", "xabc"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abcd"), 4);
    }

    #[test]
    fn perfect_session_scores_perfectly() {
        let truth = vec![(SimInstant::from_millis(100), 'a'), (SimInstant::from_millis(400), 'b')];
        let inferred = vec![key(110, 'a'), key(412, 'b')];
        let s = score_session(&truth, "ab", &inferred, "ab");
        assert_eq!(s.correct_keys, 2);
        assert_eq!(s.spurious_keys, 0);
        assert!(s.text_exact);
        assert_eq!(s.key_accuracy(), 1.0);
    }

    #[test]
    fn wrong_char_does_not_match() {
        let truth = vec![(SimInstant::from_millis(100), 'a')];
        let inferred = vec![key(110, 'b')];
        let s = score_session(&truth, "a", &inferred, "b");
        assert_eq!(s.correct_keys, 0);
        assert_eq!(s.spurious_keys, 1);
        assert!(!s.text_exact);
        assert_eq!(s.edit_distance, 1);
    }

    #[test]
    fn late_match_is_rejected() {
        let truth = vec![(SimInstant::from_millis(100), 'a')];
        let inferred = vec![key(300, 'a')];
        let s = score_session(&truth, "a", &inferred, "a");
        assert_eq!(s.correct_keys, 0, "200 ms is outside the match window");
        assert!(s.text_exact, "text comparison is independent of timing");
    }

    #[test]
    fn each_inferred_key_matches_once() {
        // One inferred press cannot satisfy two true presses.
        let truth = vec![(SimInstant::from_millis(100), 'a'), (SimInstant::from_millis(120), 'a')];
        let inferred = vec![key(110, 'a')];
        let s = score_session(&truth, "aa", &inferred, "a");
        assert_eq!(s.correct_keys, 1);
    }

    #[test]
    fn guesses_needed_counts_rank_products() {
        let cands = vec![vec!['a', 'b', 'c'], vec!['x', 'y'], vec!['1']];
        assert_eq!(guesses_needed("ax1", &cands), Some(1));
        assert_eq!(guesses_needed("cy1", &cands), Some(6));
        assert_eq!(guesses_needed("az1", &cands), None, "missing candidate");
        assert_eq!(guesses_needed("ax", &cands), None, "length mismatch");
    }

    #[test]
    fn aggregate_math() {
        let mut agg = Aggregate::default();
        agg.add(&SessionScore {
            correct_keys: 9,
            total_keys: 10,
            spurious_keys: 0,
            text_exact: false,
            edit_distance: 1,
        });
        agg.add(&SessionScore {
            correct_keys: 10,
            total_keys: 10,
            spurious_keys: 1,
            text_exact: true,
            edit_distance: 0,
        });
        assert_eq!(agg.sessions, 2);
        assert!((agg.text_accuracy() - 0.5).abs() < 1e-12);
        assert!((agg.key_accuracy() - 0.95).abs() < 1e-12);
        assert!((agg.mean_errors() - 0.5).abs() < 1e-12);
    }
}
